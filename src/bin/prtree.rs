//! `prtree` — command-line face of the persistent PR-tree.
//!
//! ```text
//! prtree build --out index.prt --data tiger-east --n 100000 --loader PR
//! prtree query index.prt --window 0.2,0.2,0.4,0.4
//! prtree knn   index.prt --point 0.5,0.5 --k 10
//! prtree stats index.prt
//!
//! prtree ingest  live-dir --data uniform --n 100000       # durable writes
//! prtree delete  live-dir --window 0.2,0.2,0.4,0.4
//! prtree compact live-dir
//! prtree query   live-dir --window 0,0,1,1                # works on both
//! ```
//!
//! `build` bulk-loads one of the paper's dataset families in memory and
//! commits it to a store file; `query`/`knn` reopen the index (checksum-
//! verified reads) and report results plus exact I/O statistics; `stats`
//! dumps the superblock and scrubs every page. A **directory** argument
//! is treated as a `pr-live` index (WAL + memtable + components):
//! `ingest` appends durably (every batch fsynced before it is
//! acknowledged — kill the process anywhere and re-run `query`),
//! `delete` removes by window, `compact` merges everything into one
//! component and rewrites the store file. Everything is 2-D, the paper's
//! experimental setting.

use pr_data::{size_dataset, uniform_points, TigerProfile};
use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Point, Rect};
use pr_live::{Durability, LiveIndex, LiveOptions};
use pr_store::{ReadPath, Store};
use pr_tree::bulk::LoaderKind;
use pr_tree::{LeafCache, QueryScratch, RTree, TreeParams};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    init_obs();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("delete") => cmd_delete(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("knn") => cmd_knn(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("events") => cmd_events(&args[1..]),
        Some("slow") => cmd_slow(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("torture") => cmd_torture(&args[1..]),
        Some("--help") | Some("-h") | None => {
            usage();
            0
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!(
        "usage: prtree <command> [options]\n\
         \n\
         commands:\n\
         \x20 build --out FILE [--data KIND] [--n N] [--seed S] [--loader L] [--cap C]\n\
         \x20       build a synthetic index and commit it to FILE\n\
         \x20       KIND: uniform | size | tiger-east | tiger-west   (default uniform)\n\
         \x20       L:    PR | H | H4 | TGS | STR                    (default PR)\n\
         \x20       C:    entries per node (default: the paper's 113 / 4KB pages)\n\
         \x20 ingest DIR [--data KIND] [--n N] [--seed S] [--id-base B] [--batch SIZE]\n\
         \x20        [--writers W] [--durability fsync|async|async:BYTES]\n\
         \x20        [--buffer-cap C] [--cap C] [--leaf-cache-bytes B] [--inline-merge]\n\
         \x20        [--flush] [--metrics-file FILE] [--trace-file FILE]\n\
         \x20       durably insert N synthetic items into the live index at DIR\n\
         \x20       (created on first use). --writers W shards the stream over W\n\
         \x20       threads whose batches coalesce into shared group-commit\n\
         \x20       fsyncs; --durability picks the ack point: fsync (default —\n\
         \x20       acked writes are on disk) or async[:BYTES] (ack after the\n\
         \x20       buffered append; a syncer thread fsyncs behind a window of\n\
         \x20       at most BYTES unsynced WAL bytes, default 8 MiB);\n\
         \x20       --id-base offsets ids so successive ingests\n\
         \x20       stay unique; --flush forces a merge commit before exiting;\n\
         \x20       --metrics-file FILE periodically flushes the metrics registry\n\
         \x20       to FILE as JSON (atomic rename; final flush on exit);\n\
         \x20       --trace-file FILE traces every operation and writes the run's\n\
         \x20       span traces to FILE as Chrome trace-event JSON on exit (open\n\
         \x20       in about://tracing or Perfetto);\n\
         \x20       --inline-merge runs merges on the writer instead of the\n\
         \x20       background thread. Every live-dir command accepts\n\
         \x20       --leaf-cache-bytes B (shared transcoded-leaf cache across the\n\
         \x20       index's components; default 16 MiB, 0 disables) plus\n\
         \x20       --trace-sample N (span-trace 1 op in N; 0 = off, the default)\n\
         \x20       and --trace-slow-us U (flight-recorder admission threshold)\n\
         \x20 delete DIR --window X1,Y1,X2,Y2 [--limit N] [--leaf-cache-bytes B]\n\
         \x20       durably delete (up to N) live items intersecting the window\n\
         \x20 compact DIR [--max-garbage-pct P] [--leaf-cache-bytes B]\n\
         \x20       merge memtable + all components into one tree, drop all\n\
         \x20       tombstones, and rewrite the store file (reclaims the garbage\n\
         \x20       incremental merge commits leave behind). --max-garbage-pct P\n\
         \x20       makes it conditional: rewrite only when garbage exceeds P%\n\
         \x20       of the file, otherwise keep the incremental layout (exit 0,\n\
         \x20       \"skipped\")\n\
         \x20 query FILE|DIR --window X1,Y1,X2,Y2 [--expect N] [--verbose] [--repeat R]\n\
         \x20       [--leaf-cache-bytes B] [--paranoid] [--explain]\n\
         \x20       reopen the index and run one window query (--expect N: exit 1\n\
         \x20       unless exactly N results — used by CI roundtrips; --repeat R:\n\
         \x20       rerun the query R times through one reused scratch and report\n\
         \x20       warm-cache throughput of the decode-free engine;\n\
         \x20       --leaf-cache-bytes B: budget of the transcoded-leaf cache in\n\
         \x20       front of the store, 0 disables — default 16 MiB;\n\
         \x20       --explain: trace the traversal and print a per-level profile\n\
         \x20       of nodes/leaves/cache-hits/device-reads plus phase timings,\n\
         \x20       cross-checked exactly against the query's own statistics —\n\
         \x20       exit 1 on any mismatch)\n\
         \x20 knn FILE|DIR --point X,Y [--k K] [--leaf-cache-bytes B] [--paranoid]\n\
         \x20       [--explain]\n\
         \x20       reopen the index and report the K nearest rectangles (default K=5).\n\
         \x20       query/knn/stats accept --paranoid: re-hash every store page on\n\
         \x20       every read (CRC rechecked each touch) instead of verify-once\n\
         \x20 stats FILE|DIR [--no-verify] [--paranoid] [--json]\n\
         \x20       store file: dump the superblock, eagerly scrub every page CRC\n\
         \x20       through the verify-once bitmap (reporting verified/total), report\n\
         \x20       tree shape (--no-verify stops after the superblock dump).\n\
         \x20       Live dir: WAL/memtable/component/tombstone/degraded-mode state,\n\
         \x20       plus a full store scrub (nonzero exit on any corrupt page;\n\
         \x20       --no-verify skips it). Both paths end\n\
         \x20       with the process-wide metrics registry (one formatter; the\n\
         \x20       --leaf-cache-bytes budget applies to both). --json emits the\n\
         \x20       registry snapshot + lifecycle events + the slow-op flight\n\
         \x20       recorder as one JSON document; live dirs add an \"index\"\n\
         \x20       summary (write amp, garbage, arena allocs) and the per-run\n\
         \x20       \"store_runs\" layout (stable id + byte offset + pages —\n\
         \x20       unchanged pairs across commits prove in-place page reuse)\n\
         \x20 events DIR [--limit N] [--since SEQ] [--json]\n\
         \x20       replay the lifecycle event ring after opening the live index\n\
         \x20       (open + WAL replay) — WAL rotations, group flushes, seals,\n\
         \x20       merges, compactions, scrubs, cache epochs. --since SEQ tails\n\
         \x20       only events with seq > SEQ (incremental polling; the report's\n\
         \x20       dropped count covers the gap). Store files have no event\n\
         \x20       history: a file path is an error\n\
         \x20 slow DIR|FILE [--limit N] [--json]\n\
         \x20       trace every operation of the open (live dir: WAL replay;\n\
         \x20       store file: open + scrub) and dump the slow-op flight\n\
         \x20       recorder: the N slowest traces per op-kind, slowest first\n\
         \x20       (admission threshold via --trace-slow-us)\n\
         \x20 trace DIR [--out FILE]\n\
         \x20       trace every operation of open + flush on the live index and\n\
         \x20       export the collected span traces as Chrome trace-event JSON\n\
         \x20       to FILE (default stdout) — open in about://tracing or Perfetto\n\
         \x20 torture [DIR] [--seed S] [--batches B] [--batch SIZE] [--writers W]\n\
         \x20        [--durability fsync|async|async:BYTES] [--stride K]\n\
         \x20       fault-injection torture sweep: run a scripted ingest trace once\n\
         \x20       to count its I/O ops, then re-run it once per op with exactly\n\
         \x20       that op failing (EIO / ENOSPC / torn write / EINTR, cycling),\n\
         \x20       reopening after each run and verifying the acked-prefix\n\
         \x20       invariant. --stride K sweeps every Kth op; --writers W > 1\n\
         \x20       switches to the concurrent insert-only variant. Exits 0 only\n\
         \x20       if every run recovers exactly the acknowledged operations"
    );
}

/// Touches every layer's metric catalog so a registry snapshot always
/// carries the full key set, even for counters still at zero — CI
/// parses `stats --json` and asserts on key presence.
fn init_obs() {
    pr_em::obs::metrics();
    pr_tree::obs::metrics();
    pr_store::obs::metrics();
    pr_live::obs::metrics();
}

/// The one stats formatter both the store-file and live-dir paths end
/// with: the process-wide registry, as human-readable lines or as the
/// versioned JSON document (with the lifecycle event ring).
fn report_registry(json: bool) -> i32 {
    report_registry_extra(json, None)
}

/// Like [`report_registry`], with optional extra top-level fields
/// (raw `"key":value,...` JSON, no braces) spliced into the document —
/// how `stats --json` on a live dir carries the index summary and the
/// per-run layout next to the registry snapshot.
fn report_registry_extra(json: bool, extra: Option<String>) -> i32 {
    let snap = pr_obs::global().snapshot();
    if json {
        let events = pr_obs::events().snapshot();
        let slow = pr_obs::recorder().snapshot();
        let mut doc = pr_obs::snapshot_json_full(&snap, Some(&events), Some(&slow));
        if let Some(extra) = extra {
            assert!(doc.ends_with('}'));
            doc.truncate(doc.len() - 1);
            doc.push(',');
            doc.push_str(&extra);
            doc.push('}');
        }
        println!("{doc}");
    } else {
        print_metrics_human(&snap);
    }
    0
}

fn print_metrics_human(snap: &pr_obs::RegistrySnapshot) {
    println!("metrics (process-wide registry):");
    for m in &snap.metrics {
        let name = if m.labels.is_empty() {
            m.name.clone()
        } else {
            let labels: Vec<String> = m.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}{{{}}}", m.name, labels.join(","))
        };
        match &m.value {
            pr_obs::MetricValue::Counter(v) | pr_obs::MetricValue::Gauge(v) => {
                println!("  {name:<44} {v}");
            }
            pr_obs::MetricValue::Histogram(h) if h.is_empty() => {
                println!("  {name:<44} count=0");
            }
            pr_obs::MetricValue::Histogram(h) => {
                println!(
                    "  {name:<44} count={} p50={} p99={} max={}",
                    h.len(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max()
                );
            }
        }
    }
}

/// Writes the registry snapshot + event ring to `path` atomically
/// (temp file + rename), so a reader never sees a torn document.
fn write_metrics_file(path: &Path) -> std::io::Result<()> {
    let snap = pr_obs::global().snapshot();
    let events = pr_obs::events().snapshot();
    let doc = pr_obs::snapshot_json(&snap, Some(&events));
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, doc)?;
    std::fs::rename(&tmp, path)
}

/// Writes collected traces to `path` as Chrome trace-event JSON,
/// atomically (temp file + rename).
fn write_trace_file(path: &Path, traces: &[pr_obs::Trace]) -> std::io::Result<()> {
    let doc = pr_obs::chrome_trace_json(traces);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, doc)?;
    std::fs::rename(&tmp, path)
}

/// Prints a traced traversal profile — the `--explain` report — and
/// cross-checks the trace's per-level counter sums **exactly** against
/// the query's own [`pr_tree::QueryStats`]. Live-dir queries publish
/// one trace per component; the profile aggregates them. Returns
/// nonzero (the command's exit code) on any mismatch: the trace and
/// the stats counters are two independent accountings of the same
/// traversal, and disagreement means one of them lies.
fn print_explain(traces: &[pr_obs::Trace], kind: &str, stats: &pr_tree::QueryStats) -> i32 {
    let traces: Vec<&pr_obs::Trace> = traces.iter().filter(|t| t.kind == kind).collect();
    let mut levels: Vec<pr_obs::LevelCounters> = Vec::new();
    let mut total_us = 0u64;
    for t in &traces {
        total_us += t.total_us;
        for (i, l) in t.levels.iter().enumerate() {
            if levels.len() <= i {
                levels.resize_with(i + 1, pr_obs::LevelCounters::default);
            }
            let acc = &mut levels[i];
            acc.nodes += l.nodes;
            acc.leaves += l.leaves;
            acc.internal += l.internal;
            acc.cache_hits += l.cache_hits;
            acc.cache_misses += l.cache_misses;
            acc.device_reads += l.device_reads;
        }
    }
    let sum = levels
        .iter()
        .fold(pr_obs::LevelCounters::default(), |mut s, l| {
            s.nodes += l.nodes;
            s.leaves += l.leaves;
            s.internal += l.internal;
            s.cache_hits += l.cache_hits;
            s.cache_misses += l.cache_misses;
            s.device_reads += l.device_reads;
            s
        });
    println!(
        "explain ({kind}): {} traced traversal(s), {total_us} µs",
        traces.len()
    );
    println!(
        "  {:<5} {:>7} {:>7} {:>9} {:>6} {:>7} {:>6}",
        "level", "nodes", "leaves", "internal", "hits", "misses", "reads"
    );
    for (i, l) in levels.iter().enumerate().rev() {
        println!(
            "  {:<5} {:>7} {:>7} {:>9} {:>6} {:>7} {:>6}",
            i, l.nodes, l.leaves, l.internal, l.cache_hits, l.cache_misses, l.device_reads
        );
    }
    println!(
        "  {:<5} {:>7} {:>7} {:>9} {:>6} {:>7} {:>6}",
        "sum",
        sum.nodes,
        sum.leaves,
        sum.internal,
        sum.cache_hits,
        sum.cache_misses,
        sum.device_reads
    );
    // Phase timings, aggregated by (layer, phase) across the traces.
    let mut phases: std::collections::BTreeMap<(&str, &str), (u64, u64)> =
        std::collections::BTreeMap::new();
    for t in &traces {
        for s in &t.spans {
            let e = phases.entry((s.layer, s.name)).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_us;
        }
    }
    println!("phases:");
    for ((layer, name), (count, us)) in &phases {
        println!("  {:<24} x{count:<4} {us} µs", format!("{layer}/{name}"));
    }
    let ok = sum.nodes == stats.nodes_visited
        && sum.leaves == stats.leaves_visited
        && sum.internal == stats.internal_visited
        && sum.cache_hits == stats.leaf_cache_hits
        && sum.cache_misses == stats.leaf_cache_misses
        && sum.device_reads == stats.device_reads;
    if ok {
        println!(
            "cross-check vs QueryStats: exact (nodes={} leaves={} internal={} \
             hits={} misses={} reads={})",
            stats.nodes_visited,
            stats.leaves_visited,
            stats.internal_visited,
            stats.leaf_cache_hits,
            stats.leaf_cache_misses,
            stats.device_reads
        );
        0
    } else {
        eprintln!(
            "error: --explain cross-check FAILED: trace sums nodes={} leaves={} \
             internal={} hits={} misses={} reads={} vs QueryStats nodes={} \
             leaves={} internal={} hits={} misses={} reads={}",
            sum.nodes,
            sum.leaves,
            sum.internal,
            sum.cache_hits,
            sum.cache_misses,
            sum.device_reads,
            stats.nodes_visited,
            stats.leaves_visited,
            stats.internal_visited,
            stats.leaf_cache_hits,
            stats.leaf_cache_misses,
            stats.device_reads
        );
        1
    }
}

/// Tiny flag parser: `--key value` pairs plus positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    flags.push((name.to_string(), None));
                } else if value_flags.contains(&name) {
                    i += 1;
                    let v = args
                        .get(i)
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    flags.push((name.to_string(), Some(v.clone())));
                } else {
                    return Err(format!("unknown option --{name}"));
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("error: {msg}");
    1
}

fn parse_coords<const N: usize>(s: &str, what: &str) -> Result<[f64; N], String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != N {
        return Err(format!("{what} expects {N} comma-separated numbers"));
    }
    let mut out = [0.0; N];
    for (o, p) in out.iter_mut().zip(&parts) {
        *o = p
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("{what}: '{p}' is not a number"))?;
    }
    Ok(out)
}

fn generate(data: &str, n: u32, seed: u64) -> Result<Vec<Item<2>>, String> {
    // The TIGER-like profiles carry their own base seed; `--seed`
    // overrides it so different seeds really do give different roads.
    let tiger = |mut profile: TigerProfile| {
        profile.seed = seed;
        profile.generate(n, profile.regions)
    };
    match data {
        "uniform" => Ok(uniform_points(n, seed)),
        "size" => Ok(size_dataset(n, 0.01, seed)),
        "tiger-east" => Ok(tiger(TigerProfile::eastern())),
        "tiger-west" => Ok(tiger(TigerProfile::western())),
        other => Err(format!(
            "unknown dataset '{other}' (want uniform | size | tiger-east | tiger-west)"
        )),
    }
}

fn parse_loader(name: &str) -> Result<LoaderKind, String> {
    LoaderKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown loader '{name}' (want PR | H | H4 | TGS | STR)"))
}

fn cmd_build(args: &[String]) -> i32 {
    let opts = match Opts::parse(args, &["out", "data", "n", "seed", "loader", "cap"], &[]) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let Some(out) = opts.get("out") else {
        return fail("build requires --out FILE");
    };
    let data = opts.get("data").unwrap_or("uniform");
    let n: u32 = match opts.get("n").unwrap_or("100000").parse() {
        Ok(n) => n,
        Err(_) => return fail("--n expects an integer"),
    };
    let seed: u64 = match opts.get("seed").unwrap_or("42").parse() {
        Ok(s) => s,
        Err(_) => return fail("--seed expects an integer"),
    };
    let kind = match parse_loader(opts.get("loader").unwrap_or("PR")) {
        Ok(k) => k,
        Err(e) => return fail(e),
    };
    let params = match opts.get("cap") {
        None => TreeParams::paper_2d(),
        Some(c) => match c.parse::<usize>() {
            Ok(cap) if cap >= 2 => TreeParams::with_cap::<2>(cap),
            _ => return fail("--cap expects an integer >= 2"),
        },
    };

    let t0 = Instant::now();
    let items = match generate(data, n, seed) {
        Ok(i) => i,
        Err(e) => return fail(e),
    };
    let gen_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = match kind.loader::<2>().load(dev, params, items) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let build_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let path = PathBuf::from(out);
    let mut store = match Store::create::<2>(&path, params) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if let Err(e) = store.save(&tree) {
        return fail(e);
    }
    let save_s = t0.elapsed().as_secs_f64();
    let bytes = store.file_len().unwrap_or(0);

    println!(
        "built {} ({data}, n={n}, seed={seed}) in {build_s:.2}s (+{gen_s:.2}s data gen)",
        kind.name()
    );
    println!(
        "committed epoch {} to {}: {} pages of {} bytes ({bytes} bytes on disk) in {save_s:.2}s",
        store.superblock().epoch,
        path.display(),
        store.superblock().num_pages,
        store.block_size(),
    );
    println!(
        "tree: {} items, height {}, root level {}",
        tree.len(),
        tree.height(),
        tree.root_level()
    );
    0
}

/// Opens a store file and reopens its tree, attaching a shared leaf
/// cache of `leaf_cache_bytes` when nonzero. Returns the store too so
/// callers can report verify-once / scrub state.
fn open_2d(path: &str, leaf_cache_bytes: usize, paranoid: bool) -> Result<(Store, RTree<2>), i32> {
    let read_path = if paranoid {
        ReadPath::Recheck
    } else {
        ReadPath::ZeroCopy
    };
    let store = Store::open(Path::new(path)).map_err(fail)?;
    let mut tree = store.tree_with::<2>(read_path).map_err(fail)?;
    if leaf_cache_bytes > 0 {
        let cache = Arc::new(LeafCache::new(leaf_cache_bytes));
        let epoch = cache.register_epoch();
        tree.attach_leaf_cache(cache, epoch);
    }
    Ok((store, tree))
}

fn parse_leaf_cache_bytes(opts: &Opts, default: usize) -> Result<usize, String> {
    match opts.get("leaf-cache-bytes") {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| "--leaf-cache-bytes expects a byte count (0 disables)".to_string()),
    }
}

fn parse_durability(s: &str) -> Result<Durability, String> {
    match s {
        "fsync" => Ok(Durability::Fsync),
        "async" => Ok(Durability::Async {
            max_inflight_bytes: 8 << 20,
        }),
        other => other
            .strip_prefix("async:")
            .and_then(|b| b.parse::<usize>().ok())
            .filter(|&b| b >= 1)
            .map(|b| Durability::Async {
                max_inflight_bytes: b,
            })
            .ok_or_else(|| {
                format!("--durability expects fsync | async | async:BYTES, got '{other}'")
            }),
    }
}

fn live_opts(opts: &Opts) -> Result<LiveOptions, String> {
    let mut lo = LiveOptions::default();
    if let Some(cap) = opts.get("buffer-cap") {
        lo.buffer_cap = cap
            .parse::<usize>()
            .ok()
            .filter(|&c| c >= 1)
            .ok_or("--buffer-cap expects an integer >= 1")?;
    }
    if opts.has("inline-merge") {
        lo.background_merge = false;
    }
    if let Some(d) = opts.get("durability") {
        lo.durability = parse_durability(d)?;
    }
    if opts.has("paranoid") {
        lo.recheck_reads = true;
    }
    if let Some(v) = opts.get("trace-sample") {
        lo.trace_sample_every = v
            .parse::<u64>()
            .map_err(|_| "--trace-sample expects an integer (0 disables)")?;
    }
    if let Some(v) = opts.get("trace-slow-us") {
        lo.trace_slow_us = v
            .parse::<u64>()
            .map_err(|_| "--trace-slow-us expects microseconds")?;
    }
    lo.leaf_cache_bytes = parse_leaf_cache_bytes(opts, lo.leaf_cache_bytes)?;
    Ok(lo)
}

fn open_live(path: &str, lo: LiveOptions) -> Result<LiveIndex<2>, i32> {
    LiveIndex::<2>::open(Path::new(path), lo).map_err(fail)
}

fn print_live_stats(ix: &LiveIndex<2>, verify: bool) -> i32 {
    let s = match ix.stats() {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    println!("live index:   {}", ix.dir().display());
    println!(
        "items:        {} live ({} memtable, {} sealed, {} tombstones)",
        s.live, s.memtable, s.sealed, s.tombstones
    );
    print!("components:   {} [", s.components.len());
    for (i, (slot, len)) in s.components.iter().enumerate() {
        if i > 0 {
            print!(", ");
        }
        print!("slot {slot}: {len}");
    }
    println!("]");
    println!(
        "wal:          seq {} acked / {} synced / {} merged; {} segment(s), {} bytes",
        s.durable_seq, s.synced_seq, s.merged_seq, s.wal_segments, s.wal_bytes
    );
    println!(
        "group commit: {} records in {} groups, {} fsyncs",
        s.wal_group_records, s.wal_groups, s.wal_fsyncs
    );
    println!(
        "store:        epoch {}, {} bytes on disk ({} garbage); {} merges this session",
        s.store_epoch, s.store_file_bytes, s.store_garbage_bytes, s.merges
    );
    println!(
        "merge I/O:    {} pages written, {} reused in place; write amp {}.{:02}x",
        s.store_pages_written,
        s.store_pages_reused,
        s.write_amp_x100 / 100,
        s.write_amp_x100 % 100
    );
    print!("runs:         {} [", s.store_runs.len());
    for (i, r) in s.store_runs.iter().enumerate() {
        if i > 0 {
            print!(", ");
        }
        print!("id {} @ {} x{}", r.id, r.data_offset, r.num_pages);
    }
    println!("]");
    println!(
        "leaf cache:   {} hits, {} misses ({} ghost admits), {} bytes resident",
        s.leaf_cache_hits, s.leaf_cache_misses, s.leaf_cache_ghost_hits, s.leaf_cache_bytes
    );
    println!("wal arena:    {} buffer allocations", s.wal_arena_allocs);
    println!(
        "health:       wal {}, merges {}, store reads {}",
        if s.wal_degraded {
            "DEGRADED (transient group failure; next clean group recovers)"
        } else {
            "ok"
        },
        if s.merges_paused {
            "PAUSED (transient failure; retrying with backoff)"
        } else {
            "ok"
        },
        if s.store_degraded {
            "RECHECK (corruption seen; every read re-verified)"
        } else {
            "ok"
        },
    );
    if verify {
        // Same bit-rot scrub the store-file path runs: every snapshot
        // page re-hashed. A corrupt page is a nonzero exit either way.
        let t0 = Instant::now();
        match ix.scrub() {
            Ok(report) => println!(
                "checksums:    all {} pages scrubbed in {:.1} ms \
                 ({} were already verified by earlier reads)",
                report.pages,
                t0.elapsed().as_secs_f64() * 1e3,
                report.already_verified,
            ),
            Err(e) => return fail(e),
        }
    } else {
        println!("checksums:    skipped (--no-verify)");
    }
    0
}

fn cmd_ingest(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "data",
            "n",
            "seed",
            "id-base",
            "batch",
            "buffer-cap",
            "cap",
            "leaf-cache-bytes",
            "durability",
            "writers",
            "metrics-file",
            "trace-file",
            "trace-sample",
            "trace-slow-us",
        ],
        &["inline-merge", "flush"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [dir] = opts.positional.as_slice() else {
        return fail("ingest expects exactly one DIR argument");
    };
    let data = opts.get("data").unwrap_or("uniform");
    let n: u32 = match opts.get("n").unwrap_or("100000").parse() {
        Ok(n) => n,
        Err(_) => return fail("--n expects an integer"),
    };
    let seed: u64 = match opts.get("seed").unwrap_or("42").parse() {
        Ok(s) => s,
        Err(_) => return fail("--seed expects an integer"),
    };
    let id_base: u32 = match opts.get("id-base").unwrap_or("0").parse() {
        Ok(b) => b,
        Err(_) => return fail("--id-base expects an integer"),
    };
    let batch: usize = match opts.get("batch").unwrap_or("1024").parse() {
        Ok(b) if b >= 1 => b,
        _ => return fail("--batch expects an integer >= 1"),
    };
    let writers: usize = match opts.get("writers").unwrap_or("1").parse() {
        Ok(w) if w >= 1 => w,
        _ => return fail("--writers expects an integer >= 1"),
    };
    let params = match opts.get("cap") {
        None => TreeParams::paper_2d(),
        Some(c) => match c.parse::<usize>() {
            Ok(cap) if cap >= 2 => TreeParams::with_cap::<2>(cap),
            _ => return fail("--cap expects an integer >= 2"),
        },
    };
    let mut lo = match live_opts(&opts) {
        Ok(lo) => lo,
        Err(e) => return fail(e),
    };
    // --trace-file wants every operation in the export: trace 1-in-1
    // unless the user chose an explicit sampling rate, and buffer the
    // run's traces in a collector alongside the flight recorder.
    let trace_file = opts.get("trace-file").map(PathBuf::from);
    if trace_file.is_some() {
        if lo.trace_sample_every == 0 {
            lo.trace_sample_every = 1;
        }
        pr_obs::trace::install_collector(4096);
    }

    let mut items = match generate(data, n, seed) {
        Ok(i) => i,
        Err(e) => return fail(e),
    };
    for it in &mut items {
        it.id = match it.id.checked_add(id_base) {
            Some(id) => id,
            None => return fail("--id-base + generated id overflows u32; ids would collide"),
        };
    }

    let ix = match LiveIndex::<2>::open_or_create(Path::new(dir), params, lo) {
        Ok(ix) => ix,
        Err(e) => return fail(e),
    };
    // Periodic metrics flusher: a background thread rewrites FILE
    // (atomic rename) every 500 ms while the ingest runs, then a final
    // flush below captures the finished totals.
    let metrics_file = opts.get("metrics-file").map(PathBuf::from);
    let stop_flusher = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flusher = metrics_file.clone().map(|path| {
        let stop = Arc::clone(&stop_flusher);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if let Err(e) = write_metrics_file(&path) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
        })
    });
    let t0 = Instant::now();
    // With --writers N the items are sharded across N threads whose
    // batches coalesce into shared group-commit fsyncs.
    let shard = items.len().div_ceil(writers).max(1);
    let mut failed: Option<String> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(shard)
            .map(|shard_items| {
                let ix = &ix;
                s.spawn(move || {
                    for chunk in shard_items.chunks(batch) {
                        ix.insert_batch(chunk)?;
                    }
                    Ok::<(), pr_live::LiveError>(())
                })
            })
            .collect();
        for h in handles {
            if let Err(e) = h.join().expect("ingest writer panicked") {
                failed.get_or_insert(e.to_string());
            }
        }
    });
    if let Some(e) = failed {
        return fail(e);
    }
    let acked_s = t0.elapsed().as_secs_f64();
    if let Err(e) = ix.wait_idle() {
        return fail(e);
    }
    if opts.has("flush") {
        if let Err(e) = ix.flush() {
            return fail(e);
        }
    }
    let total_s = t0.elapsed().as_secs_f64();
    stop_flusher.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(h) = flusher {
        h.join().expect("metrics flusher panicked");
    }
    if let Some(path) = &metrics_file {
        match write_metrics_file(path) {
            Ok(()) => println!("wrote metrics to {}", path.display()),
            Err(e) => return fail(format!("could not write {}: {e}", path.display())),
        }
    }
    if let Some(path) = &trace_file {
        let traces = pr_obs::trace::drain_collector();
        match write_trace_file(path, &traces) {
            Ok(()) => println!(
                "wrote {} span trace(s) to {} (Chrome trace-event JSON)",
                traces.len(),
                path.display()
            ),
            Err(e) => return fail(format!("could not write {}: {e}", path.display())),
        }
    }
    println!(
        "ingested {n} items ({data}, seed {seed}, ids {id_base}..{}) with {writers} \
         writer(s) in {acked_s:.2}s acked ({:.0} items/s), {total_s:.2}s to idle",
        id_base as u64 + n as u64,
        n as f64 / acked_s.max(1e-9),
    );
    print_live_stats(&ix, false)
}

fn cmd_delete(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "window",
            "limit",
            "buffer-cap",
            "leaf-cache-bytes",
            "trace-sample",
            "trace-slow-us",
        ],
        &["inline-merge"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [dir] = opts.positional.as_slice() else {
        return fail("delete expects exactly one DIR argument");
    };
    let Some(window) = opts.get("window") else {
        return fail("delete requires --window X1,Y1,X2,Y2");
    };
    let [x1, y1, x2, y2] = match parse_coords::<4>(window, "--window") {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let q = Rect::xyxy(x1.min(x2), y1.min(y2), x1.max(x2), y1.max(y2));
    let limit: usize = match opts.get("limit").map(str::parse) {
        None => usize::MAX,
        Some(Ok(l)) => l,
        Some(Err(_)) => return fail("--limit expects an integer"),
    };
    let lo = match live_opts(&opts) {
        Ok(lo) => lo,
        Err(e) => return fail(e),
    };
    let ix = match open_live(dir, lo) {
        Ok(ix) => ix,
        Err(code) => return code,
    };
    let victims = match ix.window(&q) {
        Ok((hits, _)) => hits,
        Err(e) => return fail(e),
    };
    let t0 = Instant::now();
    let mut deleted = 0u64;
    let take = limit.min(victims.len());
    // Batched deletes: one WAL fsync per chunk instead of per victim.
    for chunk in victims[..take].chunks(1024) {
        match ix.delete_batch(chunk) {
            Ok(n) => deleted += n,
            Err(e) => return fail(e),
        }
    }
    if let Err(e) = ix.wait_idle() {
        return fail(e);
    }
    println!(
        "deleted {deleted} of {} intersecting items in {:.2}s",
        victims.len(),
        t0.elapsed().as_secs_f64()
    );
    print_live_stats(&ix, false)
}

fn cmd_compact(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "buffer-cap",
            "leaf-cache-bytes",
            "max-garbage-pct",
            "trace-sample",
            "trace-slow-us",
        ],
        &["inline-merge"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [dir] = opts.positional.as_slice() else {
        return fail("compact expects exactly one DIR argument");
    };
    let max_garbage_pct = match opts.get("max-garbage-pct").map(str::parse::<u8>) {
        None => None,
        Some(Ok(p)) if p <= 100 => Some(p),
        Some(_) => return fail("--max-garbage-pct expects an integer 0..=100"),
    };
    let lo = match live_opts(&opts) {
        Ok(lo) => lo,
        Err(e) => return fail(e),
    };
    let ix = match open_live(dir, lo) {
        Ok(ix) => ix,
        Err(code) => return code,
    };
    let before = match ix.stats() {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let t0 = Instant::now();
    if let Some(pct) = max_garbage_pct {
        // Conditional reclamation: rewrite only past the garbage
        // threshold, otherwise leave the incremental layout alone.
        match ix.compact_if_garbage(pct) {
            Ok(false) => {
                println!(
                    "skipped: {} garbage bytes of {} on disk is within {pct}%",
                    before.store_garbage_bytes, before.store_file_bytes
                );
                return print_live_stats(&ix, false);
            }
            Ok(true) => {}
            Err(e) => return fail(e),
        }
    } else if let Err(e) = ix.compact() {
        return fail(e);
    }
    let after = match ix.stats() {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    println!(
        "compacted in {:.2}s: {} → {} component(s), {} → {} tombstones, \
         {} → {} store bytes",
        t0.elapsed().as_secs_f64(),
        before.components.len(),
        after.components.len(),
        before.tombstones,
        after.tombstones,
        before.store_file_bytes,
        after.store_file_bytes
    );
    print_live_stats(&ix, false)
}

fn cmd_query_live(dir: &str, opts: &Opts, q: &Rect<2>) -> i32 {
    let lo = match live_opts(opts) {
        Ok(lo) => lo,
        Err(e) => return fail(e),
    };
    let t0 = Instant::now();
    let ix = match open_live(dir, lo) {
        Ok(ix) => ix,
        Err(code) => return code,
    };
    let open_s = t0.elapsed().as_secs_f64();

    let snap = ix.snapshot();
    let mut scratch = QueryScratch::new();
    let mut hits = Vec::new();
    let explain = opts.has("explain");
    if explain {
        // Live queries traverse one tree per component; sample every
        // traversal for this one query, then switch sampling back off so
        // any --repeat hot loop runs untraced.
        pr_obs::trace::install_collector(64);
        pr_obs::trace::set_sampling(1);
    }
    let t0 = Instant::now();
    let stats = match snap.window_into(q, &mut scratch, &mut hits) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let query_s = t0.elapsed().as_secs_f64();
    if explain {
        pr_obs::trace::set_sampling(0);
        let traces = pr_obs::trace::drain_collector();
        let code = print_explain(&traces, "window", &stats);
        if code != 0 {
            return code;
        }
    }

    println!("results: {}", hits.len());
    println!(
        "query I/O: {} leaves visited, {} internal, {} device reads ({:.1} ms) \
         across {} component(s) + memtable",
        stats.leaves_visited,
        stats.internal_visited,
        stats.device_reads,
        query_s * 1e3,
        snap.num_components(),
    );
    println!(
        "open+replay: {:.1} ms; {} items live at seq {}",
        open_s * 1e3,
        snap.len(),
        snap.seq()
    );
    if opts.has("verbose") {
        for item in hits.iter().take(20) {
            println!("  id {} rect {:?}", item.id, item.rect);
        }
        if hits.len() > 20 {
            println!("  ... and {} more", hits.len() - 20);
        }
    }
    if let Some(expect) = opts.get("expect") {
        match expect.parse::<usize>() {
            Ok(want) if want == hits.len() => {}
            Ok(want) => {
                eprintln!("error: expected {want} results, got {}", hits.len());
                return 1;
            }
            Err(_) => return fail("--expect expects an integer"),
        }
    }
    if let Some(repeat) = opts.get("repeat") {
        let reps: usize = match repeat.parse() {
            Ok(r) if r > 0 => r,
            _ => return fail("--repeat expects a positive integer"),
        };
        let t0 = Instant::now();
        let mut total = 0u64;
        for _ in 0..reps {
            match snap.window_into(q, &mut scratch, &mut hits) {
                Ok(_) => total += hits.len() as u64,
                Err(e) => return fail(e),
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "hot loop: {reps} runs in {:.1} ms — {:.1} µs/query, {:.0} queries/s ({} results/run)",
            secs * 1e3,
            secs / reps as f64 * 1e6,
            reps as f64 / secs,
            total / reps as u64,
        );
    }
    0
}

fn cmd_query(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "window",
            "expect",
            "repeat",
            "buffer-cap",
            "leaf-cache-bytes",
            "trace-sample",
            "trace-slow-us",
        ],
        &["verbose", "inline-merge", "paranoid", "explain"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [file] = opts.positional.as_slice() else {
        return fail("query expects exactly one FILE argument");
    };
    let Some(window) = opts.get("window") else {
        return fail("query requires --window X1,Y1,X2,Y2");
    };
    let [x1, y1, x2, y2] = match parse_coords::<4>(window, "--window") {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let q = Rect::xyxy(x1.min(x2), y1.min(y2), x1.max(x2), y1.max(y2));
    if Path::new(file).is_dir() {
        return cmd_query_live(file, &opts, &q);
    }

    let lcb = match parse_leaf_cache_bytes(&opts, pr_tree::DEFAULT_LEAF_CACHE_BYTES) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let t0 = Instant::now();
    let (_store, tree) = match open_2d(file, lcb, opts.has("paranoid")) {
        Ok(t) => t,
        Err(code) => return code,
    };
    if let Err(e) = tree.warm_cache() {
        return fail(e);
    }
    let open_s = t0.elapsed().as_secs_f64();
    let open_reads = tree.device().io_stats().reads;

    let explain = opts.has("explain");
    let mut scratch = pr_tree::QueryScratch::new();
    if explain {
        pr_obs::trace::install_collector(16);
        scratch.trace = pr_obs::SpanCtx::forced("window");
    }
    let mut hits = Vec::new();
    let t0 = Instant::now();
    let stats = match tree.window_into(&q, &mut scratch, &mut hits) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let query_s = t0.elapsed().as_secs_f64();
    if explain {
        let traces = pr_obs::trace::drain_collector();
        let code = print_explain(&traces, "window", &stats);
        if code != 0 {
            return code;
        }
    }

    println!("results: {}", hits.len());
    println!(
        "query I/O: {} leaves visited, {} internal, {} device reads ({:.1} ms)",
        stats.leaves_visited,
        stats.internal_visited,
        stats.device_reads,
        query_s * 1e3
    );
    if let Some((cache, _)) = tree.leaf_cache() {
        println!(
            "leaf cache: {} hits, {} misses this query ({} bytes resident, {} budget)",
            stats.leaf_cache_hits,
            stats.leaf_cache_misses,
            cache.resident_bytes(),
            cache.capacity_bytes()
        );
    }
    println!(
        "open+warm: {open_reads} page reads ({:.1} ms); {} items indexed, height {}",
        open_s * 1e3,
        tree.len(),
        tree.height()
    );
    if opts.has("verbose") {
        for item in hits.iter().take(20) {
            println!("  id {} rect {:?}", item.id, item.rect);
        }
        if hits.len() > 20 {
            println!("  ... and {} more", hits.len() - 20);
        }
    }
    if let Some(expect) = opts.get("expect") {
        match expect.parse::<usize>() {
            Ok(want) if want == hits.len() => {}
            Ok(want) => {
                eprintln!("error: expected {want} results, got {}", hits.len());
                return 1;
            }
            Err(_) => return fail("--expect expects an integer"),
        }
    }
    if let Some(repeat) = opts.get("repeat") {
        let reps: usize = match repeat.parse() {
            Ok(r) if r > 0 => r,
            _ => return fail("--repeat expects a positive integer"),
        };
        // Warm-cache hot loop: one QueryScratch reused across all runs,
        // so after the first iteration the traversal allocates nothing.
        let mut scratch = pr_tree::QueryScratch::new();
        let mut out = Vec::new();
        let t0 = Instant::now();
        let mut total = 0u64;
        for _ in 0..reps {
            match tree.window_into(&q, &mut scratch, &mut out) {
                Ok(_) => total += out.len() as u64,
                Err(e) => return fail(e),
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "hot loop: {reps} runs in {:.1} ms — {:.1} µs/query, {:.0} queries/s ({} results/run)",
            secs * 1e3,
            secs / reps as f64 * 1e6,
            reps as f64 / secs,
            total / reps as u64,
        );
        if let Some((cache, _)) = tree.leaf_cache() {
            let (h, m) = cache.hit_stats();
            println!("leaf cache: {h} hits, {m} misses cumulative");
        }
    }
    0
}

fn cmd_knn(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "point",
            "k",
            "buffer-cap",
            "leaf-cache-bytes",
            "trace-sample",
            "trace-slow-us",
        ],
        &["inline-merge", "paranoid", "explain"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [file] = opts.positional.as_slice() else {
        return fail("knn expects exactly one FILE argument");
    };
    let Some(point) = opts.get("point") else {
        return fail("knn requires --point X,Y");
    };
    let [x, y] = match parse_coords::<2>(point, "--point") {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let k: usize = match opts.get("k").unwrap_or("5").parse() {
        Ok(k) => k,
        Err(_) => return fail("--k expects an integer"),
    };
    if Path::new(file).is_dir() {
        let lo = match live_opts(&opts) {
            Ok(lo) => lo,
            Err(e) => return fail(e),
        };
        let ix = match open_live(file, lo) {
            Ok(ix) => ix,
            Err(code) => return code,
        };
        let snap = ix.snapshot();
        let mut scratch = QueryScratch::new();
        let mut neighbors = Vec::new();
        let explain = opts.has("explain");
        if explain {
            pr_obs::trace::install_collector(64);
            pr_obs::trace::set_sampling(1);
        }
        let t0 = Instant::now();
        let stats =
            match snap.nearest_neighbors_into(&Point::new([x, y]), k, &mut scratch, &mut neighbors)
            {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
        let knn_s = t0.elapsed().as_secs_f64();
        if explain {
            pr_obs::trace::set_sampling(0);
            let traces = pr_obs::trace::drain_collector();
            let code = print_explain(&traces, "knn", &stats);
            if code != 0 {
                return code;
            }
        }
        println!("{} nearest to ({x}, {y}):", neighbors.len());
        for (item, dist) in &neighbors {
            println!("  id {:>8}  dist {dist:.6}  rect {:?}", item.id, item.rect);
        }
        println!(
            "knn I/O: {} leaves visited, {} device reads ({:.1} ms)",
            stats.leaves_visited,
            stats.device_reads,
            knn_s * 1e3
        );
        return 0;
    }
    let lcb = match parse_leaf_cache_bytes(&opts, pr_tree::DEFAULT_LEAF_CACHE_BYTES) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let (_store, tree) = match open_2d(file, lcb, opts.has("paranoid")) {
        Ok(t) => t,
        Err(code) => return code,
    };
    if let Err(e) = tree.warm_cache() {
        return fail(e);
    }
    let explain = opts.has("explain");
    let mut scratch = pr_tree::QueryScratch::new();
    if explain {
        pr_obs::trace::install_collector(16);
        scratch.trace = pr_obs::SpanCtx::forced("knn");
    }
    let mut neighbors = Vec::new();
    let t0 = Instant::now();
    let stats =
        match tree.nearest_neighbors_into(&Point::new([x, y]), k, &mut scratch, &mut neighbors) {
            Ok(s) => s,
            Err(e) => return fail(e),
        };
    let knn_s = t0.elapsed().as_secs_f64();
    if explain {
        let traces = pr_obs::trace::drain_collector();
        let code = print_explain(&traces, "knn", &stats);
        if code != 0 {
            return code;
        }
    }
    println!("{} nearest to ({x}, {y}):", neighbors.len());
    for (item, dist) in &neighbors {
        println!("  id {:>8}  dist {dist:.6}  rect {:?}", item.id, item.rect);
    }
    println!(
        "knn I/O: {} leaves visited, {} device reads ({:.1} ms)",
        stats.leaves_visited,
        stats.device_reads,
        knn_s * 1e3
    );
    0
}

fn cmd_stats(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "buffer-cap",
            "leaf-cache-bytes",
            "trace-sample",
            "trace-slow-us",
        ],
        &["no-verify", "inline-merge", "paranoid", "json"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [file] = opts.positional.as_slice() else {
        return fail("stats expects exactly one FILE argument");
    };
    let json = opts.has("json");
    if Path::new(file).is_dir() {
        let lo = match live_opts(&opts) {
            Ok(lo) => lo,
            Err(e) => return fail(e),
        };
        let ix = match open_live(file, lo) {
            Ok(ix) => ix,
            Err(code) => return code,
        };
        if !json {
            let code = print_live_stats(&ix, !opts.has("no-verify"));
            if code != 0 {
                return code;
            }
            return report_registry(false);
        }
        if !opts.has("no-verify") {
            // JSON mode still scrubs (and still fails loudly on rot) —
            // the report just stays machine-readable.
            if let Err(e) = ix.scrub() {
                return fail(e);
            }
        }
        // The live-index summary and the per-run store layout ride as
        // extra top-level fields: CI diffs `store_runs` across commits
        // to prove byte-identical page reuse (unchanged id + offset).
        let s = match ix.stats() {
            Ok(s) => s,
            Err(e) => return fail(e),
        };
        let mut runs = pr_obs::json::JsonArr::new();
        for r in &s.store_runs {
            let mut o = pr_obs::json::JsonObj::new();
            o.u64("id", r.id)
                .u64("data_offset", r.data_offset)
                .u64("num_pages", r.num_pages);
            runs.push_raw(o.finish());
        }
        let mut live = pr_obs::json::JsonObj::new();
        live.u64("live", s.live)
            .u64("tombstones", s.tombstones)
            .u64("store_epoch", s.store_epoch)
            .u64("store_file_bytes", s.store_file_bytes)
            .u64("store_garbage_bytes", s.store_garbage_bytes)
            .u64("store_pages_written", s.store_pages_written)
            .u64("store_pages_reused", s.store_pages_reused)
            .f64p("write_amp", s.write_amp_x100 as f64 / 100.0, 2)
            .u64("leaf_cache_ghost_hits", s.leaf_cache_ghost_hits)
            .u64("wal_arena_allocs", s.wal_arena_allocs);
        let extra = format!(
            "\"index\":{},\"store_runs\":{}",
            live.finish(),
            runs.finish()
        );
        return report_registry_extra(true, Some(extra));
    }
    let store = match Store::open(Path::new(file)) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let sb = *store.superblock();
    if !json {
        println!("store:        {file}");
        println!("format:       v{} (pr-store)", pr_store::FORMAT_VERSION);
        println!(
            "superblock:   slot {} of 2, epoch {}",
            store.active_slot(),
            sb.epoch
        );
        println!("dimension:    {}", sb.dim);
        println!("block size:   {} bytes", sb.block_size);
        println!(
            "pages:        {} ({} bytes of pages)",
            sb.num_pages,
            sb.num_pages * sb.block_size as u64
        );
        println!(
            "layout:       data @ {}, checksum table @ {}, footer @ {}",
            sb.data_offset, sb.table_offset, sb.footer_offset
        );
        if let Ok(len) = store.file_len() {
            println!("file length:  {len} bytes");
        }
        println!(
            "tree meta:    {} items, root level {}, leaf/node cap {}/{}, page size {}",
            sb.meta.len,
            sb.meta.root_level,
            sb.meta.params.leaf_cap,
            sb.meta.params.node_cap,
            sb.meta.params.page_size
        );
    }
    if !sb.has_snapshot() {
        if !json {
            println!("snapshot:     none committed yet");
        }
        return report_registry(json);
    }

    if opts.has("no-verify") {
        // Metadata-only mode: no page is read, so this works (and stays
        // fast) even when the page region is damaged or huge.
        if !json {
            println!("checksums:    skipped (--no-verify; superblock metadata only)");
        }
        return report_registry(json);
    }
    // Eager scrub: re-hashes every page (its job is catching bit rot
    // even on pages earlier reads already verified) and marks them all
    // in the snapshot's shared verify-once bitmap — so the tree-shape
    // traversal below, which shares that bitmap, re-verifies nothing.
    let t0 = Instant::now();
    match store.scrub() {
        Ok(report) => {
            if !json {
                println!(
                    "checksums:    all {} pages scrubbed in {:.1} ms \
                     ({} were already verified by earlier reads)",
                    report.pages,
                    t0.elapsed().as_secs_f64() * 1e3,
                    report.already_verified,
                );
            }
        }
        Err(e) => return fail(e),
    }

    // The tree walk below goes through the same read path as query/knn,
    // leaf cache included — so --leaf-cache-bytes means the same thing
    // on every stats invocation, file or directory.
    let lcb = match parse_leaf_cache_bytes(&opts, pr_tree::DEFAULT_LEAF_CACHE_BYTES) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let read_path = if opts.has("paranoid") {
        ReadPath::Recheck
    } else {
        ReadPath::ZeroCopy
    };
    let mut tree = match store.tree_with::<2>(read_path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    if lcb > 0 {
        let cache = Arc::new(LeafCache::new(lcb));
        let epoch = cache.register_epoch();
        tree.attach_leaf_cache(cache, epoch);
    }
    match tree.stats() {
        Ok(s) => {
            if !json {
                println!(
                    "tree shape:   {} nodes ({} leaves), utilization {:.1}% (leaves {:.1}%)",
                    s.num_nodes(),
                    s.num_leaves(),
                    s.utilization() * 100.0,
                    s.leaf_utilization() * 100.0
                );
                println!("nodes/level:  {:?} (leaves first)", s.nodes_per_level);
            }
        }
        Err(e) => return fail(e),
    }
    if !json {
        let io = tree.device().io_stats();
        let (verified, total) = store.verified_pages();
        println!(
            "I/O counters: {} reads, {} writes through the store device",
            io.reads, io.writes
        );
        println!(
            "verify-once:  {verified}/{total} pages verified; reads of verified pages skip CRC"
        );
    }
    report_registry(json)
}

fn cmd_events(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "buffer-cap",
            "leaf-cache-bytes",
            "limit",
            "since",
            "trace-sample",
            "trace-slow-us",
        ],
        &["inline-merge", "paranoid", "json"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [file] = opts.positional.as_slice() else {
        return fail("events expects exactly one DIR argument");
    };
    let json = opts.has("json");
    let limit: usize = match opts.get("limit").map(str::parse) {
        None => usize::MAX,
        Some(Ok(l)) => l,
        Some(Err(_)) => return fail("--limit expects an integer"),
    };
    let since: Option<u64> = match opts.get("since").map(str::parse) {
        None => None,
        Some(Ok(s)) => Some(s),
        Some(Err(_)) => return fail("--since expects an event sequence number"),
    };
    // Lifecycle events are emitted by the live engine (WAL replay,
    // merges, seals); a bare store file never produces any, so asking
    // for its history is a usage error, not an empty success.
    if !Path::new(file).is_dir() {
        return fail(format!(
            "'{file}' is a store file; store files have no event history — \
             events requires a live index directory"
        ));
    }
    // Opening the live dir replays its WAL, so the ring always has the
    // recovery story to tell even on a fresh process.
    let lo = match live_opts(&opts) {
        Ok(lo) => lo,
        Err(e) => return fail(e),
    };
    let _ix = match open_live(file, lo) {
        Ok(ix) => ix,
        Err(code) => return code,
    };
    let log = match since {
        // Incremental poll: only events after SEQ, and `dropped` counts
        // how many of the requested events the bounded ring lost.
        Some(seq) => pr_obs::events().snapshot_since(seq),
        None => pr_obs::events().snapshot(),
    };
    let skip = log.events.len().saturating_sub(limit);
    if json {
        let mut arr = pr_obs::json::JsonArr::new();
        for e in &log.events[skip..] {
            arr.push_raw(pr_obs::event_json(e));
        }
        let mut obj = pr_obs::json::JsonObj::new();
        obj.u64("schema_version", pr_obs::SCHEMA_VERSION)
            .raw("events", &arr.finish_pretty())
            .u64("events_dropped", log.dropped);
        println!("{}", obj.finish());
    } else {
        match since {
            Some(seq) => println!(
                "{} lifecycle event(s) after #{seq} ({} lost to the bounded ring):",
                log.events.len(),
                log.dropped
            ),
            None => println!(
                "{} lifecycle event(s) ({} dropped by the bounded ring):",
                log.events.len(),
                log.dropped
            ),
        }
        for e in &log.events[skip..] {
            let dur = e
                .duration_us
                .map(|d| format!("  [{d} µs]"))
                .unwrap_or_default();
            println!("  #{:<4} {:<18} {}{dur}", e.seq, e.kind, e.detail);
        }
    }
    0
}

fn cmd_slow(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "limit",
            "buffer-cap",
            "leaf-cache-bytes",
            "trace-sample",
            "trace-slow-us",
        ],
        &["inline-merge", "paranoid", "json"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [file] = opts.positional.as_slice() else {
        return fail("slow expects exactly one DIR|FILE argument");
    };
    let json = opts.has("json");
    let limit: usize = match opts.get("limit").map(str::parse) {
        None => usize::MAX,
        Some(Ok(l)) if l > 0 => l,
        _ => return fail("--limit expects a positive integer"),
    };
    // Trace every op unless the caller picked their own sampling rate
    // (live_opts applies --trace-sample / --trace-slow-us globally).
    if opts.get("trace-sample").is_none() {
        pr_obs::trace::set_sampling(1);
    }
    if Path::new(file).is_dir() {
        // Opening replays the WAL under tracing; anything slow lands in
        // the flight recorder.
        let lo = match live_opts(&opts) {
            Ok(lo) => lo,
            Err(e) => return fail(e),
        };
        let _ix = match open_live(file, lo) {
            Ok(ix) => ix,
            Err(code) => return code,
        };
    } else {
        // A bare store file has no write pipeline; trace the next best
        // thing — open + full scrub — absorbing the store layer's
        // ambient spans so the trace shows where the time went.
        let mut trace = pr_obs::SpanCtx::forced("scrub");
        let ambient = pr_obs::AmbientScope::begin(true);
        let t0 = Instant::now();
        let store = match Store::open(Path::new(file)) {
            Ok(s) => s,
            Err(e) => return fail(e),
        };
        if store.superblock().has_snapshot() {
            if let Err(e) = store.scrub() {
                return fail(e);
            }
        }
        trace.absorb(ambient.finish());
        trace.span_since(
            "store",
            "scrub",
            t0,
            &format!("epoch={}", store.superblock().epoch),
        );
        trace.finish_publish();
    }
    pr_obs::trace::set_sampling(0);
    let mut groups = pr_obs::recorder().snapshot();
    for (_, traces) in groups.iter_mut() {
        traces.truncate(limit);
    }
    if json {
        println!("{}", pr_obs::slow_traces_json(&groups));
    } else if groups.is_empty() {
        println!("flight recorder: no ops above the slow threshold");
    } else {
        for (kind, traces) in &groups {
            println!("{kind}: {} slowest retained", traces.len());
            for t in traces {
                println!("  {:>9} µs total  {}", t.total_us, t.detail);
                for s in &t.spans {
                    let detail = if s.detail.is_empty() {
                        String::new()
                    } else {
                        format!("  {}", s.detail)
                    };
                    println!("    {:>9} µs  {}/{}{detail}", s.dur_us, s.layer, s.name);
                }
            }
        }
    }
    0
}

fn cmd_trace(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "out",
            "buffer-cap",
            "leaf-cache-bytes",
            "trace-sample",
            "trace-slow-us",
        ],
        &["inline-merge"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let [dir] = opts.positional.as_slice() else {
        return fail("trace expects exactly one DIR argument");
    };
    if !Path::new(dir).is_dir() {
        return fail(format!(
            "'{dir}' is not a live index directory — trace captures the \
             live engine's pipeline (replay + flush)"
        ));
    }
    pr_obs::trace::install_collector(256);
    if opts.get("trace-sample").is_none() {
        pr_obs::trace::set_sampling(1);
    }
    let lo = match live_opts(&opts) {
        Ok(lo) => lo,
        Err(e) => return fail(e),
    };
    let ix = match open_live(dir, lo) {
        Ok(ix) => ix,
        Err(code) => return code,
    };
    // Force the memtable through a merge so the capture covers the full
    // pipeline (seal -> bulk-load -> store commit -> swap), not just
    // WAL replay.
    if let Err(e) = ix.flush() {
        return fail(e);
    }
    pr_obs::trace::set_sampling(0);
    let traces = pr_obs::trace::drain_collector();
    if traces.is_empty() {
        println!("no traces captured (empty WAL, empty memtable)");
        return 0;
    }
    match opts.get("out") {
        Some(path) => {
            let path = Path::new(path);
            if let Err(e) = write_trace_file(path, &traces) {
                return fail(format!("writing {}: {e}", path.display()));
            }
            println!(
                "wrote {} span trace(s) to {} (Chrome trace-event JSON — \
                 load in chrome://tracing or Perfetto)",
                traces.len(),
                path.display()
            );
        }
        None => println!("{}", pr_obs::chrome_trace_json(&traces)),
    }
    0
}

fn cmd_torture(args: &[String]) -> i32 {
    let opts = match Opts::parse(
        args,
        &[
            "seed",
            "batches",
            "batch",
            "writers",
            "durability",
            "stride",
        ],
        &[],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let dir = match opts.positional.as_slice() {
        [] => std::env::temp_dir().join(format!("prtree-torture-{}", std::process::id())),
        [dir] => PathBuf::from(dir),
        _ => return fail("torture expects at most one DIR argument"),
    };
    let mut cfg = pr_live::TortureConfig::small(&dir, Durability::Fsync);
    macro_rules! num_opt {
        ($name:literal, $field:expr) => {
            if let Some(v) = opts.get($name) {
                match v.parse() {
                    Ok(n) => $field = n,
                    Err(_) => return fail(concat!("--", $name, " expects an integer")),
                }
            }
        };
    }
    num_opt!("seed", cfg.seed);
    num_opt!("batches", cfg.batches);
    num_opt!("batch", cfg.batch);
    num_opt!("writers", cfg.writers);
    num_opt!("stride", cfg.stride);
    if let Some(d) = opts.get("durability") {
        cfg.durability = match parse_durability(d) {
            Ok(d) => d,
            Err(e) => return fail(e),
        };
    }
    println!(
        "torture: sweeping every{} failable I/O op of a {}x{} trace \
         ({} writer(s), {:?}) in {}",
        if cfg.stride > 1 {
            format!(" {}th", cfg.stride)
        } else {
            String::new()
        },
        cfg.batches,
        cfg.batch,
        cfg.writers,
        cfg.durability,
        dir.display()
    );
    let t0 = Instant::now();
    let report = if cfg.writers > 1 {
        pr_live::run_torture_multi(&cfg)
    } else {
        pr_live::run_torture(&cfg)
    };
    // The harness panics (aborting with a nonzero exit) on any invariant
    // violation, so reaching a report means the sweep passed.
    match report {
        Ok(r) => {
            println!(
                "torture: PASS — {} runs over {} ops in {:.2}s: {} faults injected \
                 ({} silent), {} transient failures, {} fatal; every run recovered \
                 exactly the acknowledged operations",
                r.runs,
                r.total_ops,
                t0.elapsed().as_secs_f64(),
                r.injected,
                r.silent,
                r.transient_failures,
                r.fatal_failures
            );
            std::fs::remove_dir_all(&dir).ok();
            0
        }
        Err(e) => fail(format!("torture harness could not run: {e}")),
    }
}
