//! # prtree — a reproduction of the Priority R-tree
//!
//! Umbrella crate re-exporting the workspace: a complete, tested
//! implementation of *"The Priority R-Tree: A Practically Efficient and
//! Worst-Case Optimal R-Tree"* (Arge, de Berg, Haverkort, Yi; SIGMOD
//! 2004) plus everything the paper compares against and measures with.
//!
//! * [`geom`] — rectangles, points, the corner mapping (crate `pr-geom`).
//! * [`em`] — external-memory substrate: block devices, I/O accounting,
//!   streams, external sort, buffer pool (crate `pr-em`).
//! * [`hilbert`] — d-dimensional Hilbert curves (crate `pr-hilbert`).
//! * [`tree`] — the PR-tree, pseudo-PR-trees, the H/H4/TGS/STR baselines,
//!   Guttman updates and the LPR-tree (crate `pr-tree`).
//! * [`data`] — the paper's dataset and query generators (crate `pr-data`).
//! * [`store`] — the durable on-disk index format with crash-safe commit
//!   and checksummed pages (crate `pr-store`); the `prtree` binary in
//!   `src/bin/` is its command-line face.
//! * [`live`] — durable, reader-concurrent LPR-tree ingest: WAL +
//!   memtable + background geometric merges over pr-store snapshots
//!   (crate `pr-live`).
//!
//! ## Quick start
//!
//! ```
//! use prtree::prelude::*;
//! use std::sync::Arc;
//!
//! // A million tiny rectangles would work the same; keep the doctest fast.
//! let items: Vec<Item<2>> = (0..10_000)
//!     .map(|i| {
//!         let x = (i % 100) as f64;
//!         let y = (i / 100) as f64;
//!         Item::new(Rect::xyxy(x, y, x + 0.8, y + 0.8), i)
//!     })
//!     .collect();
//!
//! // Bulk-load a PR-tree with the paper's parameters (4KB pages, B=113).
//! let dev = Arc::new(MemDevice::default_size());
//! let tree = PrTreeLoader::default()
//!     .load(dev, TreeParams::paper_2d(), items)
//!     .unwrap();
//!
//! // Worst-case-optimal window queries.
//! let (hits, stats) = tree
//!     .window_with_stats(&Rect::xyxy(10.0, 10.0, 30.0, 30.0))
//!     .unwrap();
//! assert!(!hits.is_empty());
//! assert!(stats.leaves_visited > 0);
//! ```

pub use pr_data as data;
pub use pr_em as em;
pub use pr_geom as geom;
pub use pr_hilbert as hilbert;
pub use pr_live as live;
pub use pr_store as store;
pub use pr_tree as tree;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use pr_em::{BlockDevice, FileDevice, IoStats, MemDevice, Stream};
    pub use pr_geom::{Item, Point, Rect};
    pub use pr_store::{Store, StoreError};
    pub use pr_tree::bulk::external::ExternalConfig;
    pub use pr_tree::bulk::hilbert::HilbertLoader;
    pub use pr_tree::bulk::pr::PrTreeLoader;
    pub use pr_tree::bulk::pr_external::PrExternalLoader;
    pub use pr_tree::bulk::pr_parallel::ParallelPrLoader;
    pub use pr_tree::bulk::str_::StrLoader;
    pub use pr_tree::bulk::tgs::TgsLoader;
    pub use pr_tree::bulk::{BulkLoader, LoaderKind};
    pub use pr_tree::dynamic::{LprTree, SplitPolicy};
    pub use pr_tree::pseudo::PseudoPrTree;
    pub use pr_tree::{
        CachePolicy, QueryScratch, QueryStats, RTree, ReferenceEngine, SoaNode, TreeParams,
    };
}
