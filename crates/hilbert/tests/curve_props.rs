//! Property-based tests for the Hilbert curve.

use pr_hilbert::{hilbert_index, hilbert_point, HilbertMapper};
use proptest::prelude::*;

proptest! {
    /// index → point → index is the identity for every dimension/order
    /// combination that fits the u128 index.
    #[test]
    fn point_index_roundtrip(
        dims in 1usize..6,
        order in 1u32..12,
        seed in any::<u64>(),
    ) {
        let mut x = seed;
        let mut coords = vec![0u32; dims];
        for c in coords.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *c = (x as u32) & ((1u32 << order) - 1).max(1);
            if order < 32 {
                *c %= 1 << order;
            }
        }
        let h = hilbert_index(&coords, order);
        prop_assert_eq!(hilbert_point(h, dims, order), coords);
    }

    /// The index is bounded by the grid volume.
    #[test]
    fn index_in_range(dims in 1usize..5, order in 1u32..10, seed in any::<u64>()) {
        let mut x = seed;
        let coords: Vec<u32> = (0..dims)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) as u32) % (1 << order)
            })
            .collect();
        let h = hilbert_index(&coords, order);
        prop_assert!(h < (1u128 << (dims as u32 * order)));
    }

    /// Consecutive curve positions are grid neighbors (continuity) in 2-D.
    #[test]
    fn continuity_2d(order in 2u32..8, pos in any::<u64>()) {
        let total = 1u128 << (2 * order);
        let h = (pos as u128) % (total - 1);
        let a = hilbert_point(h, 2, order);
        let b = hilbert_point(h + 1, 2, order);
        let dist = a[0].abs_diff(b[0]) + a[1].abs_diff(b[1]);
        prop_assert_eq!(dist, 1, "jump between h={} and h+1", h);
    }

    /// Distinct grid points get distinct indices (injectivity sample).
    #[test]
    fn injective_on_samples(
        pts in prop::collection::hash_set((0u32..64, 0u32..64, 0u32..64), 2..50)
    ) {
        let mut seen = std::collections::HashSet::new();
        for (a, b, c) in &pts {
            let h = hilbert_index(&[*a, *b, *c], 6);
            prop_assert!(seen.insert(h), "collision at {:?}", (a, b, c));
        }
    }

    /// The uniform mapper preserves coordinate order along each axis and
    /// never exceeds the grid.
    #[test]
    fn mapper_monotone_and_bounded(
        xs in prop::collection::vec(0.0f64..100.0, 2..50),
        order in 4u32..16,
    ) {
        let m = HilbertMapper::new_uniform(&[0.0, 0.0], &[100.0, 50.0], order);
        let max_cell = (1u64 << order) - 1;
        let mut prev: Option<(f64, u32)> = None;
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for x in sorted {
            let q = m.quantize(&[x, 0.0]);
            prop_assert!((q[0] as u64) <= max_cell);
            if let Some((px, pq)) = prev {
                if x >= px {
                    prop_assert!(q[0] >= pq, "quantization not monotone");
                }
            }
            prev = Some((x, q[0]));
        }
    }

    /// Uniform scaling: equal distances in different axes quantize to
    /// (nearly) equal cell distances — the property the per-dimension
    /// mapper lacks and Theorem 3 needs.
    #[test]
    fn uniform_mapper_is_isotropic(d in 0.1f64..10.0) {
        let m = HilbertMapper::new_uniform(&[0.0, 0.0], &[100.0, 10.0], 20);
        let qx0 = m.quantize(&[0.0, 0.0])[0];
        let qx1 = m.quantize(&[d, 0.0])[0];
        let qy0 = m.quantize(&[0.0, 0.0])[1];
        let qy1 = m.quantize(&[0.0, d])[1];
        let dx = qx1 - qx0;
        let dy = qy1 - qy0;
        prop_assert!(dx.abs_diff(dy) <= 1, "dx={dx} dy={dy}");
    }
}
