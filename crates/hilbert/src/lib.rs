//! d-dimensional Hilbert space-filling curve.
//!
//! The paper's two strongest packing baselines both sort by positions on a
//! Hilbert curve:
//!
//! * the **packed Hilbert R-tree** (H) sorts input rectangles by the 2-D
//!   Hilbert value of their *centers* (Kamel & Faloutsos),
//! * the **four-dimensional Hilbert R-tree** (H4) maps each rectangle
//!   `((xmin,ymin),(xmax,ymax))` to the 4-D point
//!   `(xmin, ymin, xmax, ymax)` and sorts by the 4-D Hilbert value.
//!
//! This crate implements the curve for any dimension `n ≥ 1` using John
//! Skilling's transpose algorithm ("Programming the Hilbert curve", AIP
//! 2004): coordinates are `order`-bit integers; [`hilbert_index`] produces
//! the position along the curve as a `u128` (so `n · order ≤ 128`), and
//! [`hilbert_point`] inverts it. [`HilbertMapper`] handles the
//! quantization of floating-point coordinates into the integer grid.

use std::cmp::Ordering;

/// Maximum total bits (`dimensions × order`) representable in the `u128`
/// index.
pub const MAX_TOTAL_BITS: u32 = 128;

/// Converts a point given as transposed Hilbert coordinates back to axes.
///
/// `x` holds one `order`-bit value per dimension, in "transpose" format
/// (see Skilling); after the call it holds ordinary axis coordinates.
fn transpose_to_axes(x: &mut [u32], order: u32) {
    let n = x.len();
    // Gray decode by H ^ (H/2).
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work. q ranges over 2, 4, …, 2^(order−1); written with a
    // bit-position loop so order = 32 cannot overflow `1 << order`.
    for s in 1..order {
        let q = 1u32 << s;
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
    }
}

/// Converts axis coordinates to transposed Hilbert format in place.
fn axes_to_transpose(x: &mut [u32], order: u32) {
    let n = x.len();
    let m = 1u32 << (order - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Packs transposed coordinates into a single `u128` index by bit
/// interleaving (most significant bit plane first).
fn transpose_to_index(x: &[u32], order: u32) -> u128 {
    let n = x.len() as u32;
    debug_assert!(n * order <= MAX_TOTAL_BITS);
    let mut index: u128 = 0;
    for bit in (0..order).rev() {
        for &xi in x {
            index = (index << 1) | (((xi >> bit) & 1) as u128);
        }
    }
    index
}

/// Unpacks a `u128` index into transposed coordinates.
fn index_to_transpose(index: u128, dims: usize, order: u32) -> Vec<u32> {
    let mut x = vec![0u32; dims];
    let total = dims as u32 * order;
    for b in 0..total {
        let bit = (index >> (total - 1 - b)) & 1;
        let dim = (b as usize) % dims;
        let level = order - 1 - (b / dims as u32);
        x[dim] |= (bit as u32) << level;
    }
    x
}

/// Distance along the Hilbert curve of the integer point `coords`, where
/// each coordinate has `order` bits (`0 ≤ c < 2^order`).
///
/// # Panics
/// Panics if `coords` is empty, `order` is 0 or exceeds 32, a coordinate
/// is out of range, or `coords.len() * order > 128`.
pub fn hilbert_index(coords: &[u32], order: u32) -> u128 {
    assert!(!coords.is_empty(), "need at least one dimension");
    assert!((1..=32).contains(&order), "order must be in 1..=32");
    assert!(
        coords.len() as u32 * order <= MAX_TOTAL_BITS,
        "dims * order must be <= 128"
    );
    if order < 32 {
        for &c in coords {
            assert!(
                c < (1u32 << order),
                "coordinate {c} out of range for order {order}"
            );
        }
    }
    let mut x = coords.to_vec();
    axes_to_transpose(&mut x, order);
    transpose_to_index(&x, order)
}

/// Inverse of [`hilbert_index`]: the integer point at curve position
/// `index`.
pub fn hilbert_point(index: u128, dims: usize, order: u32) -> Vec<u32> {
    assert!(dims >= 1, "need at least one dimension");
    assert!((1..=32).contains(&order), "order must be in 1..=32");
    assert!(dims as u32 * order <= MAX_TOTAL_BITS);
    let mut x = index_to_transpose(index, dims, order);
    transpose_to_axes(&mut x, order);
    x
}

/// Quantizes floating-point coordinates into the `2^order` grid over a
/// bounding domain and computes Hilbert indices.
///
/// Both Hilbert R-tree variants need this: dataset coordinates are `f64`
/// in an arbitrary bounding box, the curve lives on an integer grid.
#[derive(Debug, Clone)]
pub struct HilbertMapper {
    lo: Vec<f64>,
    scale: Vec<f64>,
    order: u32,
}

impl HilbertMapper {
    /// Creates a mapper for points in the box `[lo, hi]` (per dimension),
    /// quantized to `order` bits per dimension. Each dimension is scaled
    /// independently to fill the grid ("stretch to square").
    ///
    /// Degenerate dimensions (`lo == hi`) map everything to grid cell 0.
    ///
    /// # Panics
    /// Panics if dimensions mismatch, the domain is inverted, or
    /// `dims * order > 128`.
    pub fn new(lo: &[f64], hi: &[f64], order: u32) -> Self {
        assert_eq!(lo.len(), hi.len(), "domain corners must match");
        assert!(!lo.is_empty());
        assert!((1..=32).contains(&order));
        assert!(lo.len() as u32 * order <= MAX_TOTAL_BITS);
        let max_cell = ((1u64 << order) - 1) as f64;
        let scale = lo
            .iter()
            .zip(hi)
            .map(|(&l, &h)| {
                assert!(l <= h, "inverted domain");
                if h > l {
                    max_cell / (h - l)
                } else {
                    0.0
                }
            })
            .collect();
        HilbertMapper {
            lo: lo.to_vec(),
            scale,
            order,
        }
    }

    /// Creates a mapper with one *uniform* scale across all dimensions:
    /// the grid covers the smallest hypercube anchored at `lo` that
    /// contains `[lo, hi]`. This is how classic Hilbert R-tree
    /// implementations (Kamel–Faloutsos) quantize — geometry is not
    /// distorted, so a flat data slab stays flat on the curve. The
    /// paper's Theorem-3 construction relies on this behaviour.
    pub fn new_uniform(lo: &[f64], hi: &[f64], order: u32) -> Self {
        assert_eq!(lo.len(), hi.len(), "domain corners must match");
        assert!(!lo.is_empty());
        assert!((1..=32).contains(&order));
        assert!(lo.len() as u32 * order <= MAX_TOTAL_BITS);
        let max_cell = ((1u64 << order) - 1) as f64;
        let max_extent = lo
            .iter()
            .zip(hi)
            .map(|(&l, &h)| {
                assert!(l <= h, "inverted domain");
                h - l
            })
            .fold(0.0f64, f64::max);
        let s = if max_extent > 0.0 {
            max_cell / max_extent
        } else {
            0.0
        };
        HilbertMapper {
            lo: lo.to_vec(),
            scale: vec![s; lo.len()],
            order,
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Bits per dimension.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Quantizes one point (clamping to the domain) to grid coordinates.
    pub fn quantize(&self, point: &[f64]) -> Vec<u32> {
        assert_eq!(point.len(), self.lo.len());
        let max_cell = (1u64 << self.order) - 1;
        point
            .iter()
            .zip(self.lo.iter().zip(&self.scale))
            .map(|(&p, (&l, &s))| {
                let cell = ((p - l) * s).round();
                if cell <= 0.0 {
                    0
                } else if cell >= max_cell as f64 {
                    max_cell as u32
                } else {
                    cell as u32
                }
            })
            .collect()
    }

    /// Hilbert index of a floating-point point.
    pub fn index_of(&self, point: &[f64]) -> u128 {
        hilbert_index(&self.quantize(point), self.order)
    }

    /// Compares two points by Hilbert index (convenience for sorts).
    pub fn cmp_points(&self, a: &[f64], b: &[f64]) -> Ordering {
        self.index_of(a).cmp(&self.index_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values for the order-2 2-D Hilbert curve (the classic
    /// 4×4 picture): curve order visiting (x, y) cells.
    #[test]
    fn known_2d_order2_curve() {
        // The canonical order-2 curve (Skilling orientation) starts at
        // (0,0). Verify the curve visits 16 distinct cells, consecutive
        // cells are grid neighbors, and the inverse matches.
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<Vec<u32>> = None;
        for h in 0u128..16 {
            let p = hilbert_point(h, 2, 2);
            assert!(seen.insert(p.clone()), "cell visited twice: {p:?}");
            assert_eq!(hilbert_index(&p, 2), h, "roundtrip at h={h}");
            if let Some(q) = prev {
                let dist = q[0].abs_diff(p[0]) + q[1].abs_diff(p[1]);
                assert_eq!(dist, 1, "curve must move to an adjacent cell");
            }
            prev = Some(p);
        }
    }

    #[test]
    fn known_2d_order1_values() {
        // Order-1, 2-D: the four cells in curve order.
        let pts: Vec<Vec<u32>> = (0u128..4).map(|h| hilbert_point(h, 2, 1)).collect();
        // Must be a permutation of the 4 cells, adjacent steps, and start
        // at the origin cell.
        assert_eq!(pts[0], vec![0, 0]);
        for w in pts.windows(2) {
            let d = w[0][0].abs_diff(w[1][0]) + w[0][1].abs_diff(w[1][1]);
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn one_dimensional_curve_is_identity() {
        for v in [0u32, 1, 5, 255] {
            assert_eq!(hilbert_index(&[v], 8), v as u128);
            assert_eq!(hilbert_point(v as u128, 1, 8), vec![v]);
        }
    }

    #[test]
    fn curve_is_bijective_3d_order2() {
        let mut seen = std::collections::HashSet::new();
        for h in 0u128..512 {
            let p = hilbert_point(h, 3, 3);
            assert!(p.iter().all(|&c| c < 8));
            assert!(seen.insert(p.clone()));
            assert_eq!(hilbert_index(&p, 3), h);
        }
    }

    #[test]
    fn consecutive_indices_are_adjacent_4d() {
        // Hilbert continuity in the H4 configuration (4 dims).
        let order = 3;
        for h in 0u128..(1 << (4 * order)) - 1 {
            let a = hilbert_point(h, 4, order as u32);
            let b = hilbert_point(h + 1, 4, order as u32);
            let dist: u32 = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
            assert_eq!(dist, 1, "discontinuity between h={h} and h+1");
        }
    }

    #[test]
    fn full_order_32_roundtrip() {
        // 4 dims × 32 bits = 128 bits: the H4 production configuration.
        let coords = [u32::MAX, 0, 0xDEAD_BEEF, 0x1234_5678];
        let h = hilbert_index(&coords, 32);
        assert_eq!(hilbert_point(h, 4, 32), coords.to_vec());
    }

    #[test]
    #[should_panic(expected = "dims * order")]
    fn too_many_bits_panics() {
        hilbert_index(&[0; 5], 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coordinate_panics() {
        hilbert_index(&[4, 0], 2);
    }

    #[test]
    fn mapper_quantizes_and_clamps() {
        let m = HilbertMapper::new(&[0.0, 0.0], &[1.0, 1.0], 8);
        assert_eq!(m.quantize(&[0.0, 0.0]), vec![0, 0]);
        assert_eq!(m.quantize(&[1.0, 1.0]), vec![255, 255]);
        assert_eq!(m.quantize(&[-5.0, 2.0]), vec![0, 255], "clamped");
        assert_eq!(m.dims(), 2);
        assert_eq!(m.order(), 8);
    }

    #[test]
    fn mapper_degenerate_dimension() {
        let m = HilbertMapper::new(&[0.0, 3.0], &[1.0, 3.0], 8);
        assert_eq!(m.quantize(&[0.5, 3.0])[1], 0);
    }

    #[test]
    fn mapper_orders_nearby_points_together() {
        // Locality smoke test: points in the same quadrant compare closer
        // on the curve than points in opposite corners, on average.
        let m = HilbertMapper::new(&[0.0, 0.0], &[1.0, 1.0], 16);
        let a = m.index_of(&[0.1, 0.1]);
        let b = m.index_of(&[0.12, 0.11]);
        let c = m.index_of(&[0.9, 0.95]);
        let near = a.abs_diff(b);
        let far = a.abs_diff(c);
        assert!(near < far);
        assert_eq!(m.cmp_points(&[0.1, 0.1], &[0.1, 0.1]), Ordering::Equal);
    }
}
