//! The geometric merge: seal → build → cut → commit → swap → prune.
//!
//! A merge turns the sealed memtable batch plus the occupied low slots
//! into one freshly bulk-loaded PR-tree, then commits the **entire**
//! post-merge component set through `pr-store` in one atomic step
//! (pages, then live manifest, then superblock flip — fsynced in that
//! order) and only then prunes the WAL. The phases and what they hold:
//!
//! 1. **Seal** (`writer` + `core` write, O(1)): quiesce the commit
//!    queue (every assigned seq applied — no new seqs can appear while
//!    `writer` is held), then move the memtable into the immutable
//!    `sealed` slot; a fresh memtable keeps taking writes.
//! 2. **Snapshot inputs** (`core` read, O(components)): clone Arcs of
//!    the input components and the tombstone set.
//! 3. **Build** (no locks — the long part): drain inputs, drop items
//!    dead in the tombstone snapshot (recording what was *consumed*),
//!    bulk-load the union. Readers and writers proceed untouched.
//! 4. **Cut** (`writer`, O(memtable)): quiesce the commit queue again
//!    (drain + fsync — the old segment must be complete and durable
//!    before rotation, which is also what makes `flush()` drain the
//!    async in-flight window), rotate the WAL — every assigned seq ≤
//!    `cut_seq` sits in old segments — and snapshot {memtable,
//!    tombstones − consumed, survivor Arcs} for the manifest. The lock
//!    is released immediately: writers keep appending to the new
//!    segment (seqs past the cut, covered by replay) for the whole
//!    commit.
//! 5. **Commit** (`store` lock only): write the snapshot whose manifest
//!    checkpoints the cut, fsync, flip the superblock; open + warm the
//!    freshly written component. Readers *and writers* run throughout.
//! 6. **Swap + prune** (`writer`, then briefly `core` write): exchange
//!    the component set, clear the sealed batch, and subtract exactly
//!    the consumed tombstones from the *current* set — deletes recorded
//!    while the commit ran are thereby preserved. Then delete WAL
//!    segments below the rotation.
//!
//! **Incremental commits:** phase 5 rewrites only what changed. Every
//! *surviving* component is committed as an in-place run reference —
//! the store's manifest points at its existing pages under the same
//! stable component id, and the open `RTree` (devices, pinned mmap,
//! verify-once CRC bitmap, leaf-cache epoch) is carried across the
//! swap untouched — while the merged target is the only component
//! whose pages are appended. Bytes written per merge are therefore
//! O(new component); sustained ingest pays the geometric policy's
//! O(levels) amortized write amplification instead of O(index size).
//! Superseded runs are *not* recycled in place: their bytes accrue as
//! garbage ([`pr_store::Store::garbage_bytes`]) until an explicit
//! [`crate::LiveIndex::compact`] /
//! [`crate::LiveIndex::compact_if_garbage`] — which keep full-rewrite
//! semantics (fresh file, atomic rename) — reclaims them.
//!
//! Crash anywhere before the superblock flip → the old manifest + old
//! segments replay everything acknowledged. Crash after the flip →
//! the new manifest's `cut_seq` filters the not-yet-pruned old segments.

use crate::error::LiveError;
use crate::index::{Core, CrashPoint, LiveInner, SlotIdentity};
use crate::manifest::LiveManifest;
use pr_em::{fsync_dir, BlockDevice, MemDevice};
use pr_geom::Item;
use pr_store::{CommitComponent, Store};
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::dynamic::Tombstones;
use pr_tree::RTree;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// What kind of merge to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MergeKind {
    /// The memtable reached its cap: seal (if at cap) and merge into the
    /// geometric target slot.
    Overflow,
    /// Seal whatever the memtable holds (any size) and merge it — the
    /// explicit `flush()` path. Commits a pure checkpoint (no component
    /// changes) when only tombstones/memtable are ahead of the manifest,
    /// so `flush()` always leaves the WAL prunable.
    Force,
    /// Merge *everything* (sealed + all components) into one tree,
    /// absorbing every tombstone. `reclaim` additionally rewrites the
    /// store into a fresh file (atomic rename) to return the space of
    /// superseded snapshots.
    Full { reclaim: bool },
}

pub(crate) fn run_merge<const D: usize>(
    inner: &LiveInner<D>,
    kind: MergeKind,
) -> Result<(), LiveError> {
    let _serialize = inner.maintenance.lock();
    let merge_start = std::time::Instant::now();
    let reclaim = matches!(kind, MergeKind::Full { reclaim: true });
    // Background-op trace (sampled): one span per merge phase, plus the
    // store layer's ambient commit spans absorbed in phase 5.
    let mut trace = pr_obs::SpanCtx::off();
    trace.arm_sampled(if reclaim { "compaction" } else { "merge" });
    let tracing = trace.is_active();
    pr_obs::events().emit("merge_start", format!("kind={kind:?}"));

    // Phase 1: seal the memtable (if this merge wants it). Quiesce
    // first: with the sequencing lock held no new seqs can be assigned,
    // and waiting for every assigned op to be applied ensures the
    // memtable is complete before it freezes (an enqueued DeleteMem
    // must find its resident; an enqueued insert must not miss the
    // seal and then double-apply after it).
    {
        let t_seal = tracing.then(std::time::Instant::now);
        let mut sealed_items = 0usize;
        let w = inner.writer.lock();
        inner.group.wait_applied(w.next_seq.saturating_sub(1))?;
        let mut core = inner.core.write();
        if core.sealed.is_none() {
            let should = match kind {
                MergeKind::Overflow => core.memtable.len() >= inner.policy.buffer_cap(),
                MergeKind::Force | MergeKind::Full { .. } => !core.memtable.is_empty(),
            };
            if should {
                let batch = core.memtable.drain();
                sealed_items = batch.len();
                let m = crate::obs::metrics();
                m.memtable_seals.inc();
                m.memtable_items.set(0);
                pr_obs::events().emit("memtable_seal", format!("items={}", batch.len()));
                core.sealed = Some(Arc::new(batch));
                // "Stored" now covers the batch: off-lock delete probes
                // pinned before this seal are stale.
                core.structure_epoch += 1;
            }
        }
        drop(core);
        drop(w);
        if sealed_items > 0 {
            // Write-amp denominator: bytes of user data leaving the
            // memtable for durable storage.
            inner.ingest_bytes.fetch_add(
                sealed_items as u64 * Item::<D>::ENCODED_SIZE as u64,
                Ordering::Relaxed,
            );
        }
        if let Some(t0) = t_seal {
            trace.span_since("live", "seal", t0, &format!("items={sealed_items}"));
        }
    }

    // Phase 2: snapshot the inputs. `planned_target` is the geometric
    // slot an Overflow/Force merge aims for; a Full merge decides after
    // filtering.
    let (sealed, inputs, input_slots, planned_target) = {
        let core = inner.core.read();
        let sealed = core.sealed.clone();
        match (kind, sealed) {
            (MergeKind::Overflow | MergeKind::Force, Some(sealed)) => {
                let sizes: Vec<u64> = core
                    .components
                    .iter()
                    .map(|c| c.as_ref().map_or(0, |t| t.len()))
                    .collect();
                let target = inner.policy.merge_target(&sizes, sealed.len() as u64);
                // Every occupied slot 0..=target is an input.
                let (inputs, input_slots) = collect_inputs(&core, target + 1);
                (Some(sealed), inputs, input_slots, Some(target))
            }
            (MergeKind::Overflow | MergeKind::Force, None) => {
                // No batch to merge. An Overflow request is simply done;
                // a Force (flush) must still checkpoint any acknowledged
                // ops the manifest doesn't cover — tombstone-only
                // deletes leave the memtable empty but the WAL
                // non-prunable.
                if matches!(kind, MergeKind::Overflow) || core.merged_seq == core.durable_seq {
                    return Ok(());
                }
                (None, Vec::new(), Vec::new(), None)
            }
            (MergeKind::Full { .. }, sealed) => {
                let (inputs, input_slots) = collect_inputs(&core, usize::MAX);
                if sealed.is_none()
                    && inputs.is_empty()
                    && !reclaim
                    && core.merged_seq == core.durable_seq
                {
                    return Ok(()); // nothing to compact or checkpoint
                }
                (sealed, inputs, input_slots, None)
            }
        }
    };
    let t_snap = Arc::clone(&inner.core.read().tombstones);

    // Phase 3: build the merged component off-lock. Items dead in the
    // tombstone snapshot are dropped and recorded as consumed.
    let mut consumed = Tombstones::<D>::new();
    let mut items: Vec<Item<D>> = Vec::new();
    {
        let mut filter = t_snap.filter();
        if let Some(sealed) = &sealed {
            for it in sealed.iter() {
                if filter.admit(it) {
                    items.push(*it);
                } else {
                    consumed.add(it);
                }
            }
        }
        for (c, slot) in inputs.iter().zip(&input_slots) {
            let t_read = tracing.then(std::time::Instant::now);
            for it in c.items()? {
                if filter.admit(&it) {
                    items.push(it);
                } else {
                    consumed.add(&it);
                }
            }
            if let Some(t0) = t_read {
                trace.span_since(
                    "em",
                    "component_read",
                    t0,
                    &format!("slot={slot} items={}", c.len()),
                );
            }
        }
    }
    // Where the merged tree lands; `None` when the merge produced no
    // items (a pure checkpoint or an all-dead merge).
    let target: Option<usize> = if items.is_empty() {
        None
    } else {
        Some(planned_target.unwrap_or_else(|| inner.policy.placement_slot(items.len() as u64)))
    };
    let new_tree: Option<RTree<D>> = if items.is_empty() {
        None
    } else {
        let n_items = items.len();
        let t_build = tracing.then(std::time::Instant::now);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(inner.params.page_size));
        let tree = PrTreeLoader::default().load(dev, inner.params, items)?;
        if let Some(t0) = t_build {
            trace.span_since("tree", "bulk_load", t0, &format!("items={n_items}"));
        }
        Some(tree)
    };

    // Phase 4: the cut. Brief writer lock: quiesce the commit pipeline
    // — every assigned seq written + applied, then the old segment
    // fsynced (recovery treats damage in a non-newest segment as
    // corruption, not a torn tail, so rotation must only ever leave
    // complete, durable segments behind; this is also what drains the
    // async in-flight window on flush) — rotate, and snapshot the
    // manifest state; then release so writers run during the commit.
    let t_cut = tracing.then(std::time::Instant::now);
    let (cut_seq, survivors, manifest_tombstones, memtable_snapshot) = {
        let w = inner.writer.lock();
        inner.group.wait_applied(w.next_seq.saturating_sub(1))?;
        inner.group.sync_window()?;
        {
            let mut wal = inner.group.wal.lock().expect("wal mutex");
            wal.rotate()?;
        }
        let cut_seq = w.next_seq - 1;
        let core = inner.core.read();
        let nslots = core.components.len().max(target.map_or(0, |t| t + 1));
        let mut survivors: Vec<Option<(Arc<RTree<D>>, SlotIdentity)>> = vec![None; nslots];
        for (slot, c) in core.components.iter().enumerate() {
            if input_slots.contains(&slot) {
                continue;
            }
            if let Some(t) = c {
                let id = core.slot_ids[slot].expect("occupied slot has an identity");
                survivors[slot] = Some((Arc::clone(t), id));
            }
        }
        if let Some(t) = target {
            debug_assert!(survivors[t].is_none(), "target slot occupied");
        }
        let mut after = (*core.tombstones).clone();
        after.subtract(&consumed);
        (cut_seq, survivors, after, core.memtable.items().to_vec())
    };
    if let Some(t0) = t_cut {
        trace.span_since("live", "cut", t0, &format!("cut_seq={cut_seq}"));
    }
    // The commit plan, in ascending slot order — the one order the
    // manifest's slot list, the store's runs, and `components_with` all
    // share. Survivors become in-place run references under their
    // stable ids; the target slot (if any) is the sole new component.
    let mut slots: Vec<u32> = Vec::new();
    let mut comps: Vec<CommitComponent<'_, D>> = Vec::new();
    for (slot, survivor) in survivors.iter().enumerate() {
        if target == Some(slot) {
            if let Some(t) = &new_tree {
                slots.push(slot as u32);
                comps.push(CommitComponent::New(t));
            }
        } else if let Some((_, id)) = survivor {
            slots.push(slot as u32);
            comps.push(CommitComponent::Reuse(id.component_id));
        }
    }
    let app = LiveManifest {
        wal_seq: cut_seq,
        slots: slots.clone(),
        tombstones: manifest_tombstones,
        memtable: memtable_snapshot,
    }
    .encode();

    // Phase 5: commit, with no writer lock held — inserts and deletes
    // acknowledged during this window carry seqs past the cut and are
    // covered by WAL replay; the next merge picks them up.
    inner.crash_check(CrashPoint::BeforeCommit)?;
    // Collect the store layer's ambient spans (commit, fsync_body,
    // fsync_flip, store_open) for the whole commit window; the scope's
    // Drop clears the thread-local on any error path.
    let t_commit = tracing.then(std::time::Instant::now);
    let ambient = pr_obs::AmbientScope::begin(tracing);
    // What the swap will install, per committed slot: the open tree,
    // its stable store id, and the leaf-cache epoch it lives under.
    let mut installed: Vec<(u32, Arc<RTree<D>>, SlotIdentity)> = Vec::with_capacity(slots.len());
    let (pages_written, pages_reused) = {
        let mut store = inner.store.lock();
        if reclaim {
            // Compaction keeps full-rewrite semantics: every component
            // is copied into a fresh file renamed over the old one, so
            // superseded runs' space is reclaimed; pinned readers keep
            // the unlinked inode alive.
            let refs: Vec<&RTree<D>> = comps
                .iter()
                .zip(&slots)
                .map(|(c, slot)| match c {
                    CommitComponent::New(t) => *t,
                    CommitComponent::Reuse(_) => survivors[*slot as usize]
                        .as_ref()
                        .expect("reused slot has a survivor")
                        .0
                        .as_ref(),
                })
                .collect();
            let tmp = inner.dir.join("index.prt.tmp");
            let mut fresh = Store::create::<D>(&tmp, inner.params)?;
            fresh.save_components(&refs, &app)?;
            drop(fresh);
            std::fs::rename(&tmp, inner.dir.join("index.prt"))?;
            fsync_dir(&inner.dir)?;
            *store = Store::open(&inner.dir.join("index.prt"))?;
            crate::obs::metrics().compactions.inc();
            pr_obs::events().emit(
                "compaction",
                format!("cut_seq={cut_seq} components={}", refs.len()),
            );
            // Everything was rewritten: fresh ids, fresh trees, and a
            // fresh cache epoch *per component* — page ids are
            // run-relative, so a shared epoch would alias cache keys
            // across components.
            let reopened = store.components_with::<D>(inner.read_path())?;
            let runs = store.component_runs();
            let written: u64 = runs.iter().map(|r| r.num_pages).sum();
            for ((slot, mut tree), run) in slots.iter().zip(reopened).zip(runs) {
                let epoch = inner.leaf_cache.as_ref().map(|c| c.register_epoch());
                if let (Some(cache), Some(e)) = (&inner.leaf_cache, epoch) {
                    tree.attach_leaf_cache(Arc::clone(cache), e);
                }
                tree.warm_cache()?;
                installed.push((
                    *slot,
                    Arc::new(tree),
                    SlotIdentity {
                        component_id: run.id,
                        cache_epoch: epoch,
                    },
                ));
            }
            (written, 0)
        } else {
            // Incremental commit: surviving runs stay exactly where
            // they are — pages, checksum tables, and verify-once
            // bitmaps referenced, not copied — and their already-open
            // trees (devices, pinned mmap, warmed caches) carry over
            // untouched. Only the merged target's pages are appended,
            // and only that one component is opened and warmed.
            let outcome = store.commit_components(&comps, &app)?;
            for (i, (slot, comp)) in slots.iter().zip(&comps).enumerate() {
                match comp {
                    CommitComponent::New(_) => {
                        let mut tree = store.component_with::<D>(i, inner.read_path())?;
                        let epoch = inner.leaf_cache.as_ref().map(|c| c.register_epoch());
                        if let (Some(cache), Some(e)) = (&inner.leaf_cache, epoch) {
                            tree.attach_leaf_cache(Arc::clone(cache), e);
                        }
                        tree.warm_cache()?;
                        installed.push((
                            *slot,
                            Arc::new(tree),
                            SlotIdentity {
                                component_id: outcome.component_ids[i],
                                cache_epoch: epoch,
                            },
                        ));
                    }
                    CommitComponent::Reuse(_) => {
                        let (tree, id) = survivors[*slot as usize]
                            .clone()
                            .expect("reused slot has a survivor");
                        installed.push((*slot, tree, id));
                    }
                }
            }
            (outcome.pages_written, outcome.pages_reused)
        }
    };
    inner
        .merge_pages_written
        .fetch_add(pages_written, Ordering::Relaxed);
    inner
        .merge_pages_reused
        .fetch_add(pages_reused, Ordering::Relaxed);
    update_write_amp(inner);
    trace.absorb(ambient.finish());
    if let Some(t0) = t_commit {
        trace.span_since(
            "store",
            "commit_snapshot",
            t0,
            &format!(
                "components={} written={pages_written} reused={pages_reused} reclaim={reclaim}",
                slots.len()
            ),
        );
    }
    inner.crash_check(CrashPoint::AfterCommit)?;

    // Phase 6: swap + prune. The tombstone set is re-derived from the
    // *current* map minus what this merge consumed, so deletes recorded
    // during the commit window survive the swap. (Ops still pending in
    // the commit queue are untouched: their liveness decisions hold
    // across the swap because a merge preserves per-identity stored-copy
    // and tombstone counts.)
    let _w = inner.writer.lock();
    let t_swap = tracing.then(std::time::Instant::now);
    {
        let mut core = inner.core.write();
        let mut components: Vec<Option<Arc<RTree<D>>>> = vec![None; survivors.len()];
        let mut slot_ids: Vec<Option<SlotIdentity>> = vec![None; survivors.len()];
        for (slot, tree, id) in &installed {
            components[*slot as usize] = Some(Arc::clone(tree));
            slot_ids[*slot as usize] = Some(*id);
        }
        core.components = components;
        core.slot_ids = slot_ids;
        core.sealed = None;
        let mut after = (*core.tombstones).clone();
        after.subtract(&consumed);
        core.tombstones = Arc::new(after);
        core.merged_seq = cut_seq;
        core.merges += 1;
        core.structure_epoch += 1;
    }
    // Cache epochs are a *set*: surviving components keep their (older)
    // epochs — and every warmed leaf under them — across the swap; only
    // the merged-away inputs' epochs die. Pinned reader snapshots keep
    // their own component Arcs and simply miss the cache.
    if let Some(cache) = &inner.leaf_cache {
        let live: Vec<u64> = installed
            .iter()
            .filter_map(|(_, _, id)| id.cache_epoch)
            .collect();
        cache.retain_epochs(&live);
    }
    if let Some(t0) = t_swap {
        trace.span_since("live", "swap", t0, "");
    }
    // The manifest at cut_seq is durable; segments at or below the
    // rotation hold nothing newer than cut_seq.
    {
        let t_prune = tracing.then(std::time::Instant::now);
        let mut wal = inner.group.wal.lock().expect("wal mutex");
        wal.prune_old()?;
        drop(wal);
        if let Some(t0) = t_prune {
            trace.span_since("live", "wal_prune", t0, "");
        }
    }
    let elapsed = merge_start.elapsed();
    let m = crate::obs::metrics();
    m.merges.inc();
    m.merge_us.record_duration_us(elapsed);
    pr_obs::events().emit_timed(
        "merge_commit",
        format!(
            "cut_seq={cut_seq} components={} written={pages_written} reused={pages_reused}",
            slots.len()
        ),
        elapsed,
    );
    trace.set_detail(&format!(
        "cut_seq={cut_seq} components={} written={pages_written} reused={pages_reused}",
        slots.len()
    ));
    trace.finish_publish();
    Ok(())
}

/// Publishes the cumulative write-amplification gauge: store bytes
/// written by merge commits per byte sealed out of the memtable,
/// fixed-point ×100.
fn update_write_amp<const D: usize>(inner: &LiveInner<D>) {
    let ingested = inner.ingest_bytes.load(Ordering::Relaxed);
    if ingested == 0 {
        return;
    }
    let written = inner.merge_pages_written.load(Ordering::Relaxed) * inner.params.page_size as u64;
    crate::obs::metrics()
        .write_amp
        .set(written * 100 / ingested);
}

fn collect_inputs<const D: usize>(
    core: &Core<D>,
    up_to: usize,
) -> (Vec<Arc<RTree<D>>>, Vec<usize>) {
    let mut inputs = Vec::new();
    let mut slots = Vec::new();
    for (slot, c) in core.components.iter().enumerate() {
        if slot >= up_to {
            break;
        }
        if let Some(t) = c {
            inputs.push(Arc::clone(t));
            slots.push(slot);
        }
    }
    (inputs, slots)
}
