//! The CRC-guarded, segmented write-ahead log.
//!
//! The WAL is the sole durability story between merges, and since PR 6
//! it is fed through a **group-commit pipeline** rather than one
//! append+fsync per caller. The append path has three roles:
//!
//! * **Enqueue** — a writer, holding only the sequencing lock, assigns
//!   sequence numbers and *encodes* its batch into a frame buffer
//!   ([`encode_records`]), then pushes the buffer onto the commit
//!   queue. No I/O happens under the sequencing lock.
//! * **Lead** — the first waiter to find the queue non-idle drains
//!   *every* queued batch, lands them with one vectored positioned
//!   write ([`Wal::append_encoded`] → `pwritev`), issues **one**
//!   `fsync` for the whole group ([`Wal::sync`]; skipped in async
//!   durability, where a dedicated syncer thread syncs behind a bounded
//!   window), applies the group to the memtable, and publishes the new
//!   durable horizon.
//! * **Follow** — every other waiter sleeps on the commit condvar until
//!   the horizon covers its last sequence number. N concurrent writers
//!   therefore share one fsync instead of paying N.
//!
//! The queue/leader machinery lives in [`crate::commit`]; this module
//! owns the on-disk format, which is **unchanged** from the
//! one-fsync-per-batch era: a group is nothing but the batches' record
//! frames laid back to back, so recovery cannot tell (and need not
//! care) where group boundaries fell.
//!
//! Records live in numbered segment files `wal-NNNNNN.log`; a merge
//! commit *rotates* to a fresh segment first, so after the manifest
//! (which records the merge's WAL cut `wal_seq`) is durable, every
//! record the index still needs lives in segments at or after the
//! rotation and the older segments are deleted whole
//! ([`Wal::prune_old`]). No in-place truncation, no rewriting. Rotation
//! only ever happens after the commit queue is quiesced and the current
//! segment fsynced, preserving the invariant that non-newest segments
//! are complete and durable.
//!
//! ## Wire format
//!
//! ```text
//! segment header (16 bytes)        record
//! 0  8  magic "PRWAL1\0\0"         0  4  payload_len (u32)
//! 8  4  format_version             4  4  crc32 over payload
//! 12 4  reserved                   8  …  payload:
//!                                        seq (u64) | op (u8) | item bytes
//! ```
//!
//! ## Recovery
//!
//! [`Wal::open`] replays every segment in index order. A record whose
//! length or CRC does not check out in the **newest** segment is a torn
//! tail — a write that died with the process before it was fsynced
//! (under `Durability::Fsync` that means it was never acknowledged;
//! under `Durability::Async` it may cover acknowledged records past the
//! synced prefix, which is exactly the contract of that mode) — so the
//! segment is truncated at the last valid boundary and replay stops
//! there. The same damage in an *older* segment cannot be a torn tail
//! (older segments were complete and fsynced before the log rotated
//! past them) and surfaces as [`LiveError::Corrupt`].

use crate::error::LiveError;
use pr_em::{fsync_dir, PositionedFile};
use pr_geom::Item;
use pr_store::crc32;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

/// Segment file magic.
pub const WAL_MAGIC: [u8; 8] = *b"PRWAL1\0\0";
/// WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Size of the fixed segment header.
pub const SEGMENT_HEADER_SIZE: u64 = 16;
/// Size of the per-record frame (length + CRC) before the payload.
pub const RECORD_HEADER_SIZE: usize = 8;

/// A logged mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// The item was inserted.
    Insert,
    /// The (live) item was deleted.
    Delete,
}

impl WalOp {
    fn to_byte(self) -> u8 {
        match self {
            WalOp::Insert => 1,
            WalOp::Delete => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(WalOp::Insert),
            2 => Some(WalOp::Delete),
            _ => None,
        }
    }
}

/// One acknowledged mutation: a monotone sequence number, the operation,
/// and the full item identity (deletes log the item too, so replay can
/// re-derive where the delete landed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalRecord<const D: usize> {
    /// Monotone sequence number (assigned under the writer lock).
    pub seq: u64,
    /// What happened.
    pub op: WalOp,
    /// The item inserted or deleted.
    pub item: Item<D>,
}

impl<const D: usize> WalRecord<D> {
    /// Payload bytes of one record (seq + op + item).
    pub const PAYLOAD_SIZE: usize = 8 + 1 + Item::<D>::ENCODED_SIZE;

    /// Appends this record's frame (length + CRC header, then the
    /// payload) to `buf`. Allocation-free: the payload is encoded
    /// directly into `buf` and the CRC patched over it afterwards, so
    /// encoding into a recycled arena buffer touches the heap only to
    /// grow the buffer's capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let frame = buf.len();
        buf.extend_from_slice(&(Self::PAYLOAD_SIZE as u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // CRC, patched below
        let payload = buf.len();
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.push(self.op.to_byte());
        let item = buf.len();
        buf.resize(item + Item::<D>::ENCODED_SIZE, 0);
        self.item.encode(&mut buf[item..]);
        let crc = crc32(&buf[payload..]);
        buf[frame + 4..frame + 8].copy_from_slice(&crc.to_le_bytes());
    }

    fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != Self::PAYLOAD_SIZE {
            return None;
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
        let op = WalOp::from_byte(payload[8])?;
        let item = Item::<D>::decode(&payload[9..]);
        Some(WalRecord { seq, op, item })
    }
}

/// The append side of the log: the current segment and its write offset.
pub struct Wal {
    dir: PathBuf,
    seg_index: u64,
    file: PositionedFile,
    write_off: u64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, LiveError> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            if let Ok(index) = num.parse::<u64>() {
                segs.push((index, entry.path()));
            }
        }
    }
    segs.sort_by_key(|(i, _)| *i);
    Ok(segs)
}

fn create_segment(dir: &Path, index: u64) -> Result<PositionedFile, LiveError> {
    let path = segment_path(dir, index);
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    let file = PositionedFile::new(file);
    let mut header = [0u8; SEGMENT_HEADER_SIZE as usize];
    header[0..8].copy_from_slice(&WAL_MAGIC);
    header[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    file.write_all_at(&header, 0)?;
    file.sync_all()?;
    fsync_dir(dir)?;
    Ok(file)
}

impl Wal {
    /// Creates the log for a brand-new index: one empty segment.
    pub fn create(dir: &Path) -> Result<Wal, LiveError> {
        let file = create_segment(dir, 1)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            seg_index: 1,
            file,
            write_off: SEGMENT_HEADER_SIZE,
        })
    }

    /// Opens an existing log, replaying every intact record (all
    /// segments, index order) and truncating a torn tail off the newest
    /// segment. Returns the log positioned for appends plus the replayed
    /// records; the caller filters by its manifest's `wal_seq`.
    pub fn open<const D: usize>(dir: &Path) -> Result<(Wal, Vec<WalRecord<D>>), LiveError> {
        let segs = list_segments(dir)?;
        if segs.is_empty() {
            let wal = Wal::create(dir)?;
            return Ok((wal, Vec::new()));
        }
        let mut records = Vec::new();
        let newest = segs.len() - 1;
        let mut wal = None;
        for (pos, (index, path)) in segs.iter().enumerate() {
            let is_newest = pos == newest;
            let file = PositionedFile::new(OpenOptions::new().read(true).write(true).open(path)?);
            let len = file.len()?;
            let mut bytes = vec![0u8; len as usize];
            file.read_exact_or_zero_at(&mut bytes, 0)?;
            let valid_end = scan_segment::<D>(&bytes, &mut records)?;
            if is_newest {
                if valid_end < SEGMENT_HEADER_SIZE {
                    // Even the header is torn (the process died inside
                    // rotation, before the header fsync): no record ever
                    // lived here. Rebuild the segment in place.
                    let file = create_segment(dir, *index)?;
                    wal = Some(Wal {
                        dir: dir.to_path_buf(),
                        seg_index: *index,
                        file,
                        write_off: SEGMENT_HEADER_SIZE,
                    });
                    continue;
                }
                if valid_end < len {
                    // Torn tail: the write died before its fsync
                    // acknowledged, so nothing past valid_end was ever
                    // promised. Chop it.
                    file.set_len(valid_end)?;
                    file.sync_all()?;
                }
                wal = Some(Wal {
                    dir: dir.to_path_buf(),
                    seg_index: *index,
                    file,
                    write_off: valid_end,
                });
            } else if valid_end < len {
                return Err(LiveError::Corrupt(format!(
                    "segment {} is damaged at byte {valid_end} but is not the \
                     newest segment — not a torn tail",
                    path.display()
                )));
            }
        }
        Ok((wal.expect("segs nonempty"), records))
    }

    /// Appends a batch of records and `fsync`s once. When this returns,
    /// every record in the batch is durable — the caller may acknowledge.
    ///
    /// This is the pre-group-commit primitive, kept for standalone users
    /// (the raw-append ceiling benchmark, tests); the live index goes
    /// through [`Wal::append_encoded`] + [`Wal::sync`] via the commit
    /// queue instead.
    pub fn append<const D: usize>(&mut self, records: &[WalRecord<D>]) -> Result<(), LiveError> {
        self.append_buffered(records)?;
        if !records.is_empty() {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends a batch of records **without** syncing: the buffered half
    /// of [`Wal::append`]. Durability comes from a later [`Wal::sync`].
    pub fn append_buffered<const D: usize>(
        &mut self,
        records: &[WalRecord<D>],
    ) -> Result<(), LiveError> {
        if records.is_empty() {
            return Ok(());
        }
        let buf = encode_records(records);
        self.append_encoded(&[&buf])?;
        Ok(())
    }

    /// Appends pre-encoded record frames — one buffer per enqueued batch
    /// — with a single vectored positioned write, and **no** sync. This
    /// is the group leader's step: the whole commit group reaches the
    /// kernel in one crossing; the one shared fsync (or the async
    /// syncer's next pass) follows. Returns the bytes appended.
    pub fn append_encoded(&mut self, bufs: &[&[u8]]) -> Result<u64, LiveError> {
        let total: u64 = bufs.iter().map(|b| b.len() as u64).sum();
        if total == 0 {
            return Ok(0);
        }
        self.file.write_all_vectored_at(bufs, self.write_off)?;
        self.write_off += total;
        Ok(total)
    }

    /// Current append offset in the active segment. Captured by a group
    /// leader *before* its vectored append so a failed group can be
    /// rolled back with [`Wal::rollback_to`].
    pub fn offset(&self) -> u64 {
        self.write_off
    }

    /// Rolls the active segment back to `off`, discarding every byte a
    /// failed (never-acknowledged) group may have landed past it. The
    /// truncation matters: a short/torn group write can leave CRC-valid
    /// record frames on disk, and recovery cannot tell a rolled-back
    /// frame from a real one — without the cut those ghosts would
    /// resurrect on reopen. Uses `set_len`, a *shrinking* truncate that
    /// needs no data-block allocation, so it succeeds even on the full
    /// disk that just failed the append.
    pub fn rollback_to(&mut self, off: u64) -> Result<(), LiveError> {
        self.file.set_len(off)?;
        self.write_off = off;
        Ok(())
    }

    /// Forces every appended byte to disk. The group-commit
    /// acknowledgment point under `Durability::Fsync`; the syncer
    /// thread's heartbeat under `Durability::Async`.
    pub fn sync(&mut self) -> Result<(), LiveError> {
        let start = std::time::Instant::now();
        self.file.sync_all()?;
        crate::obs::metrics()
            .wal_fsync_us
            .record_duration_us(start.elapsed());
        Ok(())
    }

    /// Starts a fresh segment; subsequent appends land there. Called at
    /// the start of a merge commit so the manifest's `wal_seq` cut is
    /// also a clean segment boundary.
    pub fn rotate(&mut self) -> Result<(), LiveError> {
        let next = self.seg_index + 1;
        self.file = create_segment(&self.dir, next)?;
        self.seg_index = next;
        self.write_off = SEGMENT_HEADER_SIZE;
        crate::obs::metrics().wal_rotations.inc();
        pr_obs::events().emit("wal_rotate", format!("segment={next}"));
        Ok(())
    }

    /// Deletes every segment older than the current one. Safe once a
    /// manifest with the rotation's cut sequence is durable: everything
    /// in the old segments is at or below the cut.
    pub fn prune_old(&mut self) -> Result<(), LiveError> {
        let mut pruned = false;
        for (index, path) in list_segments(&self.dir)? {
            if index < self.seg_index {
                std::fs::remove_file(&path)?;
                pruned = true;
            }
        }
        if pruned {
            fsync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// Index of the current (append) segment.
    pub fn current_segment(&self) -> u64 {
        self.seg_index
    }

    /// Number of segment files on disk.
    pub fn num_segments(&self) -> Result<u64, LiveError> {
        Ok(list_segments(&self.dir)?.len() as u64)
    }

    /// Total bytes across all segment files.
    pub fn total_bytes(&self) -> Result<u64, LiveError> {
        let mut total = 0;
        for (_, path) in list_segments(&self.dir)? {
            total += std::fs::metadata(path)?.len();
        }
        Ok(total)
    }
}

/// Encodes `records` into one contiguous buffer of framed records —
/// the enqueue step of group commit, run under the sequencing lock so
/// the only work there is CPU (no I/O). The buffer is byte-identical to
/// what [`Wal::append`] would have written.
pub fn encode_records<const D: usize>(records: &[WalRecord<D>]) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(records.len() * (RECORD_HEADER_SIZE + WalRecord::<D>::PAYLOAD_SIZE));
    encode_records_into(records, &mut buf);
    buf
}

/// [`encode_records`] into a caller-owned buffer (appended, not
/// cleared) — the arena-backed enqueue path's form, which allocates
/// nothing once the buffer's capacity has warmed.
pub fn encode_records_into<const D: usize>(records: &[WalRecord<D>], buf: &mut Vec<u8>) {
    buf.reserve(records.len() * (RECORD_HEADER_SIZE + WalRecord::<D>::PAYLOAD_SIZE));
    for r in records {
        r.encode_into(buf);
    }
}

/// Walks one segment's bytes, pushing intact records. Returns the byte
/// offset of the first invalid (or absent) frame.
fn scan_segment<const D: usize>(
    bytes: &[u8],
    out: &mut Vec<WalRecord<D>>,
) -> Result<u64, LiveError> {
    let hdr = SEGMENT_HEADER_SIZE as usize;
    if bytes.len() < hdr || bytes[0..8] != WAL_MAGIC {
        // Torn segment header (crash during rotation, before the header
        // fsync): no records can exist here.
        return Ok(0);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(LiveError::Corrupt(format!(
            "unsupported WAL segment version {version}"
        )));
    }
    let mut off = hdr;
    loop {
        if off + RECORD_HEADER_SIZE > bytes.len() {
            return Ok(off as u64);
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if len != WalRecord::<D>::PAYLOAD_SIZE || off + RECORD_HEADER_SIZE + len > bytes.len() {
            return Ok(off as u64);
        }
        let payload = &bytes[off + RECORD_HEADER_SIZE..off + RECORD_HEADER_SIZE + len];
        if crc32(payload) != crc {
            return Ok(off as u64);
        }
        match WalRecord::<D>::decode(payload) {
            Some(rec) => out.push(rec),
            None => return Ok(off as u64),
        }
        off += RECORD_HEADER_SIZE + len;
    }
}
