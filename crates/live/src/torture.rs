//! Fail-any-I/O torture sweeps: the executable form of the failure
//! model.
//!
//! The harness runs a deterministic scripted trace (insert batches with
//! interleaved deletes, inline merges at every overflow) against a real
//! [`LiveIndex`] on a real directory, with the process-wide fault hook
//! ([`pr_em::fault`]) armed:
//!
//! 1. **Count.** One clean pass under [`FaultSchedule::count_only`]
//!    numbers every file-realm I/O op the trace performs — reads,
//!    writes, fsyncs, truncates, from WAL appends through store
//!    superblock flips.
//! 2. **Sweep.** For every op index `K` (stride-able), rerun the trace
//!    with "fail exactly op K" programmed — cycling through EIO,
//!    ENOSPC, torn-write-then-EIO, torn-write-then-ENOSPC, and EINTR —
//!    then disarm, close, reopen, and check the recovered contents
//!    against the trace's own ack log.
//!
//! The invariant checked after every run (the **acked-prefix
//! invariant**): the reopened index holds exactly the acknowledged
//! operations applied in order — optionally plus the one in-flight
//! batch whose call returned an error *after* its group had already
//! committed (a fatal merge failure retro-fails the call but not the
//! already-durable write; the harness accepts either boundary, and
//! nothing in between or beyond). No lost ack, no resurrected failure,
//! no wrong answer, no panic.
//!
//! Silent bit flips ([`pr_em::fault::FaultKind::BitFlip`]) are
//! deliberately **not** part of the sweep: a flip inside an
//! already-fsynced WAL frame is indistinguishable from media rot and
//! can void acknowledged writes — no log protocol survives it. That
//! failure class belongs to the store's CRC battery
//! (`crates/store/tests/zero_copy.rs`), which proves detection, not
//! transparency.
//!
//! Callers must NOT hold [`pr_em::fault::exclusive`] — the harness
//! takes it itself (the hook is process-global).

use crate::error::LiveError;
use crate::index::{Durability, LiveIndex, LiveOptions};
use pr_em::fault::{self, Errno, FaultKind, FaultSchedule};
use pr_geom::{Item, Rect};
use pr_tree::TreeParams;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Knobs for one torture sweep.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Seed for item geometry and the schedules' torn-length derivation.
    pub seed: u64,
    /// Insert batches the scripted trace performs (per writer).
    pub batches: usize,
    /// Items per insert batch.
    pub batch: usize,
    /// Concurrent writer threads (1 = the deterministic scripted trace;
    /// >1 switches to the insert-only multi-writer variant).
    pub writers: usize,
    /// Durability mode under test.
    pub durability: Durability,
    /// Sweep every `stride`-th op index (1 = exhaustive).
    pub stride: u64,
    /// Directory the harness works in (each run reuses a subdirectory).
    pub dir: PathBuf,
}

impl TortureConfig {
    /// A small, CI-sized sweep in `dir`.
    pub fn small(dir: &Path, durability: Durability) -> Self {
        TortureConfig {
            seed: 0x5eed_7041,
            batches: 6,
            batch: 10,
            writers: 1,
            durability,
            stride: 1,
            dir: dir.to_path_buf(),
        }
    }
}

/// What a sweep did and found. Every invariant violation panics with
/// context instead of being reported here — a report means the sweep
/// **passed**.
#[derive(Debug, Clone, Default)]
pub struct TortureReport {
    /// File-realm I/O ops the clean trace performs (the sweep range).
    pub total_ops: u64,
    /// Sweep runs executed.
    pub runs: u64,
    /// Runs whose programmed fault actually fired.
    pub injected: u64,
    /// Runs whose fault never fired (possible under `Async`, where
    /// syncer-thread scheduling shifts op indices run to run; such runs
    /// still verify the full no-fault invariant).
    pub silent: u64,
    /// Runs where the trace saw a transient ([`LiveError::is_transient`])
    /// failure.
    pub transient_failures: u64,
    /// Runs where the trace saw a fatal failure.
    pub fatal_failures: u64,
}

/// The fault kinds a sweep cycles through, one per op index.
const KINDS: [FaultKind; 5] = [
    FaultKind::Errno(Errno::Eio),
    FaultKind::Errno(Errno::Enospc),
    FaultKind::TornWrite(Errno::Eio),
    FaultKind::TornWrite(Errno::Enospc),
    FaultKind::Errno(Errno::Eintr),
];

/// Deterministic item `n` of writer `w`: unique id, seed-derived rect.
pub fn torture_item(seed: u64, w: u32, n: u32) -> Item<2> {
    let id = w * 1_000_000 + n;
    let h = splitmix(seed ^ (id as u64));
    let x = (h % 10_000) as f64 / 10.0;
    let y = ((h >> 16) % 10_000) as f64 / 10.0;
    Item::new(Rect::new([x, y], [x + 1.0, y + 1.0]), id)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn params() -> TreeParams {
    TreeParams::with_cap::<2>(8)
}

fn opts(durability: Durability) -> LiveOptions {
    LiveOptions {
        buffer_cap: 16,
        background_merge: false, // inline: merge I/O lands in the sweep
        durability,
        ..LiveOptions::default()
    }
}

/// One scripted step: the ids it adds and the ids it removes.
struct Step {
    insert: Vec<Item<2>>,
    delete: Vec<Item<2>>,
}

/// The deterministic single-writer script: `batches` insert batches,
/// with every second batch (from the third on) first deleting two items
/// of the batch-before-last — exercising tombstones, the compaction
/// trigger, and delete WAL records alongside the insert path.
fn script(cfg: &TortureConfig) -> Vec<Step> {
    let mut steps = Vec::new();
    for b in 0..cfg.batches {
        let mut delete = Vec::new();
        if b >= 2 && b % 2 == 0 {
            let base = ((b - 2) * cfg.batch) as u32;
            delete.push(torture_item(cfg.seed, 0, base));
            delete.push(torture_item(cfg.seed, 0, base + 1));
        }
        let insert = (0..cfg.batch)
            .map(|i| torture_item(cfg.seed, 0, (b * cfg.batch + i) as u32))
            .collect();
        steps.push(Step { insert, delete });
    }
    steps
}

/// Outcome of driving the script against one index: the ack log plus
/// the first failure (the client is fail-stop: it quits at the first
/// error, which keeps the recovery oracle two-valued).
struct TraceOutcome {
    /// Ids live according to acknowledged ops only.
    acked: BTreeSet<u32>,
    /// Ids live if the in-flight (errored) call's ops also landed —
    /// `None` when the trace completed or failed with nothing in
    /// flight.
    with_inflight: Option<BTreeSet<u32>>,
    /// The first error, if any.
    error: Option<LiveError>,
}

fn drive_script(ix: &LiveIndex<2>, steps: &[Step]) -> TraceOutcome {
    let mut acked = BTreeSet::new();
    for step in steps {
        if !step.delete.is_empty() {
            let mut e1 = acked.clone();
            for it in &step.delete {
                e1.remove(&it.id);
            }
            match ix.delete_batch(&step.delete) {
                Ok(_) => acked = e1,
                Err(e) => {
                    return TraceOutcome {
                        acked,
                        with_inflight: Some(e1),
                        error: Some(e),
                    }
                }
            }
        }
        let mut e1 = acked.clone();
        e1.extend(step.insert.iter().map(|it| it.id));
        match ix.insert_batch(&step.insert) {
            Ok(()) => acked = e1,
            Err(e) => {
                return TraceOutcome {
                    acked,
                    with_inflight: Some(e1),
                    error: Some(e),
                }
            }
        }
    }
    TraceOutcome {
        acked,
        with_inflight: None,
        error: None,
    }
}

/// Reopens `dir` with no faults armed and checks the acked-prefix
/// invariant. Panics (with `ctx`) on any violation.
fn verify_recovery(dir: &Path, out: &TraceOutcome, ctx: &str) {
    let ix = LiveIndex::<2>::open(dir, opts(Durability::Fsync))
        .unwrap_or_else(|e| panic!("{ctx}: reopen after fault failed: {e}"));
    let items = ix
        .snapshot()
        .items()
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery scan failed: {e}"));
    let mut got = BTreeSet::new();
    for it in &items {
        assert!(
            got.insert(it.id),
            "{ctx}: id {} recovered twice (duplicate ack or double replay)",
            it.id
        );
    }
    if got == out.acked {
        return;
    }
    if let Some(e1) = &out.with_inflight {
        if &got == e1 {
            // The in-flight call's group had already committed when the
            // call failed (e.g. a fatal merge error after the WAL ack):
            // durable-but-errored is an allowed boundary.
            return;
        }
    }
    let missing: Vec<u32> = out.acked.difference(&got).copied().collect();
    let extra: Vec<u32> = got.difference(&out.acked).copied().collect();
    panic!(
        "{ctx}: acked-prefix invariant violated — {} acked ids lost {:?}, \
         {} unexpected ids present {:?}",
        missing.len(),
        missing,
        extra.len(),
        extra
    );
}

fn fresh_subdir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs the full sweep for `cfg` (single-writer scripted trace) and
/// returns the report. Panics on any invariant violation. See the
/// module docs for the protocol.
pub fn run_torture(cfg: &TortureConfig) -> Result<TortureReport, LiveError> {
    assert_eq!(cfg.writers, 1, "use run_torture_multi for writers > 1");
    let _hook = fault::exclusive();
    let steps = script(cfg);
    let mut report = TortureReport::default();

    // Counting pass: one clean, armed-but-faultless run measures the
    // sweep range and sanity-checks the harness itself.
    {
        let dir = fresh_subdir(&cfg.dir, "count");
        let ix = LiveIndex::<2>::create(&dir, params(), opts(cfg.durability))?;
        let guard = fault::install(FaultSchedule::count_only(cfg.seed));
        let out = drive_script(&ix, &steps);
        report.total_ops = fault::op_count();
        drop(guard);
        drop(ix);
        if let Some(e) = &out.error {
            panic!("count pass failed with no fault armed: {e}");
        }
        verify_recovery(&dir, &out, "count pass");
    }

    // The sweep: fail exactly op K, for every K.
    let stride = cfg.stride.max(1);
    let mut k = 0;
    while k < report.total_ops {
        let kind = KINDS[(report.runs as usize) % KINDS.len()];
        let ctx = format!(
            "sweep k={k}/{} kind={kind:?} durability={:?}",
            report.total_ops, cfg.durability
        );
        let dir = fresh_subdir(&cfg.dir, "run");
        let ix = LiveIndex::<2>::create(&dir, params(), opts(cfg.durability))
            .unwrap_or_else(|e| panic!("{ctx}: clean create failed: {e}"));
        let guard = fault::install(FaultSchedule::fail_op(cfg.seed, k, None, kind));
        let out = drive_script(&ix, &steps);
        let fired = fault::injected_count() > 0;
        drop(guard); // disarm before close: the final drain is clean
        drop(ix);
        report.runs += 1;
        if fired {
            report.injected += 1;
        } else {
            report.silent += 1;
        }
        match &out.error {
            Some(e) if e.is_transient() => report.transient_failures += 1,
            Some(_) => report.fatal_failures += 1,
            None => {}
        }
        verify_recovery(&dir, &out, &ctx);
        k += stride;
    }
    Ok(report)
}

/// The multi-writer variant: `cfg.writers` threads insert disjoint id
/// ranges concurrently (no deletes — interleaving makes a delete oracle
/// ambiguous), the sweep fails one op per run, and recovery must
/// satisfy acked ⊆ recovered ⊆ issued with no duplicates — concurrent
/// group commit may ack batches the fail-stop observer never logged,
/// but must never lose an acked one or invent an id.
pub fn run_torture_multi(cfg: &TortureConfig) -> Result<TortureReport, LiveError> {
    assert!(cfg.writers > 1, "use run_torture for a single writer");
    let _hook = fault::exclusive();
    let mut report = TortureReport::default();

    let issued: BTreeSet<u32> = (0..cfg.writers as u32)
        .flat_map(|w| {
            (0..(cfg.batches * cfg.batch) as u32).map(move |n| torture_item(cfg.seed, w, n).id)
        })
        .collect();

    // Counting pass (op totals vary run-to-run with thread interleaving;
    // this still bounds the sweep range usefully).
    {
        let dir = fresh_subdir(&cfg.dir, "count");
        let ix = LiveIndex::<2>::create(&dir, params(), opts(cfg.durability))?;
        let guard = fault::install(FaultSchedule::count_only(cfg.seed));
        let acked = drive_writers(&ix, cfg);
        report.total_ops = fault::op_count();
        drop(guard);
        drop(ix);
        assert_eq!(acked, issued, "count pass: clean run must ack everything");
        verify_multi(&dir, &acked, &issued, "multi count pass");
    }

    let stride = cfg.stride.max(1);
    let mut k = 0;
    while k < report.total_ops {
        let kind = KINDS[(report.runs as usize) % KINDS.len()];
        let ctx = format!("multi sweep k={k}/{} kind={kind:?}", report.total_ops);
        let dir = fresh_subdir(&cfg.dir, "run");
        let ix = LiveIndex::<2>::create(&dir, params(), opts(cfg.durability))
            .unwrap_or_else(|e| panic!("{ctx}: clean create failed: {e}"));
        let guard = fault::install(FaultSchedule::fail_op(cfg.seed, k, None, kind));
        let acked = drive_writers(&ix, cfg);
        let fired = fault::injected_count() > 0;
        drop(guard);
        drop(ix);
        report.runs += 1;
        if fired {
            report.injected += 1;
        } else {
            report.silent += 1;
        }
        verify_multi(&dir, &acked, &issued, &ctx);
        k += stride;
    }
    Ok(report)
}

/// Spawns the writers, collects the union of their ack logs. Writers
/// are fail-stop: each quits at its first error.
fn drive_writers(ix: &LiveIndex<2>, cfg: &TortureConfig) -> BTreeSet<u32> {
    let acked = std::sync::Mutex::new(BTreeSet::new());
    std::thread::scope(|s| {
        for w in 0..cfg.writers as u32 {
            let acked = &acked;
            s.spawn(move || {
                for b in 0..cfg.batches {
                    let items: Vec<Item<2>> = (0..cfg.batch)
                        .map(|i| torture_item(cfg.seed, w, (b * cfg.batch + i) as u32))
                        .collect();
                    if ix.insert_batch(&items).is_err() {
                        return;
                    }
                    let mut a = acked.lock().expect("ack log");
                    a.extend(items.iter().map(|it| it.id));
                }
            });
        }
    });
    acked.into_inner().expect("ack log")
}

fn verify_multi(dir: &Path, acked: &BTreeSet<u32>, issued: &BTreeSet<u32>, ctx: &str) {
    let ix = LiveIndex::<2>::open(dir, opts(Durability::Fsync))
        .unwrap_or_else(|e| panic!("{ctx}: reopen after fault failed: {e}"));
    let items = ix
        .snapshot()
        .items()
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery scan failed: {e}"));
    let mut got = BTreeSet::new();
    for it in &items {
        assert!(got.insert(it.id), "{ctx}: id {} recovered twice", it.id);
    }
    let lost: Vec<u32> = acked.difference(&got).copied().collect();
    assert!(
        lost.is_empty(),
        "{ctx}: {} acked ids lost: {lost:?}",
        lost.len()
    );
    let invented: Vec<u32> = got.difference(issued).copied().collect();
    assert!(
        invented.is_empty(),
        "{ctx}: {} ids recovered that were never issued: {invented:?}",
        invented.len()
    );
}
