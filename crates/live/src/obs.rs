//! pr-live's catalog of process-wide metrics.
//!
//! The live index keeps its exact per-instance counters on
//! [`crate::commit::GroupCommit`] (several `LiveIndex`es can coexist in
//! one process, and [`crate::LiveStats`] must describe *its* index, not
//! the union) — this catalog is the process-wide mirror, bumped at the
//! same sites, that the registry exporters read. Gauges
//! (`live_inflight_wal_bytes`, `live_memtable_items`) track the most
//! recently updated index; counters and histograms aggregate across all
//! of them.

use std::sync::OnceLock;

/// Handles to pr-live's registry metrics.
pub struct Metrics {
    /// `live_inserts_acked_total` — inserts acknowledged to callers.
    pub inserts_acked: pr_obs::Counter,
    /// `live_deletes_acked_total` — deletes acknowledged (matched a
    /// live item and were logged).
    pub deletes_acked: pr_obs::Counter,
    /// `live_wal_groups_total` — commit groups written (one vectored
    /// append each).
    pub wal_groups: pr_obs::Counter,
    /// `live_wal_records_total` — WAL records landed through groups.
    pub wal_records: pr_obs::Counter,
    /// `live_wal_fsyncs_total` — commit-path fsyncs (group syncs +
    /// async-syncer passes; rotation syncs are not counted, matching
    /// [`crate::LiveStats::wal_fsyncs`]).
    pub wal_fsyncs: pr_obs::Counter,
    /// `live_wal_bytes_total` — frame bytes appended to the WAL.
    pub wal_bytes: pr_obs::Counter,
    /// `live_wal_rotations_total` — WAL segment rotations (merge cuts).
    pub wal_rotations: pr_obs::Counter,
    /// `live_inflight_wal_bytes` — written-but-unsynced window under
    /// async durability (0 in fsync mode).
    pub inflight_wal_bytes: pr_obs::Gauge,
    /// `live_memtable_items` — items currently buffered in the
    /// unsealed memtable.
    pub memtable_items: pr_obs::Gauge,
    /// `live_memtable_seals_total` — memtable → sealed-batch seals.
    pub memtable_seals: pr_obs::Counter,
    /// `live_merges_total` — committed background merges.
    pub merges: pr_obs::Counter,
    /// `live_compactions_total` — merges that rewrote the store file to
    /// reclaim dead snapshot space.
    pub compactions: pr_obs::Counter,
    /// `live_write_amp` — cumulative write amplification, fixed-point
    /// ×100: store bytes written by merge commits per byte sealed out
    /// of the memtable. Incremental commits keep this O(levels) under
    /// sustained ingest; 100 would mean write-once.
    pub write_amp: pr_obs::Gauge,
    /// `live_wal_io_errors_total` — group writes / fsyncs that failed
    /// with an I/O error (transient and fatal alike).
    pub wal_io_errors: pr_obs::Counter,
    /// `live_wal_unpoisons_total` — times the write path recovered from
    /// a transient group failure: the next group landed cleanly and
    /// degraded mode lifted (e.g. ENOSPC, then space was freed).
    pub wal_unpoisons: pr_obs::Counter,
    /// `live_merge_retries_total` — merges that failed transiently and
    /// were re-queued for a backoff retry instead of poisoning writes.
    pub merge_retries: pr_obs::Counter,
    /// `live_merges_paused` — 1 while background merges are backing off
    /// after a transient failure (writers still ingest, bounded by
    /// memtable backpressure), 0 when merging normally.
    pub merges_paused: pr_obs::Gauge,
    /// `live_insert_batch_us` — `insert_batch` latency, enqueue through
    /// group ack.
    pub insert_batch_us: pr_obs::Histogram,
    /// `live_delete_batch_us` — `delete_batch` latency.
    pub delete_batch_us: pr_obs::Histogram,
    /// `live_wal_fsync_us` — WAL fsync latency (every `Wal::sync`,
    /// including rotation syncs).
    pub wal_fsync_us: pr_obs::Histogram,
    /// `live_merge_us` — background merge latency, seal through swap.
    pub merge_us: pr_obs::Histogram,
    /// `live_window_query_us` — snapshot window-query latency.
    pub window_query_us: pr_obs::Histogram,
    /// `live_knn_query_us` — snapshot k-NN query latency.
    pub knn_query_us: pr_obs::Histogram,
}

/// The lazily registered catalog.
pub fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pr_obs::global();
        Metrics {
            inserts_acked: r.counter(
                "live_inserts_acked_total",
                "inserts acknowledged to callers",
            ),
            deletes_acked: r.counter(
                "live_deletes_acked_total",
                "deletes acknowledged (matched a live item)",
            ),
            wal_groups: r.counter("live_wal_groups_total", "commit groups written"),
            wal_records: r.counter(
                "live_wal_records_total",
                "WAL records landed through groups",
            ),
            wal_fsyncs: r.counter(
                "live_wal_fsyncs_total",
                "commit-path fsyncs (group syncs + async-syncer passes)",
            ),
            wal_bytes: r.counter("live_wal_bytes_total", "frame bytes appended to the WAL"),
            wal_rotations: r.counter("live_wal_rotations_total", "WAL segment rotations"),
            inflight_wal_bytes: r.gauge(
                "live_inflight_wal_bytes",
                "written-but-unsynced WAL window (async durability)",
            ),
            memtable_items: r.gauge("live_memtable_items", "items in the unsealed memtable"),
            memtable_seals: r.counter("live_memtable_seals_total", "memtable seals"),
            merges: r.counter("live_merges_total", "committed background merges"),
            compactions: r.counter(
                "live_compactions_total",
                "merges that rewrote the store file to reclaim space",
            ),
            write_amp: r.gauge(
                "live_write_amp",
                "store bytes written by merges per byte ingested, fixed-point x100",
            ),
            wal_io_errors: r.counter(
                "live_wal_io_errors_total",
                "group writes or fsyncs that failed with an I/O error",
            ),
            wal_unpoisons: r.counter(
                "live_wal_unpoisons_total",
                "write-path recoveries from a transient group failure",
            ),
            merge_retries: r.counter(
                "live_merge_retries_total",
                "merges re-queued after a transient failure",
            ),
            merges_paused: r.gauge(
                "live_merges_paused",
                "1 while background merges back off after a transient failure",
            ),
            insert_batch_us: r.histogram(
                "live_insert_batch_us",
                "insert_batch latency in microseconds (enqueue through group ack)",
            ),
            delete_batch_us: r.histogram(
                "live_delete_batch_us",
                "delete_batch latency in microseconds",
            ),
            wal_fsync_us: r.histogram("live_wal_fsync_us", "WAL fsync latency in microseconds"),
            merge_us: r.histogram(
                "live_merge_us",
                "background merge latency in microseconds (seal through swap)",
            ),
            window_query_us: r.histogram(
                "live_window_query_us",
                "snapshot window-query latency in microseconds",
            ),
            knn_query_us: r.histogram(
                "live_knn_query_us",
                "snapshot k-NN query latency in microseconds",
            ),
        }
    })
}
