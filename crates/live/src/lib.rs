//! # pr-live — durable, concurrent LPR-tree ingest
//!
//! The paper's external logarithmic method (`pr_tree::dynamic::LprTree`)
//! makes the PR-tree dynamic; this crate makes it a **service**: writes
//! survive crashes, readers never block, and the geometric merges run in
//! the background.
//!
//! ```text
//!            insert/delete                      window/knn
//!                 │                                  │
//!                 ▼                                  ▼
//!   ┌──── WAL append + fsync ────┐      ┌── LiveSnapshot (pinned) ──┐
//!   │  wal-000007.log  (ack ✓)   │      │ memtable copy             │
//!   └──────────────┬─────────────┘      │ sealed batch   (Arc)      │
//!                  ▼                    │ components     (Arc, SoA  │
//!            memtable ──seal──▶ sealed  │   decode-free engine)     │
//!                  │              │     │ tombstones     (Arc)      │
//!                  │              ▼     └───────────────────────────┘
//!                  │      geometric merge (background)
//!                  │              │  bulk-load PR-tree
//!                  │              ▼
//!                  │   pr-store commit: pages → manifest{wal_seq,
//!                  │   slots, tombstones, memtable} → superblock flip
//!                  │              │
//!                  └──────────────┴──▶ WAL segments ≤ cut pruned
//! ```
//!
//! **Durability contract:** when `insert`/`insert_batch`/`delete`
//! returns, the operation is fsynced in the WAL; reopening after a crash
//! at *any* point recovers exactly the acknowledged prefix (manifest
//! checkpoint + WAL replay past its cut). **Concurrency contract:**
//! readers take [`LiveSnapshot`]s — point-in-time, immutable views
//! served by the PR 3 decode-free engine — and are never blocked by
//! ingest, merges, or compaction. Both contracts are enforced by tests
//! (`tests/live_recovery.rs`, `tests/live_concurrency.rs`).

pub mod error;
pub mod index;
pub mod manifest;
pub mod memtable;
mod merge;
pub mod wal;

pub use error::LiveError;
pub use index::{CrashPoint, LiveIndex, LiveOptions, LiveSnapshot, LiveStats};
pub use manifest::LiveManifest;
pub use memtable::Memtable;
pub use wal::{Wal, WalOp, WalRecord};
