//! # pr-live — durable, concurrent LPR-tree ingest
//!
//! The paper's external logarithmic method (`pr_tree::dynamic::LprTree`)
//! makes the PR-tree dynamic; this crate makes it a **service**: writes
//! survive crashes, readers never block, and the geometric merges run in
//! the background.
//!
//! ```text
//!   writer A   writer B   writer C            window/knn
//!      │          │          │                     │
//!      └──────────┼──────────┘                     ▼
//!                 ▼ enqueue (seq + encode)  ┌── LiveSnapshot (pinned) ──┐
//!   ┌──────── commit queue ────────┐        │ memtable copy             │
//!   │ leader: 1 writev + 1 fsync   │        │ sealed batch   (Arc)      │
//!   │ for the whole group; apply;  │        │ components     (Arc, SoA  │
//!   │ followers wake on condvar    │        │   decode-free engine)     │
//!   └──────────────┬───────────────┘        │ tombstones     (Arc)      │
//!                  ▼                        └───────────────────────────┘
//!            memtable ──seal──▶ sealed
//!                  │              │
//!                  │              ▼
//!                  │      geometric merge (background)
//!                  │              │  bulk-load PR-tree
//!                  │              ▼
//!                  │   pr-store commit: pages → manifest{wal_seq,
//!                  │   slots, tombstones, memtable} → superblock flip
//!                  │              │
//!                  └──────────────┴──▶ WAL segments ≤ cut pruned
//! ```
//!
//! **Durability contract** ([`index::Durability`]): under `Fsync`, when
//! `insert`/`insert_batch`/`delete` returns the operation is fsynced in
//! the WAL (one group fsync shared by every concurrent writer);
//! reopening after a crash at *any* point recovers exactly the
//! acknowledged prefix (manifest checkpoint + WAL replay past its cut).
//! Under `Async { max_inflight_bytes }`, returns happen after the
//! buffered group append — a syncer thread fsyncs behind a bounded
//! window, and crash recovery reaches at least the last *synced* prefix
//! of the acknowledged sequence (and never anything unacknowledged);
//! `flush()`/`sync_wal()` drain the window. **Concurrency contract:**
//! readers take [`LiveSnapshot`]s — point-in-time, immutable views
//! served by the PR 3 decode-free engine — and are never blocked by
//! ingest, merges, or compaction. The contracts are enforced by tests
//! (`tests/live_recovery.rs`, `tests/live_concurrency.rs`,
//! `tests/live_group_commit.rs`).

mod commit;
pub mod error;
pub mod index;
pub mod manifest;
pub mod memtable;
mod merge;
pub mod obs;
pub mod torture;
pub mod wal;

pub use error::LiveError;
pub use index::{
    CrashPoint, Durability, LiveIndex, LiveOptions, LiveSnapshot, LiveStats, StoreRunStat,
};
pub use manifest::LiveManifest;
pub use memtable::Memtable;
pub use torture::{run_torture, run_torture_multi, TortureConfig, TortureReport};
pub use wal::{encode_records, encode_records_into, Wal, WalOp, WalRecord};
