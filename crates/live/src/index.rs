//! [`LiveIndex`]: the durable, reader-concurrent face of the LPR-tree.
//!
//! ## Moving parts
//!
//! * **WAL** ([`crate::wal`]) — every insert/delete is appended and
//!   `fsync`ed before it is acknowledged or becomes visible.
//! * **Memtable** ([`crate::memtable`]) — acknowledged writes accumulate
//!   here; queries scan it alongside the components.
//! * **Components** — bulk-loaded PR-trees in geometric slots
//!   ([`GeometricPolicy`]), persisted in one `pr-store` file and opened
//!   through checksum-verifying, snapshot-pinned devices.
//! * **Merges** ([`crate::merge`]) — a memtable overflow seals it into
//!   an immutable batch and merges batch + lower components into a new
//!   bulk-loaded component, committed atomically (pages + manifest +
//!   superblock flip) before the WAL's old segments are pruned.
//!
//! ## Locking discipline
//!
//! * `writer` (mutex) — the **sequencing** lock: delete-liveness
//!   decisions, sequence assignment, record encoding, and the commit
//!   enqueue happen under it. **No I/O** — since the PR 6 group-commit
//!   rework, the fsync is paid off this lock, by a group leader, once
//!   per group (see [`crate::commit`]).
//! * `core` (rwlock) — the queryable state. Write-locked only for
//!   O(batch) memory ops — never across I/O. Writers push their logical
//!   ops onto `core.pending` under `writer`; the group leader pops and
//!   applies them (in sequence order) after the group's WAL write is
//!   acknowledged, so queries only ever see acknowledged state. Readers
//!   take the read lock just long enough to clone a [`LiveSnapshot`]
//!   (memtable copy + `Arc` bumps), then query entirely off-lock
//!   through the PR 3 decode-free engine.
//! * `commit queue` (std mutex + condvar, [`crate::commit`]) — the
//!   leader/follower handoff and the WAL itself. Never held while
//!   acquiring `writer`; merges quiesce it (drain + sync) before
//!   sealing or rotating.
//! * `maintenance` (mutex) — serializes whole merges end-to-end.
//!
//! Consequence: readers never wait on a merge (its long phases hold no
//! core lock; its swap is a pointer exchange), N concurrent writers
//! share one fsync per group instead of paying one each, and a snapshot
//! taken at any moment is a clean group-boundary cut that stays frozen
//! — pinned store devices keep serving replaced components, even after
//! the store file itself is compact-rewritten.

use crate::commit::{GroupCommit, PendingBatch};
use crate::error::LiveError;
use crate::manifest::LiveManifest;
use crate::memtable::Memtable;
use crate::merge::{run_merge, MergeKind};
use crate::wal::{Wal, WalOp, WalRecord};
use parking_lot::{Mutex, RwLock};
use pr_geom::{Item, Point, Rect};
use pr_store::{ReadPath, Store};
use pr_tree::dynamic::{same_identity, GeometricPolicy, Tombstones};
use pr_tree::{LeafCache, QueryScratch, QueryStats, RTree, TreeParams};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// When a write is acknowledged relative to its fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Acknowledge only after the write's group fsync: a returned
    /// insert/delete survives any crash. The classic semantics, now
    /// group-committed — N concurrent writers share one fsync.
    Fsync,
    /// Acknowledge after the buffered group append; a dedicated syncer
    /// thread fsyncs behind the writers. Crash recovery is guaranteed
    /// to reach the last *synced* prefix of the acknowledged sequence
    /// (and never more than was acknowledged). Writers stall once the
    /// unsynced window exceeds `max_inflight_bytes`, bounding the
    /// at-risk tail; [`LiveIndex::flush`] and [`LiveIndex::sync_wal`]
    /// drain the window.
    Async {
        /// Backpressure bound on WAL bytes written but not yet fsynced.
        max_inflight_bytes: usize,
    },
}

/// Tuning knobs for a [`LiveIndex`].
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// Memtable seal threshold (the logarithmic method's buffer size).
    pub buffer_cap: usize,
    /// Run merges on a dedicated background thread (`true`) or inline on
    /// the overflowing writer (`false`). Readers never block either way;
    /// background mode also keeps *writers* responsive during merges.
    pub background_merge: bool,
    /// Background mode only: writers stall (briefly, on a condvar) once
    /// the memtable exceeds `backpressure_factor * buffer_cap` while a
    /// sealed batch is still being merged, bounding memory.
    pub backpressure_factor: usize,
    /// Byte budget of the shared leaf cache all store-backed components
    /// read through ([`pr_tree::LeafCache`]): transcoded leaf pages are
    /// kept in memory across queries, so repeated window/k-NN traffic
    /// skips the per-leaf device read entirely. `0` disables the cache
    /// (every leaf visit reads the store, verify-once CRC still
    /// applies). One cache spans every component of the index; merges
    /// and compactions retire replaced snapshots' entries wholesale.
    pub leaf_cache_bytes: usize,
    /// When writes are acknowledged relative to their fsync (see
    /// [`Durability`]). Default: [`Durability::Fsync`].
    pub durability: Durability,
    /// Paranoid read mode: open every store-backed component through
    /// [`pr_store::ReadPath::Recheck`], hashing each page on every read
    /// instead of the default verify-once zero-copy path. Catches
    /// in-memory corruption of cached pages at a per-read CRC cost.
    pub recheck_reads: bool,
    /// Span-trace sampling rate: arm a trace on one in every N
    /// operations (queries, write groups, merges, WAL replay — see
    /// `pr_obs::trace`). `0` leaves tracing in its current (default:
    /// disabled) state, where the per-operation cost is one relaxed
    /// atomic load. Applied **process-globally** at open/create.
    pub trace_sample_every: u64,
    /// Flight-recorder admission threshold in microseconds: sampled
    /// traces faster than this are not retained by `pr_obs::recorder()`
    /// (they still reach an installed collector). `0` leaves the
    /// recorder's current threshold untouched.
    pub trace_slow_us: u64,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            buffer_cap: 1024,
            background_merge: true,
            backpressure_factor: 4,
            leaf_cache_bytes: pr_tree::DEFAULT_LEAF_CACHE_BYTES,
            durability: Durability::Fsync,
            recheck_reads: false,
            trace_sample_every: 0,
            trace_slow_us: 0,
        }
    }
}

/// Failure-injection points for crash-recovery tests. `#[doc(hidden)]`:
/// not part of the public API contract.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after the WAL rotation (segments fsynced) but before the
    /// store commit — the manifest flip never happens.
    BeforeCommit = 1,
    /// Die after the store commit (manifest flipped, durable) but before
    /// the in-memory swap and WAL pruning.
    AfterCommit = 2,
}

/// A sequenced, WAL-enqueued logical op awaiting its group's
/// acknowledgment. Decisions (insert vs. memtable-delete vs. tombstone)
/// are final at enqueue time; the group leader replays them verbatim.
pub(crate) enum PendingApply<const D: usize> {
    /// Insert into the memtable.
    Insert(Item<D>),
    /// Remove a memtable resident.
    DeleteMem(Item<D>),
    /// Tombstone a stored (sealed/component) copy.
    DeleteTomb(Item<D>),
}

/// Identity of one committed component slot: the store's stable
/// component id (unchanged across commits that reuse the run in place)
/// and the leaf-cache epoch the slot's tree is attached under (`None`
/// with the cache disabled). Merges use the id to commit surviving
/// slots as in-place run references — no page rewrite — and the epoch
/// to keep those slots' cached leaves alive across the swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotIdentity {
    pub(crate) component_id: u64,
    pub(crate) cache_epoch: Option<u64>,
}

/// The queryable state, swapped atomically under the core write lock.
pub(crate) struct Core<const D: usize> {
    pub(crate) memtable: Memtable<D>,
    /// A sealed (immutable) memtable awaiting its merge.
    pub(crate) sealed: Option<Arc<Vec<Item<D>>>>,
    /// Geometric component slots; every tree is store-backed and warmed.
    pub(crate) components: Vec<Option<Arc<RTree<D>>>>,
    /// Parallel to `components`: each occupied slot's [`SlotIdentity`].
    pub(crate) slot_ids: Vec<Option<SlotIdentity>>,
    /// Dead identities among sealed + components (never the memtable).
    pub(crate) tombstones: Arc<Tombstones<D>>,
    /// Enqueued-but-unacknowledged ops, in sequence order. Invisible to
    /// snapshots and `live`; consulted (under the sequencing lock) by
    /// delete decisions so logical state = applied state + pending.
    pub(crate) pending: VecDeque<PendingApply<D>>,
    /// Bumped whenever sealed/components change shape (a seal or a
    /// merge swap) — the off-lock delete-probe path revalidates its
    /// pinned component snapshot against this.
    pub(crate) structure_epoch: u64,
    /// Live item count.
    pub(crate) live: u64,
    /// Highest acknowledged (group-committed and applied) WAL sequence.
    /// Under `Durability::Async` this can run ahead of the synced
    /// sequence by the in-flight window.
    pub(crate) durable_seq: u64,
    /// The committed manifest's WAL cut.
    pub(crate) merged_seq: u64,
    /// Completed merge commits this process.
    pub(crate) merges: u64,
}

pub(crate) struct WriterState {
    /// Next sequence number to assign.
    pub(crate) next_seq: u64,
}

/// Background-worker signaling.
pub(crate) struct Signal {
    pub(crate) merge: bool,
    pub(crate) full: bool,
    pub(crate) shutdown: bool,
    /// True from the moment the worker claims a request (clearing its
    /// flag) until its merge finishes — without this, `wait_idle` could
    /// observe cleared flags + no sealed batch while the worker is still
    /// between claiming and sealing, and report idle too early.
    pub(crate) busy: bool,
    /// First **fatal** error a background merge hit (surfaced by
    /// flush/wait_idle). Transient failures never land here — they set
    /// `merges_paused` and retry instead.
    pub(crate) error: Option<String>,
    /// Degraded mode: the last background merge failed transiently
    /// (ENOSPC, most likely) and the worker is backing off before
    /// retrying. Writers keep ingesting, bounded only by memtable
    /// backpressure; cleared by the next successful merge.
    pub(crate) merges_paused: bool,
}

pub(crate) struct LiveInner<const D: usize> {
    pub(crate) dir: PathBuf,
    pub(crate) params: TreeParams,
    pub(crate) opts: LiveOptions,
    pub(crate) policy: GeometricPolicy,
    pub(crate) writer: Mutex<WriterState>,
    /// The group-commit pipeline (queue + condvar + the WAL itself).
    pub(crate) group: GroupCommit,
    pub(crate) core: RwLock<Core<D>>,
    pub(crate) store: Mutex<Store>,
    pub(crate) maintenance: Mutex<()>,
    pub(crate) signal: StdMutex<Signal>,
    pub(crate) cv: Condvar,
    /// Shared leaf cache spanning every store-backed component (`None`
    /// when `opts.leaf_cache_bytes == 0`). Each committed snapshot's
    /// components attach under a fresh cache epoch; the merge swap
    /// retires all older epochs.
    pub(crate) leaf_cache: Option<Arc<LeafCache<D>>>,
    /// Cumulative store pages appended by this process's merge commits
    /// — the write-amplification numerator (× `params.page_size`).
    pub(crate) merge_pages_written: AtomicU64,
    /// Cumulative store pages committed by in-place reference instead
    /// of rewritten.
    pub(crate) merge_pages_reused: AtomicU64,
    /// Cumulative bytes of items sealed out of the memtable — the
    /// write-amplification denominator.
    pub(crate) ingest_bytes: AtomicU64,
    /// Failure injection: 0 = none, else a [`CrashPoint`] discriminant,
    /// consumed by the next merge.
    pub(crate) crash_at: AtomicU8,
    /// Held exclusive lock on `dir/LOCK` for this index's lifetime
    /// (released by the OS when the file closes, crash included).
    _lock: std::fs::File,
}

impl<const D: usize> Core<D> {
    /// Counts stored copies (sealed batch + every component) of `item`'s
    /// exact bit identity — the copies-vs-tombstones liveness probe,
    /// against this core's current structure. The off-lock delete path
    /// runs the same [`count_stored_copies`] against a pinned structure
    /// instead; WAL-replay re-derivation calls this directly, so their
    /// equivalence (which crash recovery depends on) is structural, not
    /// copy-paste.
    pub(crate) fn stored_copies(
        &self,
        item: &Item<D>,
        scratch: &mut QueryScratch<D>,
        hits: &mut Vec<Item<D>>,
    ) -> Result<u64, LiveError> {
        count_stored_copies(
            self.sealed.as_deref().map(|v| v.as_slice()),
            self.components.iter().flatten().map(|a| a.as_ref()),
            item,
            scratch,
            hits,
        )
    }

    /// Pops and applies the oldest `n` pending ops — the group leader's
    /// step, run under the core write lock after the group's WAL write
    /// is acknowledged. Ops apply in sequence order (enqueue order).
    pub(crate) fn apply_pending(&mut self, n: usize) {
        for _ in 0..n {
            match self.pending.pop_front().expect("pending ops underflow") {
                PendingApply::Insert(it) => {
                    self.memtable.insert(it);
                    self.live += 1;
                }
                PendingApply::DeleteMem(it) => {
                    let removed = self.memtable.remove(&it);
                    debug_assert!(removed, "decision said memtable");
                    self.live -= 1;
                }
                PendingApply::DeleteTomb(it) => {
                    Arc::make_mut(&mut self.tombstones).add(&it);
                    self.live -= 1;
                }
            }
        }
    }

    /// Net pending memtable copies of `item`'s identity: enqueued
    /// inserts minus enqueued memtable-deletes.
    pub(crate) fn pending_mem_delta(&self, item: &Item<D>) -> i64 {
        let mut delta = 0i64;
        for op in &self.pending {
            match op {
                PendingApply::Insert(it) if same_identity(it, item) => delta += 1,
                PendingApply::DeleteMem(it) if same_identity(it, item) => delta -= 1,
                _ => {}
            }
        }
        delta
    }

    /// Enqueued (unapplied) tombstones against `item`'s identity.
    pub(crate) fn pending_tombs(&self, item: &Item<D>) -> u64 {
        self.pending
            .iter()
            .filter(|op| matches!(op, PendingApply::DeleteTomb(it) if same_identity(it, item)))
            .count() as u64
    }
}

/// The **one** implementation of the stored-copies count behind every
/// copies-vs-tombstones decision: sealed-batch scan plus a window probe
/// of each component. Parameterized over the structure so the live
/// delete path can run it against a *pinned* (off-lock) structure while
/// replay and the slow path run it against the core's current one.
pub(crate) fn count_stored_copies<'a, const D: usize>(
    sealed: Option<&[Item<D>]>,
    components: impl Iterator<Item = &'a RTree<D>>,
    item: &Item<D>,
    scratch: &mut QueryScratch<D>,
    hits: &mut Vec<Item<D>>,
) -> Result<u64, LiveError> {
    let mut copies = 0u64;
    if let Some(sealed) = sealed {
        copies += sealed.iter().filter(|i| same_identity(i, item)).count() as u64;
    }
    for c in components {
        c.window_into(&item.rect, scratch, hits)?;
        copies += hits.iter().filter(|h| same_identity(h, item)).count() as u64;
    }
    Ok(copies)
}

impl<const D: usize> LiveInner<D> {
    /// Fires an injected crash if armed for `point`: the merge aborts
    /// exactly there, leaving disk (and deliberately inconsistent
    /// memory) as a real crash would.
    pub(crate) fn crash_check(&self, point: CrashPoint) -> Result<(), LiveError> {
        if self.crash_at.load(Ordering::Acquire) == point as u8 {
            self.crash_at.store(0, Ordering::Release);
            return Err(LiveError::Injected(match point {
                CrashPoint::BeforeCommit => "before store commit",
                CrashPoint::AfterCommit => "after store commit",
            }));
        }
        Ok(())
    }

    /// How store-backed components are opened (satellite: paranoid
    /// re-hash-every-read mode).
    pub(crate) fn read_path(&self) -> ReadPath {
        if self.opts.recheck_reads {
            ReadPath::Recheck
        } else {
            ReadPath::ZeroCopy
        }
    }

    /// Async-durability backpressure bound; `None` disables it.
    fn max_inflight(&self) -> Option<u64> {
        match self.opts.durability {
            Durability::Fsync => None,
            Durability::Async { max_inflight_bytes } => Some(max_inflight_bytes as u64),
        }
    }

    /// Waits until `seq` is acknowledged, leading a commit group when
    /// the queue needs one: one vectored WAL write for every enqueued
    /// batch, one fsync for the lot (Fsync mode), then the whole group's
    /// ops applied to the core in sequence order.
    ///
    /// When `trace` is armed, the commit phases are recorded on it:
    /// `lead`/`wait` covering the whole call, and (leader only)
    /// `wal_append`, `wal_fsync`, and `apply` — the attribution half of
    /// the group-commit story: a follower's trace shows one opaque wait,
    /// the leader's shows where the group's time actually went.
    fn commit_wait(&self, seq: u64, trace: &mut pr_obs::SpanCtx) -> Result<(), LiveError> {
        let fsync_mode = matches!(self.opts.durability, Durability::Fsync);
        let tracing = trace.is_active();
        let t_wait = tracing.then(std::time::Instant::now);
        let mut led = false;
        let res = self.group.commit_wait(seq, fsync_mode, |group| {
            led = true;
            let n_ops: usize = group.iter().map(|b| b.n_ops).sum();
            {
                let mut wal = self.group.wal.lock().expect("wal mutex");
                let saved_off = wal.offset();
                let bufs: Vec<&[u8]> = group.iter().map(|b| b.bytes.as_slice()).collect();
                let t_append = tracing.then(std::time::Instant::now);
                let res = wal.append_encoded(&bufs).inspect(|_| {
                    if let Some(t0) = t_append {
                        trace.span_since(
                            "live",
                            "wal_append",
                            t0,
                            &format!("batches={} ops={n_ops}", group.len()),
                        );
                    }
                });
                let res = res.and_then(|_| {
                    if fsync_mode {
                        let t_sync = tracing.then(std::time::Instant::now);
                        wal.sync().inspect(|_| {
                            if let Some(t0) = t_sync {
                                trace.span_since("live", "wal_fsync", t0, "");
                            }
                        })
                    } else {
                        Ok(())
                    }
                });
                if let Err(e) = res {
                    // The group was never acknowledged; scrub every
                    // trace of it so this failure — transient or not —
                    // leaves the index exactly as if the group had
                    // never been enqueued. Two halves:
                    //
                    // 1. WAL truncation back to the pre-group offset. A
                    //    short (torn) group write can leave CRC-valid
                    //    frames behind, and recovery cannot tell a
                    //    rolled-back frame from a real one — without
                    //    the cut, reopening would resurrect writes
                    //    whose callers were told they failed.
                    let rollback = wal.rollback_to(saved_off);
                    drop(wal);
                    // 2. Discard the group's pending (never-applied)
                    //    logical ops — the oldest n_ops entries: groups
                    //    apply in seq order and only one leader runs at
                    //    a time, so the queue's front is exactly this
                    //    group.
                    {
                        let mut core = self.core.write();
                        for _ in 0..n_ops {
                            core.pending.pop_front().expect("pending ops underflow");
                        }
                    }
                    return match rollback {
                        Ok(()) => Err(e),
                        // Ghost frames may survive on disk where replay
                        // would find them: even a transient append
                        // error must escalate to fatal.
                        Err(rb) => Err(LiveError::Corrupt(format!(
                            "group write failed ({e}) and the WAL rollback \
                             failed too ({rb}); unacknowledged frames may \
                             survive on disk"
                        ))),
                    };
                }
                if fsync_mode {
                    self.group.fsyncs.fetch_add(1, Ordering::Relaxed);
                    crate::obs::metrics().wal_fsyncs.inc();
                }
            }
            let last_seq = group.last().expect("group nonempty").last_seq;
            let t_apply = tracing.then(std::time::Instant::now);
            {
                let mut core = self.core.write();
                core.apply_pending(n_ops);
                core.durable_seq = last_seq;
                crate::obs::metrics()
                    .memtable_items
                    .set(core.memtable.len() as u64);
            }
            if let Some(t0) = t_apply {
                trace.span_since("live", "apply", t0, &format!("ops={n_ops}"));
            }
            Ok(())
        });
        if let Some(t0) = t_wait {
            trace.span_since(
                "live",
                if led { "lead" } else { "wait" },
                t0,
                &format!("seq={seq}"),
            );
        }
        res
    }

    /// Enqueues an encoded batch whose logical ops were just pushed onto
    /// `core.pending` — rolling those ops back if the enqueue itself
    /// fails (sticky WAL error), so the two queues never desync. Caller
    /// holds the sequencing lock.
    fn enqueue_or_rollback(&self, batch: PendingBatch) -> Result<(), LiveError> {
        let n_ops = batch.n_ops;
        if let Err(e) = self.group.enqueue(batch, self.max_inflight()) {
            let mut core = self.core.write();
            for _ in 0..n_ops {
                core.pending.pop_back();
            }
            return Err(e);
        }
        Ok(())
    }
}

/// A durable, concurrently-readable LPR-tree.
///
/// Cloneable-by-`Arc` usage: wrap in `Arc` and share; all methods take
/// `&self`. See the module docs for the architecture and
/// [`LiveIndex::snapshot`] for the read path.
pub struct LiveIndex<const D: usize> {
    inner: Arc<LiveInner<D>>,
    worker: Option<JoinHandle<()>>,
    /// Async-durability syncer thread (None under `Durability::Fsync`).
    syncer: Option<JoinHandle<()>>,
}

// Compile-time proof that one index (and its snapshots) can be shared
// across writer and reader threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LiveIndex<2>>();
    assert_send_sync::<LiveSnapshot<2>>();
};

impl<const D: usize> LiveIndex<D> {
    /// Creates a fresh index in `dir` (created if absent). Any previous
    /// index there is destroyed whole: the store file is truncated and
    /// **every** stale WAL segment is removed — `Wal::create` only
    /// truncates segment 1, and a leftover higher segment would
    /// otherwise be replayed into the new index on a later reopen.
    pub fn create(dir: &Path, params: TreeParams, opts: LiveOptions) -> Result<Self, LiveError> {
        std::fs::create_dir_all(dir)?;
        let lock = acquire_dir_lock(dir)?;
        // Destruction order matters for crash safety: unlink the store
        // FIRST (a crash now leaves "no index here" — a clean open error)
        // and only then the stale WAL segments. The reverse order has a
        // window where the old store exists with its WAL gone: open()
        // would silently serve the old snapshot minus every write that
        // lived only in the deleted log.
        if dir.join("index.prt").exists() {
            std::fs::remove_file(dir.join("index.prt"))?;
            pr_em::fsync_dir(dir)?;
        }
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            if (name.starts_with("wal-") && name.ends_with(".log")) || name == "index.prt.tmp" {
                std::fs::remove_file(&path)?;
            }
        }
        pr_em::fsync_dir(dir)?;
        let store = Store::create::<D>(&dir.join("index.prt"), params)?;
        pr_em::fsync_dir(dir)?;
        let wal = Wal::create(dir)?;
        Self::assemble(
            dir,
            params,
            opts,
            store,
            wal,
            LiveManifest::default(),
            Vec::new(),
            lock,
        )
    }

    /// Opens an existing index: recovers the newest committed snapshot,
    /// then replays WAL records past the manifest's cut into the
    /// memtable — every acknowledged write survives, in order.
    pub fn open(dir: &Path, opts: LiveOptions) -> Result<Self, LiveError> {
        let lock = acquire_dir_lock(dir)?;
        // A compaction that died before its atomic rename leaves a stale
        // temp file; it was never the index.
        std::fs::remove_file(dir.join("index.prt.tmp")).ok();
        let store = Store::open(&dir.join("index.prt"))?;
        let sb = *store.superblock();
        if sb.dim != D as u32 {
            return Err(LiveError::Store(pr_store::StoreError::DimensionMismatch {
                file: sb.dim,
                requested: D as u32,
            }));
        }
        let params = sb.meta.params;
        let app = store.app();
        let manifest = if app.is_empty() {
            LiveManifest::default()
        } else {
            LiveManifest::<D>::decode(app)?
        };
        let (wal, records) = Wal::open::<D>(dir)?;
        Self::assemble(dir, params, opts, store, wal, manifest, records, lock)
    }

    /// [`LiveIndex::open`] if an index exists in `dir`, else
    /// [`LiveIndex::create`].
    pub fn open_or_create(
        dir: &Path,
        params: TreeParams,
        opts: LiveOptions,
    ) -> Result<Self, LiveError> {
        if dir.join("index.prt").exists() {
            Self::open(dir, opts)
        } else {
            Self::create(dir, params, opts)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dir: &Path,
        params: TreeParams,
        opts: LiveOptions,
        store: Store,
        wal: Wal,
        manifest: LiveManifest<D>,
        records: Vec<WalRecord<D>>,
        lock: std::fs::File,
    ) -> Result<Self, LiveError> {
        // Tracing knobs are process-global (the sampler and flight
        // recorder are shared statics); apply them before anything below
        // can arm a trace.
        if opts.trace_sample_every > 0 {
            pr_obs::trace::set_sampling(opts.trace_sample_every);
        }
        if opts.trace_slow_us > 0 {
            pr_obs::recorder().configure(8, opts.trace_slow_us);
        }
        // Components out of the store, arranged into their slots. Page
        // ids are run-relative (every component's root is page 0), so
        // each component attaches to the shared leaf cache under its
        // own epoch — a shared epoch would alias cache keys across
        // components and serve one component's cached leaves to
        // another's queries.
        let leaf_cache: Option<Arc<LeafCache<D>>> =
            (opts.leaf_cache_bytes > 0).then(|| Arc::new(LeafCache::new(opts.leaf_cache_bytes)));
        let read_path = if opts.recheck_reads {
            ReadPath::Recheck
        } else {
            ReadPath::ZeroCopy
        };
        let trees = store.components_with::<D>(read_path)?;
        let runs = store.component_runs();
        if trees.len() != manifest.slots.len() {
            return Err(LiveError::Corrupt(format!(
                "store holds {} components but the live manifest places {}",
                trees.len(),
                manifest.slots.len()
            )));
        }
        let nslots = manifest
            .slots
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(0);
        let mut components: Vec<Option<Arc<RTree<D>>>> = Vec::new();
        components.resize_with(nslots, || None);
        let mut slot_ids: Vec<Option<SlotIdentity>> = vec![None; nslots];
        // The manifest's slot list, the store's runs, and
        // `components_with`'s trees all share commit order, so they zip
        // 1:1 — that is how each slot learns its stable component id.
        for ((slot, mut tree), run) in manifest.slots.iter().zip(trees).zip(runs) {
            let slot = *slot as usize;
            if components[slot].is_some() {
                return Err(LiveError::Corrupt(format!(
                    "live manifest places two components in slot {slot}"
                )));
            }
            let cache_epoch = leaf_cache.as_ref().map(|c| c.register_epoch());
            if let (Some(cache), Some(epoch)) = (&leaf_cache, cache_epoch) {
                tree.attach_leaf_cache(Arc::clone(cache), epoch);
            }
            tree.warm_cache()?;
            components[slot] = Some(Arc::new(tree));
            slot_ids[slot] = Some(SlotIdentity {
                component_id: run.id,
                cache_epoch,
            });
        }

        let stored: u64 = components.iter().flatten().map(|c| c.len()).sum::<u64>();
        let mut core = Core {
            memtable: Memtable::from_items(manifest.memtable),
            sealed: None,
            components,
            slot_ids,
            tombstones: Arc::new(manifest.tombstones),
            pending: VecDeque::new(),
            structure_epoch: 0,
            live: 0,
            durable_seq: manifest.wal_seq,
            merged_seq: manifest.wal_seq,
            merges: 0,
        };
        core.live = stored + core.memtable.len() as u64 - core.tombstones.total();

        // WAL replay: everything past the manifest's cut, in order.
        let mut rtrace = pr_obs::SpanCtx::off();
        if !records.is_empty() {
            rtrace.arm_sampled("wal_replay");
        }
        let t_replay = rtrace.is_active().then(std::time::Instant::now);
        let mut next_seq = manifest.wal_seq + 1;
        let mut replayed: u64 = 0;
        let mut scratch = QueryScratch::new();
        let mut hits = Vec::new();
        for rec in records {
            if rec.seq <= manifest.wal_seq {
                continue;
            }
            match rec.op {
                WalOp::Insert => {
                    core.memtable.insert(rec.item);
                    core.live += 1;
                }
                WalOp::Delete => {
                    // Re-derive where the delete landed against the
                    // reconstructed state — the same decision the live
                    // path made.
                    if core.memtable.remove(&rec.item) {
                        core.live -= 1;
                    } else {
                        let copies = core.stored_copies(&rec.item, &mut scratch, &mut hits)?;
                        if copies > core.tombstones.count(&rec.item) as u64 {
                            Arc::make_mut(&mut core.tombstones).add(&rec.item);
                            core.live -= 1;
                        }
                    }
                }
            }
            core.durable_seq = rec.seq;
            next_seq = rec.seq + 1;
            replayed += 1;
        }
        crate::obs::metrics()
            .memtable_items
            .set(core.memtable.len() as u64);
        pr_obs::events().emit(
            "wal_replay",
            format!(
                "cut_seq={} replayed={replayed} recovered_seq={}",
                manifest.wal_seq, core.durable_seq
            ),
        );
        if let Some(t0) = t_replay {
            rtrace.span_since("live", "replay", t0, &format!("records={replayed}"));
            rtrace.set_detail(&format!(
                "cut_seq={} recovered_seq={}",
                manifest.wal_seq, core.durable_seq
            ));
        }
        rtrace.finish_publish();

        let recovered_seq = core.durable_seq;
        let inner = Arc::new(LiveInner {
            dir: dir.to_path_buf(),
            params,
            opts,
            policy: GeometricPolicy::new(opts.buffer_cap),
            writer: Mutex::new(WriterState { next_seq }),
            group: GroupCommit::new(wal, recovered_seq),
            core: RwLock::new(core),
            store: Mutex::new(store),
            maintenance: Mutex::new(()),
            signal: StdMutex::new(Signal {
                merge: false,
                full: false,
                shutdown: false,
                busy: false,
                error: None,
                merges_paused: false,
            }),
            cv: Condvar::new(),
            leaf_cache,
            merge_pages_written: AtomicU64::new(0),
            merge_pages_reused: AtomicU64::new(0),
            ingest_bytes: AtomicU64::new(0),
            crash_at: AtomicU8::new(0),
            _lock: lock,
        });

        let worker = if opts.background_merge {
            let inner = Arc::clone(&inner);
            Some(std::thread::spawn(move || worker_loop(inner)))
        } else {
            None
        };
        let syncer = match opts.durability {
            Durability::Async { .. } => {
                let inner = Arc::clone(&inner);
                Some(std::thread::spawn(move || inner.group.syncer_loop()))
            }
            Durability::Fsync => None,
        };
        Ok(LiveIndex {
            inner,
            worker,
            syncer,
        })
    }

    /// Index directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Tree parameters the components are built with.
    pub fn params(&self) -> &TreeParams {
        &self.inner.params
    }

    /// Live item count.
    pub fn len(&self) -> u64 {
        self.inner.core.read().live
    }

    /// True when no live items exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts one item (ids must be unique among live items). Returns
    /// once the write is acknowledged: after its group's fsync under
    /// [`Durability::Fsync`] (the write survives any crash from here
    /// on), after the buffered group append under [`Durability::Async`].
    pub fn insert(&self, item: Item<D>) -> Result<(), LiveError> {
        self.insert_batch(std::slice::from_ref(&item))
    }

    /// Inserts a batch, group-committed: the batch is encoded and
    /// enqueued under the sequencing lock (no I/O there), then a group
    /// leader lands it — together with every concurrently enqueued
    /// batch — with one vectored write and **at most one** fsync for
    /// the whole group. Acknowledged (and, in `Fsync` mode,
    /// crash-durable) as a unit when this returns.
    pub fn insert_batch(&self, items: &[Item<D>]) -> Result<(), LiveError> {
        if items.is_empty() {
            return Ok(());
        }
        let t0 = std::time::Instant::now();
        let inner = &self.inner;
        let mut trace = pr_obs::SpanCtx::off();
        trace.arm_sampled("write");
        let tracing = trace.is_active();
        let last_seq = {
            let mut w = inner.writer.lock();
            let first = w.next_seq;
            let t_enc = tracing.then(std::time::Instant::now);
            // Encode straight into an arena buffer (recycled once the
            // group leader lands the batch): the steady-state enqueue
            // path allocates nothing per batch.
            let mut bytes = inner.group.take_buf();
            for (i, item) in items.iter().enumerate() {
                WalRecord {
                    seq: first + i as u64,
                    op: WalOp::Insert,
                    item: *item,
                }
                .encode_into(&mut bytes);
            }
            if let Some(t) = t_enc {
                trace.span_since(
                    "live",
                    "encode",
                    t,
                    &format!("ops={} bytes={}", items.len(), bytes.len()),
                );
            }
            let last_seq = first + items.len() as u64 - 1;
            {
                let mut core = inner.core.write();
                core.pending
                    .extend(items.iter().map(|it| PendingApply::Insert(*it)));
            }
            let t_enq = tracing.then(std::time::Instant::now);
            inner.enqueue_or_rollback(PendingBatch {
                bytes,
                n_ops: items.len(),
                last_seq,
            })?;
            if let Some(t) = t_enq {
                trace.span_since("live", "enqueue", t, "");
            }
            w.next_seq = last_seq + 1;
            last_seq
        };
        inner.commit_wait(last_seq, &mut trace)?;
        let m = crate::obs::metrics();
        m.inserts_acked.add(items.len() as u64);
        m.insert_batch_us.record_duration_us(t0.elapsed());
        trace.set_detail(&format!("ops={} last_seq={last_seq}", items.len()));
        trace.finish_publish();
        let overflow = inner.core.read().memtable.len() >= inner.policy.buffer_cap();
        if overflow {
            self.on_overflow()?;
        }
        Ok(())
    }

    /// Deletes the live item with this exact `(id, rect)` identity.
    /// Returns `false` (without logging anything) if no such live item
    /// exists. Like inserts, a `true` return means the delete is
    /// acknowledged (crash-durable under [`Durability::Fsync`]).
    pub fn delete(&self, item: &Item<D>) -> Result<bool, LiveError> {
        Ok(self.delete_batch(std::slice::from_ref(item))? == 1)
    }

    /// Deletes a batch, group-committed like [`LiveIndex::insert_batch`]
    /// — at most one fsync for the whole group the batch lands in.
    /// Victims with no matching live item are skipped (not logged);
    /// decisions within the batch see earlier victims' effects, exactly
    /// as if applied serially. Returns how many items were deleted; all
    /// of them are acknowledged when this returns.
    ///
    /// Cost note: each victim's copies-vs-tombstones decision probes the
    /// components (a few cached-node reads) against a snapshot pinned
    /// **outside** the sequencing lock; the lock is held only for the
    /// O(batch) memory-side decision and enqueue, re-probing solely when
    /// a seal or merge swap landed in between. Huge delete batches
    /// therefore no longer stall concurrent inserts behind component
    /// I/O.
    pub fn delete_batch(&self, items: &[Item<D>]) -> Result<u64, LiveError> {
        if items.is_empty() {
            return Ok(0);
        }
        let t0 = std::time::Instant::now();
        let inner = &self.inner;
        let mut trace = pr_obs::SpanCtx::off();
        trace.arm_sampled("delete");
        let tracing = trace.is_active();
        // Pin the stored structure (sealed + components) with a brief
        // read lock, then probe copies entirely off-lock. Validity: a
        // merge moves copies between sealed/components without changing
        // any identity's stored-copy count, but a *seal* (memtable →
        // sealed) and a merge *swap* both change what "stored" covers —
        // each bumps `structure_epoch`, and an epoch mismatch under the
        // sequencing lock sends that batch down the re-probe slow path.
        // Tombstones and the memtable are always read fresh under the
        // lock, so an unchanged epoch makes the off-lock counts exact.
        let (pin_epoch, pinned_sealed, pinned_components) = {
            let core = inner.core.read();
            (
                core.structure_epoch,
                core.sealed.clone(),
                core.components
                    .iter()
                    .flatten()
                    .map(Arc::clone)
                    .collect::<Vec<_>>(),
            )
        };
        let mut scratch = QueryScratch::new();
        let mut hits = Vec::new();
        let mut probed: Vec<u64> = Vec::with_capacity(items.len());
        let t_probe = tracing.then(std::time::Instant::now);
        for item in items {
            probed.push(count_stored_copies(
                pinned_sealed.as_deref().map(|v| v.as_slice()),
                pinned_components.iter().map(|a| a.as_ref()),
                item,
                &mut scratch,
                &mut hits,
            )?);
        }
        if let Some(t) = t_probe {
            trace.span_since("live", "probe", t, &format!("victims={}", items.len()));
        }
        let (deleted, last_seq, any_tombstone) = {
            let mut w = inner.writer.lock();
            let t_decide = tracing.then(std::time::Instant::now);
            // Decide every victim against the applied state plus every
            // enqueued-but-unapplied op (`core.pending`) plus the
            // batch's own earlier victims — the serial-equivalent view.
            let mut ops: Vec<PendingApply<D>> = Vec::new();
            let mut any_tombstone = false;
            {
                let core = inner.core.read();
                let stale = core.structure_epoch != pin_epoch;
                let mut claimed_mem: Vec<Item<D>> = Vec::new();
                let mut batch_tombs = Tombstones::<D>::new();
                for (i, item) in items.iter().enumerate() {
                    let claimed = claimed_mem
                        .iter()
                        .filter(|c| same_identity(c, item))
                        .count() as i64;
                    let mem_avail =
                        core.memtable.count(item) as i64 + core.pending_mem_delta(item) - claimed;
                    if mem_avail > 0 {
                        claimed_mem.push(*item);
                        ops.push(PendingApply::DeleteMem(*item));
                        continue;
                    }
                    let copies = if stale {
                        core.stored_copies(item, &mut scratch, &mut hits)?
                    } else {
                        probed[i]
                    };
                    let dead = core.tombstones.count(item) as u64
                        + core.pending_tombs(item)
                        + batch_tombs.count(item) as u64;
                    if copies > dead {
                        batch_tombs.add(item);
                        any_tombstone = true;
                        ops.push(PendingApply::DeleteTomb(*item));
                    }
                }
            }
            if ops.is_empty() {
                return Ok(0);
            }
            let first = w.next_seq;
            let mut bytes = inner.group.take_buf();
            for (i, op) in ops.iter().enumerate() {
                let item = match op {
                    PendingApply::Insert(it)
                    | PendingApply::DeleteMem(it)
                    | PendingApply::DeleteTomb(it) => *it,
                };
                WalRecord {
                    seq: first + i as u64,
                    op: WalOp::Delete,
                    item,
                }
                .encode_into(&mut bytes);
            }
            let n_ops = ops.len();
            let last_seq = first + n_ops as u64 - 1;
            if let Some(t) = t_decide {
                trace.span_since(
                    "live",
                    "decide",
                    t,
                    &format!("ops={n_ops} bytes={}", bytes.len()),
                );
            }
            {
                let mut core = inner.core.write();
                core.pending.extend(ops);
            }
            let t_enq = tracing.then(std::time::Instant::now);
            inner.enqueue_or_rollback(PendingBatch {
                bytes,
                n_ops,
                last_seq,
            })?;
            if let Some(t) = t_enq {
                trace.span_since("live", "enqueue", t, "");
            }
            w.next_seq = last_seq + 1;
            (n_ops as u64, last_seq, any_tombstone)
        };
        inner.commit_wait(last_seq, &mut trace)?;
        let m = crate::obs::metrics();
        m.deletes_acked.add(deleted);
        m.delete_batch_us.record_duration_us(t0.elapsed());
        trace.set_detail(&format!("deleted={deleted} last_seq={last_seq}"));
        trace.finish_publish();
        let needs_compaction = any_tombstone && {
            let core = inner.core.read();
            let stored: u64 = core
                .components
                .iter()
                .flatten()
                .map(|c| c.len())
                .sum::<u64>()
                + core.sealed.as_ref().map_or(0, |s| s.len() as u64);
            inner
                .policy
                .needs_compaction(core.tombstones.total(), stored)
        };
        if needs_compaction {
            self.request_merge(MergeKind::Full { reclaim: false })?;
        }
        Ok(deleted)
    }

    /// An epoch-pinned, point-in-time view for querying. Cheap: one
    /// memtable copy plus `Arc` bumps. The snapshot stays valid and
    /// immutable across any amount of concurrent ingest, merging, and
    /// compaction.
    pub fn snapshot(&self) -> LiveSnapshot<D> {
        let core = self.inner.core.read();
        LiveSnapshot {
            memtable: core.memtable.items().to_vec(),
            sealed: core.sealed.clone(),
            components: core.components.iter().flatten().map(Arc::clone).collect(),
            tombstones: Arc::clone(&core.tombstones),
            live: core.live,
            seq: core.durable_seq,
        }
    }

    /// One-shot window query (takes a fresh snapshot; hot loops should
    /// hold a [`LiveSnapshot`] and a [`QueryScratch`] instead).
    pub fn window(&self, query: &Rect<D>) -> Result<(Vec<Item<D>>, QueryStats), LiveError> {
        let snap = self.snapshot();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = snap.window_into(query, &mut scratch, &mut out)?;
        Ok((out, stats))
    }

    /// One-shot k-nearest-neighbors query.
    pub fn nearest_neighbors(
        &self,
        query: &Point<D>,
        k: usize,
    ) -> Result<(Vec<(Item<D>, f64)>, QueryStats), LiveError> {
        let snap = self.snapshot();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = snap.nearest_neighbors_into(query, k, &mut scratch, &mut out)?;
        Ok((out, stats))
    }

    /// Forces the memtable (any size) through a merge, synchronously.
    /// After this returns every prior write is reflected in committed
    /// components and the WAL holds nothing the manifest doesn't cover
    /// — in particular, under [`Durability::Async`] the in-flight
    /// window is fully drained (the merge cut quiesces the commit
    /// queue), so every acknowledged write is durable.
    pub fn flush(&self) -> Result<(), LiveError> {
        self.surface_worker_error()?;
        run_merge(&self.inner, MergeKind::Force)?;
        self.merge_recovered();
        self.notify_done();
        Ok(())
    }

    /// Global compaction: merges memtable + every component into one
    /// tree (dropping all tombstones) and rewrites the store into a
    /// fresh file (atomic rename), reclaiming the space of superseded
    /// snapshots. Readers holding older snapshots keep working — their
    /// devices pin the unlinked file.
    pub fn compact(&self) -> Result<(), LiveError> {
        self.surface_worker_error()?;
        run_merge(&self.inner, MergeKind::Full { reclaim: true })?;
        self.merge_recovered();
        self.notify_done();
        Ok(())
    }

    /// [`LiveIndex::compact`], but only when reclaimable garbage
    /// exceeds `max_garbage_pct` percent of the store file. Routine
    /// merges reuse surviving runs in place, so the file grows by the
    /// superseded runs' bytes rather than by whole-index rewrites —
    /// this is the explicit trigger that trades one full rewrite for
    /// that accrued space. Returns whether a compaction ran.
    pub fn compact_if_garbage(&self, max_garbage_pct: u8) -> Result<bool, LiveError> {
        let (garbage, file_len) = {
            let store = self.inner.store.lock();
            (store.garbage_bytes()?, store.file_len()?)
        };
        if garbage * 100 <= u64::from(max_garbage_pct) * file_len {
            return Ok(false);
        }
        self.compact()?;
        Ok(true)
    }

    /// An explicit merge just succeeded: lift merges-paused degraded
    /// mode if a transient failure had set it.
    fn merge_recovered(&self) {
        let mut sig = self.inner.signal.lock().expect("signal mutex");
        if sig.merges_paused {
            sig.merges_paused = false;
            crate::obs::metrics().merges_paused.set(0);
            pr_obs::events().emit("merges_resume", "merge succeeded after transient failure");
        }
    }

    /// Blocks until no sealed batch is pending and no requested
    /// background merge remains, surfacing any background-merge error.
    pub fn wait_idle(&self) -> Result<(), LiveError> {
        loop {
            self.surface_worker_error()?;
            let busy = {
                let sig = self.inner.signal.lock().expect("signal mutex");
                sig.merge || sig.full || sig.busy
            } || self.inner.core.read().sealed.is_some();
            if !busy {
                return Ok(());
            }
            let sig = self.inner.signal.lock().expect("signal mutex");
            let _ = self
                .inner
                .cv
                .wait_timeout(sig, Duration::from_millis(20))
                .expect("signal mutex");
        }
    }

    /// Operational counters for `prtree stats` and tests.
    pub fn stats(&self) -> Result<LiveStats, LiveError> {
        let (live, memtable, sealed, components, tombstones, durable_seq, merged_seq, merges) = {
            let core = self.inner.core.read();
            (
                core.live,
                core.memtable.len(),
                core.sealed.as_ref().map_or(0, |s| s.len()),
                core.components
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, c)| c.as_ref().map(|t| (slot, t.len())))
                    .collect::<Vec<_>>(),
                core.tombstones.total(),
                core.durable_seq,
                core.merged_seq,
                core.merges,
            )
        };
        let (wal_segments, wal_bytes) = {
            let wal = self.inner.group.wal.lock().expect("wal mutex");
            (wal.num_segments()?, wal.total_bytes()?)
        };
        let synced_seq = {
            let q = self.inner.group.q.lock().expect("commit queue");
            q.synced_seq
        };
        let wal_fsyncs = self.inner.group.fsyncs.load(Ordering::Relaxed);
        let wal_groups = self.inner.group.groups.load(Ordering::Relaxed);
        let wal_group_records = self.inner.group.records.load(Ordering::Relaxed);
        let (store_epoch, store_file_bytes, store_degraded, store_garbage_bytes, store_runs) = {
            let store = self.inner.store.lock();
            (
                store.superblock().epoch,
                store.file_len()?,
                store.degraded(),
                store.garbage_bytes()?,
                store
                    .component_runs()
                    .iter()
                    .map(|r| StoreRunStat {
                        id: r.id,
                        data_offset: r.data_offset,
                        num_pages: r.num_pages,
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let store_pages_written = self.inner.merge_pages_written.load(Ordering::Relaxed);
        let store_pages_reused = self.inner.merge_pages_reused.load(Ordering::Relaxed);
        let ingest_bytes = self.inner.ingest_bytes.load(Ordering::Relaxed);
        let write_amp_x100 = (store_pages_written * self.inner.params.page_size as u64 * 100)
            .checked_div(ingest_bytes)
            .unwrap_or(0);
        let wal_arena_allocs = self.inner.group.arena_allocs.load(Ordering::Relaxed);
        let merges_paused = {
            let sig = self.inner.signal.lock().expect("signal mutex");
            sig.merges_paused
        };
        let wal_degraded = {
            let q = self.inner.group.q.lock().expect("commit queue");
            q.degraded
        };
        let (leaf_cache_hits, leaf_cache_misses, leaf_cache_bytes, leaf_cache_ghost_hits) =
            match &self.inner.leaf_cache {
                Some(cache) => {
                    let (h, m) = cache.hit_stats();
                    (h, m, cache.resident_bytes() as u64, cache.ghost_hits())
                }
                None => (0, 0, 0, 0),
            };
        Ok(LiveStats {
            live,
            memtable,
            sealed,
            components,
            tombstones,
            durable_seq,
            synced_seq,
            merged_seq,
            merges,
            wal_segments,
            wal_bytes,
            wal_fsyncs,
            wal_groups,
            wal_group_records,
            store_epoch,
            store_file_bytes,
            store_degraded,
            merges_paused,
            wal_degraded,
            leaf_cache_hits,
            leaf_cache_misses,
            leaf_cache_bytes,
            leaf_cache_ghost_hits,
            store_pages_written,
            store_pages_reused,
            write_amp_x100,
            store_garbage_bytes,
            store_runs,
            wal_arena_allocs,
        })
    }

    /// Forces every *acknowledged* WAL byte to disk and advances the
    /// synced horizon. Under [`Durability::Async`] this drains the
    /// in-flight window on demand (the syncer thread does the same
    /// continuously); under [`Durability::Fsync`] it is just an extra
    /// fsync — acknowledged writes are already durable.
    pub fn sync_wal(&self) -> Result<(), LiveError> {
        self.inner.group.sync_window()
    }

    /// Re-hashes every committed store page against its checksum table
    /// (see [`Store::scrub`]). On detected corruption the shared leaf
    /// cache is dropped wholesale — resident transcoded pages were
    /// verified when loaded, but a device caught rotting forfeits the
    /// benefit of the doubt — and the store keeps serving reads in
    /// forced-recheck degraded mode until a later scrub comes back
    /// clean.
    pub fn scrub(&self) -> Result<pr_store::ScrubReport, LiveError> {
        let res = {
            let store = self.inner.store.lock();
            store.scrub()
        };
        match res {
            Ok(report) => Ok(report),
            Err(e) => {
                if let Some(cache) = &self.inner.leaf_cache {
                    cache.clear();
                }
                Err(e.into())
            }
        }
    }

    /// Arms a one-shot injected crash for the next merge (test harness).
    #[doc(hidden)]
    pub fn inject_crash(&self, point: CrashPoint) {
        self.inner.crash_at.store(point as u8, Ordering::Release);
    }

    fn request_merge(&self, kind: MergeKind) -> Result<(), LiveError> {
        if self.inner.opts.background_merge {
            {
                let mut sig = self.inner.signal.lock().expect("signal mutex");
                match kind {
                    MergeKind::Overflow => sig.merge = true,
                    _ => sig.full = true,
                }
            }
            self.inner.cv.notify_all();
            Ok(())
        } else {
            match run_merge(&self.inner, kind) {
                Ok(()) => self.merge_recovered(),
                Err(e) if e.is_transient() => {
                    // This merge piggybacked on an insert/delete that
                    // was already acknowledged — a transient failure
                    // (ENOSPC) must not retro-fail that ack. The data
                    // is safe in the memtable/sealed batch + WAL; mark
                    // merges paused and let a later overflow or an
                    // explicit flush() retry.
                    let mut sig = self.inner.signal.lock().expect("signal mutex");
                    sig.merges_paused = true;
                    let m = crate::obs::metrics();
                    m.merge_retries.inc();
                    m.merges_paused.set(1);
                    pr_obs::events().emit(
                        "merge_retry",
                        format!("transient inline-merge failure: {e}"),
                    );
                }
                Err(e) => return Err(e),
            }
            self.notify_done();
            Ok(())
        }
    }

    fn on_overflow(&self) -> Result<(), LiveError> {
        self.request_merge(MergeKind::Overflow)?;
        if !self.inner.opts.background_merge {
            return Ok(());
        }
        // Backpressure: a writer outrunning the merger stalls here once
        // the memtable is several seals deep, holding no locks.
        let limit = self
            .inner
            .opts
            .backpressure_factor
            .max(1)
            .saturating_mul(self.inner.policy.buffer_cap());
        loop {
            self.surface_worker_error()?;
            let crowded = {
                let core = self.inner.core.read();
                core.sealed.is_some() && core.memtable.len() >= limit
            };
            if !crowded {
                return Ok(());
            }
            let sig = self.inner.signal.lock().expect("signal mutex");
            let _ = self
                .inner
                .cv
                .wait_timeout(sig, Duration::from_millis(10))
                .expect("signal mutex");
        }
    }

    fn surface_worker_error(&self) -> Result<(), LiveError> {
        let mut sig = self.inner.signal.lock().expect("signal mutex");
        match sig.error.take() {
            Some(msg) => Err(LiveError::Corrupt(format!(
                "background merge failed: {msg}"
            ))),
            None => Ok(()),
        }
    }

    fn notify_done(&self) {
        self.inner.cv.notify_all();
    }
}

impl<const D: usize> Drop for LiveIndex<D> {
    fn drop(&mut self) {
        if let Some(handle) = self.worker.take() {
            {
                let mut sig = self.inner.signal.lock().expect("signal mutex");
                sig.shutdown = true;
            }
            self.inner.cv.notify_all();
            let _ = handle.join();
        }
        if let Some(handle) = self.syncer.take() {
            // The syncer drains the async window once more on its way
            // out — a clean close shouldn't strand acknowledged writes
            // behind a missing fsync. (A crash still can; that is the
            // `Async` contract.)
            self.inner.group.begin_shutdown();
            let _ = handle.join();
        }
        // An unmerged memtable/sealed batch needs no goodbye: the WAL
        // has every acknowledged record and reopen replays it.
    }
}

fn worker_loop<const D: usize>(inner: Arc<LiveInner<D>>) {
    let mut backoff = Duration::from_millis(2);
    loop {
        let kind = {
            let mut sig = inner.signal.lock().expect("signal mutex");
            loop {
                if sig.shutdown {
                    return;
                }
                if sig.full {
                    sig.full = false;
                    sig.busy = true;
                    break MergeKind::Full { reclaim: false };
                }
                if sig.merge {
                    sig.merge = false;
                    sig.busy = true;
                    break MergeKind::Overflow;
                }
                sig = inner.cv.wait(sig).expect("signal mutex");
            }
        };
        let outcome = run_merge(&inner, kind);
        let mut retry_after = None;
        {
            let mut sig = inner.signal.lock().expect("signal mutex");
            sig.busy = false;
            match outcome {
                Ok(()) => {
                    backoff = Duration::from_millis(2);
                    if sig.merges_paused {
                        sig.merges_paused = false;
                        crate::obs::metrics().merges_paused.set(0);
                        pr_obs::events()
                            .emit("merges_resume", "merge succeeded after transient failure");
                    }
                }
                Err(e) if e.is_transient() => {
                    // Transient (ENOSPC): a merge is safe to retry from
                    // scratch — rotation keeps the old segment on any
                    // error, and the store commit either flipped the
                    // superblock or left the old snapshot intact — so
                    // back off and re-request instead of failing acked
                    // writes. Writers stay up (memtable backpressure
                    // bounds memory); `sig.error` stays reserved for
                    // fatal failures.
                    sig.merges_paused = true;
                    match kind {
                        MergeKind::Overflow => sig.merge = true,
                        _ => sig.full = true,
                    }
                    let m = crate::obs::metrics();
                    m.merge_retries.inc();
                    m.merges_paused.set(1);
                    pr_obs::events().emit(
                        "merge_retry",
                        format!("transient failure, retrying in {backoff:?}: {e}"),
                    );
                    retry_after = Some(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
                Err(e) => {
                    if sig.error.is_none() {
                        sig.error = Some(e.to_string());
                    }
                }
            }
        }
        inner.cv.notify_all();
        if let Some(pause) = retry_after {
            // Shutdown-interruptible backoff: sleep on the signal
            // condvar so a closing index doesn't wait out the timer.
            let sig = inner.signal.lock().expect("signal mutex");
            if !sig.shutdown {
                let _ = inner.cv.wait_timeout(sig, pause).expect("signal mutex");
            }
        }
    }
}

/// Takes the exclusive advisory lock on `dir/LOCK`, refusing to share
/// the directory with any other live process: even "read-only" opens
/// truncate torn WAL tails and clean compaction temp files, which would
/// corrupt a concurrently running writer. The lock dies with the file
/// handle (process exit/crash included), so no stale-lock recovery is
/// needed.
fn acquire_dir_lock(dir: &Path) -> Result<std::fs::File, LiveError> {
    let lock = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join("LOCK"))?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(std::fs::TryLockError::WouldBlock) => Err(LiveError::Locked(dir.to_path_buf())),
        Err(std::fs::TryLockError::Error(e)) => Err(e.into()),
    }
}

/// Operational counters of a live index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveStats {
    /// Live item count.
    pub live: u64,
    /// Items in the active memtable.
    pub memtable: usize,
    /// Items in the sealed batch (0 when no merge pending).
    pub sealed: usize,
    /// `(slot, items)` per committed component.
    pub components: Vec<(usize, u64)>,
    /// Outstanding tombstones.
    pub tombstones: u64,
    /// Highest acknowledged WAL sequence.
    pub durable_seq: u64,
    /// Highest WAL sequence covered by an fsync. Equals `durable_seq`
    /// under [`Durability::Fsync`]; can trail it by the in-flight
    /// window under [`Durability::Async`].
    pub synced_seq: u64,
    /// The committed manifest's WAL cut.
    pub merged_seq: u64,
    /// Merge commits completed this process.
    pub merges: u64,
    /// WAL segment files on disk.
    pub wal_segments: u64,
    /// Total WAL bytes on disk.
    pub wal_bytes: u64,
    /// Commit-path fsyncs issued since open. With concurrent writers
    /// this stays **below** the number of committed batches — the whole
    /// point of group commit.
    pub wal_fsyncs: u64,
    /// Commit groups written since open.
    pub wal_groups: u64,
    /// Records written through commit groups since open.
    pub wal_group_records: u64,
    /// Store commit epoch.
    pub store_epoch: u64,
    /// Store file size in bytes.
    pub store_file_bytes: u64,
    /// True while the store serves reads in forced-recheck degraded
    /// mode after detected page corruption (cleared by a clean scrub).
    pub store_degraded: bool,
    /// True while background merges back off after a transient failure
    /// (writers still ingest under memtable backpressure).
    pub merges_paused: bool,
    /// True while the write path is degraded by a transient group
    /// failure with no clean group landed since (see
    /// [`LiveError::GroupFailed`]).
    pub wal_degraded: bool,
    /// Shared leaf-cache hits since open (0 when the cache is disabled).
    pub leaf_cache_hits: u64,
    /// Shared leaf-cache misses since open.
    pub leaf_cache_misses: u64,
    /// Approximate bytes resident in the shared leaf cache.
    pub leaf_cache_bytes: u64,
    /// Leaf-cache misses admitted on their second touch (the cache's
    /// scan-resistant admission; 0 when the cache is disabled).
    pub leaf_cache_ghost_hits: u64,
    /// Store pages appended by this process's merge commits.
    pub store_pages_written: u64,
    /// Store pages committed by in-place reference (their bytes were
    /// **not** rewritten) by this process's merge commits.
    pub store_pages_reused: u64,
    /// Write amplification, fixed-point ×100: store bytes written by
    /// merge commits per byte sealed out of the memtable (0 before the
    /// first seal). Steady-state ingest under the geometric policy
    /// keeps this O(levels), not O(index size).
    pub write_amp_x100: u64,
    /// Store file bytes no active run references — reclaimable by
    /// [`LiveIndex::compact`] / [`LiveIndex::compact_if_garbage`].
    pub store_garbage_bytes: u64,
    /// Active component runs in store (commit) order. Byte-identical
    /// page reuse across merges is observable here as unchanged
    /// `(id, data_offset)` pairs.
    pub store_runs: Vec<StoreRunStat>,
    /// Fresh WAL-encode buffer allocations (arena-pool misses); flat
    /// once the pool warms regardless of batch count.
    pub wal_arena_allocs: u64,
}

/// One active component run, as reported by [`LiveStats::store_runs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRunStat {
    /// Stable component id — survives every commit that reuses the run.
    pub id: u64,
    /// Absolute byte offset of the run's first page in the store file.
    pub data_offset: u64,
    /// Pages in the run.
    pub num_pages: u64,
}

/// An immutable, point-in-time view of a [`LiveIndex`].
///
/// Queries fan out over the memtable copy, the sealed batch (if a merge
/// is in flight), and every component through the decode-free engine —
/// one shared [`QueryScratch`] across all of them — with tombstones
/// filtered by multiset subtraction. Holding a snapshot pins its
/// components' store pages; results are bit-stable no matter what the
/// live index does meanwhile.
pub struct LiveSnapshot<const D: usize> {
    memtable: Vec<Item<D>>,
    sealed: Option<Arc<Vec<Item<D>>>>,
    components: Vec<Arc<RTree<D>>>,
    tombstones: Arc<Tombstones<D>>,
    live: u64,
    seq: u64,
}

impl<const D: usize> LiveSnapshot<D> {
    /// Live item count at snapshot time.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when the snapshot holds no live items.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest acknowledged WAL sequence reflected in this snapshot.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of components in view.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Window query with caller-owned buffers (allocation-free when
    /// reused).
    pub fn window_into(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<Item<D>>,
    ) -> Result<QueryStats, LiveError> {
        let t0 = std::time::Instant::now();
        out.clear();
        out.extend(self.memtable.iter().filter(|i| i.rect.intersects(query)));
        let mut stats = QueryStats::default();
        let mut filter = self.tombstones.filter();
        if let Some(sealed) = &self.sealed {
            out.extend(
                sealed
                    .iter()
                    .filter(|i| i.rect.intersects(query) && filter.admit(i)),
            );
        }
        for c in &self.components {
            let start = out.len();
            let s = c.window_append_into(query, scratch, out)?;
            stats.absorb_traversal(&s);
            filter.retain_admitted(out, start);
        }
        stats.results = out.len() as u64;
        crate::obs::metrics()
            .window_query_us
            .record_duration_us(t0.elapsed());
        Ok(stats)
    }

    /// Convenience window query.
    pub fn window(&self, query: &Rect<D>) -> Result<Vec<Item<D>>, LiveError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.window_into(query, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// k-nearest-neighbors with caller-owned buffers: each component
    /// answers through the decode-free best-first engine with the
    /// query's shared tombstone filter applied **inside the loop**
    /// ([`RTree::nearest_neighbors_filtered_into`]), so every component
    /// yields its `k` nearest *live* items directly — no over-fetch by
    /// the outstanding tombstone count, no degradation toward a
    /// component scan as tombstones approach the compaction trigger.
    /// The lists are merged with the memtable/sealed scans and the
    /// global top `k` kept; one filter spans sealed batch + every
    /// component, keeping the multiset subtraction exact (see
    /// `LprTree::nearest_neighbors_into` for the argument).
    pub fn nearest_neighbors_into(
        &self,
        query: &Point<D>,
        k: usize,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<(Item<D>, f64)>,
    ) -> Result<QueryStats, LiveError> {
        out.clear();
        let mut stats = QueryStats::default();
        if k == 0 {
            return Ok(stats);
        }
        let t0 = std::time::Instant::now();
        let mut merged: Vec<(Item<D>, f64)> = self
            .memtable
            .iter()
            .map(|i| (*i, i.rect.min_dist2(query).sqrt()))
            .collect();
        let mut filter = self.tombstones.filter();
        if let Some(sealed) = &self.sealed {
            merged.extend(
                sealed
                    .iter()
                    .filter(|i| filter.admit(i))
                    .map(|i| (*i, i.rect.min_dist2(query).sqrt())),
            );
        }
        let mut tmp = Vec::new();
        for c in &self.components {
            let s = c.nearest_neighbors_filtered_into(query, k, scratch, &mut tmp, |it| {
                filter.admit(it)
            })?;
            stats.absorb_traversal(&s);
            merged.append(&mut tmp);
        }
        merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        merged.truncate(k);
        out.extend(merged);
        stats.results = out.len() as u64;
        crate::obs::metrics()
            .knn_query_us
            .record_duration_us(t0.elapsed());
        Ok(stats)
    }

    /// All live items (test helper; full scan).
    pub fn items(&self) -> Result<Vec<Item<D>>, LiveError> {
        let mut out = self.memtable.clone();
        let mut filter = self.tombstones.filter();
        if let Some(sealed) = &self.sealed {
            out.extend(sealed.iter().filter(|i| filter.admit(i)));
        }
        for c in &self.components {
            for it in c.items()? {
                if filter.admit(&it) {
                    out.push(it);
                }
            }
        }
        Ok(out)
    }
}
