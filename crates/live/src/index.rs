//! [`LiveIndex`]: the durable, reader-concurrent face of the LPR-tree.
//!
//! ## Moving parts
//!
//! * **WAL** ([`crate::wal`]) — every insert/delete is appended and
//!   `fsync`ed before it is acknowledged or becomes visible.
//! * **Memtable** ([`crate::memtable`]) — acknowledged writes accumulate
//!   here; queries scan it alongside the components.
//! * **Components** — bulk-loaded PR-trees in geometric slots
//!   ([`GeometricPolicy`]), persisted in one `pr-store` file and opened
//!   through checksum-verifying, snapshot-pinned devices.
//! * **Merges** ([`crate::merge`]) — a memtable overflow seals it into
//!   an immutable batch and merges batch + lower components into a new
//!   bulk-loaded component, committed atomically (pages + manifest +
//!   superblock flip) before the WAL's old segments are pruned.
//!
//! ## Locking discipline
//!
//! * `writer` (mutex) — serializes every mutation: WAL append, sequence
//!   assignment, and all `core` writes happen while holding it.
//! * `core` (rwlock) — the queryable state. **Write-locked only while
//!   `writer` is held**, and only for O(memtable) pointer swaps — never
//!   across I/O. Readers take the read lock just long enough to clone a
//!   [`LiveSnapshot`] (memtable copy + `Arc` bumps), then query
//!   entirely off-lock through the PR 3 decode-free engine.
//! * `maintenance` (mutex) — serializes whole merges end-to-end.
//!
//! Consequence: readers never wait on a merge (its long phases hold no
//! core lock; its swap is a pointer exchange), and a snapshot taken at
//! any moment is a clean op-boundary cut that stays frozen — pinned
//! store devices keep serving replaced components, even after the store
//! file itself is compact-rewritten.

use crate::error::LiveError;
use crate::manifest::LiveManifest;
use crate::memtable::Memtable;
use crate::merge::{run_merge, MergeKind};
use crate::wal::{Wal, WalOp, WalRecord};
use parking_lot::{Mutex, RwLock};
use pr_geom::{Item, Point, Rect};
use pr_store::Store;
use pr_tree::dynamic::{same_identity, GeometricPolicy, Tombstones};
use pr_tree::{LeafCache, QueryScratch, QueryStats, RTree, TreeParams};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`LiveIndex`].
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// Memtable seal threshold (the logarithmic method's buffer size).
    pub buffer_cap: usize,
    /// Run merges on a dedicated background thread (`true`) or inline on
    /// the overflowing writer (`false`). Readers never block either way;
    /// background mode also keeps *writers* responsive during merges.
    pub background_merge: bool,
    /// Background mode only: writers stall (briefly, on a condvar) once
    /// the memtable exceeds `backpressure_factor * buffer_cap` while a
    /// sealed batch is still being merged, bounding memory.
    pub backpressure_factor: usize,
    /// Byte budget of the shared leaf cache all store-backed components
    /// read through ([`pr_tree::LeafCache`]): transcoded leaf pages are
    /// kept in memory across queries, so repeated window/k-NN traffic
    /// skips the per-leaf device read entirely. `0` disables the cache
    /// (every leaf visit reads the store, verify-once CRC still
    /// applies). One cache spans every component of the index; merges
    /// and compactions retire replaced snapshots' entries wholesale.
    pub leaf_cache_bytes: usize,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            buffer_cap: 1024,
            background_merge: true,
            backpressure_factor: 4,
            leaf_cache_bytes: pr_tree::DEFAULT_LEAF_CACHE_BYTES,
        }
    }
}

/// Failure-injection points for crash-recovery tests. `#[doc(hidden)]`:
/// not part of the public API contract.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after the WAL rotation (segments fsynced) but before the
    /// store commit — the manifest flip never happens.
    BeforeCommit = 1,
    /// Die after the store commit (manifest flipped, durable) but before
    /// the in-memory swap and WAL pruning.
    AfterCommit = 2,
}

/// The queryable state, swapped atomically under the core write lock.
pub(crate) struct Core<const D: usize> {
    pub(crate) memtable: Memtable<D>,
    /// A sealed (immutable) memtable awaiting its merge.
    pub(crate) sealed: Option<Arc<Vec<Item<D>>>>,
    /// Geometric component slots; every tree is store-backed and warmed.
    pub(crate) components: Vec<Option<Arc<RTree<D>>>>,
    /// Dead identities among sealed + components (never the memtable).
    pub(crate) tombstones: Arc<Tombstones<D>>,
    /// Live item count.
    pub(crate) live: u64,
    /// Highest acknowledged (fsynced + applied) WAL sequence.
    pub(crate) durable_seq: u64,
    /// The committed manifest's WAL cut.
    pub(crate) merged_seq: u64,
    /// Completed merge commits this process.
    pub(crate) merges: u64,
}

pub(crate) struct WriterState {
    pub(crate) wal: Wal,
    /// Next sequence number to assign.
    pub(crate) next_seq: u64,
}

/// Background-worker signaling.
pub(crate) struct Signal {
    pub(crate) merge: bool,
    pub(crate) full: bool,
    pub(crate) shutdown: bool,
    /// True from the moment the worker claims a request (clearing its
    /// flag) until its merge finishes — without this, `wait_idle` could
    /// observe cleared flags + no sealed batch while the worker is still
    /// between claiming and sealing, and report idle too early.
    pub(crate) busy: bool,
    /// First error a background merge hit (surfaced by flush/wait_idle).
    pub(crate) error: Option<String>,
}

pub(crate) struct LiveInner<const D: usize> {
    pub(crate) dir: PathBuf,
    pub(crate) params: TreeParams,
    pub(crate) opts: LiveOptions,
    pub(crate) policy: GeometricPolicy,
    pub(crate) writer: Mutex<WriterState>,
    pub(crate) core: RwLock<Core<D>>,
    pub(crate) store: Mutex<Store>,
    pub(crate) maintenance: Mutex<()>,
    pub(crate) signal: StdMutex<Signal>,
    pub(crate) cv: Condvar,
    /// Shared leaf cache spanning every store-backed component (`None`
    /// when `opts.leaf_cache_bytes == 0`). Each committed snapshot's
    /// components attach under a fresh cache epoch; the merge swap
    /// retires all older epochs.
    pub(crate) leaf_cache: Option<Arc<LeafCache<D>>>,
    /// Failure injection: 0 = none, else a [`CrashPoint`] discriminant,
    /// consumed by the next merge.
    pub(crate) crash_at: AtomicU8,
    /// Held exclusive lock on `dir/LOCK` for this index's lifetime
    /// (released by the OS when the file closes, crash included).
    _lock: std::fs::File,
}

impl<const D: usize> Core<D> {
    /// Counts stored copies (sealed batch + every component) of `item`'s
    /// exact bit identity. This is the **one** implementation of the
    /// copies-vs-tombstones liveness decision — the live delete path and
    /// WAL-replay re-derivation both call it, so their equivalence (which
    /// crash recovery depends on) is structural, not copy-paste.
    pub(crate) fn stored_copies(
        &self,
        item: &Item<D>,
        scratch: &mut QueryScratch<D>,
        hits: &mut Vec<Item<D>>,
    ) -> Result<u64, LiveError> {
        let mut copies = 0u64;
        if let Some(sealed) = &self.sealed {
            copies += sealed.iter().filter(|i| same_identity(i, item)).count() as u64;
        }
        for c in self.components.iter().flatten() {
            c.window_into(&item.rect, scratch, hits)?;
            copies += hits.iter().filter(|h| same_identity(h, item)).count() as u64;
        }
        Ok(copies)
    }
}

impl<const D: usize> LiveInner<D> {
    /// Fires an injected crash if armed for `point`: the merge aborts
    /// exactly there, leaving disk (and deliberately inconsistent
    /// memory) as a real crash would.
    pub(crate) fn crash_check(&self, point: CrashPoint) -> Result<(), LiveError> {
        if self.crash_at.load(Ordering::Acquire) == point as u8 {
            self.crash_at.store(0, Ordering::Release);
            return Err(LiveError::Injected(match point {
                CrashPoint::BeforeCommit => "before store commit",
                CrashPoint::AfterCommit => "after store commit",
            }));
        }
        Ok(())
    }
}

/// A durable, concurrently-readable LPR-tree.
///
/// Cloneable-by-`Arc` usage: wrap in `Arc` and share; all methods take
/// `&self`. See the module docs for the architecture and
/// [`LiveIndex::snapshot`] for the read path.
pub struct LiveIndex<const D: usize> {
    inner: Arc<LiveInner<D>>,
    worker: Option<JoinHandle<()>>,
}

// Compile-time proof that one index (and its snapshots) can be shared
// across writer and reader threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LiveIndex<2>>();
    assert_send_sync::<LiveSnapshot<2>>();
};

impl<const D: usize> LiveIndex<D> {
    /// Creates a fresh index in `dir` (created if absent). Any previous
    /// index there is destroyed whole: the store file is truncated and
    /// **every** stale WAL segment is removed — `Wal::create` only
    /// truncates segment 1, and a leftover higher segment would
    /// otherwise be replayed into the new index on a later reopen.
    pub fn create(dir: &Path, params: TreeParams, opts: LiveOptions) -> Result<Self, LiveError> {
        std::fs::create_dir_all(dir)?;
        let lock = acquire_dir_lock(dir)?;
        // Destruction order matters for crash safety: unlink the store
        // FIRST (a crash now leaves "no index here" — a clean open error)
        // and only then the stale WAL segments. The reverse order has a
        // window where the old store exists with its WAL gone: open()
        // would silently serve the old snapshot minus every write that
        // lived only in the deleted log.
        if dir.join("index.prt").exists() {
            std::fs::remove_file(dir.join("index.prt"))?;
            pr_em::fsync_dir(dir)?;
        }
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            if (name.starts_with("wal-") && name.ends_with(".log")) || name == "index.prt.tmp" {
                std::fs::remove_file(&path)?;
            }
        }
        pr_em::fsync_dir(dir)?;
        let store = Store::create::<D>(&dir.join("index.prt"), params)?;
        pr_em::fsync_dir(dir)?;
        let wal = Wal::create(dir)?;
        Self::assemble(
            dir,
            params,
            opts,
            store,
            wal,
            LiveManifest::default(),
            Vec::new(),
            lock,
        )
    }

    /// Opens an existing index: recovers the newest committed snapshot,
    /// then replays WAL records past the manifest's cut into the
    /// memtable — every acknowledged write survives, in order.
    pub fn open(dir: &Path, opts: LiveOptions) -> Result<Self, LiveError> {
        let lock = acquire_dir_lock(dir)?;
        // A compaction that died before its atomic rename leaves a stale
        // temp file; it was never the index.
        std::fs::remove_file(dir.join("index.prt.tmp")).ok();
        let store = Store::open(&dir.join("index.prt"))?;
        let sb = *store.superblock();
        if sb.dim != D as u32 {
            return Err(LiveError::Store(pr_store::StoreError::DimensionMismatch {
                file: sb.dim,
                requested: D as u32,
            }));
        }
        let params = sb.meta.params;
        let app = store.app();
        let manifest = if app.is_empty() {
            LiveManifest::default()
        } else {
            LiveManifest::<D>::decode(app)?
        };
        let (wal, records) = Wal::open::<D>(dir)?;
        Self::assemble(dir, params, opts, store, wal, manifest, records, lock)
    }

    /// [`LiveIndex::open`] if an index exists in `dir`, else
    /// [`LiveIndex::create`].
    pub fn open_or_create(
        dir: &Path,
        params: TreeParams,
        opts: LiveOptions,
    ) -> Result<Self, LiveError> {
        if dir.join("index.prt").exists() {
            Self::open(dir, opts)
        } else {
            Self::create(dir, params, opts)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dir: &Path,
        params: TreeParams,
        opts: LiveOptions,
        store: Store,
        wal: Wal,
        manifest: LiveManifest<D>,
        records: Vec<WalRecord<D>>,
        lock: std::fs::File,
    ) -> Result<Self, LiveError> {
        // Components out of the store, arranged into their slots. All
        // components of one snapshot share one page-id space (and one
        // store device), so they attach to the shared leaf cache under
        // a single fresh epoch.
        let leaf_cache: Option<Arc<LeafCache<D>>> =
            (opts.leaf_cache_bytes > 0).then(|| Arc::new(LeafCache::new(opts.leaf_cache_bytes)));
        let trees = store.components::<D>()?;
        if trees.len() != manifest.slots.len() {
            return Err(LiveError::Corrupt(format!(
                "store holds {} components but the live manifest places {}",
                trees.len(),
                manifest.slots.len()
            )));
        }
        let nslots = manifest
            .slots
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(0);
        let cache_epoch = leaf_cache.as_ref().map(|c| c.register_epoch());
        let mut components: Vec<Option<Arc<RTree<D>>>> = Vec::new();
        components.resize_with(nslots, || None);
        for (slot, mut tree) in manifest.slots.iter().zip(trees) {
            let slot = *slot as usize;
            if components[slot].is_some() {
                return Err(LiveError::Corrupt(format!(
                    "live manifest places two components in slot {slot}"
                )));
            }
            if let (Some(cache), Some(epoch)) = (&leaf_cache, cache_epoch) {
                tree.attach_leaf_cache(Arc::clone(cache), epoch);
            }
            tree.warm_cache()?;
            components[slot] = Some(Arc::new(tree));
        }

        let stored: u64 = components.iter().flatten().map(|c| c.len()).sum::<u64>();
        let mut core = Core {
            memtable: Memtable::from_items(manifest.memtable),
            sealed: None,
            components,
            tombstones: Arc::new(manifest.tombstones),
            live: 0,
            durable_seq: manifest.wal_seq,
            merged_seq: manifest.wal_seq,
            merges: 0,
        };
        core.live = stored + core.memtable.len() as u64 - core.tombstones.total();

        // WAL replay: everything past the manifest's cut, in order.
        let mut next_seq = manifest.wal_seq + 1;
        let mut scratch = QueryScratch::new();
        let mut hits = Vec::new();
        for rec in records {
            if rec.seq <= manifest.wal_seq {
                continue;
            }
            match rec.op {
                WalOp::Insert => {
                    core.memtable.insert(rec.item);
                    core.live += 1;
                }
                WalOp::Delete => {
                    // Re-derive where the delete landed against the
                    // reconstructed state — the same decision the live
                    // path made.
                    if core.memtable.remove(&rec.item) {
                        core.live -= 1;
                    } else {
                        let copies = core.stored_copies(&rec.item, &mut scratch, &mut hits)?;
                        if copies > core.tombstones.count(&rec.item) as u64 {
                            Arc::make_mut(&mut core.tombstones).add(&rec.item);
                            core.live -= 1;
                        }
                    }
                }
            }
            core.durable_seq = rec.seq;
            next_seq = rec.seq + 1;
        }

        let inner = Arc::new(LiveInner {
            dir: dir.to_path_buf(),
            params,
            opts,
            policy: GeometricPolicy::new(opts.buffer_cap),
            writer: Mutex::new(WriterState { wal, next_seq }),
            core: RwLock::new(core),
            store: Mutex::new(store),
            maintenance: Mutex::new(()),
            signal: StdMutex::new(Signal {
                merge: false,
                full: false,
                shutdown: false,
                busy: false,
                error: None,
            }),
            cv: Condvar::new(),
            leaf_cache,
            crash_at: AtomicU8::new(0),
            _lock: lock,
        });

        let worker = if opts.background_merge {
            let inner = Arc::clone(&inner);
            Some(std::thread::spawn(move || worker_loop(inner)))
        } else {
            None
        };
        Ok(LiveIndex { inner, worker })
    }

    /// Index directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Tree parameters the components are built with.
    pub fn params(&self) -> &TreeParams {
        &self.inner.params
    }

    /// Live item count.
    pub fn len(&self) -> u64 {
        self.inner.core.read().live
    }

    /// True when no live items exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts one item (ids must be unique among live items). Returns
    /// once the WAL record is fsynced — the write survives any crash
    /// from here on.
    pub fn insert(&self, item: Item<D>) -> Result<(), LiveError> {
        self.insert_batch(std::slice::from_ref(&item))
    }

    /// Inserts a batch with **one** WAL fsync for the whole batch — the
    /// ingest throughput path. Acknowledged (and crash-durable) as a
    /// unit when this returns.
    pub fn insert_batch(&self, items: &[Item<D>]) -> Result<(), LiveError> {
        if items.is_empty() {
            return Ok(());
        }
        let inner = &self.inner;
        let overflow = {
            let mut w = inner.writer.lock();
            let first = w.next_seq;
            let records: Vec<WalRecord<D>> = items
                .iter()
                .enumerate()
                .map(|(i, item)| WalRecord {
                    seq: first + i as u64,
                    op: WalOp::Insert,
                    item: *item,
                })
                .collect();
            w.wal.append(&records)?; // fsync — the acknowledgment point
            w.next_seq += items.len() as u64;
            let mut core = inner.core.write();
            for item in items {
                core.memtable.insert(*item);
            }
            core.live += items.len() as u64;
            core.durable_seq = w.next_seq - 1;
            core.memtable.len() >= inner.policy.buffer_cap()
        };
        if overflow {
            self.on_overflow()?;
        }
        Ok(())
    }

    /// Deletes the live item with this exact `(id, rect)` identity.
    /// Returns `false` (without logging anything) if no such live item
    /// exists. Like inserts, a `true` return means the delete is
    /// durable.
    pub fn delete(&self, item: &Item<D>) -> Result<bool, LiveError> {
        Ok(self.delete_batch(std::slice::from_ref(item))? == 1)
    }

    /// Deletes a batch with **one** WAL fsync for every accepted op —
    /// the bulk-deletion analogue of [`LiveIndex::insert_batch`].
    /// Victims with no matching live item are skipped (not logged);
    /// decisions within the batch see earlier victims' effects, exactly
    /// as if applied serially. Returns how many items were deleted;
    /// all of them are durable when this returns.
    ///
    /// Cost note: each victim's liveness decision probes the components
    /// (a few cached-node reads) **while the writer lock is held**, so
    /// very large batches delay concurrent writers — size batches in
    /// the hundreds-to-thousands, as the CLI does.
    pub fn delete_batch(&self, items: &[Item<D>]) -> Result<u64, LiveError> {
        enum Target {
            Memtable,
            Tombstone,
        }
        if items.is_empty() {
            return Ok(0);
        }
        let inner = &self.inner;
        let (deleted, needs_compaction) = {
            let mut w = inner.writer.lock();
            // Decide every victim against the current state (stable
            // while we hold the writer lock: every core mutation,
            // including merge swaps, requires it) plus the batch's own
            // pending effects — a victim already claimed from the
            // memtable or already tombstoned by this batch is not live
            // for later duplicates.
            let mut accepted: Vec<(Item<D>, Target)> = Vec::new();
            {
                let core = inner.core.read();
                let mut claimed_mem: Vec<Item<D>> = Vec::new();
                let mut pending_tombs = Tombstones::<D>::new();
                let mut scratch = QueryScratch::new();
                let mut hits = Vec::new();
                for item in items {
                    if !claimed_mem.iter().any(|i| same_identity(i, item))
                        && core.memtable.contains(item)
                    {
                        claimed_mem.push(*item);
                        accepted.push((*item, Target::Memtable));
                        continue;
                    }
                    let copies = core.stored_copies(item, &mut scratch, &mut hits)?;
                    let dead =
                        core.tombstones.count(item) as u64 + pending_tombs.count(item) as u64;
                    if copies > dead {
                        pending_tombs.add(item);
                        accepted.push((*item, Target::Tombstone));
                    }
                }
            }
            if accepted.is_empty() {
                return Ok(0);
            }
            // One append + fsync acknowledges the whole batch.
            let first = w.next_seq;
            let records: Vec<WalRecord<D>> = accepted
                .iter()
                .enumerate()
                .map(|(i, (item, _))| WalRecord {
                    seq: first + i as u64,
                    op: WalOp::Delete,
                    item: *item,
                })
                .collect();
            w.wal.append(&records)?;
            w.next_seq += accepted.len() as u64;
            let mut core = inner.core.write();
            core.durable_seq = w.next_seq - 1;
            core.live -= accepted.len() as u64;
            let mut any_tombstone = false;
            for (item, target) in &accepted {
                match target {
                    Target::Memtable => {
                        let removed = core.memtable.remove(item);
                        debug_assert!(removed, "decision said memtable");
                    }
                    Target::Tombstone => {
                        Arc::make_mut(&mut core.tombstones).add(item);
                        any_tombstone = true;
                    }
                }
            }
            let needs_compaction = any_tombstone && {
                let stored: u64 = core
                    .components
                    .iter()
                    .flatten()
                    .map(|c| c.len())
                    .sum::<u64>()
                    + core.sealed.as_ref().map_or(0, |s| s.len() as u64);
                inner
                    .policy
                    .needs_compaction(core.tombstones.total(), stored)
            };
            (accepted.len() as u64, needs_compaction)
        };
        if needs_compaction {
            self.request_merge(MergeKind::Full { reclaim: false })?;
        }
        Ok(deleted)
    }

    /// An epoch-pinned, point-in-time view for querying. Cheap: one
    /// memtable copy plus `Arc` bumps. The snapshot stays valid and
    /// immutable across any amount of concurrent ingest, merging, and
    /// compaction.
    pub fn snapshot(&self) -> LiveSnapshot<D> {
        let core = self.inner.core.read();
        LiveSnapshot {
            memtable: core.memtable.items().to_vec(),
            sealed: core.sealed.clone(),
            components: core.components.iter().flatten().map(Arc::clone).collect(),
            tombstones: Arc::clone(&core.tombstones),
            live: core.live,
            seq: core.durable_seq,
        }
    }

    /// One-shot window query (takes a fresh snapshot; hot loops should
    /// hold a [`LiveSnapshot`] and a [`QueryScratch`] instead).
    pub fn window(&self, query: &Rect<D>) -> Result<(Vec<Item<D>>, QueryStats), LiveError> {
        let snap = self.snapshot();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = snap.window_into(query, &mut scratch, &mut out)?;
        Ok((out, stats))
    }

    /// One-shot k-nearest-neighbors query.
    pub fn nearest_neighbors(
        &self,
        query: &Point<D>,
        k: usize,
    ) -> Result<(Vec<(Item<D>, f64)>, QueryStats), LiveError> {
        let snap = self.snapshot();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = snap.nearest_neighbors_into(query, k, &mut scratch, &mut out)?;
        Ok((out, stats))
    }

    /// Forces the memtable (any size) through a merge, synchronously.
    /// After this returns every prior write is reflected in committed
    /// components and the WAL holds nothing the manifest doesn't cover.
    pub fn flush(&self) -> Result<(), LiveError> {
        self.surface_worker_error()?;
        run_merge(&self.inner, MergeKind::Force)?;
        self.notify_done();
        Ok(())
    }

    /// Global compaction: merges memtable + every component into one
    /// tree (dropping all tombstones) and rewrites the store into a
    /// fresh file (atomic rename), reclaiming the space of superseded
    /// snapshots. Readers holding older snapshots keep working — their
    /// devices pin the unlinked file.
    pub fn compact(&self) -> Result<(), LiveError> {
        self.surface_worker_error()?;
        run_merge(&self.inner, MergeKind::Full { reclaim: true })?;
        self.notify_done();
        Ok(())
    }

    /// Blocks until no sealed batch is pending and no requested
    /// background merge remains, surfacing any background-merge error.
    pub fn wait_idle(&self) -> Result<(), LiveError> {
        loop {
            self.surface_worker_error()?;
            let busy = {
                let sig = self.inner.signal.lock().expect("signal mutex");
                sig.merge || sig.full || sig.busy
            } || self.inner.core.read().sealed.is_some();
            if !busy {
                return Ok(());
            }
            let sig = self.inner.signal.lock().expect("signal mutex");
            let _ = self
                .inner
                .cv
                .wait_timeout(sig, Duration::from_millis(20))
                .expect("signal mutex");
        }
    }

    /// Operational counters for `prtree stats` and tests.
    pub fn stats(&self) -> Result<LiveStats, LiveError> {
        let (live, memtable, sealed, components, tombstones, durable_seq, merged_seq, merges) = {
            let core = self.inner.core.read();
            (
                core.live,
                core.memtable.len(),
                core.sealed.as_ref().map_or(0, |s| s.len()),
                core.components
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, c)| c.as_ref().map(|t| (slot, t.len())))
                    .collect::<Vec<_>>(),
                core.tombstones.total(),
                core.durable_seq,
                core.merged_seq,
                core.merges,
            )
        };
        let (wal_segments, wal_bytes) = {
            let w = self.inner.writer.lock();
            (w.wal.num_segments()?, w.wal.total_bytes()?)
        };
        let (store_epoch, store_file_bytes) = {
            let store = self.inner.store.lock();
            (store.superblock().epoch, store.file_len()?)
        };
        let (leaf_cache_hits, leaf_cache_misses, leaf_cache_bytes) = match &self.inner.leaf_cache {
            Some(cache) => {
                let (h, m) = cache.hit_stats();
                (h, m, cache.resident_bytes() as u64)
            }
            None => (0, 0, 0),
        };
        Ok(LiveStats {
            live,
            memtable,
            sealed,
            components,
            tombstones,
            durable_seq,
            merged_seq,
            merges,
            wal_segments,
            wal_bytes,
            store_epoch,
            store_file_bytes,
            leaf_cache_hits,
            leaf_cache_misses,
            leaf_cache_bytes,
        })
    }

    /// Arms a one-shot injected crash for the next merge (test harness).
    #[doc(hidden)]
    pub fn inject_crash(&self, point: CrashPoint) {
        self.inner.crash_at.store(point as u8, Ordering::Release);
    }

    fn request_merge(&self, kind: MergeKind) -> Result<(), LiveError> {
        if self.inner.opts.background_merge {
            {
                let mut sig = self.inner.signal.lock().expect("signal mutex");
                match kind {
                    MergeKind::Overflow => sig.merge = true,
                    _ => sig.full = true,
                }
            }
            self.inner.cv.notify_all();
            Ok(())
        } else {
            run_merge(&self.inner, kind)?;
            self.notify_done();
            Ok(())
        }
    }

    fn on_overflow(&self) -> Result<(), LiveError> {
        self.request_merge(MergeKind::Overflow)?;
        if !self.inner.opts.background_merge {
            return Ok(());
        }
        // Backpressure: a writer outrunning the merger stalls here once
        // the memtable is several seals deep, holding no locks.
        let limit = self
            .inner
            .opts
            .backpressure_factor
            .max(1)
            .saturating_mul(self.inner.policy.buffer_cap());
        loop {
            self.surface_worker_error()?;
            let crowded = {
                let core = self.inner.core.read();
                core.sealed.is_some() && core.memtable.len() >= limit
            };
            if !crowded {
                return Ok(());
            }
            let sig = self.inner.signal.lock().expect("signal mutex");
            let _ = self
                .inner
                .cv
                .wait_timeout(sig, Duration::from_millis(10))
                .expect("signal mutex");
        }
    }

    fn surface_worker_error(&self) -> Result<(), LiveError> {
        let mut sig = self.inner.signal.lock().expect("signal mutex");
        match sig.error.take() {
            Some(msg) => Err(LiveError::Corrupt(format!(
                "background merge failed: {msg}"
            ))),
            None => Ok(()),
        }
    }

    fn notify_done(&self) {
        self.inner.cv.notify_all();
    }
}

impl<const D: usize> Drop for LiveIndex<D> {
    fn drop(&mut self) {
        if let Some(handle) = self.worker.take() {
            {
                let mut sig = self.inner.signal.lock().expect("signal mutex");
                sig.shutdown = true;
            }
            self.inner.cv.notify_all();
            let _ = handle.join();
        }
        // An unmerged memtable/sealed batch needs no goodbye: the WAL
        // has every acknowledged record and reopen replays it.
    }
}

fn worker_loop<const D: usize>(inner: Arc<LiveInner<D>>) {
    loop {
        let kind = {
            let mut sig = inner.signal.lock().expect("signal mutex");
            loop {
                if sig.shutdown {
                    return;
                }
                if sig.full {
                    sig.full = false;
                    sig.busy = true;
                    break MergeKind::Full { reclaim: false };
                }
                if sig.merge {
                    sig.merge = false;
                    sig.busy = true;
                    break MergeKind::Overflow;
                }
                sig = inner.cv.wait(sig).expect("signal mutex");
            }
        };
        let outcome = run_merge(&inner, kind);
        {
            let mut sig = inner.signal.lock().expect("signal mutex");
            sig.busy = false;
            if let Err(e) = outcome {
                if sig.error.is_none() {
                    sig.error = Some(e.to_string());
                }
            }
        }
        inner.cv.notify_all();
    }
}

/// Takes the exclusive advisory lock on `dir/LOCK`, refusing to share
/// the directory with any other live process: even "read-only" opens
/// truncate torn WAL tails and clean compaction temp files, which would
/// corrupt a concurrently running writer. The lock dies with the file
/// handle (process exit/crash included), so no stale-lock recovery is
/// needed.
fn acquire_dir_lock(dir: &Path) -> Result<std::fs::File, LiveError> {
    let lock = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join("LOCK"))?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(std::fs::TryLockError::WouldBlock) => Err(LiveError::Locked(dir.to_path_buf())),
        Err(std::fs::TryLockError::Error(e)) => Err(e.into()),
    }
}

/// Operational counters of a live index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveStats {
    /// Live item count.
    pub live: u64,
    /// Items in the active memtable.
    pub memtable: usize,
    /// Items in the sealed batch (0 when no merge pending).
    pub sealed: usize,
    /// `(slot, items)` per committed component.
    pub components: Vec<(usize, u64)>,
    /// Outstanding tombstones.
    pub tombstones: u64,
    /// Highest acknowledged WAL sequence.
    pub durable_seq: u64,
    /// The committed manifest's WAL cut.
    pub merged_seq: u64,
    /// Merge commits completed this process.
    pub merges: u64,
    /// WAL segment files on disk.
    pub wal_segments: u64,
    /// Total WAL bytes on disk.
    pub wal_bytes: u64,
    /// Store commit epoch.
    pub store_epoch: u64,
    /// Store file size in bytes.
    pub store_file_bytes: u64,
    /// Shared leaf-cache hits since open (0 when the cache is disabled).
    pub leaf_cache_hits: u64,
    /// Shared leaf-cache misses since open.
    pub leaf_cache_misses: u64,
    /// Approximate bytes resident in the shared leaf cache.
    pub leaf_cache_bytes: u64,
}

/// An immutable, point-in-time view of a [`LiveIndex`].
///
/// Queries fan out over the memtable copy, the sealed batch (if a merge
/// is in flight), and every component through the decode-free engine —
/// one shared [`QueryScratch`] across all of them — with tombstones
/// filtered by multiset subtraction. Holding a snapshot pins its
/// components' store pages; results are bit-stable no matter what the
/// live index does meanwhile.
pub struct LiveSnapshot<const D: usize> {
    memtable: Vec<Item<D>>,
    sealed: Option<Arc<Vec<Item<D>>>>,
    components: Vec<Arc<RTree<D>>>,
    tombstones: Arc<Tombstones<D>>,
    live: u64,
    seq: u64,
}

impl<const D: usize> LiveSnapshot<D> {
    /// Live item count at snapshot time.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when the snapshot holds no live items.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest acknowledged WAL sequence reflected in this snapshot.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of components in view.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Window query with caller-owned buffers (allocation-free when
    /// reused).
    pub fn window_into(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<Item<D>>,
    ) -> Result<QueryStats, LiveError> {
        out.clear();
        out.extend(self.memtable.iter().filter(|i| i.rect.intersects(query)));
        let mut stats = QueryStats::default();
        let mut filter = self.tombstones.filter();
        if let Some(sealed) = &self.sealed {
            out.extend(
                sealed
                    .iter()
                    .filter(|i| i.rect.intersects(query) && filter.admit(i)),
            );
        }
        for c in &self.components {
            let start = out.len();
            let s = c.window_append_into(query, scratch, out)?;
            stats.absorb_traversal(&s);
            filter.retain_admitted(out, start);
        }
        stats.results = out.len() as u64;
        Ok(stats)
    }

    /// Convenience window query.
    pub fn window(&self, query: &Rect<D>) -> Result<Vec<Item<D>>, LiveError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.window_into(query, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// k-nearest-neighbors with caller-owned buffers: each component
    /// answers through the decode-free best-first engine with the
    /// query's shared tombstone filter applied **inside the loop**
    /// ([`RTree::nearest_neighbors_filtered_into`]), so every component
    /// yields its `k` nearest *live* items directly — no over-fetch by
    /// the outstanding tombstone count, no degradation toward a
    /// component scan as tombstones approach the compaction trigger.
    /// The lists are merged with the memtable/sealed scans and the
    /// global top `k` kept; one filter spans sealed batch + every
    /// component, keeping the multiset subtraction exact (see
    /// `LprTree::nearest_neighbors_into` for the argument).
    pub fn nearest_neighbors_into(
        &self,
        query: &Point<D>,
        k: usize,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<(Item<D>, f64)>,
    ) -> Result<QueryStats, LiveError> {
        out.clear();
        let mut stats = QueryStats::default();
        if k == 0 {
            return Ok(stats);
        }
        let mut merged: Vec<(Item<D>, f64)> = self
            .memtable
            .iter()
            .map(|i| (*i, i.rect.min_dist2(query).sqrt()))
            .collect();
        let mut filter = self.tombstones.filter();
        if let Some(sealed) = &self.sealed {
            merged.extend(
                sealed
                    .iter()
                    .filter(|i| filter.admit(i))
                    .map(|i| (*i, i.rect.min_dist2(query).sqrt())),
            );
        }
        let mut tmp = Vec::new();
        for c in &self.components {
            let s = c.nearest_neighbors_filtered_into(query, k, scratch, &mut tmp, |it| {
                filter.admit(it)
            })?;
            stats.absorb_traversal(&s);
            merged.append(&mut tmp);
        }
        merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        merged.truncate(k);
        out.extend(merged);
        stats.results = out.len() as u64;
        Ok(stats)
    }

    /// All live items (test helper; full scan).
    pub fn items(&self) -> Result<Vec<Item<D>>, LiveError> {
        let mut out = self.memtable.clone();
        let mut filter = self.tombstones.filter();
        if let Some(sealed) = &self.sealed {
            out.extend(sealed.iter().filter(|i| filter.admit(i)));
        }
        for c in &self.components {
            for it in c.items()? {
                if filter.admit(&it) {
                    out.push(it);
                }
            }
        }
        Ok(out)
    }
}
