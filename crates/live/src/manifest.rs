//! The live index's checkpoint record — the application blob committed
//! through `pr-store`'s multi-component manifest.
//!
//! A merge commit writes one of these alongside the component snapshot
//! list, making the pair `{component trees, LiveManifest}` a **complete,
//! consistent cut** of the index at WAL sequence `wal_seq`: component
//! placement (slots), the tombstone multiset, and the memtable contents
//! at that sequence. Reopen restores the cut, then replays only WAL
//! records with `seq > wal_seq` — so a crash at *any* point loses
//! nothing acknowledged and double-applies nothing.
//!
//! Integrity: this blob is embedded in `pr_store::ManifestRecord`, whose
//! CRC covers every byte here; a flipped bit fails the snapshot at open
//! and recovery falls back one epoch. No separate checksum is needed.
//!
//! ```text
//! off  sz   field
//! 0    8    magic "PRLIVE1\0"
//! 8    4    version
//! 12   4    reserved
//! 16   8    wal_seq
//! 24   4    num_components
//! 28   4    num_tombstones (distinct keys)
//! 32   4    num_memtable
//! 36   4    reserved
//! 40   4c   component slot indices (u32 each, parallel to the store
//!           manifest's TreeMeta list)
//! …    40t  tombstones: item bytes + count (u32) each
//! …    36m  memtable items
//! ```

use crate::error::LiveError;
use pr_geom::Item;
use pr_tree::dynamic::tombstone::{TombstoneKey, Tombstones};

/// Live-manifest magic.
pub const LIVE_MAGIC: [u8; 8] = *b"PRLIVE1\0";
/// Live-manifest version.
pub const LIVE_VERSION: u32 = 1;
const HEADER_SIZE: usize = 40;

/// The durable cut of the live index at one WAL sequence number.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveManifest<const D: usize> {
    /// Every WAL record with `seq <= wal_seq` is reflected in the
    /// committed components + tombstones + memtable; records above it
    /// are replayed from the WAL at open.
    pub wal_seq: u64,
    /// Geometric slot of each committed component, parallel to the
    /// store manifest's component list.
    pub slots: Vec<u32>,
    /// Dead `(id, rect)` identities among the committed components.
    pub tombstones: Tombstones<D>,
    /// Memtable contents at the cut.
    pub memtable: Vec<Item<D>>,
}

impl<const D: usize> LiveManifest<D> {
    /// Serializes the checkpoint (see module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let item_size = Item::<D>::ENCODED_SIZE;
        let tombs: Vec<(TombstoneKey<D>, u32)> = self.tombstones.entries().collect();
        let size = HEADER_SIZE
            + self.slots.len() * 4
            + tombs.len() * (item_size + 4)
            + self.memtable.len() * item_size;
        let mut buf = vec![0u8; size];
        buf[0..8].copy_from_slice(&LIVE_MAGIC);
        buf[8..12].copy_from_slice(&LIVE_VERSION.to_le_bytes());
        buf[16..24].copy_from_slice(&self.wal_seq.to_le_bytes());
        buf[24..28].copy_from_slice(&(self.slots.len() as u32).to_le_bytes());
        buf[28..32].copy_from_slice(&(tombs.len() as u32).to_le_bytes());
        buf[32..36].copy_from_slice(&(self.memtable.len() as u32).to_le_bytes());
        let mut off = HEADER_SIZE;
        for slot in &self.slots {
            buf[off..off + 4].copy_from_slice(&slot.to_le_bytes());
            off += 4;
        }
        for (key, count) in &tombs {
            key.to_item().encode(&mut buf[off..off + item_size]);
            off += item_size;
            buf[off..off + 4].copy_from_slice(&count.to_le_bytes());
            off += 4;
        }
        for item in &self.memtable {
            item.encode(&mut buf[off..off + item_size]);
            off += item_size;
        }
        debug_assert_eq!(off, size);
        buf
    }

    /// Deserializes a checkpoint written by [`LiveManifest::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, LiveError> {
        let item_size = Item::<D>::ENCODED_SIZE;
        if buf.len() < HEADER_SIZE {
            return Err(LiveError::Corrupt(format!(
                "live manifest is {} bytes, too short for a header",
                buf.len()
            )));
        }
        if buf[0..8] != LIVE_MAGIC {
            return Err(LiveError::Corrupt("bad live-manifest magic".into()));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != LIVE_VERSION {
            return Err(LiveError::Corrupt(format!(
                "unsupported live-manifest version {version}"
            )));
        }
        let wal_seq = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let u32_at = |off: usize| {
            u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize
        };
        let (nc, nt, nm) = (u32_at(24), u32_at(28), u32_at(32));
        let want = HEADER_SIZE + nc * 4 + nt * (item_size + 4) + nm * item_size;
        if buf.len() != want {
            return Err(LiveError::Corrupt(format!(
                "live manifest is {} bytes, header implies {want}",
                buf.len()
            )));
        }
        let mut off = HEADER_SIZE;
        let mut slots = Vec::with_capacity(nc);
        for _ in 0..nc {
            slots.push(u32::from_le_bytes(
                buf[off..off + 4].try_into().expect("4 bytes"),
            ));
            off += 4;
        }
        let mut tombstones = Tombstones::new();
        for _ in 0..nt {
            let item = Item::<D>::decode(&buf[off..off + item_size]);
            off += item_size;
            let count = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
            off += 4;
            tombstones.add_count(TombstoneKey::of(&item), count);
        }
        let mut memtable = Vec::with_capacity(nm);
        for _ in 0..nm {
            memtable.push(Item::<D>::decode(&buf[off..off + item_size]));
            off += item_size;
        }
        Ok(LiveManifest {
            wal_seq,
            slots,
            tombstones,
            memtable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_geom::Rect;

    fn item(id: u32, x: f64) -> Item<2> {
        Item::new(Rect::xyxy(x, 0.0, x + 1.0, 1.0), id)
    }

    #[test]
    fn roundtrip() {
        let mut tombstones = Tombstones::new();
        tombstones.add(&item(9, 1.5));
        tombstones.add(&item(9, 1.5));
        tombstones.add(&item(11, 7.0));
        let m = LiveManifest::<2> {
            wal_seq: 12345,
            slots: vec![2, 5],
            tombstones,
            memtable: vec![item(100, 0.0), item(101, 3.0)],
        };
        let buf = m.encode();
        let back = LiveManifest::<2>::decode(&buf).unwrap();
        assert_eq!(back.wal_seq, m.wal_seq);
        assert_eq!(back.slots, m.slots);
        assert_eq!(back.memtable, m.memtable);
        assert_eq!(back.tombstones.total(), 3);
        assert_eq!(back.tombstones.count(&item(9, 1.5)), 2);
    }

    #[test]
    fn empty_roundtrip() {
        let m = LiveManifest::<2>::default();
        let back = LiveManifest::<2>::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(LiveManifest::<2>::decode(b"nope").is_err());
        let mut buf = LiveManifest::<2>::default().encode();
        buf[0] = b'X';
        assert!(LiveManifest::<2>::decode(&buf).is_err());
        let mut buf = LiveManifest::<2>::default().encode();
        buf[24] = 200; // claims 200 components, buffer too short
        assert!(LiveManifest::<2>::decode(&buf).is_err());
    }
}
