//! Live-index error type.

use pr_em::EmError;
use pr_store::StoreError;
use std::fmt;

/// Errors surfaced by the live index lifecycle and write path.
#[derive(Debug)]
pub enum LiveError {
    /// Underlying OS-level I/O failure.
    Io(std::io::Error),
    /// An error bubbled up from the substrate (device layer).
    Em(EmError),
    /// An error bubbled up from the snapshot store.
    Store(StoreError),
    /// A WAL or manifest record failed to decode past recovery.
    Corrupt(String),
    /// Another process holds the index directory's exclusive lock.
    /// Opening an index — even for read-only CLI queries — mutates
    /// shared state (torn-tail truncation, temp-file cleanup), so
    /// concurrent opens are refused rather than risking corruption.
    Locked(std::path::PathBuf),
    /// A test-injected crash point fired (failure-injection harness
    /// only; never produced in normal operation).
    Injected(&'static str),
    /// This writer's group commit failed: its batch was rolled back
    /// (WAL truncated to the pre-group offset, pending ops discarded)
    /// and was never applied. When `transient` the write path is *not*
    /// poisoned — the next successful append clears degraded mode and
    /// ingest resumes (e.g. ENOSPC after space is freed). When fatal
    /// the write path stays poisoned until reopen.
    GroupFailed {
        /// Rendered cause of the group's I/O failure.
        reason: String,
        /// Whether retrying the write can succeed without a reopen.
        transient: bool,
    },
}

impl LiveError {
    /// Transient-vs-fatal classification (see
    /// [`pr_em::io_error_is_transient`]): `true` for failures expected
    /// to clear up when conditions change — ENOSPC once space is freed,
    /// EINTR, timeouts — and for group failures flagged transient.
    /// Corruption, lock conflicts, and hard I/O errors are fatal.
    pub fn is_transient(&self) -> bool {
        match self {
            LiveError::Io(e) => pr_em::io_error_is_transient(e),
            LiveError::Em(e) => e.is_transient(),
            LiveError::Store(e) => e.is_transient(),
            LiveError::GroupFailed { transient, .. } => *transient,
            _ => false,
        }
    }
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "I/O error: {e}"),
            LiveError::Em(e) => write!(f, "substrate error: {e}"),
            LiveError::Store(e) => write!(f, "store error: {e}"),
            LiveError::Corrupt(msg) => write!(f, "corrupt live index: {msg}"),
            LiveError::Locked(dir) => write!(
                f,
                "live index at {} is locked by another process",
                dir.display()
            ),
            LiveError::Injected(point) => write!(f, "injected crash at {point}"),
            LiveError::GroupFailed { reason, transient } => write!(
                f,
                "group commit failed ({}): {reason}",
                if *transient {
                    "transient; batch rolled back, ingest can resume"
                } else {
                    "fatal; write path poisoned"
                }
            ),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(e) => Some(e),
            LiveError::Em(e) => Some(e),
            LiveError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LiveError {
    fn from(e: std::io::Error) -> Self {
        LiveError::Io(e)
    }
}

impl From<EmError> for LiveError {
    fn from(e: EmError) -> Self {
        match e {
            EmError::Io(io) => LiveError::Io(io),
            other => LiveError::Em(other),
        }
    }
}

impl From<StoreError> for LiveError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => LiveError::Io(io),
            other => LiveError::Store(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e: LiveError = std::io::Error::other("disk gone").into();
        assert!(e.to_string().contains("disk gone"));
        let e: LiveError = EmError::ReadOnly.into();
        assert!(e.to_string().contains("read-only"));
        let e: LiveError = StoreError::BadMagic.into();
        assert!(e.to_string().contains("magic"));
        assert!(LiveError::Corrupt("x".into()).to_string().contains("x"));
        assert!(LiveError::Injected("p").to_string().contains("p"));
        let e = LiveError::GroupFailed {
            reason: "no space".into(),
            transient: true,
        };
        assert!(e.to_string().contains("no space"));
        assert!(e.to_string().contains("resume"));
    }

    #[test]
    fn transient_classification() {
        let enospc = std::io::Error::from_raw_os_error(28);
        assert!(LiveError::Io(enospc).is_transient());
        let eintr = std::io::Error::from_raw_os_error(4);
        assert!(LiveError::Em(EmError::Io(eintr)).is_transient());
        let eio = std::io::Error::from_raw_os_error(5);
        assert!(!LiveError::Io(eio).is_transient());
        assert!(!LiveError::Corrupt("x".into()).is_transient());
        assert!(LiveError::GroupFailed {
            reason: "r".into(),
            transient: true
        }
        .is_transient());
        assert!(!LiveError::GroupFailed {
            reason: "r".into(),
            transient: false
        }
        .is_transient());
    }
}
