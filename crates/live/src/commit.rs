//! Leader/follower group commit: the machinery that lets N concurrent
//! writers share one WAL write + one fsync.
//!
//! ## Protocol
//!
//! 1. **Enqueue.** A writer, still holding the index's sequencing lock,
//!    pushes its already-encoded batch ([`PendingBatch`]) onto the
//!    queue. Because every enqueue happens under that lock, queue order
//!    is sequence order. (The writer's logical ops were pushed onto the
//!    core's pending FIFO in the same critical section, so the leader
//!    can apply them without re-decoding anything.)
//! 2. **Lead / follow.** The writer then calls
//!    [`GroupCommit::commit_wait`] — *without* the sequencing lock. The
//!    first waiter to observe "no leader active, queue non-empty"
//!    becomes the leader: it takes the whole queue, and the caller's
//!    `lead` closure lands it with one vectored write (plus one fsync
//!    under `Fsync` durability) and applies the group to the core.
//!    Everyone else sleeps on the condvar until the published horizon
//!    covers their last sequence number.
//! 3. **Sync window** (async durability). Acks happen at the *applied*
//!    horizon; a dedicated syncer thread calls
//!    [`GroupCommit::sync_window`] whenever written bytes run ahead of
//!    synced bytes, and [`GroupCommit::enqueue`] blocks (backpressure)
//!    while the unsynced window would exceed its bound.
//!
//! ## Failure model
//!
//! A failed group write or fsync leaves the log in an unknown state, so
//! the first I/O error is **sticky**: it is stored on the queue, every
//! current waiter is woken with the error, and every later enqueue or
//! wait fails fast. The index stays readable; only the write path is
//! poisoned (mirroring what a real fail-stop would do, which is what
//! the crash-recovery tests simulate).
//!
//! Lock ordering: the queue mutex is never held across WAL I/O (the
//! leader and the syncer both drop it first), and the WAL mutex is
//! never held while taking the queue mutex *and waiting*. Quiesce
//! callers ([`GroupCommit::wait_applied`]) hold the sequencing lock,
//! which leaders never take — progress is guaranteed because every
//! queued batch has a live waiter that can lead it.

use crate::error::LiveError;
use crate::wal::Wal;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// One enqueued, already-encoded WAL batch awaiting its group.
pub(crate) struct PendingBatch {
    /// Concatenated record frames, ready for the vectored append.
    pub(crate) bytes: Vec<u8>,
    /// Number of records (== logical ops) in the batch.
    pub(crate) n_ops: usize,
    /// Highest sequence number in the batch.
    pub(crate) last_seq: u64,
}

/// Mutable queue state, behind [`GroupCommit::q`].
pub(crate) struct CommitQueue {
    /// Encoded batches awaiting a leader, in sequence order.
    pub(crate) pending: Vec<PendingBatch>,
    /// Total frame bytes queued in `pending`.
    pub(crate) pending_bytes: u64,
    /// A leader is writing/applying a group right now.
    pub(crate) leader_active: bool,
    /// Highest seq written to the WAL file *and* applied to the core —
    /// the ack horizon under `Durability::Async`.
    pub(crate) applied_seq: u64,
    /// Highest seq covered by an fsync — the ack horizon under
    /// `Durability::Fsync`, and what crash recovery is guaranteed to
    /// reach under `Async`.
    pub(crate) synced_seq: u64,
    /// Monotone count of frame bytes handed to the WAL file.
    pub(crate) written_bytes: u64,
    /// Monotone count of frame bytes covered by an fsync.
    pub(crate) synced_bytes: u64,
    /// Tells the async syncer thread to drain and exit.
    pub(crate) shutdown: bool,
    /// Sticky first I/O error; poisons the write path.
    pub(crate) io_error: Option<String>,
}

impl CommitQueue {
    fn check_poisoned(&self) -> Result<(), LiveError> {
        match &self.io_error {
            Some(e) => Err(LiveError::Corrupt(format!("write-ahead log failed: {e}"))),
            None => Ok(()),
        }
    }
}

/// The commit pipeline: queue + condvar + the WAL itself + counters.
pub(crate) struct GroupCommit {
    pub(crate) q: Mutex<CommitQueue>,
    pub(crate) cv: Condvar,
    /// The log. Leaders append under this mutex, the syncer fsyncs under
    /// it, merges rotate/prune under it — never while holding `q`.
    pub(crate) wal: Mutex<Wal>,
    /// Commit-path fsyncs issued (group syncs + syncer passes; segment
    /// creation/rotation syncs are not counted).
    pub(crate) fsyncs: AtomicU64,
    /// Groups written.
    pub(crate) groups: AtomicU64,
    /// Records written through groups.
    pub(crate) records: AtomicU64,
}

impl GroupCommit {
    /// Wraps `wal`, with every horizon starting at `start_seq` (the
    /// recovered durable sequence).
    pub(crate) fn new(wal: Wal, start_seq: u64) -> GroupCommit {
        GroupCommit {
            q: Mutex::new(CommitQueue {
                pending: Vec::new(),
                pending_bytes: 0,
                leader_active: false,
                applied_seq: start_seq,
                synced_seq: start_seq,
                written_bytes: 0,
                synced_bytes: 0,
                shutdown: false,
                io_error: None,
            }),
            cv: Condvar::new(),
            wal: Mutex::new(wal),
            fsyncs: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            records: AtomicU64::new(0),
        }
    }

    /// Enqueues an encoded batch. The caller holds the sequencing lock,
    /// so queue order == seq order. With `max_inflight` set (async
    /// durability) this is also the backpressure point: blocks while
    /// the unsynced window plus the queue would overflow the bound —
    /// unless the window is empty, so a single oversized batch is
    /// always admitted rather than deadlocking.
    pub(crate) fn enqueue(
        &self,
        batch: PendingBatch,
        max_inflight: Option<u64>,
    ) -> Result<(), LiveError> {
        let mut q = self.q.lock().expect("commit queue");
        if let Some(maxb) = max_inflight {
            loop {
                if q.io_error.is_some() {
                    break;
                }
                let outstanding = (q.written_bytes - q.synced_bytes) + q.pending_bytes;
                if outstanding == 0 || outstanding + batch.bytes.len() as u64 <= maxb {
                    break;
                }
                q = self.cv.wait(q).expect("commit queue");
            }
        }
        q.check_poisoned()?;
        q.pending_bytes += batch.bytes.len() as u64;
        q.pending.push(batch);
        self.cv.notify_all();
        Ok(())
    }

    /// Waits until `seq` is acknowledged — synced when `fsync_mode`,
    /// applied otherwise — leading whenever the queue has work and no
    /// leader is active. `lead` runs with no queue lock held; it must
    /// write the group to the WAL (fsyncing it iff `fsync_mode`) and
    /// apply its ops to the core, in order.
    pub(crate) fn commit_wait<F>(
        &self,
        seq: u64,
        fsync_mode: bool,
        mut lead: F,
    ) -> Result<(), LiveError>
    where
        F: FnMut(&[PendingBatch]) -> Result<(), LiveError>,
    {
        let mut q = self.q.lock().expect("commit queue");
        loop {
            let acked = if fsync_mode {
                q.synced_seq >= seq
            } else {
                q.applied_seq >= seq
            };
            if acked {
                return Ok(());
            }
            q.check_poisoned()?;
            if !q.leader_active && !q.pending.is_empty() {
                q.leader_active = true;
                let group = std::mem::take(&mut q.pending);
                q.pending_bytes = 0;
                let bytes: u64 = group.iter().map(|b| b.bytes.len() as u64).sum();
                let n_ops: u64 = group.iter().map(|b| b.n_ops as u64).sum();
                let last_seq = group.last().expect("group nonempty").last_seq;
                drop(q);
                let res = lead(&group);
                q = self.q.lock().expect("commit queue");
                q.leader_active = false;
                match res {
                    Ok(()) => {
                        let n_batches = group.len();
                        q.applied_seq = last_seq;
                        q.written_bytes += bytes;
                        if fsync_mode {
                            q.synced_seq = last_seq;
                            q.synced_bytes = q.written_bytes;
                        }
                        let inflight = q.written_bytes - q.synced_bytes;
                        self.groups.fetch_add(1, Ordering::Relaxed);
                        self.records.fetch_add(n_ops, Ordering::Relaxed);
                        let m = crate::obs::metrics();
                        m.wal_groups.inc();
                        m.wal_records.add(n_ops);
                        m.wal_bytes.add(bytes);
                        m.inflight_wal_bytes.set(inflight);
                        pr_obs::events().emit(
                            "group_flush",
                            format!(
                                "last_seq={last_seq} batches={n_batches} ops={n_ops} \
                                 bytes={bytes} fsync={fsync_mode}"
                            ),
                        );
                        self.cv.notify_all();
                    }
                    Err(e) => {
                        if q.io_error.is_none() {
                            q.io_error = Some(e.to_string());
                        }
                        self.cv.notify_all();
                        return Err(e);
                    }
                }
                continue;
            }
            q = self.cv.wait(q).expect("commit queue");
        }
    }

    /// Blocks until every assigned sequence number at or below `seq` is
    /// written and applied. Quiesce primitive for merges — the caller
    /// holds the sequencing lock, so no new sequences can appear, and
    /// each in-flight group is driven to completion by its own waiters
    /// (which never take that lock).
    pub(crate) fn wait_applied(&self, seq: u64) -> Result<(), LiveError> {
        let mut q = self.q.lock().expect("commit queue");
        while q.applied_seq < seq {
            q.check_poisoned()?;
            q = self.cv.wait(q).expect("commit queue");
        }
        Ok(())
    }

    /// Fsyncs the WAL and publishes the new synced horizon: everything
    /// applied/written *before* this call is durable after it. The async
    /// syncer's whole job; also the merge cut's pre-rotation drain.
    pub(crate) fn sync_window(&self) -> Result<(), LiveError> {
        // Snapshot the horizon BEFORE syncing — bytes written after this
        // point may or may not be covered, so don't claim them.
        let (seq, bytes) = {
            let q = self.q.lock().expect("commit queue");
            q.check_poisoned()?;
            (q.applied_seq, q.written_bytes)
        };
        let res = {
            let mut wal = self.wal.lock().expect("wal mutex");
            wal.sync()
        };
        let mut q = self.q.lock().expect("commit queue");
        match res {
            Ok(()) => {
                q.synced_seq = q.synced_seq.max(seq);
                q.synced_bytes = q.synced_bytes.max(bytes);
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                let m = crate::obs::metrics();
                m.wal_fsyncs.inc();
                m.inflight_wal_bytes.set(q.written_bytes - q.synced_bytes);
                self.cv.notify_all();
                Ok(())
            }
            Err(e) => {
                if q.io_error.is_none() {
                    q.io_error = Some(e.to_string());
                }
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Signals the syncer thread (if any) to drain and exit.
    pub(crate) fn begin_shutdown(&self) {
        let mut q = self.q.lock().expect("commit queue");
        q.shutdown = true;
        self.cv.notify_all();
    }

    /// Syncer-thread body: sleep until written bytes run ahead of synced
    /// bytes, fsync, publish, repeat. On shutdown it drains the window
    /// once more (a clean close shouldn't strand acknowledged writes
    /// behind a missing fsync) and exits. Exits early if the write path
    /// is poisoned.
    pub(crate) fn syncer_loop(&self) {
        loop {
            {
                let mut q = self.q.lock().expect("commit queue");
                loop {
                    if q.io_error.is_some() {
                        return;
                    }
                    let dirty = q.written_bytes > q.synced_bytes;
                    if q.shutdown && !dirty {
                        return;
                    }
                    if dirty {
                        break;
                    }
                    q = self.cv.wait(q).expect("commit queue");
                }
            }
            if self.sync_window().is_err() {
                return;
            }
        }
    }
}
