//! Leader/follower group commit: the machinery that lets N concurrent
//! writers share one WAL write + one fsync.
//!
//! ## Protocol
//!
//! 1. **Enqueue.** A writer, still holding the index's sequencing lock,
//!    pushes its already-encoded batch ([`PendingBatch`]) onto the
//!    queue. Because every enqueue happens under that lock, queue order
//!    is sequence order. (The writer's logical ops were pushed onto the
//!    core's pending FIFO in the same critical section, so the leader
//!    can apply them without re-decoding anything.)
//! 2. **Lead / follow.** The writer then calls
//!    [`GroupCommit::commit_wait`] — *without* the sequencing lock. The
//!    first waiter to observe "no leader active, queue non-empty"
//!    becomes the leader: it takes the whole queue, and the caller's
//!    `lead` closure lands it with one vectored write (plus one fsync
//!    under `Fsync` durability) and applies the group to the core.
//!    Everyone else sleeps on the condvar until the published horizon
//!    covers their last sequence number.
//! 3. **Sync window** (async durability). Acks happen at the *applied*
//!    horizon; a dedicated syncer thread calls
//!    [`GroupCommit::sync_window`] whenever written bytes run ahead of
//!    synced bytes, and [`GroupCommit::enqueue`] blocks (backpressure)
//!    while the unsynced window would exceed its bound.
//!
//! ## Failure model
//!
//! A failed group write or fsync fails the **whole group**: the leader
//! rolls the WAL back to the pre-group offset and discards the group's
//! never-applied pending ops (see `LiveInner::commit_wait`), then every
//! member — leader and followers alike — gets
//! [`LiveError::GroupFailed`] naming the cause. What happens next
//! depends on the error's class ([`LiveError::is_transient`]):
//!
//! * **Transient** (ENOSPC, EINTR past the device layer's own retries,
//!   timeouts): the write path is *not* poisoned. The queue is marked
//!   degraded; the next group that lands cleanly clears the mark and
//!   bumps `live_wal_unpoisons_total` — ingest resumes without a
//!   reopen once (say) disk space is freed. Failed batches stay
//!   failed: they were rolled back, never acknowledged, and their
//!   sequence numbers are simply skipped.
//! * **Fatal** (EIO, corruption, a failed rollback): the first error
//!   is **sticky** — stored on the queue, every current waiter woken
//!   with it, every later enqueue or wait failing fast. The index
//!   stays readable; only the write path is poisoned (mirroring a real
//!   fail-stop, which is what the crash-recovery tests simulate).
//!
//! Waiters of a failed group are told apart from waiters of later,
//! successful groups by per-group failed ranges: membership is decided
//! by sequence number *before* the ack horizons are consulted, so a
//! later group advancing `applied_seq` past a rolled-back seq can
//! never turn that seq's rollback into a false ack.
//!
//! Lock ordering: the queue mutex is never held across WAL I/O (the
//! leader and the syncer both drop it first), and the WAL mutex is
//! never held while taking the queue mutex *and waiting*. Quiesce
//! callers ([`GroupCommit::wait_applied`]) hold the sequencing lock,
//! which leaders never take — progress is guaranteed because every
//! queued batch has a live waiter that can lead it.

use crate::error::LiveError;
use crate::wal::Wal;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One enqueued, already-encoded WAL batch awaiting its group.
pub(crate) struct PendingBatch {
    /// Concatenated record frames, ready for the vectored append.
    pub(crate) bytes: Vec<u8>,
    /// Number of records (== logical ops) in the batch.
    pub(crate) n_ops: usize,
    /// Highest sequence number in the batch.
    pub(crate) last_seq: u64,
}

/// The sequence range of a group whose commit failed: its batches were
/// rolled back and will never be acknowledged. Kept (briefly) so the
/// group's followers wake into [`LiveError::GroupFailed`] instead of
/// mistaking a later group's ack horizon for their own — removed once
/// every follower has collected the verdict.
pub(crate) struct FailedRange {
    /// First sequence number of the failed group.
    pub(crate) lo: u64,
    /// Last sequence number of the failed group.
    pub(crate) hi: u64,
    /// Rendered cause, shared by every member's error.
    pub(crate) reason: String,
    /// Whether the failure was transient (see the module docs).
    pub(crate) transient: bool,
    /// Followers still to be woken with the verdict; the range is
    /// dropped when this reaches zero.
    pub(crate) remaining: usize,
}

/// Mutable queue state, behind [`GroupCommit::q`].
pub(crate) struct CommitQueue {
    /// Encoded batches awaiting a leader, in sequence order.
    pub(crate) pending: Vec<PendingBatch>,
    /// Total frame bytes queued in `pending`.
    pub(crate) pending_bytes: u64,
    /// A leader is writing/applying a group right now.
    pub(crate) leader_active: bool,
    /// Highest seq written to the WAL file *and* applied to the core —
    /// the ack horizon under `Durability::Async`.
    pub(crate) applied_seq: u64,
    /// Highest seq covered by an fsync — the ack horizon under
    /// `Durability::Fsync`, and what crash recovery is guaranteed to
    /// reach under `Async`.
    pub(crate) synced_seq: u64,
    /// Monotone count of frame bytes handed to the WAL file.
    pub(crate) written_bytes: u64,
    /// Monotone count of frame bytes covered by an fsync.
    pub(crate) synced_bytes: u64,
    /// Highest seq whose outcome is decided — success (acknowledged and
    /// applied) *or* failure (rolled back). Runs at or ahead of
    /// `applied_seq`; quiesce waits ([`GroupCommit::wait_applied`]) use
    /// this horizon so a rolled-back group cannot hang them.
    pub(crate) resolved_seq: u64,
    /// Failed groups whose followers have not all been woken yet.
    pub(crate) failed: Vec<FailedRange>,
    /// A transient group failure happened and no group has landed
    /// cleanly since; cleared (with `live_wal_unpoisons_total` bumped)
    /// by the next successful group.
    pub(crate) degraded: bool,
    /// Tells the async syncer thread to drain and exit.
    pub(crate) shutdown: bool,
    /// Sticky first **fatal** I/O error; poisons the write path.
    /// Transient failures never set this (see the module docs).
    pub(crate) io_error: Option<String>,
}

impl CommitQueue {
    fn check_poisoned(&self) -> Result<(), LiveError> {
        match &self.io_error {
            Some(e) => Err(LiveError::Corrupt(format!("write-ahead log failed: {e}"))),
            None => Ok(()),
        }
    }

    /// If `seq` belongs to a failed (rolled-back) group, consumes one
    /// follower slot from its range and returns the group's verdict.
    fn take_failed(&mut self, seq: u64) -> Option<LiveError> {
        let idx = self
            .failed
            .iter()
            .position(|r| r.lo <= seq && seq <= r.hi)?;
        let err = LiveError::GroupFailed {
            reason: self.failed[idx].reason.clone(),
            transient: self.failed[idx].transient,
        };
        self.failed[idx].remaining -= 1;
        if self.failed[idx].remaining == 0 {
            self.failed.swap_remove(idx);
        }
        Some(err)
    }
}

/// Cap on pooled spare encode buffers: generous for any realistic
/// writer count, small enough that one ingest burst can't pin
/// unbounded memory in the pool forever.
const SPARE_BUFS_CAP: usize = 64;

/// The commit pipeline: queue + condvar + the WAL itself + counters.
pub(crate) struct GroupCommit {
    pub(crate) q: Mutex<CommitQueue>,
    pub(crate) cv: Condvar,
    /// The log. Leaders append under this mutex, the syncer fsyncs under
    /// it, merges rotate/prune under it — never while holding `q`.
    pub(crate) wal: Mutex<Wal>,
    /// Commit-path fsyncs issued (group syncs + syncer passes; segment
    /// creation/rotation syncs are not counted).
    pub(crate) fsyncs: AtomicU64,
    /// Groups written.
    pub(crate) groups: AtomicU64,
    /// Records written through groups.
    pub(crate) records: AtomicU64,
    /// The encode arena: spare frame buffers recycled across batches.
    /// Writers take one under the sequencing lock ([`GroupCommit::
    /// take_buf`]); the leader returns the whole group's buffers after
    /// landing (or rolling back) it. Lock order: only ever taken with
    /// `q` already held or with no pipeline lock at all — never the
    /// reverse.
    spare: Mutex<Vec<Vec<u8>>>,
    /// Fresh buffer allocations — pool-empty takes. Pinned by the
    /// group-commit test: once the pool warms, batches stop allocating.
    pub(crate) arena_allocs: AtomicU64,
}

impl GroupCommit {
    /// Wraps `wal`, with every horizon starting at `start_seq` (the
    /// recovered durable sequence).
    pub(crate) fn new(wal: Wal, start_seq: u64) -> GroupCommit {
        GroupCommit {
            q: Mutex::new(CommitQueue {
                pending: Vec::new(),
                pending_bytes: 0,
                leader_active: false,
                applied_seq: start_seq,
                synced_seq: start_seq,
                written_bytes: 0,
                synced_bytes: 0,
                resolved_seq: start_seq,
                failed: Vec::new(),
                degraded: false,
                shutdown: false,
                io_error: None,
            }),
            cv: Condvar::new(),
            wal: Mutex::new(wal),
            fsyncs: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            records: AtomicU64::new(0),
            spare: Mutex::new(Vec::new()),
            arena_allocs: AtomicU64::new(0),
        }
    }

    /// Hands out a cleared encode buffer from the arena pool — the
    /// per-batch frame `Vec` without the per-batch allocation. The
    /// buffer rides the queue inside its [`PendingBatch`] and returns
    /// to the pool once its group's leader is done with it.
    pub(crate) fn take_buf(&self) -> Vec<u8> {
        if let Some(buf) = self.spare.lock().expect("spare buffers").pop() {
            return buf;
        }
        self.arena_allocs.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }

    /// Returns a landed (or rolled-back — either way never again read)
    /// group's encode buffers to the arena pool.
    fn recycle(&self, group: Vec<PendingBatch>) {
        let mut pool = self.spare.lock().expect("spare buffers");
        for b in group {
            if pool.len() >= SPARE_BUFS_CAP {
                break;
            }
            let mut bytes = b.bytes;
            bytes.clear();
            pool.push(bytes);
        }
    }

    /// Enqueues an encoded batch. The caller holds the sequencing lock,
    /// so queue order == seq order. With `max_inflight` set (async
    /// durability) this is also the backpressure point: blocks while
    /// the unsynced window plus the queue would overflow the bound —
    /// unless the window is empty, so a single oversized batch is
    /// always admitted rather than deadlocking.
    pub(crate) fn enqueue(
        &self,
        batch: PendingBatch,
        max_inflight: Option<u64>,
    ) -> Result<(), LiveError> {
        let mut q = self.q.lock().expect("commit queue");
        if let Some(maxb) = max_inflight {
            loop {
                if q.io_error.is_some() {
                    break;
                }
                let outstanding = (q.written_bytes - q.synced_bytes) + q.pending_bytes;
                if outstanding == 0 || outstanding + batch.bytes.len() as u64 <= maxb {
                    break;
                }
                q = self.cv.wait(q).expect("commit queue");
            }
        }
        q.check_poisoned()?;
        q.pending_bytes += batch.bytes.len() as u64;
        q.pending.push(batch);
        self.cv.notify_all();
        Ok(())
    }

    /// Waits until `seq` is acknowledged — synced when `fsync_mode`,
    /// applied otherwise — leading whenever the queue has work and no
    /// leader is active. `lead` runs with no queue lock held; it must
    /// write the group to the WAL (fsyncing it iff `fsync_mode`) and
    /// apply its ops to the core, in order.
    pub(crate) fn commit_wait<F>(
        &self,
        seq: u64,
        fsync_mode: bool,
        mut lead: F,
    ) -> Result<(), LiveError>
    where
        F: FnMut(&[PendingBatch]) -> Result<(), LiveError>,
    {
        let mut q = self.q.lock().expect("commit queue");
        loop {
            // Failed-group membership FIRST: once a later group lands,
            // applied_seq covers the rolled-back seqs numerically, and
            // checking the ack horizon first would turn this waiter's
            // rollback into a false ack (a lost write reported ok).
            if let Some(err) = q.take_failed(seq) {
                return Err(err);
            }
            let acked = if fsync_mode {
                q.synced_seq >= seq
            } else {
                q.applied_seq >= seq
            };
            if acked {
                return Ok(());
            }
            q.check_poisoned()?;
            if !q.leader_active && !q.pending.is_empty() {
                q.leader_active = true;
                let group = std::mem::take(&mut q.pending);
                q.pending_bytes = 0;
                let bytes: u64 = group.iter().map(|b| b.bytes.len() as u64).sum();
                let n_ops: u64 = group.iter().map(|b| b.n_ops as u64).sum();
                let last_seq = group.last().expect("group nonempty").last_seq;
                drop(q);
                let res = lead(&group);
                q = self.q.lock().expect("commit queue");
                q.leader_active = false;
                match res {
                    Ok(()) => {
                        let n_batches = group.len();
                        q.applied_seq = last_seq;
                        q.resolved_seq = q.resolved_seq.max(last_seq);
                        if q.degraded {
                            // The write path healed: a group landed
                            // cleanly after a transient failure.
                            q.degraded = false;
                            crate::obs::metrics().wal_unpoisons.inc();
                            pr_obs::events().emit(
                                "wal_unpoison",
                                format!(
                                    "group landed after transient failure, last_seq={last_seq}"
                                ),
                            );
                        }
                        q.written_bytes += bytes;
                        if fsync_mode {
                            q.synced_seq = last_seq;
                            q.synced_bytes = q.written_bytes;
                        }
                        let inflight = q.written_bytes - q.synced_bytes;
                        self.groups.fetch_add(1, Ordering::Relaxed);
                        self.records.fetch_add(n_ops, Ordering::Relaxed);
                        let m = crate::obs::metrics();
                        m.wal_groups.inc();
                        m.wal_records.add(n_ops);
                        m.wal_bytes.add(bytes);
                        m.inflight_wal_bytes.set(inflight);
                        pr_obs::events().emit(
                            "group_flush",
                            format!(
                                "last_seq={last_seq} batches={n_batches} ops={n_ops} \
                                 bytes={bytes} fsync={fsync_mode}"
                            ),
                        );
                        self.cv.notify_all();
                        self.recycle(group);
                    }
                    Err(e) => {
                        // The lead closure rolled the group back (WAL
                        // truncated, pending ops discarded): resolve its
                        // whole seq range as failed so quiesce waiters
                        // don't hang on seqs that will never apply, and
                        // leave the verdict for the followers.
                        let transient = e.is_transient();
                        let reason = e.to_string();
                        let lo = q.resolved_seq + 1;
                        q.resolved_seq = q.resolved_seq.max(last_seq);
                        if group.len() > 1 {
                            q.failed.push(FailedRange {
                                lo,
                                hi: last_seq,
                                reason: reason.clone(),
                                transient,
                                remaining: group.len() - 1,
                            });
                        }
                        if transient {
                            q.degraded = true;
                        } else if q.io_error.is_none() {
                            q.io_error = Some(reason.clone());
                        }
                        crate::obs::metrics().wal_io_errors.inc();
                        pr_obs::events().emit(
                            "wal_group_fail",
                            format!(
                                "seqs={lo}..={last_seq} transient={transient} \
                                 reason={reason}"
                            ),
                        );
                        self.cv.notify_all();
                        self.recycle(group);
                        return Err(LiveError::GroupFailed { reason, transient });
                    }
                }
                continue;
            }
            q = self.cv.wait(q).expect("commit queue");
        }
    }

    /// Blocks until every assigned sequence number at or below `seq` is
    /// **resolved**: written and applied, or rolled back by a failed
    /// group (whose seqs will never apply — waiting on the applied
    /// horizon would hang forever on them). Quiesce primitive for
    /// merges — the caller holds the sequencing lock, so no new
    /// sequences can appear, and each in-flight group is driven to
    /// completion by its own waiters (which never take that lock).
    pub(crate) fn wait_applied(&self, seq: u64) -> Result<(), LiveError> {
        let mut q = self.q.lock().expect("commit queue");
        while q.resolved_seq < seq {
            q.check_poisoned()?;
            q = self.cv.wait(q).expect("commit queue");
        }
        Ok(())
    }

    /// Fsyncs the WAL and publishes the new synced horizon: everything
    /// applied/written *before* this call is durable after it. The async
    /// syncer's whole job; also the merge cut's pre-rotation drain.
    pub(crate) fn sync_window(&self) -> Result<(), LiveError> {
        // Snapshot the horizon BEFORE syncing — bytes written after this
        // point may or may not be covered, so don't claim them.
        let (seq, bytes) = {
            let q = self.q.lock().expect("commit queue");
            q.check_poisoned()?;
            (q.applied_seq, q.written_bytes)
        };
        let res = {
            let mut wal = self.wal.lock().expect("wal mutex");
            wal.sync()
        };
        let mut q = self.q.lock().expect("commit queue");
        match res {
            Ok(()) => {
                q.synced_seq = q.synced_seq.max(seq);
                q.synced_bytes = q.synced_bytes.max(bytes);
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                let m = crate::obs::metrics();
                m.wal_fsyncs.inc();
                m.inflight_wal_bytes.set(q.written_bytes - q.synced_bytes);
                self.cv.notify_all();
                Ok(())
            }
            Err(e) => {
                // The fsync moved no horizon, so a transient failure
                // (ENOSPC journal commit, EINTR storm) needs no
                // rollback and no poison: the window simply stays
                // unsynced and the next pass retries. Fatal errors
                // poison as usual.
                if !e.is_transient() && q.io_error.is_none() {
                    q.io_error = Some(e.to_string());
                }
                crate::obs::metrics().wal_io_errors.inc();
                pr_obs::events().emit(
                    "wal_sync_fail",
                    format!("transient={} reason={e}", e.is_transient()),
                );
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Signals the syncer thread (if any) to drain and exit.
    pub(crate) fn begin_shutdown(&self) {
        let mut q = self.q.lock().expect("commit queue");
        q.shutdown = true;
        self.cv.notify_all();
    }

    /// Syncer-thread body: sleep until written bytes run ahead of synced
    /// bytes, fsync, publish, repeat. On shutdown it drains the window
    /// once more (a clean close shouldn't strand acknowledged writes
    /// behind a missing fsync) and exits. Transient fsync failures are
    /// retried with exponential backoff (the window just stays open a
    /// little longer — that is the `Async` contract); fatal ones poison
    /// the write path and end the thread. A shutdown with a persisting
    /// transient error gives up after a bounded number of retries so a
    /// full disk can't hang `Drop` forever.
    pub(crate) fn syncer_loop(&self) {
        let mut backoff = Duration::from_millis(1);
        let mut consecutive_failures = 0u32;
        loop {
            {
                let mut q = self.q.lock().expect("commit queue");
                loop {
                    if q.io_error.is_some() {
                        return;
                    }
                    let dirty = q.written_bytes > q.synced_bytes;
                    if q.shutdown && (!dirty || consecutive_failures >= 8) {
                        return;
                    }
                    if dirty {
                        break;
                    }
                    q = self.cv.wait(q).expect("commit queue");
                }
            }
            match self.sync_window() {
                Ok(()) => {
                    backoff = Duration::from_millis(1);
                    consecutive_failures = 0;
                }
                Err(e) if e.is_transient() => {
                    consecutive_failures += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
                Err(_) => return, // fatal: sync_window poisoned the queue
            }
        }
    }
}
