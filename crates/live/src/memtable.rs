//! The in-memory write buffer.
//!
//! A memtable is the live index's analogue of the LPR-tree's insertion
//! buffer: a small, bounded vector of items that every acknowledged
//! insert lands in (after its WAL record is durable) and every query
//! scans linearly. At the seal threshold it is frozen whole into an
//! immutable batch and handed to the merge machinery; a fresh memtable
//! keeps absorbing writes while the merge runs.
//!
//! Deletes that target a memtable resident remove it directly (no
//! tombstone needed — the memtable is mutable), which is also why
//! memtable items are exempt from tombstone filtering in queries.

use pr_geom::Item;
use pr_tree::dynamic::same_identity;

/// A bounded, scannable vector of freshly inserted items.
#[derive(Clone, Default, Debug)]
pub struct Memtable<const D: usize> {
    items: Vec<Item<D>>,
}

impl<const D: usize> Memtable<D> {
    /// An empty memtable.
    pub fn new() -> Self {
        Memtable { items: Vec::new() }
    }

    /// A memtable pre-seeded from a manifest checkpoint.
    pub fn from_items(items: Vec<Item<D>>) -> Self {
        Memtable { items }
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Buffers an item.
    pub fn insert(&mut self, item: Item<D>) {
        self.items.push(item);
    }

    /// Removes the item matching `item`'s full `(id, rect)` identity.
    /// Returns `false` if absent.
    pub fn remove(&mut self, item: &Item<D>) -> bool {
        match self.items.iter().position(|i| same_identity(i, item)) {
            Some(pos) => {
                self.items.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// True when an item with this exact identity is buffered.
    pub fn contains(&self, item: &Item<D>) -> bool {
        self.items.iter().any(|i| same_identity(i, item))
    }

    /// Number of buffered copies of this exact identity. The delete
    /// path's counted availability check — with group commit, decisions
    /// must weigh the memtable against enqueued-but-unapplied ops, so a
    /// boolean `contains` is no longer enough.
    pub fn count(&self, item: &Item<D>) -> usize {
        self.items.iter().filter(|i| same_identity(i, item)).count()
    }

    /// The buffered items.
    pub fn items(&self) -> &[Item<D>] {
        &self.items
    }

    /// Takes every buffered item, leaving the memtable empty (the seal
    /// operation).
    pub fn drain(&mut self) -> Vec<Item<D>> {
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_geom::Rect;

    fn item(id: u32, x: f64) -> Item<2> {
        Item::new(Rect::xyxy(x, 0.0, x + 1.0, 1.0), id)
    }

    #[test]
    fn insert_remove_contains() {
        let mut m = Memtable::<2>::new();
        m.insert(item(1, 0.0));
        m.insert(item(2, 5.0));
        assert_eq!(m.len(), 2);
        assert!(m.contains(&item(1, 0.0)));
        // Same id, different rect: not the same identity.
        assert!(!m.contains(&item(1, 3.0)));
        assert!(!m.remove(&item(1, 3.0)));
        assert!(m.remove(&item(1, 0.0)));
        assert!(!m.remove(&item(1, 0.0)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_takes_everything() {
        let mut m = Memtable::<2>::new();
        for i in 0..10 {
            m.insert(item(i, i as f64 * 10.0));
        }
        let drained = m.drain();
        assert_eq!(drained.len(), 10);
        assert!(m.is_empty());
    }
}
