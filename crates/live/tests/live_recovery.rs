//! Crash-recovery proofs for the live index.
//!
//! The durability contract: a write acknowledged (its WAL fsync
//! returned) is never lost, and a write never acknowledged is never
//! resurrected — no matter where the process dies. These tests cover
//! every boundary of the protocol:
//!
//! * plain crash (drop without any shutdown) at **every op boundary**,
//! * a torn WAL tail (garbage and corrupted final records),
//! * injected death **between the WAL segment fsync/rotation and the
//!   manifest flip**, and **between the flip and the WAL prune** —
//!   the two windows of the merge-commit protocol,
//! * compaction's atomic-rename window (stale temp file).

use pr_geom::{Item, Rect};
use pr_live::{CrashPoint, LiveError, LiveIndex, LiveOptions};
use pr_tree::TreeParams;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pr-live-recovery-{}", std::process::id()))
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts(cap: usize) -> LiveOptions {
    LiveOptions {
        buffer_cap: cap,
        background_merge: false, // deterministic merge points
        backpressure_factor: 4,
        ..LiveOptions::default()
    }
}

fn params() -> TreeParams {
    TreeParams::with_cap::<2>(8)
}

/// Deterministic item: position derived from the id.
fn item(i: u32) -> Item<2> {
    let x = (i as f64 * 37.0) % 1000.0;
    let y = (i as f64 * 61.0) % 1000.0;
    Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
}

/// Applies operation `k` of the deterministic workload to both the
/// index and the oracle: mostly inserts, with every 5th op deleting the
/// item inserted 3 ops ago.
fn apply_op(ix: &LiveIndex<2>, oracle: &mut Vec<Item<2>>, k: u32) {
    if k % 5 == 4 && k >= 3 {
        let victim = item(k - 3);
        let was_live = oracle.iter().any(|i| i == &victim);
        let deleted = ix.delete(&victim).unwrap();
        assert_eq!(deleted, was_live, "op {k}: delete disagrees with oracle");
        if was_live {
            oracle.retain(|i| i != &victim);
        }
    } else {
        ix.insert(item(k)).unwrap();
        oracle.push(item(k));
    }
}

fn assert_state_matches(ix: &LiveIndex<2>, oracle: &[Item<2>], context: &str) {
    let snap = ix.snapshot();
    assert_eq!(snap.len(), oracle.len() as u64, "{context}: len");
    let mut got = snap.items().unwrap();
    let mut want = oracle.to_vec();
    got.sort_by_key(|i| i.id);
    want.sort_by_key(|i| i.id);
    assert_eq!(got, want, "{context}: items");
    // The query path agrees with the scan path.
    let q = Rect::xyxy(0.0, 0.0, 500.0, 500.0);
    let mut through_query = snap.window(&q).unwrap();
    let mut brute: Vec<Item<2>> = want
        .iter()
        .filter(|i| i.rect.intersects(&q))
        .copied()
        .collect();
    through_query.sort_by_key(|i| i.id);
    brute.sort_by_key(|i| i.id);
    assert_eq!(through_query, brute, "{context}: window");
}

/// Crash (plain drop — nothing is flushed on drop) after **every single
/// operation** of a workload that crosses many merge commits; reopen
/// must recover exactly the acknowledged prefix each time.
#[test]
fn crash_at_every_op_boundary_recovers_exact_prefix() {
    let dir = tmpdir("every-boundary");
    let mut oracle: Vec<Item<2>> = Vec::new();
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
        drop(ix); // even "created then crashed immediately" must reopen
    }
    for k in 0..80u32 {
        let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
        assert_state_matches(&ix, &oracle, &format!("reopen before op {k}"));
        apply_op(&ix, &mut oracle, k);
        assert_state_matches(&ix, &oracle, &format!("after op {k}"));
        drop(ix); // crash
    }
    let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
    assert_state_matches(&ix, &oracle, "final reopen");
    assert!(ix.stats().unwrap().merges == 0 || !ix.is_empty());
}

/// Garbage appended to the newest WAL segment (a write torn before its
/// fsync, i.e. never acknowledged) is discarded; everything before it
/// survives.
#[test]
fn torn_wal_tail_is_truncated_to_acknowledged_prefix() {
    let dir = tmpdir("torn-tail");
    let mut oracle = Vec::new();
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(64)).unwrap();
        for k in 0..20 {
            apply_op(&ix, &mut oracle, k);
        }
    }
    // Simulate a torn append: random bytes after the last record.
    let newest = newest_wal_segment(&dir);
    let mut bytes = std::fs::read(&newest).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xAB; 29]); // partial frame
    std::fs::write(&newest, &bytes).unwrap();

    let ix = LiveIndex::<2>::open(&dir, opts(64)).unwrap();
    assert_state_matches(&ix, &oracle, "after torn tail");
    drop(ix);
    // Recovery physically chopped the tail.
    assert!(std::fs::metadata(&newest).unwrap().len() <= clean_len as u64 + 53);
}

/// A bit-flip inside the **final** record (the op whose fsync the crash
/// interrupted — by simulation, never acknowledged) drops exactly that
/// op and nothing before it.
#[test]
fn corrupt_final_record_drops_only_the_unacked_op() {
    let dir = tmpdir("corrupt-last");
    let mut oracle = Vec::new();
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(64)).unwrap();
        for k in 0..10 {
            // inserts only, so "last op" is unambiguous
            ix.insert(item(k)).unwrap();
            oracle.push(item(k));
        }
    }
    let newest = newest_wal_segment(&dir);
    let len = std::fs::metadata(&newest).unwrap().len();
    // Flip a byte inside the last record's payload (record = 8-byte
    // frame + 45-byte payload in 2-D).
    flip_byte(&newest, len - 10);
    oracle.pop(); // the torn op was op 9

    let ix = LiveIndex::<2>::open(&dir, opts(64)).unwrap();
    assert_state_matches(&ix, &oracle, "after corrupt final record");
}

/// Injected death after the WAL rotation but **before the manifest
/// flip**: the merge never committed, the old manifest + the un-pruned
/// segments replay everything acknowledged.
#[test]
fn crash_between_wal_fsync_and_manifest_flip_loses_nothing() {
    let dir = tmpdir("before-flip");
    let mut oracle = Vec::new();
    let stats_before;
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(16)).unwrap();
        for k in 0..40 {
            apply_op(&ix, &mut oracle, k);
        }
        ix.flush().unwrap(); // a real committed merge first
        for k in 40..55 {
            apply_op(&ix, &mut oracle, k);
        }
        stats_before = ix.stats().unwrap();
        ix.inject_crash(CrashPoint::BeforeCommit);
        match ix.flush() {
            Err(LiveError::Injected(_)) => {}
            other => panic!("expected injected crash, got {other:?}"),
        }
        // The process "dies" here: plain drop, no further cleanup.
    }
    let ix = LiveIndex::<2>::open(&dir, opts(16)).unwrap();
    assert_state_matches(&ix, &oracle, "reopen after pre-flip crash");
    // The aborted merge really did not commit.
    assert_eq!(
        ix.stats().unwrap().store_epoch,
        stats_before.store_epoch,
        "manifest must not have advanced"
    );
}

/// Injected death **after the manifest flip but before the WAL prune
/// and in-memory swap**: the new manifest's cut filters the stale
/// segments; nothing is lost, nothing double-applies.
#[test]
fn crash_between_manifest_flip_and_wal_prune_loses_nothing() {
    let dir = tmpdir("after-flip");
    let mut oracle = Vec::new();
    let stats_before;
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(16)).unwrap();
        for k in 0..48 {
            apply_op(&ix, &mut oracle, k);
        }
        stats_before = ix.stats().unwrap();
        ix.inject_crash(CrashPoint::AfterCommit);
        match ix.flush() {
            Err(LiveError::Injected(_)) => {}
            other => panic!("expected injected crash, got {other:?}"),
        }
    }
    // Stale segments from before the rotation still exist (prune never
    // ran) — replay must filter them by the manifest's cut, not
    // double-apply them.
    let ix = LiveIndex::<2>::open(&dir, opts(16)).unwrap();
    assert_state_matches(&ix, &oracle, "reopen after post-flip crash");
    assert!(
        ix.stats().unwrap().store_epoch > stats_before.store_epoch,
        "the flip did commit"
    );
}

/// The same two windows, hit while deletes are outstanding (tombstones
/// in the checkpoint path).
#[test]
fn injected_crashes_with_outstanding_tombstones() {
    for point in [CrashPoint::BeforeCommit, CrashPoint::AfterCommit] {
        let dir = tmpdir(&format!("tombstone-crash-{point:?}"));
        let mut oracle = Vec::new();
        {
            let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
            for k in 0..24 {
                ix.insert(item(k)).unwrap();
                oracle.push(item(k));
            }
            ix.flush().unwrap();
            // Deletes landing as tombstones (targets live in components).
            for k in [0u32, 5, 11] {
                assert!(ix.delete(&item(k)).unwrap());
                oracle.retain(|i| i.id != k);
            }
            for k in 24..30 {
                ix.insert(item(k)).unwrap();
                oracle.push(item(k));
            }
            ix.inject_crash(point);
            assert!(matches!(ix.flush(), Err(LiveError::Injected(_))));
        }
        let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
        assert_state_matches(&ix, &oracle, &format!("tombstones across {point:?}"));
    }
}

/// Crash on both sides of a **partial** (incremental) merge commit —
/// the commit that reuses a surviving component's pages in place,
/// appends one new component, and flips the manifest. Either way the
/// reopened index recovers exactly the acked prefix, and the surviving
/// run's stable id **and byte offset** are unchanged: recovery reads
/// the reused pages where they always were, never a rewritten copy.
#[test]
fn crash_at_partial_merge_boundaries_preserves_reused_runs() {
    for point in [CrashPoint::BeforeCommit, CrashPoint::AfterCommit] {
        let dir = tmpdir(&format!("partial-merge-{point:?}"));
        let big: Vec<Item<2>> = (0..120).map(item).collect();
        let survivor_run;
        let epoch_before;
        {
            let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
            ix.insert_batch(&big).unwrap();
            ix.compact().unwrap(); // one big committed component, slot 4
            let stats = ix.stats().unwrap();
            assert_eq!(stats.store_runs.len(), 1, "setup: a single run");
            survivor_run = stats.store_runs[0];
            epoch_before = stats.store_epoch;
            // A small second batch: its merge targets slot 0, so the big
            // component survives and its run is committed by reference —
            // the partial-merge shape under test.
            let small: Vec<Item<2>> = (1000..1006).map(item).collect();
            ix.insert_batch(&small).unwrap();
            ix.inject_crash(point);
            match ix.flush() {
                Err(LiveError::Injected(_)) => {}
                other => panic!("expected injected crash, got {other:?}"),
            }
            // Process "dies": plain drop.
        }
        let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
        let mut oracle: Vec<Item<2>> = big.clone();
        oracle.extend((1000..1006).map(item));
        assert_state_matches(&ix, &oracle, &format!("partial merge {point:?}"));
        let stats = ix.stats().unwrap();
        let reopened: Vec<_> = stats
            .store_runs
            .iter()
            .filter(|r| r.id == survivor_run.id)
            .collect();
        assert_eq!(
            reopened.len(),
            1,
            "{point:?}: surviving component id must still be live"
        );
        assert_eq!(
            (reopened[0].data_offset, reopened[0].num_pages),
            (survivor_run.data_offset, survivor_run.num_pages),
            "{point:?}: reused run moved — pages were rewritten"
        );
        match point {
            CrashPoint::BeforeCommit => {
                assert_eq!(stats.store_epoch, epoch_before, "flip must not have landed");
                assert_eq!(stats.store_runs.len(), 1, "no new run before the flip");
            }
            CrashPoint::AfterCommit => {
                assert!(stats.store_epoch > epoch_before, "the flip did commit");
                assert_eq!(
                    stats.store_runs.len(),
                    2,
                    "partial commit: reused run + one new run"
                );
            }
        }
    }
}

/// Incremental commits leave superseded runs behind as garbage;
/// `compact_if_garbage` reclaims them only past its threshold, and a
/// reopened index never reads a reclaimed page run — every live run
/// sits inside the fresh file, under fresh offsets, and the full
/// scan/query oracle still agrees.
#[test]
fn reopened_index_never_reads_reclaimed_runs() {
    let dir = tmpdir("reclaimed-runs");
    let mut oracle = Vec::new();
    let ix = LiveIndex::<2>::create(&dir, params(), opts(16)).unwrap();
    // Many small merges: low slots are superseded over and over, so the
    // file accrues garbage while high slots are committed by reference.
    for k in 0..160 {
        apply_op(&ix, &mut oracle, k);
    }
    ix.flush().unwrap();
    let before = ix.stats().unwrap();
    assert!(
        before.store_pages_reused > 0,
        "steady-state merges must reuse runs in place"
    );
    assert!(
        before.store_garbage_bytes > 0,
        "superseded runs must accrue as garbage"
    );
    // Threshold not reached (garbage can never exceed 100% of the
    // file): no rewrite, identical runs.
    assert!(!ix.compact_if_garbage(100).unwrap());
    assert_eq!(ix.stats().unwrap().store_runs, before.store_runs);
    // Threshold reached: full rewrite into a fresh file. What remains
    // as "garbage" is block-alignment slack, not reclaimed runs.
    assert!(ix.compact_if_garbage(0).unwrap());
    let after = ix.stats().unwrap();
    assert!(
        after.store_garbage_bytes < before.store_garbage_bytes,
        "compaction reclaims garbage ({} -> {})",
        before.store_garbage_bytes,
        after.store_garbage_bytes
    );
    assert!(after.store_file_bytes < before.store_file_bytes);
    for run in &after.store_runs {
        assert!(
            run.data_offset < after.store_file_bytes,
            "live run points outside the fresh file"
        );
    }
    assert_state_matches(&ix, &oracle, "after threshold compaction");
    drop(ix);
    let ix = LiveIndex::<2>::open(&dir, opts(16)).unwrap();
    assert_state_matches(&ix, &oracle, "reopen after reclamation");
    // Nothing below the threshold to reclaim on the fresh file.
    assert!(!ix.compact_if_garbage(50).unwrap());
}

/// Compaction rewrites the store into a fresh file via atomic rename;
/// data survives, superseded snapshot space is reclaimed, and a stale
/// temp file from a crashed compaction is ignored at open.
#[test]
fn compaction_reclaims_space_and_survives_reopen() {
    let dir = tmpdir("compact");
    let mut oracle = Vec::new();
    let ix = LiveIndex::<2>::create(&dir, params(), opts(16)).unwrap();
    for k in 0..200 {
        apply_op(&ix, &mut oracle, k);
    }
    ix.flush().unwrap();
    let before = ix.stats().unwrap();
    assert!(before.merges >= 1);
    ix.compact().unwrap();
    let after = ix.stats().unwrap();
    assert_eq!(after.live, oracle.len() as u64);
    assert_eq!(after.components.len(), 1, "compaction leaves one component");
    assert_eq!(after.tombstones, 0, "compaction absorbs all tombstones");
    assert!(
        after.store_file_bytes < before.store_file_bytes,
        "fresh file ({}) should be smaller than the grown one ({})",
        after.store_file_bytes,
        before.store_file_bytes
    );
    assert_state_matches(&ix, &oracle, "after compact");
    drop(ix);

    // A dead compaction's temp file must not confuse open.
    std::fs::write(dir.join("index.prt.tmp"), b"half-written junk").unwrap();
    let ix = LiveIndex::<2>::open(&dir, opts(16)).unwrap();
    assert_state_matches(&ix, &oracle, "reopen after compact + stale tmp");
    assert!(!dir.join("index.prt.tmp").exists());
}

/// Reopening with a different buffer cap (a tuning change across
/// restarts) keeps all data and keeps merging correctly.
#[test]
fn reopen_with_different_buffer_cap() {
    let dir = tmpdir("cap-change");
    let mut oracle = Vec::new();
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(32)).unwrap();
        for k in 0..50 {
            apply_op(&ix, &mut oracle, k);
        }
    }
    let ix = LiveIndex::<2>::open(&dir, opts(4)).unwrap();
    assert_state_matches(&ix, &oracle, "reopen with cap 4");
    for k in 50..70 {
        apply_op(&ix, &mut oracle, k);
    }
    assert_state_matches(&ix, &oracle, "after more ops under cap 4");
}

/// `delete_batch` (one fsync per batch) matches serial deletes exactly:
/// duplicates within a batch, memtable + component victims, misses —
/// and the whole batch survives a crash-reopen.
#[test]
fn delete_batch_matches_serial_semantics_and_survives() {
    let dir = tmpdir("delete-batch");
    let mut oracle = Vec::new();
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
        for k in 0..30 {
            ix.insert(item(k)).unwrap();
            oracle.push(item(k));
        }
        // Victims: component residents, memtable residents, one
        // duplicate, and two misses (never-inserted + wrong rect).
        let batch = vec![
            item(0),
            item(5),
            item(5), // duplicate: only the first copy is live
            item(28),
            item(29),
            item(500),                                    // never existed
            Item::new(Rect::xyxy(0.0, 0.0, 9.0, 9.0), 1), // right id, wrong rect
        ];
        let deleted = ix.delete_batch(&batch).unwrap();
        assert_eq!(deleted, 4, "exactly the live victims");
        for id in [0u32, 5, 28, 29] {
            oracle.retain(|i| i.id != id);
        }
        assert_state_matches(&ix, &oracle, "after delete_batch");
        // A second identical batch deletes nothing.
        assert_eq!(ix.delete_batch(&batch).unwrap(), 0);
    }
    let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
    assert_state_matches(&ix, &oracle, "delete_batch after crash-reopen");
}

/// `flush()` after tombstone-only deletes (empty memtable) still
/// commits a checkpoint: the manifest catches up to the acknowledged
/// sequence and the WAL becomes prunable.
#[test]
fn flush_checkpoints_tombstone_only_deletes() {
    let dir = tmpdir("tombstone-checkpoint");
    let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
    for k in 0..24 {
        ix.insert(item(k)).unwrap();
    }
    ix.flush().unwrap();
    // All items now live in components; these deletes are pure
    // tombstones and leave the memtable empty.
    for k in [1u32, 2, 3] {
        assert!(ix.delete(&item(k)).unwrap());
    }
    let before = ix.stats().unwrap();
    assert!(
        before.merged_seq < before.durable_seq,
        "deletes outrun manifest"
    );
    ix.flush().unwrap();
    let after = ix.stats().unwrap();
    assert_eq!(
        after.merged_seq, after.durable_seq,
        "flush must checkpoint tombstone-only deletes"
    );
    drop(ix);
    // Reopen replays nothing (manifest covers everything) and agrees.
    let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
    assert_eq!(ix.len(), 21);
}

/// The directory lock refuses a second concurrent open — even a
/// "read-only" open truncates torn WAL tails, so sharing would corrupt.
#[test]
fn concurrent_open_is_refused_while_locked() {
    let dir = tmpdir("locked");
    let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
    ix.insert(item(1)).unwrap();
    match LiveIndex::<2>::open(&dir, opts(8)) {
        Err(LiveError::Locked(d)) => assert_eq!(d, dir),
        other => panic!("expected Locked, got {:?}", other.map(|_| ())),
    }
    drop(ix);
    // Released on drop (or process death): reopen succeeds.
    let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
    assert_eq!(ix.len(), 1);
}

/// `create` over an existing index must destroy it whole — in
/// particular stale rotated WAL segments, which would otherwise be
/// replayed into the new index on a later reopen.
#[test]
fn create_over_existing_index_leaves_no_stale_wal() {
    let dir = tmpdir("recreate");
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
        for k in 0..30 {
            ix.insert(item(k)).unwrap();
        }
        ix.flush().unwrap(); // rotates: segment index >= 2 now current
        for k in 30..40 {
            ix.insert(item(k)).unwrap();
        }
    }
    let ix = LiveIndex::<2>::create(&dir, params(), opts(8)).unwrap();
    assert_eq!(ix.len(), 0, "create must start empty");
    ix.insert(item(1000)).unwrap();
    drop(ix);
    let ix = LiveIndex::<2>::open(&dir, opts(8)).unwrap();
    assert_eq!(ix.len(), 1, "old items resurrected from stale WAL");
    assert_eq!(ix.snapshot().items().unwrap(), vec![item(1000)]);
}

/// `Durability::Async` at **every op boundary**: ops `0..k` are acked
/// and explicitly synced, then a few more ops are acked into the
/// in-flight window; the process crashes and the unsynced bytes never
/// reach disk (modelled by truncating the newest segment back to the
/// synced length — an in-process drop drains the window, a power cut
/// would not). Reopen must recover **exactly the synced prefix of the
/// acknowledged sequence**: never a torn suffix, never op `k` or later.
#[test]
fn async_crash_at_every_boundary_recovers_synced_prefix() {
    const TAIL: u32 = 3;
    let aopts = |cap| LiveOptions {
        durability: pr_live::Durability::Async {
            max_inflight_bytes: 1 << 20,
        },
        ..opts(cap)
    };
    for k in 0..40u32 {
        let dir = tmpdir(&format!("async-boundary-{k}"));
        let mut oracle: Vec<Item<2>> = Vec::new();
        let ix = LiveIndex::<2>::create(&dir, params(), aopts(1000)).unwrap();
        for j in 0..k {
            apply_op(&ix, &mut oracle, j);
        }
        ix.sync_wal().unwrap();
        // buffer_cap 1000 → no merges, single segment: its length right
        // now is exactly the synced prefix boundary.
        let newest = newest_wal_segment(&dir);
        let synced_len = std::fs::metadata(&newest).unwrap().len();
        let mut tail_oracle = oracle.clone();
        for j in k..k + TAIL {
            apply_op(&ix, &mut tail_oracle, j); // acked, not synced
        }
        drop(ix); // crash
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&newest)
            .unwrap();
        f.set_len(synced_len).unwrap();
        drop(f);
        let ix = LiveIndex::<2>::open(&dir, aopts(1000)).unwrap();
        assert_state_matches(&ix, &oracle, &format!("synced prefix at boundary {k}"));
        assert_eq!(ix.stats().unwrap().durable_seq, k as u64);
    }
}

fn newest_wal_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            (name.starts_with("wal-") && name.ends_with(".log")).then_some(p)
        })
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

fn flip_byte(path: &std::path::Path, offset: u64) {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0x55;
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&b).unwrap();
}
