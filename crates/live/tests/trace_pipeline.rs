//! Pins the background/write trace shapes: with 1-in-1 sampling, the
//! ingest pipeline publishes `write`, `merge`, `compaction`, and
//! `wal_replay` traces whose spans cover all four layers (live, em,
//! tree, store) — the contract `prtree trace` and the CI roundtrip
//! validation build on.

use pr_geom::{Item, Rect};
use pr_live::{LiveIndex, LiveOptions};
use pr_tree::TreeParams;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pr-live-trace-{}", std::process::id()))
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn item(i: u32) -> Item<2> {
    let x = (i as f64 * 37.0) % 1000.0;
    let y = (i as f64 * 61.0) % 1000.0;
    Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
}

fn span_names(t: &pr_obs::Trace) -> BTreeSet<&'static str> {
    t.spans.iter().map(|s| s.name).collect()
}

fn layers(t: &pr_obs::Trace) -> BTreeSet<&'static str> {
    t.spans.iter().map(|s| s.layer).collect()
}

/// One test (sampling and the collector are process-global).
#[test]
fn pipeline_traces_cover_all_layers() {
    let dir = tmpdir("pipeline");
    let opts = LiveOptions {
        buffer_cap: 1024,
        background_merge: false, // deterministic merge points
        trace_sample_every: 1,   // every op traced
        ..LiveOptions::default()
    };
    pr_obs::trace::install_collector(256);
    {
        let idx = LiveIndex::<2>::create(&dir, TreeParams::with_cap::<2>(8), opts).unwrap();
        let batch: Vec<Item<2>> = (0..200).map(item).collect();
        idx.insert_batch(&batch).unwrap();
        idx.flush().unwrap(); // merge #1: memtable -> component
        let batch2: Vec<Item<2>> = (200..400).map(item).collect();
        idx.insert_batch(&batch2).unwrap();
        idx.compact().unwrap(); // reads component(s) back + rewrites the store
        let victims: Vec<Item<2>> = (0..8).map(item).collect();
        assert_eq!(idx.delete_batch(&victims).unwrap(), 8);
        // Leave unmerged acknowledged writes behind so reopen replays.
        idx.insert_batch(&(400..420).map(item).collect::<Vec<_>>())
            .unwrap();
    }
    {
        let _idx = LiveIndex::<2>::open(&dir, opts).unwrap();
    }
    pr_obs::trace::set_sampling(0);
    let traces = pr_obs::trace::drain_collector();

    // Write path: the sole writer always leads its own group, so its
    // trace shows the full attribution chain, not an opaque wait.
    let write = traces.iter().find(|t| t.kind == "write").unwrap();
    let names = span_names(write);
    for want in [
        "encode",
        "enqueue",
        "lead",
        "wal_append",
        "wal_fsync",
        "apply",
    ] {
        assert!(
            names.contains(want),
            "write trace missing {want}: {names:?}"
        );
    }

    // Delete path adds the off-lock probe and the decision phase.
    let delete = traces.iter().find(|t| t.kind == "delete").unwrap();
    let names = span_names(delete);
    for want in ["probe", "decide", "enqueue", "lead"] {
        assert!(
            names.contains(want),
            "delete trace missing {want}: {names:?}"
        );
    }

    // Merge #1: seal -> bulk_load -> cut -> commit -> swap, with the
    // store layer's ambient commit spans absorbed.
    let merge = traces.iter().find(|t| t.kind == "merge").unwrap();
    let names = span_names(merge);
    for want in [
        "seal",
        "bulk_load",
        "cut",
        "commit_snapshot",
        "commit",
        "fsync_body",
        "fsync_flip",
        "swap",
        "wal_prune",
    ] {
        assert!(
            names.contains(want),
            "merge trace missing {want}: {names:?}"
        );
    }

    // Compaction reads every component back (em layer) and reopens the
    // rewritten store: all four layers appear in one trace.
    let compaction = traces.iter().find(|t| t.kind == "compaction").unwrap();
    let names = span_names(compaction);
    for want in ["component_read", "bulk_load", "store_open"] {
        assert!(
            names.contains(want),
            "compaction trace missing {want}: {names:?}"
        );
    }
    let l = layers(compaction);
    for want in ["live", "em", "tree", "store"] {
        assert!(
            l.contains(want),
            "compaction trace missing layer {want}: {l:?}"
        );
    }

    // Reopen replayed the post-compaction writes.
    let replay = traces.iter().find(|t| t.kind == "wal_replay").unwrap();
    let replay_span = replay.spans.iter().find(|s| s.name == "replay").unwrap();
    assert_eq!(replay_span.layer, "live");
    assert!(replay_span.detail.starts_with("records="));
    pr_obs::recorder().clear();
}
