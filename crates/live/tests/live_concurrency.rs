//! Concurrency proofs: readers racing active ingest, merges, and
//! compaction always see a **consistent op-boundary cut** whose contents
//! equal a serial brute-force oracle, and a snapshot once taken is
//! frozen forever.
//!
//! The key invariant exploited: the writer applies a deterministic
//! workload, so every reachable cut has a closed-form oracle. Insert-only
//! workloads: a snapshot must contain *exactly* the items `0..k` for
//! some `k` (no holes — nothing torn; no future items). Mixed
//! workloads: the cut is identified by the live-id multiset and checked
//! item-for-item against the oracle's history.

use pr_geom::{Item, Point, Rect};
use pr_live::{LiveIndex, LiveOptions, LiveSnapshot};
use pr_tree::{QueryScratch, TreeParams};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pr-live-conc-{}", std::process::id()))
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn params() -> TreeParams {
    TreeParams::with_cap::<2>(8)
}

fn item(i: u32) -> Item<2> {
    let x = (i as f64 * 37.0) % 1000.0;
    let y = (i as f64 * 61.0) % 1000.0;
    Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
}

fn everything() -> Rect<2> {
    Rect::xyxy(-10.0, -10.0, 1010.0, 1010.0)
}

/// Readers hammer snapshots while a writer inserts `0..n` in order
/// (merges — inline or background — constantly in flight). Every
/// snapshot must be an exact prefix `{0..k}`, bounded by what was
/// acknowledged around the time it was taken, and identical to the
/// serial brute-force oracle over those k items.
fn insert_only_prefix_invariant(name: &str, background: bool) {
    let dir = tmpdir(name);
    let n: u32 = 2000;
    let opts = LiveOptions {
        buffer_cap: 64,
        background_merge: background,
        backpressure_factor: 4,
        ..LiveOptions::default()
    };
    let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let ix = &ix;
        let done = &done;
        s.spawn(move || {
            for i in 0..n {
                ix.insert(item(i)).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for reader in 0..3 {
            s.spawn(move || {
                let mut scratch = QueryScratch::new();
                let mut out = Vec::new();
                let mut seen_nonempty = false;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let low = ix.len(); // acked before the snapshot
                    let snap = ix.snapshot();
                    let high = ix.len(); // acked after the snapshot
                    snap.window_into(&everything(), &mut scratch, &mut out)
                        .unwrap();
                    let k = snap.len();
                    assert!(
                        (low..=high).contains(&k),
                        "reader {reader}: snapshot len {k} outside [{low}, {high}]"
                    );
                    let mut ids: Vec<u32> = out.iter().map(|i| i.id).collect();
                    ids.sort_unstable();
                    let want_ids: Vec<u32> = (0..k as u32).collect();
                    assert_eq!(
                        ids, want_ids,
                        "reader {reader}: snapshot is not an exact prefix"
                    );
                    // Contents match the oracle item-for-item.
                    for it in &out {
                        assert_eq!(*it, item(it.id), "reader {reader}: item bits differ");
                    }
                    // A sub-window agrees with brute force over the prefix.
                    let q = Rect::xyxy(100.0, 100.0, 400.0, 400.0);
                    let got = snap.window(&q).unwrap();
                    let oracle: Vec<Item<2>> = (0..k as u32)
                        .map(item)
                        .filter(|i| i.rect.intersects(&q))
                        .collect();
                    let mut got_ids: Vec<u32> = got.iter().map(|i| i.id).collect();
                    let mut want: Vec<u32> = oracle.iter().map(|i| i.id).collect();
                    got_ids.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got_ids, want, "reader {reader}: window vs oracle");
                    seen_nonempty |= k > 0;
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
                assert!(seen_nonempty, "reader {reader} never saw data");
            });
        }
    });
    ix.wait_idle().unwrap();
    // Final state: all n items, through queries and through k-NN.
    let snap = ix.snapshot();
    assert_eq!(snap.len(), n as u64);
    let stats = ix.stats().unwrap();
    assert!(stats.merges >= 1, "workload must have exercised merges");
    let (nn, _) = ix
        .nearest_neighbors(&Point::new([500.0, 500.0]), 10)
        .unwrap();
    assert_eq!(nn.len(), 10);
    assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
}

#[test]
fn concurrent_readers_see_exact_prefixes_inline_merges() {
    insert_only_prefix_invariant("prefix-inline", false);
}

#[test]
fn concurrent_readers_see_exact_prefixes_background_merges() {
    insert_only_prefix_invariant("prefix-background", true);
}

/// Mixed insert/delete workload with background merges: the *writer*
/// verifies full oracle equality at every step (serial correctness
/// while merges race underneath), and concurrent readers verify
/// structural consistency (no duplicates, no foreign items, no dead
/// items older than the snapshot allows).
#[test]
fn mixed_ops_match_oracle_with_concurrent_readers() {
    let dir = tmpdir("mixed");
    let opts = LiveOptions {
        buffer_cap: 48,
        background_merge: true,
        backpressure_factor: 4,
        ..LiveOptions::default()
    };
    let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let ix = &ix;
        let done = &done;
        s.spawn(move || {
            let mut oracle: Vec<Item<2>> = Vec::new();
            let mut scratch = QueryScratch::new();
            let mut out = Vec::new();
            for k in 0..1200u32 {
                // Deterministic mixed workload: every 3rd op deletes the
                // oldest survivor.
                if k % 3 == 2 && !oracle.is_empty() {
                    let victim = oracle.remove(0);
                    assert!(ix.delete(&victim).unwrap(), "op {k}");
                } else {
                    ix.insert(item(k)).unwrap();
                    oracle.push(item(k));
                }
                if k % 50 == 49 {
                    let snap = ix.snapshot();
                    snap.window_into(&everything(), &mut scratch, &mut out)
                        .unwrap();
                    let mut got: Vec<u32> = out.iter().map(|i| i.id).collect();
                    let mut want: Vec<u32> = oracle.iter().map(|i| i.id).collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want, "writer-side oracle check at op {k}");
                }
            }
            done.store(true, Ordering::Release);
        });
        for reader in 0..2 {
            s.spawn(move || {
                let mut scratch = QueryScratch::new();
                let mut out = Vec::new();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = ix.snapshot();
                    snap.window_into(&everything(), &mut scratch, &mut out)
                        .unwrap();
                    assert_eq!(out.len() as u64, snap.len(), "reader {reader}: count");
                    let mut ids: Vec<u32> = out.iter().map(|i| i.id).collect();
                    ids.sort_unstable();
                    let unique_before = ids.len();
                    ids.dedup();
                    assert_eq!(ids.len(), unique_before, "reader {reader}: duplicate ids");
                    for it in &out {
                        assert_eq!(*it, item(it.id), "reader {reader}: foreign item");
                    }
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    ix.wait_idle().unwrap();
    assert!(ix.stats().unwrap().merges >= 1);
}

/// A snapshot is pinned: its results never change, even across further
/// ingest, merges, and a full compaction that rewrites (and unlinks)
/// the store file underneath it.
#[test]
fn snapshot_stays_frozen_across_merges_and_compaction() {
    let dir = tmpdir("pinned");
    let opts = LiveOptions {
        buffer_cap: 32,
        background_merge: false,
        backpressure_factor: 4,
        ..LiveOptions::default()
    };
    let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
    for i in 0..300 {
        ix.insert(item(i)).unwrap();
    }
    let snap: LiveSnapshot<2> = ix.snapshot();
    let q = Rect::xyxy(0.0, 0.0, 600.0, 600.0);
    let baseline = snap.window(&q).unwrap();
    let baseline_len = snap.len();

    // Mutate heavily: more inserts, deletes, merges, then a compaction
    // that replaces the store file wholesale.
    for i in 300..900 {
        ix.insert(item(i)).unwrap();
    }
    for i in (0..300).step_by(2) {
        assert!(ix.delete(&item(i)).unwrap());
    }
    ix.compact().unwrap();

    // The old snapshot still answers from its pinned world.
    assert_eq!(snap.len(), baseline_len);
    let again = snap.window(&q).unwrap();
    assert_eq!(again, baseline, "snapshot results drifted");

    // And a fresh snapshot sees the new world.
    let fresh = ix.snapshot();
    assert_eq!(fresh.len(), 900 - 150);
}

/// k-NN on a live snapshot matches a brute-force oracle while merges
/// run (deletes included).
#[test]
fn knn_matches_oracle_after_churn() {
    let dir = tmpdir("knn");
    let opts = LiveOptions {
        buffer_cap: 16,
        background_merge: false,
        backpressure_factor: 4,
        ..LiveOptions::default()
    };
    let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
    let mut oracle = Vec::new();
    for i in 0..400u32 {
        ix.insert(item(i)).unwrap();
        oracle.push(item(i));
    }
    for i in (0..400u32).step_by(3) {
        assert!(ix.delete(&item(i)).unwrap());
        oracle.retain(|it| it.id != i);
    }
    let q = Point::new([321.0, 456.0]);
    let (got, _) = ix.nearest_neighbors(&q, 15).unwrap();
    let mut want: Vec<(u32, f64)> = oracle
        .iter()
        .map(|i| (i.id, i.rect.min_dist2(&q).sqrt()))
        .collect();
    want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let got_pairs: Vec<(u32, f64)> = got.iter().map(|(i, d)| (i.id, *d)).collect();
    assert_eq!(got_pairs, want[..15].to_vec());
}
