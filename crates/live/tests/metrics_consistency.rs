//! Concurrent-metrics consistency: the process-wide registry must
//! agree with a serial oracle while N writers and M query threads hit
//! one live index.
//!
//! The whole file is a single `#[test]` on purpose — the registry and
//! event ring are process-global, and a sibling test running in the
//! same binary would bump the very counters this test asserts on.
//!
//! Checked invariants, per ISSUE 7's satellite:
//! * acked-insert counters are **exact** (every `insert_batch` return
//!   is one oracle increment, and `live_wal_records_total` must match
//!   item-for-item);
//! * fsync/group counts never exceed the batch count (group commit
//!   coalesces, it never splits);
//! * leaf-cache hit+miss totals equal the sum of every query thread's
//!   own [`pr_tree::QueryStats`] — the sharded counters lose nothing
//!   under contention;
//! * the event ring preserves merge commit order (`cut_seq` is strictly
//!   increasing in ring order, because ring order is seq order).

use pr_geom::{Item, Rect};
use pr_live::{Durability, LiveIndex, LiveOptions};
use pr_tree::{QueryScratch, TreeParams};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const PHASE1_N: u32 = 4_000;
const WRITERS: usize = 4;
const BATCHES_PER_WRITER: usize = 40;
const BATCH: usize = 16;
const QUERY_THREADS: usize = 3;
const QUERIES_PER_THREAD: usize = 200;

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pr-live-metrics-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn item(i: u32) -> Item<2> {
    let x = (i as f64 * 37.0) % 1000.0;
    let y = (i as f64 * 61.0) % 1000.0;
    Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
}

#[test]
fn registry_agrees_with_serial_oracle_under_concurrency() {
    let dir = tmpdir();
    let params = TreeParams::with_cap::<2>(8);

    // Phase 1 — serial ingest with a small buffer and inline merges, so
    // components exist (queries below must actually probe the leaf
    // cache) and the ring records real merge commits.
    {
        let opts = LiveOptions {
            buffer_cap: 512,
            background_merge: false,
            leaf_cache_bytes: 4 << 20,
            durability: Durability::Fsync,
            ..LiveOptions::default()
        };
        let ix = LiveIndex::<2>::create(&dir, params, opts).unwrap();
        let all: Vec<Item<2>> = (0..PHASE1_N).map(item).collect();
        for chunk in all.chunks(64) {
            ix.insert_batch(chunk).unwrap();
        }
        ix.flush().unwrap();
        let stats = ix.stats().unwrap();
        assert!(
            !stats.components.is_empty(),
            "phase 1 must leave store-backed components behind"
        );
    }

    // Event-ring order: merge commits appear in commit order, because
    // ring sequence numbers are assigned under the ring lock at emit
    // time and merges emit at their swap point under the writer lock.
    let log = pr_obs::events().snapshot();
    let cut_seqs: Vec<u64> = log
        .events
        .iter()
        .filter(|e| e.kind == "merge_commit")
        .map(|e| {
            e.detail
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("cut_seq="))
                .expect("merge_commit detail carries cut_seq")
                .parse::<u64>()
                .unwrap()
        })
        .collect();
    assert!(
        !cut_seqs.is_empty(),
        "phase 1 must commit at least one merge"
    );
    assert!(
        cut_seqs.windows(2).all(|w| w[0] < w[1]),
        "merge_commit cut_seqs out of order in the ring: {cut_seqs:?}"
    );
    let ring_seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
    assert!(
        ring_seqs.windows(2).all(|w| w[0] < w[1]),
        "ring sequence numbers must be strictly increasing"
    );

    // Phase 2 — reopen with an unreachable buffer cap: no seals, no
    // merges, so every registry movement in the window below comes from
    // the writer/query threads themselves.
    let opts = LiveOptions {
        buffer_cap: usize::MAX,
        background_merge: false,
        leaf_cache_bytes: 4 << 20,
        durability: Durability::Fsync,
        ..LiveOptions::default()
    };
    let ix = LiveIndex::<2>::open(&dir, opts).unwrap();
    let before = pr_obs::global().snapshot();

    let inserted = AtomicU64::new(0);
    let batches = AtomicU64::new(0);
    let probes = AtomicU64::new(0); // query threads' own leaf hit+miss sums
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let ix = &ix;
            let (inserted, batches) = (&inserted, &batches);
            s.spawn(move || {
                for b in 0..BATCHES_PER_WRITER {
                    let base = 1_000_000 + (w * BATCHES_PER_WRITER + b) as u32 * BATCH as u32;
                    let items: Vec<Item<2>> = (0..BATCH as u32).map(|k| item(base + k)).collect();
                    ix.insert_batch(&items).unwrap();
                    inserted.fetch_add(items.len() as u64, Ordering::Relaxed);
                    batches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for q in 0..QUERY_THREADS {
            let ix = &ix;
            let probes = &probes;
            s.spawn(move || {
                let snap = ix.snapshot();
                let mut scratch = QueryScratch::new();
                let mut out = Vec::new();
                let mut sum = 0u64;
                for i in 0..QUERIES_PER_THREAD {
                    let x = ((q * QUERIES_PER_THREAD + i) as f64 * 13.0) % 950.0;
                    let query = Rect::xyxy(x, 0.0, x + 50.0, 1000.0);
                    let stats = snap.window_into(&query, &mut scratch, &mut out).unwrap();
                    sum += stats.leaf_cache_hits + stats.leaf_cache_misses;
                }
                probes.fetch_add(sum, Ordering::Relaxed);
            });
        }
    });

    let after = pr_obs::global().snapshot();
    let delta = after.delta_since(&before);
    let inserted = inserted.load(Ordering::Relaxed);
    let batches = batches.load(Ordering::Relaxed);
    let probes = probes.load(Ordering::Relaxed);

    // Acked inserts are exact — once as the acked-op counter, once as
    // WAL records (1 insert == 1 record; no deletes in this window).
    assert_eq!(delta.counter("live_inserts_acked_total"), inserted);
    assert_eq!(delta.counter("live_wal_records_total"), inserted);

    // Group commit coalesces: with concurrent writers in Fsync mode,
    // groups (and their one-fsync-each) never exceed batch count.
    let groups = delta.counter("live_wal_groups_total");
    let fsyncs = delta.counter("live_wal_fsyncs_total");
    assert!(
        groups >= 1 && groups <= batches,
        "groups={groups} batches={batches}"
    );
    assert!(fsyncs == groups, "fsyncs={fsyncs} groups={groups}");

    // Sharded leaf-cache counters lose nothing under contention: the
    // registry's hit+miss delta equals what the query threads counted
    // through their per-traversal QueryStats.
    let cache_probes =
        delta.counter("tree_leaf_cache_hits_total") + delta.counter("tree_leaf_cache_misses_total");
    assert!(probes > 0, "queries must have probed the leaf cache");
    assert_eq!(cache_probes, probes);

    // No merges ran in the window.
    assert_eq!(delta.counter("live_merges_total"), 0);

    // The batch-latency histogram saw every batch.
    let h = delta
        .histogram("live_insert_batch_us")
        .expect("insert batch histogram registered");
    assert_eq!(h.len(), batches);

    drop(ix);
    std::fs::remove_dir_all(&dir).ok();
}
