//! Fail-any-I/O torture sweeps (the tentpole acceptance tests).
//!
//! Each test arms the process-wide fault hook via the `pr_live::torture`
//! harness or directly, so everything here serialises on
//! `pr_em::fault::exclusive()` — either taken by the harness itself or
//! taken explicitly at the top of the test.

use pr_em::fault::{self, Errno, FaultKind, FaultSchedule, OpClass};
use pr_geom::{Item, Rect};
use pr_live::{Durability, LiveError, LiveIndex, LiveOptions, TortureConfig};
use pr_tree::TreeParams;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pr-live-torture-{}", std::process::id()))
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn params() -> TreeParams {
    TreeParams::with_cap::<2>(8)
}

fn item(i: u32) -> Item<2> {
    let x = f64::from((i * 37) % 1000);
    let y = f64::from((i * 61) % 1000);
    Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
}

fn no_merge_opts(durability: Durability) -> LiveOptions {
    LiveOptions {
        buffer_cap: 10_000, // keep merges out of the picture
        background_merge: false,
        durability,
        ..LiveOptions::default()
    }
}

/// The headline sweep: fail every single I/O op the fsync-mode trace
/// performs, one run per op, and require the acked-prefix invariant
/// after every reopen.
#[test]
fn sweep_every_op_fsync() {
    let dir = tmpdir("sweep-fsync");
    let cfg = TortureConfig::small(&dir, Durability::Fsync);
    let report = pr_live::run_torture(&cfg).expect("torture harness");
    assert!(report.total_ops > 50, "trace too small: {report:?}");
    assert_eq!(report.runs, report.total_ops);
    // Fsync mode is deterministic: every programmed fault must fire
    // (EINTR runs inject too — the retry consumes the fault).
    assert_eq!(report.silent, 0, "fsync sweep had silent runs: {report:?}");
    assert!(report.injected == report.runs, "{report:?}");
}

/// Same sweep under async durability. Syncer-thread scheduling makes op
/// indices nondeterministic, so some runs may be silent — those still
/// verify the clean-run invariant; fired runs verify the fault path.
#[test]
fn sweep_every_op_async() {
    let dir = tmpdir("sweep-async");
    let cfg = TortureConfig::small(
        &dir,
        Durability::Async {
            max_inflight_bytes: 1 << 16,
        },
    );
    let report = pr_live::run_torture(&cfg).expect("torture harness");
    assert!(report.total_ops > 20, "trace too small: {report:?}");
    assert_eq!(report.runs, report.total_ops);
    assert!(
        report.injected > report.runs / 2,
        "async sweep mostly silent — op counting is off: {report:?}"
    );
}

/// Two concurrent writers under the sweep: acked ⊆ recovered ⊆ issued,
/// no duplicates, at every sampled failure point.
#[test]
fn sweep_two_writers() {
    let dir = tmpdir("sweep-multi");
    let cfg = TortureConfig {
        writers: 2,
        stride: 3,
        ..TortureConfig::small(&dir, Durability::Fsync)
    };
    let report = pr_live::run_torture_multi(&cfg).expect("torture harness");
    assert!(report.total_ops > 50, "trace too small: {report:?}");
    assert!(report.runs >= report.total_ops / 3, "{report:?}");
}

/// ENOSPC-then-free must not need a reopen: the failed batch rolls
/// back, the queue enters degraded mode, and the next clean group
/// unpoisons it (satellite 1's regression test).
fn enospc_then_free(durability: Durability, name: &str) {
    let _hook = fault::exclusive();
    let dir = tmpdir(name);
    let ix = LiveIndex::<2>::create(&dir, params(), no_merge_opts(durability)).expect("create");

    let clean: Vec<Item<2>> = (0..20).map(item).collect();
    ix.insert_batch(&clean).expect("clean insert");

    let unpoisons_before = pr_live::obs::metrics().wal_unpoisons.get();

    // Disk fills: every write fails until the guard drops.
    let guard = fault::install(FaultSchedule::sticky(
        7,
        0,
        Some(OpClass::Write),
        FaultKind::Errno(Errno::Enospc),
    ));
    let doomed: Vec<Item<2>> = (100..120).map(item).collect();
    let err = ix.insert_batch(&doomed).expect_err("full disk must fail");
    assert!(
        matches!(
            err,
            LiveError::GroupFailed {
                transient: true,
                ..
            }
        ),
        "ENOSPC must classify as a transient group failure, got: {err}"
    );
    let stats = ix.stats().expect("stats");
    assert!(stats.wal_degraded, "queue should report degraded mode");

    // Space freed: ingest resumes on the same handle, no reopen.
    drop(guard);
    let resumed: Vec<Item<2>> = (200..220).map(item).collect();
    ix.insert_batch(&resumed)
        .expect("ingest must resume after ENOSPC clears");
    let stats = ix.stats().expect("stats");
    assert!(!stats.wal_degraded, "clean group must lift degraded mode");
    assert!(
        pr_live::obs::metrics().wal_unpoisons.get() > unpoisons_before,
        "unpoison recovery must be observable"
    );

    // The rolled-back batch must not resurrect on reopen.
    drop(ix);
    let ix = LiveIndex::<2>::open(&dir, no_merge_opts(Durability::Fsync)).expect("reopen");
    let mut ids: Vec<u32> = ix
        .snapshot()
        .items()
        .expect("scan")
        .iter()
        .map(|it| it.id)
        .collect();
    ids.sort_unstable();
    let want: Vec<u32> = (0..20).chain(200..220).collect();
    assert_eq!(ids, want, "recovered exactly the acked batches");
}

#[test]
fn enospc_then_free_fsync() {
    enospc_then_free(Durability::Fsync, "enospc-fsync");
}

#[test]
fn enospc_then_free_async() {
    enospc_then_free(
        Durability::Async {
            max_inflight_bytes: 1 << 16,
        },
        "enospc-async",
    );
}

/// Fail **every single I/O op of a partial merge commit**, one run per
/// op: the commit that reuses a big surviving component's pages in
/// place, appends one small new component, and flips the manifest.
/// Whatever op dies — WAL rotation fsync, a page append, the checksum
/// table, the manifest, the superblock flip, the prune — the reopened
/// index must recover exactly the acked set, and the surviving run must
/// still be referenced at its original byte offset (its pages were
/// never rewritten, and recovery never reads a reclaimed run).
fn partial_merge_fault_sweep(durability: Durability, name: &str) {
    let _hook = fault::exclusive();
    let opts = || LiveOptions {
        buffer_cap: 8,
        background_merge: false,
        durability,
        ..LiveOptions::default()
    };
    for at_op in 0u64.. {
        let dir = tmpdir(&format!("{name}-{at_op}"));
        let survivor_run;
        {
            // Build outside the schedule: a big compacted component plus
            // a small synced memtable tail — everything below is acked
            // *and synced* before the first fault can fire.
            let ix = LiveIndex::<2>::create(&dir, params(), opts()).expect("create");
            let big: Vec<Item<2>> = (0..120).map(item).collect();
            ix.insert_batch(&big).expect("big batch");
            ix.compact().expect("compact");
            survivor_run = ix.stats().expect("stats").store_runs[0];
            let small: Vec<Item<2>> = (1000..1006).map(item).collect();
            ix.insert_batch(&small).expect("small batch");
            ix.sync_wal().expect("sync");

            let guard = fault::install(FaultSchedule::fail_op(
                0x9e_17 + at_op,
                at_op,
                None,
                FaultKind::Errno(Errno::Eio),
            ));
            let res = ix.flush(); // the partial merge under fire
            let fired = fault::injected_count() > 0;
            drop(guard);
            if !fired {
                // The schedule outlived the merge's op trace: the merge
                // ran clean and the sweep is complete (every op below
                // `at_op` was faulted in an earlier run).
                res.expect("un-faulted merge must succeed");
                assert!(at_op > 10, "trace too small: {at_op} faulted ops");
                break;
            }
            drop(ix); // crash: no shutdown, poisoned or not
        }
        let ix = LiveIndex::<2>::open(&dir, opts()).expect("reopen");
        let mut ids: Vec<u32> = ix
            .snapshot()
            .items()
            .expect("scan")
            .iter()
            .map(|it| it.id)
            .collect();
        ids.sort_unstable();
        let want: Vec<u32> = (0..120).chain(1000..1006).collect();
        assert_eq!(ids, want, "op {at_op}: acked set after faulted merge");
        let stats = ix.stats().expect("stats");
        let kept: Vec<_> = stats
            .store_runs
            .iter()
            .filter(|r| r.id == survivor_run.id)
            .collect();
        assert_eq!(kept.len(), 1, "op {at_op}: surviving run dropped");
        assert_eq!(
            (kept[0].data_offset, kept[0].num_pages),
            (survivor_run.data_offset, survivor_run.num_pages),
            "op {at_op}: reused run moved — pages were rewritten"
        );
    }
}

#[test]
fn partial_merge_fault_sweep_fsync() {
    partial_merge_fault_sweep(Durability::Fsync, "merge-sweep-fsync");
}

#[test]
fn partial_merge_fault_sweep_async() {
    partial_merge_fault_sweep(
        Durability::Async {
            max_inflight_bytes: 1 << 16,
        },
        "merge-sweep-async",
    );
}

/// A fatal error (EIO) keeps the classic semantics: the failed batch
/// rolls back, but the write path stays poisoned until reopen.
#[test]
fn fatal_eio_poisons_until_reopen() {
    let _hook = fault::exclusive();
    let dir = tmpdir("fatal-eio");
    let ix =
        LiveIndex::<2>::create(&dir, params(), no_merge_opts(Durability::Fsync)).expect("create");
    let clean: Vec<Item<2>> = (0..10).map(item).collect();
    ix.insert_batch(&clean).expect("clean insert");

    let guard = fault::install(FaultSchedule::fail_op(
        11,
        0,
        Some(OpClass::Write),
        FaultKind::Errno(Errno::Eio),
    ));
    let doomed: Vec<Item<2>> = (100..110).map(item).collect();
    let err = ix
        .insert_batch(&doomed)
        .expect_err("EIO must fail the group");
    assert!(
        matches!(
            err,
            LiveError::GroupFailed {
                transient: false,
                ..
            }
        ),
        "EIO must classify as fatal, got: {err}"
    );
    drop(guard);

    // Fatal poison is sticky: even with the disk healthy again, writes
    // are refused until the operator reopens.
    let late: Vec<Item<2>> = (200..210).map(item).collect();
    let err = ix
        .insert_batch(&late)
        .expect_err("poisoned path must refuse writes");
    assert!(
        matches!(err, LiveError::Corrupt(_)),
        "poisoned write path should surface as Corrupt, got: {err}"
    );

    drop(ix);
    let ix = LiveIndex::<2>::open(&dir, no_merge_opts(Durability::Fsync)).expect("reopen");
    let mut ids: Vec<u32> = ix
        .snapshot()
        .items()
        .expect("scan")
        .iter()
        .map(|it| it.id)
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..10).collect::<Vec<u32>>());
}
