//! Group-commit proofs: N concurrent writers share fsyncs (the PR 6
//! acceptance claim), multi-writer workloads recover exactly the
//! acknowledged set at every kill boundary with gap-free sequence
//! numbers, async durability recovers the synced prefix of the acked
//! sequence under real byte loss, and the paranoid re-hash read path
//! serves the same answers.

use pr_geom::{Item, Rect};
use pr_live::{Durability, LiveIndex, LiveOptions, Wal};
use pr_tree::TreeParams;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pr-live-group-{}", std::process::id()))
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn params() -> TreeParams {
    TreeParams::with_cap::<2>(8)
}

/// Deterministic item: position derived from the id.
fn item(i: u32) -> Item<2> {
    let x = (i as f64 * 37.0) % 1000.0;
    let y = (i as f64 * 61.0) % 1000.0;
    Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
}

/// Writer `w`'s id space is disjoint from every other writer's.
fn w_item(w: usize, k: u32) -> Item<2> {
    item(w as u32 * 1_000_000 + k)
}

fn sorted_ids(items: &[Item<2>]) -> Vec<u32> {
    let mut ids: Vec<u32> = items.iter().map(|i| i.id).collect();
    ids.sort_unstable();
    ids
}

/// The acceptance assertion: with ≥2 concurrent writers in `Fsync`
/// mode, the group fsync count stays **below** the batch count —
/// batches coalesce into shared groups. Scheduling on a small machine
/// can serialize one run into all-singleton groups, so several attempts
/// are allowed; correctness invariants are asserted on every attempt.
#[test]
fn concurrent_writers_coalesce_fsyncs() {
    const WRITERS: usize = 4;
    const BATCHES: usize = 300;
    const BATCH: usize = 4;
    for attempt in 0..5 {
        let dir = tmpdir(&format!("coalesce-{attempt}"));
        let opts = LiveOptions {
            buffer_cap: usize::MAX, // no merges: every fsync is a commit
            background_merge: false,
            ..LiveOptions::default()
        };
        let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let ix = &ix;
                s.spawn(move || {
                    for b in 0..BATCHES {
                        let base = (b * BATCH) as u32;
                        let batch: Vec<Item<2>> =
                            (0..BATCH as u32).map(|i| w_item(w, base + i)).collect();
                        ix.insert_batch(&batch).unwrap();
                    }
                });
            }
        });
        let total_batches = (WRITERS * BATCHES) as u64;
        let total_ops = total_batches * BATCH as u64;
        assert_eq!(ix.len(), total_ops);
        let stats = ix.stats().unwrap();
        assert_eq!(stats.wal_group_records, total_ops, "every op logged");
        assert!(
            stats.wal_groups <= total_batches,
            "groups cannot exceed batches"
        );
        assert_eq!(stats.durable_seq, total_ops);
        assert_eq!(stats.synced_seq, total_ops, "Fsync mode: acked == synced");
        // Arena pin: record frames are encoded into pooled buffers the
        // group leader recycles, so steady state allocates at most one
        // buffer per writer actually in flight — not one per batch. A
        // bound far below `total_batches` (1200) proves the pool works;
        // the small slack absorbs pool-contention races.
        assert!(
            stats.wal_arena_allocs <= (2 * WRITERS + 4) as u64,
            "arena allocated {} buffers for {} batches — frames are not \
             being recycled",
            stats.wal_arena_allocs,
            total_batches
        );
        if stats.wal_fsyncs < total_batches {
            return; // coalescing observed — the claim holds
        }
    }
    panic!("no fsync coalescing observed across 5 attempts");
}

/// N writers × interleaved insert/delete batches, background merges
/// racing underneath; after every round the process "crashes" (plain
/// drop). Reopen must recover exactly the acknowledged set, and the
/// surviving WAL records must carry gap-free, file-ordered sequence
/// numbers (group commit may never reorder or skip a seq).
#[test]
fn multi_writer_kill_boundaries_recover_exact_acked_set() {
    const WRITERS: usize = 3;
    const ROUNDS: u32 = 6;
    const PER_ROUND: u32 = 60;
    let dir = tmpdir("kill-boundaries");
    let opts = LiveOptions {
        buffer_cap: 64,
        background_merge: true,
        backpressure_factor: 4,
        ..LiveOptions::default()
    };
    let mut oracles: Vec<Vec<Item<2>>> = vec![Vec::new(); WRITERS];
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
        drop(ix); // created-then-crashed must reopen
    }
    for r in 0..ROUNDS {
        let ix = LiveIndex::<2>::open(&dir, opts).unwrap();
        std::thread::scope(|s| {
            for (w, _) in oracles.iter().enumerate() {
                let ix = &ix;
                s.spawn(move || {
                    let base = r * PER_ROUND;
                    // Insert this round's items in small batches...
                    for chunk in (0..PER_ROUND).collect::<Vec<_>>().chunks(7) {
                        let batch: Vec<Item<2>> =
                            chunk.iter().map(|k| w_item(w, base + k)).collect();
                        ix.insert_batch(&batch).unwrap();
                    }
                    // ...then delete every 3rd of them (own id space, so
                    // every victim is live and must be accepted).
                    let victims: Vec<Item<2>> = (0..PER_ROUND)
                        .step_by(3)
                        .map(|k| w_item(w, base + k))
                        .collect();
                    let deleted = ix.delete_batch(&victims).unwrap();
                    assert_eq!(deleted, victims.len() as u64, "writer {w} round {r}");
                });
            }
        });
        for (w, oracle) in oracles.iter_mut().enumerate() {
            let base = r * PER_ROUND;
            for k in 0..PER_ROUND {
                if k % 3 != 0 {
                    oracle.push(w_item(w, base + k));
                }
            }
        }
        let want: Vec<Item<2>> = oracles.iter().flatten().copied().collect();
        assert_eq!(ix.len(), want.len() as u64, "round {r}: acked live count");
        drop(ix); // crash

        // Gap-free sequences: replayable records, in file order, form
        // one contiguous run (merges may have pruned a prefix).
        let (_wal, records) = Wal::open::<2>(&dir).unwrap();
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(
                rec.seq,
                records[0].seq + i as u64,
                "round {r}: seq gap or reorder at record {i}"
            );
        }

        let ix = LiveIndex::<2>::open(&dir, opts).unwrap();
        let got = ix.snapshot().items().unwrap();
        assert_eq!(
            sorted_ids(&got),
            sorted_ids(&want),
            "round {r}: recovered set != acked set"
        );
        drop(ix);
    }
}

/// Async durability under real byte loss: everything past the last
/// explicit sync is chopped off the newest segment after the "crash"
/// (simulating a power cut the page cache never survived), and reopen
/// recovers exactly the synced prefix of the acknowledged sequence —
/// never a torn suffix, never anything unacknowledged.
#[test]
fn async_crash_recovers_synced_prefix_of_acked() {
    const SYNCED_OPS: u32 = 60;
    const ACKED_OPS: u32 = 100;
    for torn_extra in [0u64, 13] {
        let dir = tmpdir(&format!("async-prefix-{torn_extra}"));
        let opts = LiveOptions {
            buffer_cap: usize::MAX, // single segment: no rotation syncs
            background_merge: false,
            durability: Durability::Async {
                max_inflight_bytes: 1 << 20,
            },
            ..LiveOptions::default()
        };
        let newest = {
            let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
            for chunk in (0..SYNCED_OPS).collect::<Vec<_>>().chunks(10) {
                let batch: Vec<Item<2>> = chunk.iter().map(|k| item(*k)).collect();
                ix.insert_batch(&batch).unwrap();
            }
            ix.sync_wal().unwrap();
            assert_eq!(ix.stats().unwrap().synced_seq, SYNCED_OPS as u64);
            for chunk in (SYNCED_OPS..ACKED_OPS).collect::<Vec<_>>().chunks(10) {
                let batch: Vec<Item<2>> = chunk.iter().map(|k| item(*k)).collect();
                ix.insert_batch(&batch).unwrap();
            }
            let stats = ix.stats().unwrap();
            assert_eq!(stats.durable_seq, ACKED_OPS as u64, "all ops acked");
            newest_wal_segment(&dir)
        };
        // The synced prefix ends exactly at the recorded sync point:
        // single writer, so the file held seqs 1..=SYNCED_OPS then.
        // (Record the length *now*, after drop, from replay: recompute
        // instead from the wire format — header + ops * frame size.)
        let frame =
            (pr_live::wal::RECORD_HEADER_SIZE + pr_live::WalRecord::<2>::PAYLOAD_SIZE) as u64;
        let synced_len = pr_live::wal::SEGMENT_HEADER_SIZE + SYNCED_OPS as u64 * frame;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&newest)
            .unwrap();
        f.set_len(synced_len + torn_extra).unwrap();
        drop(f);

        let ix = LiveIndex::<2>::open(&dir, opts).unwrap();
        let got = ix.snapshot().items().unwrap();
        let want: Vec<Item<2>> = (0..SYNCED_OPS).map(item).collect();
        assert_eq!(
            sorted_ids(&got),
            sorted_ids(&want),
            "torn_extra={torn_extra}: must recover exactly the synced prefix"
        );
        assert_eq!(ix.stats().unwrap().durable_seq, SYNCED_OPS as u64);
    }
}

/// A clean close under async durability drains the in-flight window
/// (the syncer's goodbye), so a reopen recovers every acknowledged op.
#[test]
fn async_clean_close_loses_nothing() {
    let dir = tmpdir("async-clean-close");
    let opts = LiveOptions {
        buffer_cap: 128,
        background_merge: true,
        durability: Durability::Async {
            max_inflight_bytes: 4096, // small window: backpressure exercised
        },
        ..LiveOptions::default()
    };
    let n: u32 = 2000;
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
        for chunk in (0..n).collect::<Vec<_>>().chunks(32) {
            let batch: Vec<Item<2>> = chunk.iter().map(|k| item(*k)).collect();
            ix.insert_batch(&batch).unwrap();
        }
        ix.wait_idle().unwrap();
        assert_eq!(ix.len(), n as u64);
    }
    let ix = LiveIndex::<2>::open(&dir, opts).unwrap();
    assert_eq!(ix.len(), n as u64);
    let got = ix.snapshot().items().unwrap();
    assert_eq!(sorted_ids(&got), (0..n).collect::<Vec<_>>());
}

/// The paranoid read path (`recheck_reads`: every store page re-hashed
/// on every read) answers bit-identically to the default zero-copy
/// path, across merges, deletes, reopen, and both query kinds.
#[test]
fn recheck_read_mode_roundtrip() {
    let dir = tmpdir("recheck");
    let opts = LiveOptions {
        buffer_cap: 32,
        background_merge: false,
        recheck_reads: true,
        ..LiveOptions::default()
    };
    let mut oracle: Vec<Item<2>> = Vec::new();
    {
        let ix = LiveIndex::<2>::create(&dir, params(), opts).unwrap();
        for k in 0..300u32 {
            ix.insert(item(k)).unwrap();
            oracle.push(item(k));
        }
        for k in (0..300u32).step_by(4) {
            assert!(ix.delete(&item(k)).unwrap());
            oracle.retain(|i| i.id != k);
        }
        ix.flush().unwrap();
    }
    let ix = LiveIndex::<2>::open(&dir, opts).unwrap();
    let snap = ix.snapshot();
    assert_eq!(snap.len(), oracle.len() as u64);
    let q = Rect::xyxy(100.0, 100.0, 700.0, 700.0);
    let mut got = snap.window(&q).unwrap();
    let mut want: Vec<Item<2>> = oracle
        .iter()
        .filter(|i| i.rect.intersects(&q))
        .copied()
        .collect();
    got.sort_by_key(|i| i.id);
    want.sort_by_key(|i| i.id);
    assert_eq!(got, want, "paranoid window vs oracle");
    let (nn, _) = ix
        .nearest_neighbors(&pr_geom::Point::from([500.0, 500.0]), 12)
        .unwrap();
    assert_eq!(nn.len(), 12);
    assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
}

fn newest_wal_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            (name.starts_with("wal-") && name.ends_with(".log")).then_some(p)
        })
        .collect();
    segs.sort();
    segs.pop().unwrap()
}
