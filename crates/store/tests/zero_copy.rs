//! Corruption battery for the zero-copy (mmap + verify-once + leaf
//! cache) read path, pinning the documented detection semantics:
//!
//! * a flipped byte in an **unverified** page surfaces as `Corrupt` on
//!   the first read that touches it — mmap or `read_at`, same contract;
//! * a flipped byte in a page that was **already verified** is served
//!   without re-detection (verify-once is the documented trade) — until
//!   the eager scrub re-hashes it, reports `ChecksumMismatch`, and
//!   clears its verify-once bit so later reads fail loudly;
//! * a flipped byte under an **already-cached leaf** doesn't even reach
//!   the device — the cache serves the pre-rot transcode (documented) —
//!   but the scrub still catches the on-disk rot;
//! * the `Recheck` path (the pre-zero-copy behavior) detects the
//!   post-verification flip on the very next read, which is exactly the
//!   paranoia it exists to sell;
//! * all three read paths return bit-identical results and traversal
//!   statistics on a healthy file.

use pr_em::{BlockDevice, EmError, MemDevice};
use pr_geom::{Item, Rect};
use pr_store::{ReadPath, Store, StoreError};
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::{LeafCache, QueryScratch, RTree, TreeParams};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpfile(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pr-store-zerocopy-{}-{name}.prt",
        std::process::id()
    ))
}

fn items(n: u32) -> Vec<Item<2>> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 37.61) % 1000.0;
            let y = (i as f64 * 17.23) % 1000.0;
            Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
        })
        .collect()
}

/// Builds, saves, and returns `(path, leaf page count)`.
fn build_store(name: &str, n: u32) -> (PathBuf, u64) {
    let path = tmpfile(name);
    let params = TreeParams::with_cap::<2>(16);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = PrTreeLoader::default().load(dev, params, items(n)).unwrap();
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save(&tree).unwrap();
    let pages = store.superblock().num_pages;
    (path, pages)
}

/// Flips one byte inside snapshot page `page` of the store at `path`.
/// Read–XOR–write, so the byte is guaranteed to change whatever its
/// current value (a constant overwrite could coincide and silently turn
/// the whole battery into a no-op).
fn flip_byte(path: &PathBuf, store: &Store, page: u64) {
    use std::io::Read;
    let sb = store.superblock();
    let off = sb.data_offset + page * sb.block_size as u64 + 100;
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    f.seek(SeekFrom::Start(off)).unwrap();
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte).unwrap();
    f.seek(SeekFrom::Start(off)).unwrap();
    f.write_all(&[byte[0] ^ 0xFF]).unwrap();
    f.sync_data().unwrap();
}

fn everything() -> Rect<2> {
    Rect::xyxy(-10.0, -10.0, 2000.0, 2000.0)
}

#[test]
fn unverified_flip_surfaces_corrupt_on_first_touch() {
    let (path, pages) = build_store("fresh-flip", 5_000);
    let store = Store::open(&path).unwrap();
    // BFS layout: the root is page 0, leaves are the tail. The last
    // page is a leaf nobody has read yet.
    let victim = pages - 1;
    flip_byte(&path, &store, victim);
    let tree: RTree<2> = store.tree().unwrap();
    tree.warm_cache().unwrap();
    let err = tree.window(&everything()).unwrap_err();
    assert!(
        matches!(&err, EmError::Corrupt(msg) if msg.contains("CRC32")),
        "wanted a CRC corruption error, got {err:?}"
    );
    // The verify-once bitmap records only the pages that passed.
    let (verified, total) = store.verified_pages();
    assert!(verified < total, "corrupt page must not count as verified");
    std::fs::remove_file(&path).ok();
}

#[test]
fn post_verification_flip_served_until_scrub_catches_it() {
    let (path, pages) = build_store("rot-after-verify", 5_000);
    let store = Store::open(&path).unwrap();
    let tree: RTree<2> = store.tree().unwrap();
    tree.warm_cache().unwrap();
    // First full query verifies every leaf lazily.
    let clean = tree.window(&everything()).unwrap();
    let (verified, total) = store.verified_pages();
    assert_eq!(verified, total, "full window touches every page");

    // Bit rot after verification: verify-once means the next read does
    // NOT re-detect it — the flipped coordinate comes straight back.
    let victim = pages - 1;
    flip_byte(&path, &store, victim);
    let served = tree.window(&everything()).unwrap();
    assert_eq!(
        served.len(),
        clean.len(),
        "verified pages are served without re-hashing (documented)"
    );

    // The eager scrub re-hashes everything, reports the rotted page...
    let err = store.scrub().unwrap_err();
    assert!(
        matches!(err, StoreError::ChecksumMismatch { page } if page == victim),
        "scrub must name the rotted page, got {err:?}"
    );
    // ...and clears its verify-once bit, so the next read fails loudly
    // instead of serving the stale verification.
    let err = tree.window(&everything()).unwrap_err();
    assert!(matches!(&err, EmError::Corrupt(msg) if msg.contains("CRC32")));
    let (verified, total) = store.verified_pages();
    assert_eq!(verified, total - 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn cached_leaf_serves_through_rot_but_scrub_detects_it() {
    let (path, pages) = build_store("rot-under-cache", 5_000);
    let store = Store::open(&path).unwrap();
    let mut tree: RTree<2> = store.tree().unwrap();
    let cache = Arc::new(LeafCache::new(32 << 20));
    let epoch = cache.register_epoch();
    tree.attach_leaf_cache(Arc::clone(&cache), epoch);
    tree.warm_cache().unwrap();

    // Two passes: admission is second-touch, so the first only ghosts
    // the keys and the second makes every leaf resident.
    let (clean, _) = tree.window_with_stats(&everything()).unwrap();
    let (clean2, _) = tree.window_with_stats(&everything()).unwrap();
    assert_eq!(clean2, clean);
    assert!(!cache.is_empty(), "repeat window populated the leaf cache");

    let victim = pages - 1;
    flip_byte(&path, &store, victim);

    // Every leaf is cached: the repeat query reads nothing from the
    // device and returns the pre-rot answer — documented semantics of
    // caching transcoded leaves of an immutable snapshot.
    let (served, stats) = tree.window_with_stats(&everything()).unwrap();
    assert_eq!(served, clean);
    assert_eq!(stats.device_reads, 0);
    assert_eq!(stats.leaf_cache_hits, stats.leaves_visited);

    // The scrub goes to the bytes, not the cache — it catches the rot.
    let err = store.scrub().unwrap_err();
    assert!(matches!(err, StoreError::ChecksumMismatch { page } if page == victim));
    std::fs::remove_file(&path).ok();
}

#[test]
fn scrub_sweeps_past_the_first_failure_and_unverifies_every_bad_page() {
    let (path, pages) = build_store("multi-rot", 5_000);
    let store = Store::open(&path).unwrap();
    let tree: RTree<2> = store.tree().unwrap();
    tree.warm_cache().unwrap();
    tree.window(&everything()).unwrap(); // verify everything lazily

    // Rot two distinct verified pages.
    let (bad_lo, bad_hi) = (pages - 2, pages - 1);
    flip_byte(&path, &store, bad_lo);
    flip_byte(&path, &store, bad_hi);

    // The scrub names the lowest bad page but must have swept to the
    // end: BOTH pages lose their verified bit.
    let err = store.scrub().unwrap_err();
    assert!(matches!(err, StoreError::ChecksumMismatch { page } if page == bad_lo));
    let (verified, total) = store.verified_pages();
    assert_eq!(
        verified,
        total - 2,
        "every rotted page must be un-verified, not just the first"
    );

    // Repair only the first bad page; a full query must still fail on
    // the second — it cannot hide behind its stale verification.
    flip_byte(&path, &store, bad_lo); // XOR flip restores the byte
    let err = tree.window(&everything()).unwrap_err();
    assert!(matches!(&err, EmError::Corrupt(msg) if msg.contains("CRC32")));
    std::fs::remove_file(&path).ok();
}

#[test]
fn recheck_path_detects_post_verification_rot_immediately() {
    let (path, pages) = build_store("recheck", 3_000);
    let store = Store::open(&path).unwrap();
    let tree: RTree<2> = store.tree_with(ReadPath::Recheck).unwrap();
    tree.warm_cache().unwrap();
    let clean = tree.window(&everything()).unwrap();
    assert!(!clean.is_empty());
    flip_byte(&path, &store, pages - 1);
    // No verify-once shortcut on this path: the very next read fails.
    let err = tree.window(&everything()).unwrap_err();
    assert!(matches!(&err, EmError::Corrupt(msg) if msg.contains("CRC32")));
    std::fs::remove_file(&path).ok();
}

/// The zero-copy battery's guarantees must not secretly depend on mmap:
/// with mapping denied (the fault layer's `deny_mmap`, standing in for
/// platforms and filesystems where `mmap` fails), `Store::open` falls
/// back to positioned reads and every semantic above must hold
/// bit-identically — same query answers, same verify-once accounting,
/// same corruption detection on first touch and under the scrub.
#[test]
fn non_mmap_fallback_is_bit_identical_and_detects_rot() {
    use pr_em::fault::{self, FaultSchedule};
    let _hook = fault::exclusive();
    let (path, pages) = build_store("no-mmap", 4_000);

    // Baseline: the mmap path's answer on the healthy file.
    let store = Store::open(&path).unwrap();
    assert!(store.is_mmapped(), "test premise: mmap is the default");
    let tree: RTree<2> = store.tree().unwrap();
    tree.warm_cache().unwrap();
    let want = tree.window(&everything()).unwrap();
    drop(tree);
    drop(store);

    // Same file, mapping denied: the fallback must agree bit for bit.
    let guard = fault::install(FaultSchedule::never(false).with_deny_mmap());
    let store = Store::open(&path).unwrap();
    assert!(
        !store.is_mmapped(),
        "deny_mmap must force the read_at fallback"
    );
    let tree: RTree<2> = store.tree().unwrap();
    tree.warm_cache().unwrap();
    let got = tree.window(&everything()).unwrap();
    assert_eq!(got, want, "fallback read path must agree with mmap");
    let (verified, total) = store.verified_pages();
    assert_eq!(
        verified, total,
        "full window verifies every page, mmap or not"
    );

    // Post-verification rot: same verify-once trade, same scrub catch.
    let victim = pages - 1;
    flip_byte(&path, &store, victim);
    let err = store.scrub().unwrap_err();
    assert!(
        matches!(err, StoreError::ChecksumMismatch { page } if page == victim),
        "scrub on the fallback path must name the rotted page, got {err:?}"
    );
    let err = tree.window(&everything()).unwrap_err();
    assert!(matches!(&err, EmError::Corrupt(msg) if msg.contains("CRC32")));
    drop(tree);
    drop(store);

    // Unverified first touch: a fresh open (fresh bitmap, still no
    // mmap) fails loudly on the first read of the rotted leaf.
    let store = Store::open(&path).unwrap();
    assert!(!store.is_mmapped());
    let tree: RTree<2> = store.tree().unwrap();
    tree.warm_cache().unwrap();
    let err = tree.window(&everything()).unwrap_err();
    assert!(matches!(&err, EmError::Corrupt(msg) if msg.contains("CRC32")));
    drop(guard);
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_read_paths_agree_on_a_healthy_store() {
    let (path, _) = build_store("healthy", 4_000);
    let store = Store::open(&path).unwrap();
    let recheck: RTree<2> = store.tree_with(ReadPath::Recheck).unwrap();
    let zero: RTree<2> = store.tree().unwrap();
    let mut cached: RTree<2> = store.tree().unwrap();
    let cache = Arc::new(LeafCache::new(32 << 20));
    let epoch = cache.register_epoch();
    cached.attach_leaf_cache(cache, epoch);
    for t in [&recheck, &zero, &cached] {
        t.warm_cache().unwrap();
    }

    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    for i in 0..12u32 {
        let x = (i as f64 * 83.0) % 900.0;
        let q = Rect::xyxy(x, 0.0, x + 120.0, 1000.0);
        let want = recheck.window_into(&q, &mut scratch, &mut out).unwrap();
        let want_hits = out.clone();
        for (name, t) in [("zero", &zero), ("cached", &cached)] {
            // Twice: cold then repeat (cache-served).
            for _ in 0..2 {
                let got = t.window_into(&q, &mut scratch, &mut out).unwrap();
                assert_eq!(out, want_hits, "{name}: results differ on {q:?}");
                assert_eq!(got.leaves_visited, want.leaves_visited, "{name}");
                assert_eq!(got.results, want.results, "{name}");
            }
        }
    }
    // Shared verify-once bitmap: the three handles verified each page
    // at most once between them.
    let (verified, total) = store.verified_pages();
    assert!(verified <= total);
    std::fs::remove_file(&path).ok();
}
