//! Persistence acceptance tests: build → save → drop → open must be
//! indistinguishable from never having persisted (identical results,
//! identical leaf I/O), and every flavor of file damage must surface as
//! a typed error — never a panic, never a silently wrong answer.

use pr_data::{size_dataset, uniform_points};
use pr_em::{BlockDevice, EmError, MemDevice};
use pr_geom::{Item, Point, Rect};
use pr_store::{Store, StoreError};
use pr_tree::bulk::LoaderKind;
use pr_tree::{QueryStats, RTree, TreeParams};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fresh temp path per test (process id + name keeps parallel tests
/// apart).
fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pr-store-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.prt"))
}

fn build(kind: LoaderKind, items: &[Item<2>], cap: usize) -> RTree<2> {
    let params = TreeParams::with_cap::<2>(cap);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    kind.loader::<2>()
        .load(dev, params, items.to_vec())
        .expect("bulk load")
}

fn test_queries() -> Vec<Rect<2>> {
    vec![
        Rect::xyxy(0.0, 0.0, 1.0, 1.0),
        Rect::xyxy(0.1, 0.1, 0.3, 0.35),
        Rect::xyxy(0.45, 0.4, 0.48, 0.9),
        Rect::xyxy(0.9, 0.9, 0.95, 0.95),
        Rect::xyxy(2.0, 2.0, 3.0, 3.0), // empty
    ]
}

/// Runs the full query battery, returning results + stats per query.
fn run_battery(tree: &RTree<2>) -> Vec<(Vec<Item<2>>, QueryStats)> {
    tree.warm_cache().unwrap();
    test_queries()
        .iter()
        .map(|q| tree.window_with_stats(q).unwrap())
        .collect()
}

/// build → save → drop → open → query is byte-identical (results in the
/// same order with the same bits) and leaf-I/O-identical for every bulk
/// loader variant.
#[test]
fn roundtrip_identical_for_every_loader_variant() {
    let mut items = uniform_points(2_000, 11);
    let extra = size_dataset(1_000, 0.05, 12);
    let base = items.len() as u32;
    items.extend(
        extra
            .into_iter()
            .map(|mut i| {
                i.id += base;
                i
            })
            .collect::<Vec<_>>(),
    );

    for kind in LoaderKind::all() {
        let path = temp_store(&format!("roundtrip-{}", kind.name()));
        let tree = build(kind, &items, 8);
        let before = run_battery(&tree);

        let mut store = Store::create::<2>(&path, *tree.params()).unwrap();
        store.save(&tree).unwrap();
        drop((store, tree)); // the only surviving state is the file

        let reopened = Store::open_tree::<2>(&path).unwrap();
        assert_eq!(reopened.len(), items.len() as u64, "{}", kind.name());
        let after = run_battery(&reopened);

        assert_eq!(before.len(), after.len());
        for (i, ((r0, s0), (r1, s1))) in before.iter().zip(&after).enumerate() {
            assert_eq!(r0, r1, "{}: query {i} results differ", kind.name());
            assert_eq!(
                s0.leaves_visited,
                s1.leaves_visited,
                "{}: query {i} leaf I/O differs",
                kind.name()
            );
            assert_eq!(
                s0.internal_visited,
                s1.internal_visited,
                "{}: query {i} internal visits differ",
                kind.name()
            );
            assert_eq!(
                s0.device_reads,
                s1.device_reads,
                "{}: query {i} device reads differ (both warm-cached)",
                kind.name()
            );
            assert_eq!(s0.results, s1.results);
        }

        // k-NN rides on the same pages: identical answers and leaf I/O.
        let q = Point::new([0.31, 0.77]);
        let t2 = Store::open_tree::<2>(&path).unwrap();
        t2.warm_cache().unwrap();
        let orig = build(kind, &items, 8);
        orig.warm_cache().unwrap();
        let (nn0, ks0) = orig.nearest_neighbors_with_stats(&q, 10).unwrap();
        let (nn1, ks1) = t2.nearest_neighbors_with_stats(&q, 10).unwrap();
        assert_eq!(nn0, nn1, "{}: k-NN answers differ", kind.name());
        assert_eq!(ks0.leaves_visited, ks1.leaves_visited);

        std::fs::remove_file(&path).ok();
    }
}

/// The reopened tree's structure (node counts per level, utilization)
/// matches the original: the BFS rewrite relabels pages, nothing else.
#[test]
fn reopened_structure_matches_original() {
    let items = uniform_points(3_000, 3);
    let tree = build(LoaderKind::Pr, &items, 16);
    let path = temp_store("structure");
    let mut store = Store::create::<2>(&path, *tree.params()).unwrap();
    store.save(&tree).unwrap();
    let reopened = store.tree::<2>().unwrap();
    assert_eq!(tree.stats().unwrap(), reopened.stats().unwrap());
    assert_eq!(tree.height(), reopened.height());
    reopened.validate().unwrap().assert_ok();
    // Root is page 0 by the BFS contract.
    assert_eq!(reopened.root(), 0);
    std::fs::remove_file(&path).ok();
}

/// Empty trees persist too.
#[test]
fn empty_tree_roundtrip() {
    let params = TreeParams::with_cap::<2>(8);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = RTree::<2>::new_empty(dev, params).unwrap();
    let path = temp_store("empty");
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save(&tree).unwrap();
    let reopened = Store::open_tree::<2>(&path).unwrap();
    assert!(reopened.is_empty());
    assert!(reopened
        .window(&Rect::xyxy(0.0, 0.0, 1.0, 1.0))
        .unwrap()
        .is_empty());
    std::fs::remove_file(&path).ok();
}

/// Repeated saves bump the epoch, alternate slots, and reopen at the
/// newest snapshot.
#[test]
fn successive_saves_alternate_slots_and_reopen_newest() {
    let path = temp_store("epochs");
    let params = TreeParams::with_cap::<2>(8);
    let mut store = Store::create::<2>(&path, params).unwrap();
    assert_eq!(store.superblock().epoch, 0);
    assert!(matches!(
        store.tree::<2>(),
        Err(StoreError::NoCommittedSnapshot)
    ));

    let t1 = build(LoaderKind::Hilbert, &uniform_points(500, 1), 8);
    store.save(&t1).unwrap();
    assert_eq!(store.superblock().epoch, 1);
    let slot_after_first = store.active_slot();

    let t2 = build(LoaderKind::Hilbert, &uniform_points(900, 2), 8);
    store.save(&t2).unwrap();
    assert_eq!(store.superblock().epoch, 2);
    assert_ne!(store.active_slot(), slot_after_first);
    drop(store);

    let reopened = Store::open(&path).unwrap();
    assert_eq!(reopened.superblock().epoch, 2);
    assert_eq!(reopened.tree::<2>().unwrap().len(), 900);
    reopened.verify().unwrap();
    std::fs::remove_file(&path).ok();
}

/// A snapshot pinned by an open tree stays readable across a later save
/// into the same store (commits never move pages under a live reader).
#[test]
fn open_tree_survives_concurrent_save() {
    let path = temp_store("pinned");
    let params = TreeParams::with_cap::<2>(8);
    let mut store = Store::create::<2>(&path, params).unwrap();
    let t1 = build(LoaderKind::Pr, &uniform_points(800, 4), 8);
    store.save(&t1).unwrap();
    let pinned = store.tree::<2>().unwrap();

    let t2 = build(LoaderKind::Pr, &uniform_points(1_500, 5), 8);
    store.save(&t2).unwrap();

    // The pinned handle still answers from snapshot 1.
    assert_eq!(pinned.len(), 800);
    let hits = pinned.window(&Rect::xyxy(0.0, 0.0, 1.0, 1.0)).unwrap();
    assert_eq!(hits.len(), 800);
    // A fresh handle sees snapshot 2.
    assert_eq!(store.tree::<2>().unwrap().len(), 1_500);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Corruption: every damaged byte is a typed error, never a panic or a
// wrong answer.
// ---------------------------------------------------------------------

fn flip_byte(path: &Path, offset: u64) {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0xFF;
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&b).unwrap();
}

fn saved_store(name: &str, n: u32) -> (PathBuf, Store) {
    let path = temp_store(name);
    let tree = build(LoaderKind::Pr, &uniform_points(n, 9), 8);
    let mut store = Store::create::<2>(&path, *tree.params()).unwrap();
    store.save(&tree).unwrap();
    (path, store)
}

/// A flipped byte inside a page is caught by the per-page CRC32 on the
/// read that touches it: the query returns a checksum error, and the
/// eager sweep pinpoints the page.
#[test]
fn flipped_page_byte_fails_checksum_not_answers() {
    let (path, store) = saved_store("flip-page", 1_000);
    let sb = *store.superblock();
    drop(store);
    // Damage a byte in the middle of the page region.
    let mid_page = sb.num_pages / 2;
    flip_byte(
        &path,
        sb.data_offset + mid_page * sb.block_size as u64 + sb.block_size as u64 / 3,
    );

    // Open succeeds: the superblock, footer, and table are intact.
    let store = Store::open(&path).unwrap();
    assert!(matches!(
        store.verify(),
        Err(StoreError::ChecksumMismatch { page }) if page == mid_page
    ));
    // A full-coverage query must hit the bad page and error — the damage
    // can never leak into results.
    let tree = store.tree::<2>().unwrap();
    let err = tree
        .window(&Rect::xyxy(-10.0, -10.0, 10.0, 10.0))
        .expect_err("query crossing a damaged page must fail");
    assert!(
        matches!(err, EmError::Corrupt(ref msg) if msg.contains("CRC32")),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// Truncating the footer of the only committed snapshot is a typed
/// torn-snapshot error (no silent fallback to "empty store").
#[test]
fn truncated_footer_is_a_typed_error() {
    let (path, store) = saved_store("trunc-footer", 500);
    let footer_offset = store.superblock().footer_offset;
    drop(store);
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(footer_offset).unwrap(); // chop the commit record off
    drop(f);
    match Store::open(&path) {
        Err(StoreError::TornSnapshot { epoch: 1, .. }) => {}
        Err(other) => panic!("want TornSnapshot at epoch 1, got error {other:?}"),
        Ok(_) => panic!("want TornSnapshot at epoch 1, got a healthy store"),
    }
    std::fs::remove_file(&path).ok();
}

/// A corrupted checksum table is likewise torn, not trusted.
#[test]
fn corrupted_checksum_table_is_a_typed_error() {
    let (path, store) = saved_store("bad-table", 500);
    let table_offset = store.superblock().table_offset;
    drop(store);
    flip_byte(&path, table_offset + 5);
    assert!(matches!(
        Store::open(&path),
        Err(StoreError::TornSnapshot { .. })
    ));
    std::fs::remove_file(&path).ok();
}

/// Damage to the *newest* snapshot falls back to the previous committed
/// one: the double-superblock scheme in action.
#[test]
fn torn_newest_snapshot_recovers_previous_commit() {
    let path = temp_store("fallback");
    let params = TreeParams::with_cap::<2>(8);
    let mut store = Store::create::<2>(&path, params).unwrap();
    let t1 = build(LoaderKind::Pr, &uniform_points(600, 21), 8);
    store.save(&t1).unwrap();
    let t2 = build(LoaderKind::Pr, &uniform_points(1_100, 22), 8);
    store.save(&t2).unwrap();
    let newest_footer = store.superblock().footer_offset;
    drop(store);
    flip_byte(&path, newest_footer + 9); // tear epoch 2's commit record

    let store = Store::open(&path).unwrap();
    assert_eq!(store.superblock().epoch, 1, "fell back to epoch 1");
    let tree = store.tree::<2>().unwrap();
    assert_eq!(tree.len(), 600);
    tree.validate().unwrap().assert_ok();
    std::fs::remove_file(&path).ok();
}

/// Garbage appended past the committed snapshot (a torn, never-flipped
/// save) is invisible: the store reopens at the committed state.
#[test]
fn torn_append_without_flip_is_invisible() {
    let (path, store) = saved_store("torn-append", 700);
    drop(store);
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(&vec![0xCD; 10_000]).unwrap(); // half a snapshot, no flip
    drop(f);
    let tree = Store::open_tree::<2>(&path).unwrap();
    assert_eq!(tree.len(), 700);
    std::fs::remove_file(&path).ok();
}

/// Files that are not stores at all: typed errors, not panics.
#[test]
fn non_store_files_are_bad_magic() {
    let path = temp_store("not-a-store");
    std::fs::write(&path, b"hello, I am a text file, definitely not an index").unwrap();
    assert!(matches!(Store::open(&path), Err(StoreError::BadMagic)));
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(Store::open(&path), Err(StoreError::BadMagic)));
    std::fs::remove_file(&path).ok();
}

/// Opening with the wrong dimensionality is typed.
#[test]
fn dimension_mismatch_is_typed() {
    let (path, store) = saved_store("dim", 300);
    drop(store);
    assert!(matches!(
        Store::open_tree::<3>(&path),
        Err(StoreError::DimensionMismatch {
            file: 2,
            requested: 3
        })
    ));
    std::fs::remove_file(&path).ok();
}

/// Saving a tree with mismatched geometry is typed.
#[test]
fn save_guards_block_size_and_dimension() {
    let path = temp_store("guards");
    let params = TreeParams::with_cap::<2>(8);
    let mut store = Store::create::<2>(&path, params).unwrap();
    let wrong = build(LoaderKind::Pr, &uniform_points(100, 1), 16); // bigger pages
    assert!(matches!(
        store.save(&wrong),
        Err(StoreError::BlockSizeMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

/// A store on a read-only file opens for querying; `save` is a typed
/// error. (Root bypasses permission checks, so the assertion only runs
/// when the chmod actually bites.)
#[cfg(unix)]
#[test]
fn read_only_file_opens_for_queries_but_not_saves() {
    use std::os::unix::fs::PermissionsExt;
    let (path, store) = saved_store("ro-file", 400);
    drop(store);
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o444)).unwrap();
    let can_still_write = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .is_ok();
    let mut store = Store::open(&path).expect("read-only open must succeed");
    let tree = store.tree::<2>().unwrap();
    assert_eq!(tree.len(), 400);
    assert_eq!(
        tree.window(&Rect::xyxy(0.0, 0.0, 1.0, 1.0)).unwrap().len(),
        400
    );
    if !can_still_write {
        let t = build(LoaderKind::Pr, &uniform_points(100, 1), 8);
        assert!(matches!(store.save(&t), Err(StoreError::ReadOnly)));
    }
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o644)).ok();
    std::fs::remove_file(&path).ok();
}

/// The reopened device is read-only: mutating it is a typed error.
#[test]
fn reopened_tree_is_read_only() {
    let (path, store) = saved_store("readonly", 200);
    let tree = store.tree::<2>().unwrap();
    let (node, _) = tree.read_node(tree.root()).unwrap();
    assert!(matches!(
        tree.write_node(tree.root(), &node),
        Err(EmError::ReadOnly)
    ));
    std::fs::remove_file(&path).ok();
}
