//! Incremental commits: reused components' pages stay byte-identically
//! in place across epochs, zero-new-page commits are valid, torn
//! incremental commits fall back, and garbage accounting adds up.

use pr_em::{MemDevice, PositionedFile};
use pr_geom::{Item, Rect};
use pr_store::{CommitComponent, Store, StoreError};
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::{RTree, TreeParams};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pr-store-incr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build(params: TreeParams, ids: std::ops::Range<u32>, x0: f64) -> RTree<2> {
    let items: Vec<Item<2>> = ids
        .map(|i| {
            let x = x0 + (i % 100) as f64;
            Item::new(Rect::xyxy(x, 0.0, x + 0.5, 1.0), i)
        })
        .collect();
    PrTreeLoader::default()
        .load(Arc::new(MemDevice::new(params.page_size)), params, items)
        .unwrap()
}

fn read_run_bytes(path: &PathBuf, offset: u64, len: u64) -> Vec<u8> {
    let f = std::fs::File::open(path).unwrap();
    let f = PositionedFile::new(f);
    let mut buf = vec![0u8; len as usize];
    f.read_exact_or_zero_at(&mut buf, offset).unwrap();
    buf
}

#[test]
fn reused_component_pages_stay_byte_identical_in_place() {
    let path = tmp("reuse.prt");
    let params = TreeParams::with_cap::<2>(8);
    let big = build(params, 0..2000, 0.0);
    let small = build(params, 2000..2100, 5000.0);
    let replacement = build(params, 2000..2400, 5000.0);

    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&big, &small], b"epoch-1").unwrap();
    let runs1 = store.component_runs();
    assert_eq!(runs1.len(), 2);
    let big_id = runs1[0].id;
    let bs = store.block_size() as u64;
    let big_bytes_before = read_run_bytes(&path, runs1[0].data_offset, runs1[0].num_pages * bs);

    // Replace the small component, keep the big one in place.
    let outcome = store
        .commit_components(
            &[
                CommitComponent::Reuse(big_id),
                CommitComponent::New(&replacement),
            ],
            b"epoch-2",
        )
        .unwrap();
    assert_eq!(outcome.pages_reused, runs1[0].num_pages);
    assert!(outcome.pages_written > 0);
    assert!(
        outcome.pages_written < runs1[0].num_pages,
        "replacing the small component must not rewrite the big one"
    );
    assert_eq!(outcome.component_ids[0], big_id, "reuse keeps the id");
    assert_ne!(outcome.component_ids[1], runs1[1].id, "new run, new id");

    let runs2 = store.component_runs();
    assert_eq!(
        runs2[0], runs1[0],
        "reused run is unchanged, offsets and all"
    );
    let big_bytes_after = read_run_bytes(&path, runs2[0].data_offset, runs2[0].num_pages * bs);
    assert_eq!(big_bytes_before, big_bytes_after, "pages byte-identical");

    // Reopen from disk: both components answer correctly.
    drop(store);
    let store = Store::open(&path).unwrap();
    assert_eq!(store.superblock().epoch, 2);
    assert_eq!(store.app(), b"epoch-2");
    let runs = store.component_runs();
    assert_eq!(runs[0], runs1[0]);
    let comps = store.components::<2>().unwrap();
    assert_eq!(comps[0].len(), 2000);
    assert_eq!(comps[1].len(), 400);
    for (orig, reopened) in [(&big, &comps[0]), (&replacement, &comps[1])] {
        let q = Rect::xyxy(-10.0, -10.0, 10000.0, 10.0);
        let mut want = orig.window(&q).unwrap();
        let mut got = reopened.window(&q).unwrap();
        want.sort_by_key(|i| i.id);
        got.sort_by_key(|i| i.id);
        assert_eq!(got, want);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_reuse_commit_writes_zero_pages() {
    let path = tmp("all-reuse.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..300, 0.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"first").unwrap();
    let id = store.component_runs()[0].id;

    // A checkpoint-only commit: same components, new app blob.
    let outcome = store
        .commit_components::<2>(&[CommitComponent::Reuse(id)], b"second")
        .unwrap();
    assert_eq!(outcome.pages_written, 0);
    assert_eq!(outcome.pages_reused, store.component_runs()[0].num_pages);
    assert_eq!(store.superblock().epoch, 2);
    assert_eq!(store.superblock().num_pages, 0, "nothing newly written");

    drop(store);
    let store = Store::open(&path).unwrap();
    assert_eq!(store.superblock().epoch, 2);
    assert_eq!(store.app(), b"second");
    assert_eq!(store.components::<2>().unwrap()[0].len(), 300);
    std::fs::remove_file(&path).ok();
}

#[test]
fn verify_once_bits_survive_an_incremental_commit() {
    let path = tmp("verify-carry.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..1000, 0.0);
    let b = build(params, 1000..1050, 3000.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"1").unwrap();
    let id = store.component_runs()[0].id;

    // Touch every page of the committed component: all verified.
    let t = store.components::<2>().unwrap().remove(0);
    t.warm_cache().unwrap();
    let _ = t.window(&Rect::xyxy(-1.0, -1.0, 10000.0, 10.0)).unwrap();
    let (verified_before, total_before) = store.verified_pages();
    assert_eq!(verified_before, total_before);

    // The reused run's proof carries across the commit; only the new
    // component's pages start unverified.
    let outcome = store
        .commit_components(
            &[CommitComponent::Reuse(id), CommitComponent::New(&b)],
            b"2",
        )
        .unwrap();
    let (verified_after, total_after) = store.verified_pages();
    assert_eq!(verified_after, verified_before);
    assert_eq!(total_after, total_before + outcome.pages_written);
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_reuse_id_is_a_typed_error_and_writes_nothing() {
    let path = tmp("unknown.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..100, 0.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"1").unwrap();
    let epoch = store.superblock().epoch;
    let len = store.file_len().unwrap();
    let err = store
        .commit_components::<2>(&[CommitComponent::Reuse(999)], b"2")
        .unwrap_err();
    assert!(matches!(err, StoreError::UnknownComponent(999)));
    assert_eq!(store.superblock().epoch, epoch);
    assert_eq!(store.file_len().unwrap(), len, "nothing was appended");
    std::fs::remove_file(&path).ok();
}

/// A crash after an incremental commit wrote its new pages but before
/// the superblock flip (simulated: corrupt the new manifest) falls back
/// to the previous epoch, whose reused runs still validate.
#[test]
fn torn_incremental_commit_falls_back_one_epoch() {
    let path = tmp("torn-incr.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..800, 0.0);
    let b = build(params, 800..900, 2000.0);
    let c = build(params, 800..1100, 2000.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a, &b], b"epoch-1").unwrap();
    let a_id = store.component_runs()[0].id;
    store
        .commit_components(
            &[CommitComponent::Reuse(a_id), CommitComponent::New(&c)],
            b"epoch-2",
        )
        .unwrap();
    let sb = *store.superblock();
    assert_eq!(sb.epoch, 2);
    drop(store);

    // Flip a byte in epoch 2's manifest: the incremental commit is torn.
    {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let f = PositionedFile::new(f);
        let mut byte = [0u8; 1];
        let off = sb.manifest_offset + 8;
        f.read_exact_or_zero_at(&mut byte, off).unwrap();
        byte[0] ^= 0xFF;
        f.write_all_at(&byte, off).unwrap();
    }
    let store = Store::open(&path).unwrap();
    assert_eq!(store.superblock().epoch, 1);
    assert_eq!(store.app(), b"epoch-1");
    let comps = store.components::<2>().unwrap();
    assert_eq!(comps[0].len(), 800);
    assert_eq!(comps[1].len(), 100);
    std::fs::remove_file(&path).ok();
}

/// A manifest whose reused run extends past the end of the file (the
/// run was reclaimed out from under it) must fail validation rather
/// than serve out-of-file pages.
#[test]
fn out_of_file_run_fails_validation() {
    let path = tmp("oof-run.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..500, 0.0);
    let b = build(params, 500..600, 2000.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"epoch-1").unwrap();
    let a_id = store.component_runs()[0].id;
    store
        .commit_components(
            &[CommitComponent::Reuse(a_id), CommitComponent::New(&b)],
            b"epoch-2",
        )
        .unwrap();
    let runs = store.component_runs();
    drop(store);

    // Truncate inside the first (reused) run: both epochs' snapshots
    // reference it, so neither validates — a typed error, not a panic
    // and never a silently empty store.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(runs[0].data_offset + 100).unwrap();
    drop(f);
    match Store::open(&path) {
        Err(StoreError::TornSnapshot { .. }) => {}
        Err(other) => panic!("expected TornSnapshot, got {other}"),
        Ok(_) => panic!("expected TornSnapshot, got a successful open"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_accounting_adds_up() {
    let path = tmp("garbage.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..1000, 0.0);
    let b = build(params, 1000..1100, 2000.0);
    let b2 = build(params, 1000..1200, 2000.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a, &b], b"1").unwrap();
    let g1 = store.garbage_bytes().unwrap();
    let a_id = store.component_runs()[0].id;

    // Replacing b strands its pages (and the old table/manifest tail).
    let bs = store.block_size() as u64;
    let b_pages = store.component_runs()[1].num_pages;
    store
        .commit_components(
            &[CommitComponent::Reuse(a_id), CommitComponent::New(&b2)],
            b"2",
        )
        .unwrap();
    let g2 = store.garbage_bytes().unwrap();
    assert!(
        g2 >= g1 + b_pages * bs,
        "replaced component's pages ({}) must show up as garbage (before {g1}, after {g2})",
        b_pages * bs
    );
    assert_eq!(store.live_bytes() + g2, store.file_len().unwrap());
    std::fs::remove_file(&path).ok();
}
