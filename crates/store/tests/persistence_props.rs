//! Property test: for arbitrary rectangle sets, capacities, loader
//! variants, and windows, a saved-and-reopened tree is indistinguishable
//! from the in-process original — same results in the same order, same
//! leaf-I/O counts.

use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Rect};
use pr_store::Store;
use pr_tree::bulk::LoaderKind;
use pr_tree::TreeParams;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_items(max: usize) -> impl Strategy<Value = Vec<Item<2>>> {
    prop::collection::vec(
        (-50.0..50.0f64, -50.0..50.0f64, 0.0..10.0f64, 0.0..10.0f64),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| Item::new(Rect::xyxy(x, y, x + w, y + h), i as u32))
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Rect<2>> {
    (-60.0..60.0f64, -60.0..60.0f64, 0.0..50.0f64, 0.0..50.0f64)
        .prop_map(|(x, y, w, h)| Rect::xyxy(x, y, x + w, y + h))
}

fn arb_kind() -> impl Strategy<Value = LoaderKind> {
    (0usize..LoaderKind::all().len()).prop_map(|i| LoaderKind::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn save_open_is_invisible_to_queries(
        items in arb_items(200),
        q in arb_query(),
        cap in 2usize..10,
        kind in arb_kind(),
    ) {
        let params = TreeParams::with_cap::<2>(cap);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = kind.loader::<2>().load(dev, params, items.clone()).unwrap();
        tree.warm_cache().unwrap();
        let (want, want_stats) = tree.window_with_stats(&q).unwrap();

        let dir = std::env::temp_dir().join(format!("pr-store-props-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.prt");
        let mut store = Store::create::<2>(&path, params).unwrap();
        store.save(&tree).unwrap();
        drop((store, tree));

        let reopened = Store::open_tree::<2>(&path).unwrap();
        reopened.warm_cache().unwrap();
        let (got, got_stats) = reopened.window_with_stats(&q).unwrap();
        prop_assert_eq!(&want, &got, "results differ after reopen");
        prop_assert_eq!(want_stats.leaves_visited, got_stats.leaves_visited);
        prop_assert_eq!(want_stats.internal_visited, got_stats.internal_visited);
        prop_assert_eq!(want_stats.results, got_stats.results);
        std::fs::remove_file(&path).ok();
    }
}
