//! Multi-component (manifest) commits: several trees plus an opaque app
//! blob committed atomically, reopened identically, and torn manifests
//! recovered exactly like torn footers.

use pr_em::{MemDevice, PositionedFile};
use pr_geom::{Item, Rect};
use pr_store::{Store, StoreError, Superblock};
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::{RTree, TreeParams};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pr-store-multi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build(params: TreeParams, ids: std::ops::Range<u32>, x0: f64) -> RTree<2> {
    let items: Vec<Item<2>> = ids
        .map(|i| {
            let x = x0 + (i % 100) as f64;
            Item::new(Rect::xyxy(x, 0.0, x + 0.5, 1.0), i)
        })
        .collect();
    PrTreeLoader::default()
        .load(Arc::new(MemDevice::new(params.page_size)), params, items)
        .unwrap()
}

#[test]
fn multi_component_roundtrip_with_app_blob() {
    let path = tmp("roundtrip.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..500, 0.0);
    let b = build(params, 500..700, 1000.0);
    let c = build(params, 700..710, 2000.0);
    let app = b"wal_seq=42;anything pr-live wants".to_vec();

    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a, &b, &c], &app).unwrap();
    assert_eq!(store.num_components(), 3);
    drop(store);

    let store = Store::open(&path).unwrap();
    assert_eq!(store.app(), &app[..]);
    assert_eq!(store.num_components(), 3);
    let comps = store.components::<2>().unwrap();
    assert_eq!(comps.len(), 3);
    assert_eq!(comps[0].len(), 500);
    assert_eq!(comps[1].len(), 200);
    assert_eq!(comps[2].len(), 10);
    // Each component answers queries identically to its original.
    for (orig, reopened) in [(&a, &comps[0]), (&b, &comps[1]), (&c, &comps[2])] {
        reopened.warm_cache().unwrap();
        for q in [
            Rect::xyxy(0.0, 0.0, 50.0, 1.0),
            Rect::xyxy(1000.0, 0.0, 1040.0, 1.0),
            Rect::xyxy(-10.0, -10.0, 5000.0, 10.0),
        ] {
            let mut want = orig.window(&q).unwrap();
            let mut got = reopened.window(&q).unwrap();
            want.sort_by_key(|i| i.id);
            got.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }
    // tree() refuses to pick one of three.
    assert!(matches!(
        store.tree::<2>(),
        Err(StoreError::NotSingleComponent(3))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_component_list_is_a_valid_commit() {
    let path = tmp("empty.prt");
    let params = TreeParams::with_cap::<2>(8);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store
        .save_components::<2>(&[], b"just-a-checkpoint")
        .unwrap();
    drop(store);
    let store = Store::open(&path).unwrap();
    assert_eq!(store.num_components(), 0);
    assert_eq!(store.app(), b"just-a-checkpoint");
    assert!(store.components::<2>().unwrap().is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn single_component_manifest_still_opens_as_tree() {
    let path = tmp("single.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..100, 0.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"x").unwrap();
    drop(store);
    let t = Store::open_tree::<2>(&path).unwrap();
    assert_eq!(t.len(), 100);
    std::fs::remove_file(&path).ok();
}

#[test]
fn legacy_save_reads_back_via_components() {
    let path = tmp("legacy.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..100, 0.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save(&a).unwrap();
    drop(store);
    let store = Store::open(&path).unwrap();
    assert!(store.manifest().is_none());
    assert_eq!(store.app(), b"");
    assert_eq!(store.num_components(), 1);
    let comps = store.components::<2>().unwrap();
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].len(), 100);
    std::fs::remove_file(&path).ok();
}

/// A flipped byte inside the committed manifest invalidates the newest
/// snapshot and recovery falls back one epoch — the same discipline as a
/// torn footer.
#[test]
fn corrupt_manifest_falls_back_one_epoch() {
    let path = tmp("torn-manifest.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..100, 0.0);
    let b = build(params, 100..300, 0.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"epoch-1").unwrap();
    store.save_components(&[&a, &b], b"epoch-2").unwrap();
    let sb = *store.superblock();
    assert_eq!(sb.epoch, 2);
    assert!(sb.manifest_offset > 0);
    drop(store);

    // Flip one byte in the newest manifest's app blob.
    {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let f = PositionedFile::new(f);
        let mut byte = [0u8; 1];
        let off = sb.manifest_offset + pr_store::ManifestRecord::HEADER_SIZE as u64;
        f.read_exact_or_zero_at(&mut byte, off).unwrap();
        byte[0] ^= 0xFF;
        f.write_all_at(&byte, off).unwrap();
    }

    let store = Store::open(&path).unwrap();
    assert_eq!(store.superblock().epoch, 1, "should fall back to epoch 1");
    assert_eq!(store.app(), b"epoch-1");
    assert_eq!(store.num_components(), 1);
    std::fs::remove_file(&path).ok();
}

/// A truncated manifest (file chopped inside it) likewise falls back.
#[test]
fn truncated_manifest_falls_back() {
    let path = tmp("trunc-manifest.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..50, 0.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"first").unwrap();
    let epoch1_len = store.file_len().unwrap();
    store
        .save_components(&[&a], b"second-with-more-data")
        .unwrap();
    let sb = *store.superblock();
    drop(store);

    // Truncate inside the newest manifest; the epoch-2 superblock slot
    // survives (slots live at the file head) but its snapshot does not.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(sb.manifest_offset + 3).unwrap();
    drop(f);
    assert!(sb.manifest_offset + 3 > Superblock::SLOT_SIZE * 2);
    assert!(sb.manifest_offset >= epoch1_len);

    let store = Store::open(&path).unwrap();
    assert_eq!(store.superblock().epoch, 1);
    assert_eq!(store.app(), b"first");
    std::fs::remove_file(&path).ok();
}

/// Dimension checks hold on the multi-component path too.
#[test]
fn components_enforce_dimension() {
    let path = tmp("dim.prt");
    let params = TreeParams::with_cap::<2>(8);
    let a = build(params, 0..10, 0.0);
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save_components(&[&a], b"").unwrap();
    assert!(matches!(
        store.components::<3>(),
        Err(StoreError::DimensionMismatch {
            file: 2,
            requested: 3
        })
    ));
    std::fs::remove_file(&path).ok();
}
