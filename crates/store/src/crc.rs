//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Vendored-in because the build environment has no crates.io access;
//! the algorithm is the reflected 0xEDB88320 form, byte-at-a-time over a
//! compile-time table. Matches `crc32fast`/zlib output bit for bit
//! (check value: `crc32(b"123456789") == 0xCBF4_3926`).

/// Lookup table for the reflected polynomial, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed the raw (pre-inverted) state through successive
/// chunks. Start from `0xFFFF_FFFF`, xor with `0xFFFF_FFFF` at the end.
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_zlib() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0xA5u8; 4096];
        let before = crc32(&data);
        data[1234] ^= 0x10;
        assert_ne!(crc32(&data), before);
    }
}
