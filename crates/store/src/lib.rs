//! # pr-store — a durable on-disk index format for PR-trees
//!
//! The paper's PR-tree is an *external-memory* structure, yet a freshly
//! bulk-loaded tree lives and dies with the process: the pages may sit
//! in a file, but the root id, height, parameters, and item count exist
//! only in the `RTree` handle. This crate gives that handle a durable
//! home: `Store::create` → `Store::save(&tree)` → (crash, restart) →
//! `Store::open_tree(path)` returns a tree whose query results *and*
//! leaf-I/O counts are identical to the never-persisted original.
//!
//! ## File layout
//!
//! ```text
//! offset          contents
//! 0               superblock slot A  (fixed 4 KiB slot)
//! 4096            superblock slot B  (fixed 4 KiB slot)
//! 8192↑           snapshot 1: [pages][checksum table][footer]
//! ...             snapshot 2: [pages][checksum table][footer]
//! ```
//!
//! Each **snapshot** is appended at the next block-aligned offset:
//!
//! * **pages** — the tree's reachable nodes, copied breadth-first (root
//!   = page 0, levels contiguous, leaves last) with child pointers
//!   rewritten to the new dense ids. A save is therefore also a
//!   compaction: build-time scratch blocks never reach the file.
//! * **checksum table** — CRC32 of every page, 4 bytes each. Reads
//!   through the reopened tree verify lazily against this table, each
//!   page **once** (a shared verify-once bitmap; see [`device`]); a
//!   flipped bit in an unverified page surfaces as a typed checksum
//!   error on the read that touches it, never as a wrong answer, and
//!   [`Store::scrub`] re-hashes everything eagerly to catch later rot.
//!   On unix the snapshot region is mmap'd and served zero-copy;
//!   [`store::ReadPath::Recheck`] retains the hash-every-read mode.
//! * **footer** — the commit record: epoch, page count, table CRC, all
//!   under its own CRC. Validating the footer proves the snapshot body
//!   was completely written.
//!
//! ## Crash-safe commit: double superblock, epoch-versioned
//!
//! The two superblock slots alternate (an A/B scheme, as in LFS-style
//! checkpoint regions). A commit:
//!
//! 1. appends pages + checksum table + footer, then `fsync`;
//! 2. writes the **inactive** superblock slot with epoch `e+1` pointing
//!    at the new snapshot, then `fsync` — this flip is the commit point.
//!
//! `open` decodes both slots and tries candidates newest-epoch-first;
//! a candidate is accepted only if its footer and checksum table
//! validate. A write torn *anywhere* before the flip (partial pages,
//! missing footer, half-written superblock — the slot's own CRC catches
//! that) leaves the previous slot pointing at its intact snapshot, so
//! the store reopens at the last committed state. Torn or corrupt past
//! recovery is a typed [`StoreError`], never a panic.
//!
//! Opened trees pin their snapshot's `(offset, checksums)`, so a later
//! `save` into the same store never moves pages out from under a live
//! reader — snapshot isolation for free.
//!
//! ## Quick start
//!
//! ```
//! use pr_em::MemDevice;
//! use pr_geom::{Item, Rect};
//! use pr_store::Store;
//! use pr_tree::bulk::{BulkLoader, pr::PrTreeLoader};
//! use pr_tree::TreeParams;
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir();
//! let path = dir.join(format!("doc-quickstart-{}.prt", std::process::id()));
//! let params = TreeParams::paper_2d();
//! let items: Vec<Item<2>> = (0..1000)
//!     .map(|i| {
//!         let x = (i % 100) as f64;
//!         Item::new(Rect::xyxy(x, 0.0, x + 0.5, 1.0), i)
//!     })
//!     .collect();
//! let tree = PrTreeLoader::default()
//!     .load(Arc::new(MemDevice::new(params.page_size)), params, items)
//!     .unwrap();
//!
//! let mut store = Store::create::<2>(&path, params).unwrap();
//! store.save(&tree).unwrap();
//! drop((store, tree));
//!
//! let reopened = Store::open_tree::<2>(&path).unwrap();
//! assert_eq!(reopened.len(), 1000);
//! let hits = reopened.window(&Rect::xyxy(0.0, 0.0, 10.0, 1.0)).unwrap();
//! assert!(!hits.is_empty());
//! # std::fs::remove_file(&path).ok();
//! ```

pub mod crc;
pub mod device;
pub mod error;
pub mod format;
pub mod obs;
pub mod store;

pub use crc::crc32;
pub use device::{ScrubReport, StoreDevice, VerifiedBitmap};
pub use error::StoreError;
pub use format::{ComponentRun, Footer, ManifestRecord, Superblock, FORMAT_VERSION};
pub use store::{CommitComponent, CommitOutcome, ReadPath, Store};
