//! Store error type: every way a persisted index can fail to be what it
//! claims, as typed variants — corruption is an `Err`, never a panic.

use pr_em::EmError;
use std::fmt;

/// Errors surfaced by the store lifecycle API.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying OS-level I/O failure.
    Io(std::io::Error),
    /// An error bubbled up from the substrate (device layer).
    Em(EmError),
    /// The file does not start with the store magic — not a store file.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion(u32),
    /// Neither superblock slot holds a valid, committed state (both torn
    /// or overwritten). Distinct from [`StoreError::NoCommittedSnapshot`]:
    /// here even the empty-store state is unreadable.
    NoValidSuperblock,
    /// The store is healthy but no tree has ever been saved into it.
    NoCommittedSnapshot,
    /// Every committed superblock points at a snapshot whose footer or
    /// checksum table fails validation (torn or corrupted past recovery).
    TornSnapshot {
        /// Epoch of the newest snapshot that failed validation.
        epoch: u64,
        /// What exactly failed.
        reason: String,
    },
    /// A page's content hash does not match its committed checksum.
    ChecksumMismatch {
        /// The offending page id (snapshot-relative).
        page: u64,
    },
    /// The store was written for a different dimensionality than the
    /// tree type requested.
    DimensionMismatch {
        /// Dimension recorded in the superblock.
        file: u32,
        /// Dimension of the requested `RTree<D>`.
        requested: u32,
    },
    /// A tree with a different page size than the store's block size was
    /// passed to `save`.
    BlockSizeMismatch {
        /// The store's block size.
        store: usize,
        /// The tree's page size.
        tree: usize,
    },
    /// `save` was called on a store opened from a read-only file or
    /// filesystem (queries still work; commits need write access).
    ReadOnly,
    /// [`crate::Store::tree`] was called on a multi-component snapshot
    /// that does not hold exactly one tree; use
    /// [`crate::Store::components`] instead.
    NotSingleComponent(usize),
    /// An incremental commit asked to reuse a component id that is not
    /// part of the active snapshot.
    UnknownComponent(u64),
    /// Structural corruption not covered by a more specific variant.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Em(e) => write!(f, "substrate error: {e}"),
            StoreError::BadMagic => write!(f, "not a pr-store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            StoreError::NoValidSuperblock => {
                write!(f, "no valid superblock (both slots torn or corrupt)")
            }
            StoreError::NoCommittedSnapshot => {
                write!(f, "store holds no committed snapshot (nothing saved yet)")
            }
            StoreError::TornSnapshot { epoch, reason } => {
                write!(f, "snapshot at epoch {epoch} is torn or corrupt: {reason}")
            }
            StoreError::ChecksumMismatch { page } => {
                write!(f, "page {page} failed its CRC32 checksum")
            }
            StoreError::DimensionMismatch { file, requested } => {
                write!(
                    f,
                    "store indexes {file}-dimensional data, tree type is {requested}-dimensional"
                )
            }
            StoreError::BlockSizeMismatch { store, tree } => {
                write!(
                    f,
                    "store block size {store} does not match tree page size {tree}"
                )
            }
            StoreError::ReadOnly => {
                write!(f, "store opened read-only; saving needs write access")
            }
            StoreError::NotSingleComponent(n) => {
                write!(
                    f,
                    "snapshot holds {n} components, not a single tree (use components())"
                )
            }
            StoreError::UnknownComponent(id) => {
                write!(f, "component id {id} is not part of the active snapshot")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Em(e) => Some(e),
            _ => None,
        }
    }
}

impl StoreError {
    /// Transient-vs-fatal classification (see
    /// [`pr_em::io_error_is_transient`]): `true` for failures that can
    /// clear up when conditions change (ENOSPC once space is freed,
    /// EINTR, timeouts). Corruption, torn snapshots, and hard I/O
    /// errors are fatal.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => pr_em::io_error_is_transient(e),
            StoreError::Em(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<EmError> for StoreError {
    fn from(e: EmError) -> Self {
        match e {
            EmError::Io(io) => StoreError::Io(io),
            other => StoreError::Em(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::ChecksumMismatch { page: 7 }
            .to_string()
            .contains("page 7"));
        assert!(StoreError::DimensionMismatch {
            file: 3,
            requested: 2
        }
        .to_string()
        .contains("3-dimensional"));
        let torn = StoreError::TornSnapshot {
            epoch: 4,
            reason: "footer magic".into(),
        };
        assert!(torn.to_string().contains("epoch 4"));
    }

    #[test]
    fn em_io_errors_collapse_to_io() {
        let e: StoreError = EmError::Io(std::io::Error::other("disk gone")).into();
        assert!(matches!(e, StoreError::Io(_)));
        let e: StoreError = EmError::ReadOnly.into();
        assert!(matches!(e, StoreError::Em(EmError::ReadOnly)));
    }
}
