//! pr-store's catalog of process-wide metrics.
//!
//! Commits and scrubs are rare, heavyweight operations, so each one
//! records a counter bump, a latency sample, and a lifecycle event —
//! the full treatment, since the cost of recording vanishes next to
//! the fsyncs the operation itself performs.

use std::sync::OnceLock;

/// Handles to pr-store's registry metrics.
pub struct Metrics {
    /// `store_commits_total` — successful snapshot commits (superblock
    /// flips).
    pub commits: pr_obs::Counter,
    /// `store_commit_pages_total` — pages written by commits.
    pub commit_pages: pr_obs::Counter,
    /// `store_pages_written_total` — pages freshly appended by commits
    /// (new components). With `store_pages_reused_total` this is the
    /// write-amplification ledger: written / (written + reused) is the
    /// fraction of each commit that actually hit the disk.
    pub pages_written: pr_obs::Counter,
    /// `store_pages_reused_total` — pages referenced in place by
    /// commits (unchanged components' runs).
    pub pages_reused: pr_obs::Counter,
    /// `store_commit_us` — commit latency (BFS copy through superblock
    /// flip).
    pub commit_us: pr_obs::Histogram,
    /// `store_scrubs_total` — completed full-snapshot scrubs.
    pub scrubs: pr_obs::Counter,
    /// `store_scrub_pages_total` — pages re-hashed by scrubs.
    pub scrub_pages: pr_obs::Counter,
    /// `store_scrub_us` — scrub latency.
    pub scrub_us: pr_obs::Histogram,
    /// `store_corrupt_pages_total` — pages caught failing their CRC
    /// (scrub sweeps and query-path verification alike).
    pub corrupt_pages: pr_obs::Counter,
    /// `store_degraded` — 1 while a store serves reads in forced-recheck
    /// degraded mode after detected corruption, 0 when healthy.
    pub degraded: pr_obs::Gauge,
}

/// The lazily registered catalog.
pub fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pr_obs::global();
        Metrics {
            commits: r.counter(
                "store_commits_total",
                "successful snapshot commits (superblock flips)",
            ),
            commit_pages: r.counter("store_commit_pages_total", "pages written by commits"),
            pages_written: r.counter(
                "store_pages_written_total",
                "pages freshly appended by commits (new components)",
            ),
            pages_reused: r.counter(
                "store_pages_reused_total",
                "pages referenced in place by commits (unchanged components)",
            ),
            commit_us: r.histogram(
                "store_commit_us",
                "commit latency in microseconds (copy, fsync, flip)",
            ),
            scrubs: r.counter("store_scrubs_total", "completed full-snapshot scrubs"),
            scrub_pages: r.counter("store_scrub_pages_total", "pages re-hashed by scrubs"),
            scrub_us: r.histogram("store_scrub_us", "scrub latency in microseconds"),
            corrupt_pages: r.counter(
                "store_corrupt_pages_total",
                "pages caught failing their CRC32 checksum",
            ),
            degraded: r.gauge(
                "store_degraded",
                "1 while reads run in forced-recheck degraded mode after corruption",
            ),
        }
    })
}
