//! On-disk records: superblock and footer.
//!
//! Byte layouts (all integers little-endian). The superblock occupies
//! the first [`Superblock::ENCODED_SIZE`] bytes of each of the two fixed
//! 4-KiB slots at file offsets 0 and 4096; the rest of a slot is zero.
//!
//! ```text
//! Superblock (128 bytes)            Footer (40 bytes)
//! off sz field                      off sz field
//! 0   8  magic "PRSTORE1"           0   4  magic "PRFO"
//! 8   4  format_version             4   4  format_version
//! 12  4  block_size                 8   8  epoch
//! 16  8  epoch (0 = empty store)    16  8  num_pages
//! 24  4  dimension D                24  4  table_crc
//! 28  4  reserved                   28  4  reserved
//! 32  40 TreeMeta (see pr-tree)     32  4  footer_crc over bytes 0..32
//! 72  8  num_pages                  36  4  zero padding
//! 80  8  data_offset
//! 88  8  table_offset
//! 96  8  footer_offset
//! 104 4  table_crc
//! 108 16 reserved
//! 124 4  superblock_crc over bytes 0..124
//! ```

use crate::crc::crc32;
use crate::error::StoreError;
use pr_tree::TreeMeta;

/// Store file magic (first 8 bytes of both superblock slots).
pub const SB_MAGIC: [u8; 8] = *b"PRSTORE1";
/// Footer magic.
pub const FOOTER_MAGIC: [u8; 4] = *b"PRFO";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// One committed (or empty) store state. Two slots of these alternate;
/// the one with the highest epoch that validates wins at open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Superblock {
    /// Page/block size of the snapshot region in bytes.
    pub block_size: u32,
    /// Commit epoch: 0 for a freshly created (empty) store, then +1 per
    /// successful `save`.
    pub epoch: u64,
    /// Dimensionality `D` of the indexed rectangles.
    pub dim: u32,
    /// The tree handle's metadata (root is snapshot-relative; the root
    /// page is always page 0 of the snapshot).
    pub meta: TreeMeta,
    /// Number of pages in the committed snapshot.
    pub num_pages: u64,
    /// Byte offset of the snapshot's first page.
    pub data_offset: u64,
    /// Byte offset of the per-page CRC32 table.
    pub table_offset: u64,
    /// Byte offset of the footer record.
    pub footer_offset: u64,
    /// CRC32 of the checksum table bytes.
    pub table_crc: u32,
}

impl Superblock {
    /// Encoded size of the live header inside a slot.
    pub const ENCODED_SIZE: usize = 128;
    /// Size of each superblock slot. Fixed (rather than one block) so a
    /// reader can locate slot B before it knows the block size, even
    /// when slot A is torn.
    pub const SLOT_SIZE: u64 = 4096;

    /// Byte offset of slot 0 or 1.
    pub fn slot_offset(slot: usize) -> u64 {
        debug_assert!(slot < 2);
        slot as u64 * Self::SLOT_SIZE
    }

    /// First byte past the two superblock slots.
    pub fn data_region_start() -> u64 {
        2 * Self::SLOT_SIZE
    }

    /// Serializes into `buf` (exactly [`Superblock::ENCODED_SIZE`] bytes).
    pub fn encode(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        buf[0..8].copy_from_slice(&SB_MAGIC);
        buf[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&self.block_size.to_le_bytes());
        buf[16..24].copy_from_slice(&self.epoch.to_le_bytes());
        buf[24..28].copy_from_slice(&self.dim.to_le_bytes());
        buf[28..32].fill(0);
        self.meta.encode(&mut buf[32..72]);
        buf[72..80].copy_from_slice(&self.num_pages.to_le_bytes());
        buf[80..88].copy_from_slice(&self.data_offset.to_le_bytes());
        buf[88..96].copy_from_slice(&self.table_offset.to_le_bytes());
        buf[96..104].copy_from_slice(&self.footer_offset.to_le_bytes());
        buf[104..108].copy_from_slice(&self.table_crc.to_le_bytes());
        buf[108..124].fill(0);
        let crc = crc32(&buf[0..124]);
        buf[124..128].copy_from_slice(&crc.to_le_bytes());
    }

    /// Deserializes one slot's header, verifying magic, version, and the
    /// superblock's own CRC.
    pub fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() != Self::ENCODED_SIZE {
            return Err(StoreError::Corrupt(format!(
                "superblock buffer is {} bytes, want {}",
                buf.len(),
                Self::ENCODED_SIZE
            )));
        }
        if buf[0..8] != SB_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored_crc = u32::from_le_bytes(buf[124..128].try_into().expect("4 bytes"));
        let computed = crc32(&buf[0..124]);
        if stored_crc != computed {
            return Err(StoreError::Corrupt(format!(
                "superblock checksum mismatch (stored {stored_crc:08x}, computed {computed:08x})"
            )));
        }
        let meta = TreeMeta::decode(&buf[32..72])
            .map_err(|e| StoreError::Corrupt(format!("superblock tree metadata: {e}")))?;
        let sb = Superblock {
            block_size: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
            epoch: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
            dim: u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
            meta,
            num_pages: u64::from_le_bytes(buf[72..80].try_into().expect("8 bytes")),
            data_offset: u64::from_le_bytes(buf[80..88].try_into().expect("8 bytes")),
            table_offset: u64::from_le_bytes(buf[88..96].try_into().expect("8 bytes")),
            footer_offset: u64::from_le_bytes(buf[96..104].try_into().expect("8 bytes")),
            table_crc: u32::from_le_bytes(buf[104..108].try_into().expect("4 bytes")),
        };
        if sb.block_size == 0 {
            return Err(StoreError::Corrupt("superblock has zero block size".into()));
        }
        if sb.epoch > 0 && sb.data_offset < Self::data_region_start() {
            return Err(StoreError::Corrupt(format!(
                "snapshot data offset {} overlaps the superblocks",
                sb.data_offset
            )));
        }
        Ok(sb)
    }

    /// True when this superblock describes a committed snapshot (not the
    /// freshly created empty state).
    pub fn has_snapshot(&self) -> bool {
        self.epoch > 0
    }
}

/// The commit record written at the end of a snapshot, before the
/// superblock flip. Validating it proves the snapshot body (pages +
/// checksum table) was fully written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Epoch this footer commits (must match its superblock).
    pub epoch: u64,
    /// Number of pages in the snapshot.
    pub num_pages: u64,
    /// CRC32 of the checksum table bytes.
    pub table_crc: u32,
}

impl Footer {
    /// Encoded size in bytes.
    pub const ENCODED_SIZE: usize = 40;

    /// Serializes into `buf` (exactly [`Footer::ENCODED_SIZE`] bytes).
    pub fn encode(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        buf[0..4].copy_from_slice(&FOOTER_MAGIC);
        buf[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        buf[16..24].copy_from_slice(&self.num_pages.to_le_bytes());
        buf[24..28].copy_from_slice(&self.table_crc.to_le_bytes());
        buf[28..32].fill(0);
        let crc = crc32(&buf[0..32]);
        buf[32..36].copy_from_slice(&crc.to_le_bytes());
        buf[36..40].fill(0);
    }

    /// Deserializes and verifies a footer record.
    pub fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() != Self::ENCODED_SIZE {
            return Err(StoreError::Corrupt(format!(
                "footer buffer is {} bytes, want {}",
                buf.len(),
                Self::ENCODED_SIZE
            )));
        }
        if buf[0..4] != FOOTER_MAGIC {
            return Err(StoreError::Corrupt("bad footer magic".into()));
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored_crc = u32::from_le_bytes(buf[32..36].try_into().expect("4 bytes"));
        let computed = crc32(&buf[0..32]);
        if stored_crc != computed {
            return Err(StoreError::Corrupt(format!(
                "footer checksum mismatch (stored {stored_crc:08x}, computed {computed:08x})"
            )));
        }
        Ok(Footer {
            epoch: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            num_pages: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
            table_crc: u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_tree::TreeParams;

    fn sample_sb() -> Superblock {
        Superblock {
            block_size: 4096,
            epoch: 3,
            dim: 2,
            meta: TreeMeta {
                params: TreeParams::paper_2d(),
                root: 0,
                root_level: 2,
                len: 100_000,
            },
            num_pages: 1234,
            data_offset: 8192,
            table_offset: 8192 + 1234 * 4096,
            footer_offset: 8192 + 1234 * 4096 + 1234 * 4,
            table_crc: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = sample_sb();
        let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
        sb.encode(&mut buf);
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
        assert!(sb.has_snapshot());
    }

    #[test]
    fn superblock_bit_flip_is_detected() {
        let sb = sample_sb();
        let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
        sb.encode(&mut buf);
        for off in [9, 17, 40, 75, 101, 110] {
            let mut bad = buf.clone();
            bad[off] ^= 0x40;
            assert!(Superblock::decode(&bad).is_err(), "flip at {off} accepted");
        }
    }

    #[test]
    fn wrong_magic_and_version() {
        let sb = sample_sb();
        let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
        sb.encode(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            Superblock::decode(&bad),
            Err(StoreError::BadMagic)
        ));
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Superblock::decode(&bad),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn footer_roundtrip_and_corruption() {
        let f = Footer {
            epoch: 7,
            num_pages: 55,
            table_crc: 0x1234_5678,
        };
        let mut buf = vec![0u8; Footer::ENCODED_SIZE];
        f.encode(&mut buf);
        assert_eq!(Footer::decode(&buf).unwrap(), f);
        let mut bad = buf.clone();
        bad[20] ^= 1;
        assert!(Footer::decode(&bad).is_err());
        let mut bad = buf;
        bad[0] = 0;
        assert!(Footer::decode(&bad).is_err());
    }

    #[test]
    fn slots_are_fixed_and_disjoint() {
        assert_eq!(Superblock::slot_offset(0), 0);
        assert_eq!(Superblock::slot_offset(1), 4096);
        assert_eq!(Superblock::data_region_start(), 8192);
        assert!(Superblock::ENCODED_SIZE as u64 <= Superblock::SLOT_SIZE);
    }
}
