//! On-disk records: superblock and footer.
//!
//! Byte layouts (all integers little-endian). The superblock occupies
//! the first [`Superblock::ENCODED_SIZE`] bytes of each of the two fixed
//! 4-KiB slots at file offsets 0 and 4096; the rest of a slot is zero.
//!
//! ```text
//! Superblock (128 bytes)            Footer (40 bytes)
//! off sz field                      off sz field
//! 0   8  magic "PRSTORE1"           0   4  magic "PRFO"
//! 8   4  format_version             4   4  format_version
//! 12  4  block_size                 8   8  epoch
//! 16  8  epoch (0 = empty store)    16  8  num_pages
//! 24  4  dimension D                24  4  table_crc
//! 28  4  reserved                   28  4  reserved
//! 32  40 TreeMeta (see pr-tree)     32  4  footer_crc over bytes 0..32
//! 72  8  num_pages                  36  4  zero padding
//! 80  8  data_offset
//! 88  8  table_offset
//! 96  8  footer_offset
//! 104 4  table_crc
//! 108 8  manifest_offset (0 = single-tree snapshot, no manifest)
//! 116 4  manifest_len
//! 120 4  reserved
//! 124 4  superblock_crc over bytes 0..124
//! ```
//!
//! A **manifest** ([`ManifestRecord`]) turns a snapshot into a
//! *multi-component* commit: each component is an independent
//! contiguous **page run** somewhere in the file, described by a
//! [`ComponentRun`] — a stable identity, a BFS page run at an absolute
//! byte offset, and that run's own CRC32 table. Runs written by earlier
//! epochs are referenced **in place**: a commit only appends the pages
//! of components that actually changed and re-points everything else,
//! which is what makes merge I/O O(merged levels) instead of O(index).
//! An opaque application blob rides along under the same CRC —
//! `pr-live` stores its WAL position, tombstones, and memtable
//! checkpoint there. Layout:
//!
//! ```text
//! Manifest (variable)
//! off       sz    field
//! 0         4     magic "PRMF"
//! 4         4     format_version
//! 8         8     epoch (must match the superblock)
//! 16        4     num_components
//! 20        4     app_len
//! 24        76·k  component runs (see ComponentRun)
//! 24+76k    app   application blob
//! ...       4     manifest_crc over all previous bytes
//!
//! ComponentRun (76 bytes)
//! off sz field
//! 0   8  component id (stable across epochs while the run is reused)
//! 8   40 TreeMeta (root is run-relative; always page 0)
//! 48  8  data_offset (absolute byte offset of the run's first page)
//! 56  8  num_pages
//! 64  8  table_offset (absolute byte offset of the run's CRC table)
//! 72  4  table_crc (CRC32 of the run's table bytes)
//! ```
//!
//! The superblock's own `data_offset`/`num_pages`/`table_offset`/
//! `table_crc` describe only the region **newly written by this
//! epoch's commit** (reused runs were proven by the epoch that wrote
//! them and are re-verified against their per-run `table_crc` at open);
//! the footer commits that new region. A commit that reuses every
//! component writes zero pages and an empty table — still a valid,
//! fully CRC-guarded commit.

use crate::crc::crc32;
use crate::error::StoreError;
use pr_tree::TreeMeta;

/// Store file magic (first 8 bytes of both superblock slots).
pub const SB_MAGIC: [u8; 8] = *b"PRSTORE1";
/// Footer magic.
pub const FOOTER_MAGIC: [u8; 4] = *b"PRFO";
/// Manifest record magic.
pub const MANIFEST_MAGIC: [u8; 4] = *b"PRMF";
/// Current format version. Version 2 replaced the manifest's packed
/// `TreeMeta` list with per-component page runs ([`ComponentRun`]),
/// enabling incremental commits that reference unchanged components'
/// pages in place.
pub const FORMAT_VERSION: u32 = 2;

/// One committed (or empty) store state. Two slots of these alternate;
/// the one with the highest epoch that validates wins at open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Superblock {
    /// Page/block size of the snapshot region in bytes.
    pub block_size: u32,
    /// Commit epoch: 0 for a freshly created (empty) store, then +1 per
    /// successful `save`.
    pub epoch: u64,
    /// Dimensionality `D` of the indexed rectangles.
    pub dim: u32,
    /// The tree handle's metadata (root is snapshot-relative; the root
    /// page is always page 0 of the snapshot).
    pub meta: TreeMeta,
    /// Number of pages in the committed snapshot.
    pub num_pages: u64,
    /// Byte offset of the snapshot's first page.
    pub data_offset: u64,
    /// Byte offset of the per-page CRC32 table.
    pub table_offset: u64,
    /// Byte offset of the footer record.
    pub footer_offset: u64,
    /// CRC32 of the checksum table bytes.
    pub table_crc: u32,
    /// Byte offset of the [`ManifestRecord`] (0 = single-tree snapshot
    /// without a manifest).
    pub manifest_offset: u64,
    /// Encoded length of the manifest record in bytes (0 when absent).
    pub manifest_len: u32,
}

impl Superblock {
    /// Encoded size of the live header inside a slot.
    pub const ENCODED_SIZE: usize = 128;
    /// Size of each superblock slot. Fixed (rather than one block) so a
    /// reader can locate slot B before it knows the block size, even
    /// when slot A is torn.
    pub const SLOT_SIZE: u64 = 4096;

    /// Byte offset of slot 0 or 1.
    pub fn slot_offset(slot: usize) -> u64 {
        debug_assert!(slot < 2);
        slot as u64 * Self::SLOT_SIZE
    }

    /// First byte past the two superblock slots.
    pub fn data_region_start() -> u64 {
        2 * Self::SLOT_SIZE
    }

    /// Serializes into `buf` (exactly [`Superblock::ENCODED_SIZE`] bytes).
    pub fn encode(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        buf[0..8].copy_from_slice(&SB_MAGIC);
        buf[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&self.block_size.to_le_bytes());
        buf[16..24].copy_from_slice(&self.epoch.to_le_bytes());
        buf[24..28].copy_from_slice(&self.dim.to_le_bytes());
        buf[28..32].fill(0);
        self.meta.encode(&mut buf[32..72]);
        buf[72..80].copy_from_slice(&self.num_pages.to_le_bytes());
        buf[80..88].copy_from_slice(&self.data_offset.to_le_bytes());
        buf[88..96].copy_from_slice(&self.table_offset.to_le_bytes());
        buf[96..104].copy_from_slice(&self.footer_offset.to_le_bytes());
        buf[104..108].copy_from_slice(&self.table_crc.to_le_bytes());
        buf[108..116].copy_from_slice(&self.manifest_offset.to_le_bytes());
        buf[116..120].copy_from_slice(&self.manifest_len.to_le_bytes());
        buf[120..124].fill(0);
        let crc = crc32(&buf[0..124]);
        buf[124..128].copy_from_slice(&crc.to_le_bytes());
    }

    /// Deserializes one slot's header, verifying magic, version, and the
    /// superblock's own CRC.
    pub fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() != Self::ENCODED_SIZE {
            return Err(StoreError::Corrupt(format!(
                "superblock buffer is {} bytes, want {}",
                buf.len(),
                Self::ENCODED_SIZE
            )));
        }
        if buf[0..8] != SB_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored_crc = u32::from_le_bytes(buf[124..128].try_into().expect("4 bytes"));
        let computed = crc32(&buf[0..124]);
        if stored_crc != computed {
            return Err(StoreError::Corrupt(format!(
                "superblock checksum mismatch (stored {stored_crc:08x}, computed {computed:08x})"
            )));
        }
        let meta = TreeMeta::decode(&buf[32..72])
            .map_err(|e| StoreError::Corrupt(format!("superblock tree metadata: {e}")))?;
        let sb = Superblock {
            block_size: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
            epoch: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
            dim: u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
            meta,
            num_pages: u64::from_le_bytes(buf[72..80].try_into().expect("8 bytes")),
            data_offset: u64::from_le_bytes(buf[80..88].try_into().expect("8 bytes")),
            table_offset: u64::from_le_bytes(buf[88..96].try_into().expect("8 bytes")),
            footer_offset: u64::from_le_bytes(buf[96..104].try_into().expect("8 bytes")),
            table_crc: u32::from_le_bytes(buf[104..108].try_into().expect("4 bytes")),
            manifest_offset: u64::from_le_bytes(buf[108..116].try_into().expect("8 bytes")),
            manifest_len: u32::from_le_bytes(buf[116..120].try_into().expect("4 bytes")),
        };
        if sb.block_size == 0 {
            return Err(StoreError::Corrupt("superblock has zero block size".into()));
        }
        if sb.epoch > 0 && sb.data_offset < Self::data_region_start() {
            return Err(StoreError::Corrupt(format!(
                "snapshot data offset {} overlaps the superblocks",
                sb.data_offset
            )));
        }
        Ok(sb)
    }

    /// True when this superblock describes a committed snapshot (not the
    /// freshly created empty state).
    pub fn has_snapshot(&self) -> bool {
        self.epoch > 0
    }

    /// True when the committed snapshot carries a multi-component
    /// manifest record.
    pub fn has_manifest(&self) -> bool {
        self.manifest_offset != 0
    }
}

/// One component's page run: a stable identity plus the absolute
/// location of its BFS pages and their CRC table. Page ids inside a run
/// are run-relative (the root is always page 0), so a run means the
/// same tree no matter which epoch's manifest references it — that is
/// what lets a commit leave unchanged components' pages in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentRun {
    /// Stable component identity. Assigned once when the component's
    /// pages are written; every later manifest that reuses the run
    /// carries the same id, so higher layers can recognize "same bytes,
    /// same tree" across epochs.
    pub id: u64,
    /// The component's tree metadata; `root` is run-relative (0).
    pub meta: TreeMeta,
    /// Absolute byte offset of the run's first page.
    pub data_offset: u64,
    /// Number of pages in the run.
    pub num_pages: u64,
    /// Absolute byte offset of the run's per-page CRC32 table
    /// (`num_pages * 4` bytes).
    pub table_offset: u64,
    /// CRC32 of the run's table bytes.
    pub table_crc: u32,
}

impl ComponentRun {
    /// Encoded size in bytes.
    pub const ENCODED_SIZE: usize = 76;

    /// Serializes into `buf` (exactly [`ComponentRun::ENCODED_SIZE`]
    /// bytes).
    pub fn encode(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        buf[0..8].copy_from_slice(&self.id.to_le_bytes());
        self.meta.encode(&mut buf[8..48]);
        buf[48..56].copy_from_slice(&self.data_offset.to_le_bytes());
        buf[56..64].copy_from_slice(&self.num_pages.to_le_bytes());
        buf[64..72].copy_from_slice(&self.table_offset.to_le_bytes());
        buf[72..76].copy_from_slice(&self.table_crc.to_le_bytes());
    }

    /// Deserializes one run entry (integrity is the enclosing
    /// manifest's CRC).
    pub fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() != Self::ENCODED_SIZE {
            return Err(StoreError::Corrupt(format!(
                "component run is {} bytes, want {}",
                buf.len(),
                Self::ENCODED_SIZE
            )));
        }
        let meta = TreeMeta::decode(&buf[8..48])
            .map_err(|e| StoreError::Corrupt(format!("component run metadata: {e}")))?;
        Ok(ComponentRun {
            id: u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
            meta,
            data_offset: u64::from_le_bytes(buf[48..56].try_into().expect("8 bytes")),
            num_pages: u64::from_le_bytes(buf[56..64].try_into().expect("8 bytes")),
            table_offset: u64::from_le_bytes(buf[64..72].try_into().expect("8 bytes")),
            table_crc: u32::from_le_bytes(buf[72..76].try_into().expect("4 bytes")),
        })
    }
}

/// A multi-component commit record: the snapshot holds `runs.len()`
/// trees, each an independent page run (possibly written by an earlier
/// epoch and referenced in place), plus an opaque application blob. See
/// the module docs for the byte layout. The record's own CRC covers the
/// runs *and* the blob, so a torn manifest invalidates the whole
/// candidate snapshot at open (falling back one epoch, exactly like a
/// torn footer).
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestRecord {
    /// Epoch this manifest belongs to (must match its superblock).
    pub epoch: u64,
    /// One page run per component.
    pub runs: Vec<ComponentRun>,
    /// Opaque application payload (pr-live's checkpoint).
    pub app: Vec<u8>,
}

impl ManifestRecord {
    /// Fixed header bytes before the runs.
    pub const HEADER_SIZE: usize = 24;

    /// Encoded size of this record in bytes.
    pub fn encoded_size(&self) -> usize {
        Self::HEADER_SIZE + self.runs.len() * ComponentRun::ENCODED_SIZE + self.app.len() + 4
    }

    /// Serializes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.encoded_size()];
        buf[0..4].copy_from_slice(&MANIFEST_MAGIC);
        buf[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        buf[16..20].copy_from_slice(&(self.runs.len() as u32).to_le_bytes());
        buf[20..24].copy_from_slice(&(self.app.len() as u32).to_le_bytes());
        let mut off = Self::HEADER_SIZE;
        for run in &self.runs {
            run.encode(&mut buf[off..off + ComponentRun::ENCODED_SIZE]);
            off += ComponentRun::ENCODED_SIZE;
        }
        buf[off..off + self.app.len()].copy_from_slice(&self.app);
        off += self.app.len();
        let crc = crc32(&buf[..off]);
        buf[off..off + 4].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Deserializes and verifies a manifest record.
    pub fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() < Self::HEADER_SIZE + 4 {
            return Err(StoreError::Corrupt(format!(
                "manifest record is {} bytes, too short for a header",
                buf.len()
            )));
        }
        if buf[0..4] != MANIFEST_MAGIC {
            return Err(StoreError::Corrupt("bad manifest magic".into()));
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let epoch = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let num = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")) as usize;
        let app_len = u32::from_le_bytes(buf[20..24].try_into().expect("4 bytes")) as usize;
        let want = Self::HEADER_SIZE + num * ComponentRun::ENCODED_SIZE + app_len + 4;
        if buf.len() != want {
            return Err(StoreError::Corrupt(format!(
                "manifest record is {} bytes, header implies {want}",
                buf.len()
            )));
        }
        let stored_crc = u32::from_le_bytes(buf[want - 4..want].try_into().expect("4 bytes"));
        let computed = crc32(&buf[..want - 4]);
        if stored_crc != computed {
            return Err(StoreError::Corrupt(format!(
                "manifest checksum mismatch (stored {stored_crc:08x}, computed {computed:08x})"
            )));
        }
        let mut runs = Vec::with_capacity(num);
        let mut off = Self::HEADER_SIZE;
        for _ in 0..num {
            runs.push(ComponentRun::decode(
                &buf[off..off + ComponentRun::ENCODED_SIZE],
            )?);
            off += ComponentRun::ENCODED_SIZE;
        }
        let app = buf[off..off + app_len].to_vec();
        Ok(ManifestRecord { epoch, runs, app })
    }
}

/// The commit record written at the end of a snapshot, before the
/// superblock flip. Validating it proves the snapshot body (pages +
/// checksum table) was fully written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Epoch this footer commits (must match its superblock).
    pub epoch: u64,
    /// Number of pages in the snapshot.
    pub num_pages: u64,
    /// CRC32 of the checksum table bytes.
    pub table_crc: u32,
}

impl Footer {
    /// Encoded size in bytes.
    pub const ENCODED_SIZE: usize = 40;

    /// Serializes into `buf` (exactly [`Footer::ENCODED_SIZE`] bytes).
    pub fn encode(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        buf[0..4].copy_from_slice(&FOOTER_MAGIC);
        buf[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        buf[16..24].copy_from_slice(&self.num_pages.to_le_bytes());
        buf[24..28].copy_from_slice(&self.table_crc.to_le_bytes());
        buf[28..32].fill(0);
        let crc = crc32(&buf[0..32]);
        buf[32..36].copy_from_slice(&crc.to_le_bytes());
        buf[36..40].fill(0);
    }

    /// Deserializes and verifies a footer record.
    pub fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() != Self::ENCODED_SIZE {
            return Err(StoreError::Corrupt(format!(
                "footer buffer is {} bytes, want {}",
                buf.len(),
                Self::ENCODED_SIZE
            )));
        }
        if buf[0..4] != FOOTER_MAGIC {
            return Err(StoreError::Corrupt("bad footer magic".into()));
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored_crc = u32::from_le_bytes(buf[32..36].try_into().expect("4 bytes"));
        let computed = crc32(&buf[0..32]);
        if stored_crc != computed {
            return Err(StoreError::Corrupt(format!(
                "footer checksum mismatch (stored {stored_crc:08x}, computed {computed:08x})"
            )));
        }
        Ok(Footer {
            epoch: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            num_pages: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
            table_crc: u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_tree::TreeParams;

    fn sample_sb() -> Superblock {
        Superblock {
            block_size: 4096,
            epoch: 3,
            dim: 2,
            meta: TreeMeta {
                params: TreeParams::paper_2d(),
                root: 0,
                root_level: 2,
                len: 100_000,
            },
            num_pages: 1234,
            data_offset: 8192,
            table_offset: 8192 + 1234 * 4096,
            footer_offset: 8192 + 1234 * 4096 + 1234 * 4,
            table_crc: 0xDEAD_BEEF,
            manifest_offset: 0,
            manifest_len: 0,
        }
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = sample_sb();
        let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
        sb.encode(&mut buf);
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
        assert!(sb.has_snapshot());
    }

    #[test]
    fn superblock_bit_flip_is_detected() {
        let sb = sample_sb();
        let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
        sb.encode(&mut buf);
        for off in [9, 17, 40, 75, 101, 110] {
            let mut bad = buf.clone();
            bad[off] ^= 0x40;
            assert!(Superblock::decode(&bad).is_err(), "flip at {off} accepted");
        }
    }

    #[test]
    fn wrong_magic_and_version() {
        let sb = sample_sb();
        let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
        sb.encode(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            Superblock::decode(&bad),
            Err(StoreError::BadMagic)
        ));
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Superblock::decode(&bad),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn footer_roundtrip_and_corruption() {
        let f = Footer {
            epoch: 7,
            num_pages: 55,
            table_crc: 0x1234_5678,
        };
        let mut buf = vec![0u8; Footer::ENCODED_SIZE];
        f.encode(&mut buf);
        assert_eq!(Footer::decode(&buf).unwrap(), f);
        let mut bad = buf.clone();
        bad[20] ^= 1;
        assert!(Footer::decode(&bad).is_err());
        let mut bad = buf;
        bad[0] = 0;
        assert!(Footer::decode(&bad).is_err());
    }

    fn sample_run(id: u64, root_level: u8, len: u64, data_offset: u64) -> ComponentRun {
        ComponentRun {
            id,
            meta: TreeMeta {
                params: TreeParams::paper_2d(),
                root: 0,
                root_level,
                len,
            },
            data_offset,
            num_pages: len.div_ceil(100).max(1),
            table_offset: data_offset + len * 4096,
            table_crc: 0xABCD_0000 | id as u32,
        }
    }

    #[test]
    fn component_run_roundtrip() {
        let run = sample_run(7, 2, 1000, 8192);
        let mut buf = vec![0u8; ComponentRun::ENCODED_SIZE];
        run.encode(&mut buf);
        assert_eq!(ComponentRun::decode(&buf).unwrap(), run);
        assert!(ComponentRun::decode(&buf[..10]).is_err());
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let m = ManifestRecord {
            epoch: 9,
            runs: vec![sample_run(1, 2, 1000, 8192), sample_run(4, 1, 64, 500_000)],
            app: b"opaque payload".to_vec(),
        };
        let buf = m.encode();
        assert_eq!(buf.len(), m.encoded_size());
        assert_eq!(ManifestRecord::decode(&buf).unwrap(), m);
        // A flip anywhere — header, run entry, app blob, crc — is caught.
        for off in [0, 9, 17, 30, 70, 110, buf.len() - 10, buf.len() - 2] {
            let mut bad = buf.clone();
            bad[off] ^= 0x20;
            assert!(ManifestRecord::decode(&bad).is_err(), "flip at {off}");
        }
        // Truncation is caught.
        assert!(ManifestRecord::decode(&buf[..buf.len() - 1]).is_err());
        assert!(ManifestRecord::decode(&buf[..10]).is_err());
    }

    #[test]
    fn empty_manifest_is_valid() {
        let m = ManifestRecord {
            epoch: 1,
            runs: Vec::new(),
            app: Vec::new(),
        };
        let buf = m.encode();
        assert_eq!(ManifestRecord::decode(&buf).unwrap(), m);
    }

    #[test]
    fn superblock_manifest_fields_roundtrip() {
        let mut sb = sample_sb();
        sb.manifest_offset = 123_456;
        sb.manifest_len = 789;
        let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
        sb.encode(&mut buf);
        let back = Superblock::decode(&buf).unwrap();
        assert_eq!(back, sb);
        assert!(back.has_manifest());
        assert!(!sample_sb().has_manifest());
    }

    #[test]
    fn slots_are_fixed_and_disjoint() {
        assert_eq!(Superblock::slot_offset(0), 0);
        assert_eq!(Superblock::slot_offset(1), 4096);
        assert_eq!(Superblock::data_region_start(), 8192);
        assert!(Superblock::ENCODED_SIZE as u64 <= Superblock::SLOT_SIZE);
    }
}
