//! The read-only block device an opened snapshot is served through.
//!
//! A [`StoreDevice`] maps block id `i` to file byte range
//! `data_offset + i·block_size ..`, so the reopened tree's page ids are
//! snapshot-relative and start at 0 (the root). Since the zero-copy
//! read-path rework the device has three cooperating layers:
//!
//! * **mmap first** ([`pr_em::Mmap`]): on unix the committed snapshot
//!   region is memory-mapped once per open/commit and shared (`Arc`) by
//!   every device pinned to that snapshot, so
//!   [`pr_em::BlockDevice::with_block`] hands the query engine a *true
//!   borrowed slice* of the file — no page-sized copy, no syscall per
//!   leaf visit. Where mmap is unavailable (non-unix, or the mapping
//!   failed) every read transparently falls back to positioned
//!   `read_at`, bit-identical results guaranteed.
//! * **verify-once CRC** ([`VerifiedBitmap`]): the committed snapshot is
//!   immutable, so a page that passed its CRC32 once cannot honestly
//!   fail it later — re-hashing 4 KiB per leaf per query is pure
//!   overhead. Each page's first touch verifies it against the committed
//!   checksum table and sets one atomic bit; later touches are free. The
//!   bitmap is shared (`Arc`) across all devices of one snapshot, so a
//!   page verified by `warm_cache` is free for every subsequent query,
//!   and an eager [`StoreDevice::scrub`] marks everything at once. A
//!   flipped bit in a page that was **already verified** is therefore
//!   *not* seen by later queries — that is the documented trade; the
//!   scrub (which always re-hashes, and *clears* the bit of any page
//!   that fails) exists to catch exactly that bit rot.
//! * **recheck mode** (`verify_every_read`): the pre-rework behavior —
//!   positioned read + full CRC on every access — retained behind
//!   [`crate::store::ReadPath::Recheck`] as the paranoid mode and as the
//!   honest baseline for the `cold_read` benchmark.
//!
//! The device is **read-only**: writes return [`EmError::ReadOnly`], and
//! `allocate` hands out ids past the committed end whose reads fail with
//! `BlockOutOfRange` (a committed snapshot never grows in place — new
//! data means a new snapshot appended by `Store::save`). Because each
//! device pins its own `(data_offset, checksums, map)`, trees opened
//! before a later `save` keep reading their original snapshot — and the
//! mapping pins the inode, so even `compact()`'s atomic-rename rewrite
//! never moves pages out from under a live reader.

use crate::crc::crc32;
use crate::error::StoreError;
use pr_em::{BlockDevice, BlockId, EmError, IoCounters, Mmap, PositionedFile};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One atomic bit per page: set once the page's CRC32 has been checked
/// against the committed table. Shared by every [`StoreDevice`] pinned
/// to one snapshot, so verification work is never repeated across
/// handles (components of one snapshot share it too).
#[derive(Debug)]
pub struct VerifiedBitmap {
    words: Vec<AtomicU64>,
    pages: u64,
    verified: AtomicU64,
}

impl VerifiedBitmap {
    /// A fresh all-unverified bitmap for `pages` pages.
    pub fn new(pages: u64) -> Self {
        VerifiedBitmap {
            words: (0..pages.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            pages,
            verified: AtomicU64::new(0),
        }
    }

    /// True when `page` has already passed its checksum.
    #[inline]
    pub fn is_verified(&self, page: u64) -> bool {
        self.words[(page / 64) as usize].load(Ordering::Acquire) & (1 << (page % 64)) != 0
    }

    /// Marks `page` verified; returns `true` when this call flipped it.
    #[inline]
    fn set(&self, page: u64) -> bool {
        let prev = self.words[(page / 64) as usize].fetch_or(1 << (page % 64), Ordering::AcqRel);
        let newly = prev & (1 << (page % 64)) == 0;
        if newly {
            self.verified.fetch_add(1, Ordering::Relaxed);
        }
        newly
    }

    /// Clears `page` (a scrub caught post-verification rot: later reads
    /// must fail loudly instead of serving the bad bytes).
    fn clear(&self, page: u64) {
        let prev =
            self.words[(page / 64) as usize].fetch_and(!(1 << (page % 64)), Ordering::AcqRel);
        if prev & (1 << (page % 64)) != 0 {
            self.verified.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Number of pages verified so far.
    pub fn verified_pages(&self) -> u64 {
        self.verified.load(Ordering::Relaxed)
    }

    /// Total pages tracked.
    pub fn total_pages(&self) -> u64 {
        self.pages
    }
}

/// Outcome of an eager checksum sweep ([`StoreDevice::scrub`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Pages in the snapshot (all of them were re-hashed).
    pub pages: u64,
    /// Pages the verify-once bitmap had already marked before the scrub
    /// (lazily verified by earlier reads, or by a previous scrub).
    pub already_verified: u64,
}

/// Sets/clears the shared degraded flag, mirroring it into the registry
/// gauge and emitting the transition event exactly once per flip.
fn set_degraded(flag: &AtomicBool, degraded: bool, why: &str) {
    let was = flag.swap(degraded, Ordering::SeqCst);
    if was != degraded {
        crate::obs::metrics().degraded.set(u64::from(degraded));
        pr_obs::events().emit(
            if degraded {
                "degraded_enter"
            } else {
                "degraded_exit"
            },
            format!("store read path: {why}"),
        );
    }
}

/// Read-only, checksum-verifying view of one committed snapshot.
pub struct StoreDevice {
    file: Arc<PositionedFile>,
    /// Shared mapping of the file prefix covering the snapshot region
    /// (`None`: non-unix, mapping failed, or recheck mode).
    map: Option<Arc<Mmap>>,
    block_size: usize,
    num_pages: u64,
    data_offset: u64,
    checksums: Arc<Vec<u32>>,
    verified: Arc<VerifiedBitmap>,
    /// Recheck mode: ignore the bitmap and re-hash on every read.
    verify_every_read: bool,
    /// Shared degraded flag: set (by any handle, or a scrub) when
    /// corruption is detected, making **every** handle of this store
    /// re-hash every read — [`crate::store::ReadPath::Recheck`]
    /// semantics forced on the whole snapshot until a clean scrub
    /// clears it. Possibly-rotten pages are never served off a stale
    /// verified bit.
    degraded: Arc<AtomicBool>,
    /// Ids handed out by `allocate` (they are unusable, but the contract
    /// says ids are unique and monotone).
    allocated_past_end: AtomicU64,
    counters: Arc<IoCounters>,
}

impl StoreDevice {
    /// Wraps a committed snapshot region. `checksums[i]` must be the
    /// CRC32 of page `i`; `map`, when present, must cover at least
    /// `data_offset + checksums.len() · block_size` bytes of the file.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        file: Arc<PositionedFile>,
        map: Option<Arc<Mmap>>,
        block_size: usize,
        data_offset: u64,
        checksums: Arc<Vec<u32>>,
        verified: Arc<VerifiedBitmap>,
        verify_every_read: bool,
        degraded: Arc<AtomicBool>,
    ) -> Self {
        debug_assert_eq!(verified.total_pages(), checksums.len() as u64);
        if let Some(m) = &map {
            debug_assert!(
                m.len() as u64 >= data_offset + checksums.len() as u64 * block_size as u64
            );
        }
        StoreDevice {
            file,
            map,
            block_size,
            num_pages: checksums.len() as u64,
            data_offset,
            checksums,
            verified,
            verify_every_read,
            degraded,
            allocated_past_end: AtomicU64::new(0),
            counters: IoCounters::new(),
        }
    }

    /// True when reads are served from the memory mapping.
    pub fn is_mmapped(&self) -> bool {
        self.map.is_some()
    }

    /// True while this snapshot's shared degraded flag forces re-hashing
    /// every read.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The shared verify-once state (counts for `prtree stats`).
    pub fn verified(&self) -> &Arc<VerifiedBitmap> {
        &self.verified
    }

    #[inline]
    fn range_check(&self, block: BlockId) -> Result<(), EmError> {
        if block >= self.num_pages {
            return Err(EmError::BlockOutOfRange {
                block,
                len: self.num_pages,
            });
        }
        Ok(())
    }

    /// The page's bytes inside the shared mapping, when mapped.
    #[inline]
    fn mapped_page(&self, block: BlockId) -> Option<&[u8]> {
        self.map.as_ref().map(|m| {
            let start = (self.data_offset + block * self.block_size as u64) as usize;
            &m.as_slice()[start..start + self.block_size]
        })
    }

    /// Verify-once: a no-op when the bitmap already covers `block`
    /// (unless in recheck mode), else one CRC32 pass that marks the bit
    /// on success.
    #[inline]
    fn verify(&self, block: BlockId, bytes: &[u8]) -> Result<(), EmError> {
        if !self.verify_every_read
            && !self.degraded.load(Ordering::Relaxed)
            && self.verified.is_verified(block)
        {
            return Ok(());
        }
        let computed = crc32(bytes);
        let stored = self.checksums[block as usize];
        if computed != stored {
            // Proof of rot is proof for every handle of this snapshot:
            // clear the shared bit (a Recheck handle may be re-hashing
            // a page some ZeroCopy sibling verified earlier) so no
            // handle keeps serving the page off its stale verification —
            // and flip the shared degraded flag so every handle re-hashes
            // everything until a clean scrub proves health.
            self.verified.clear(block);
            crate::obs::metrics().corrupt_pages.inc();
            pr_obs::events().emit("corruption", format!("page={block} (query-path verify)"));
            set_degraded(&self.degraded, true, "page failed CRC during read");
            return Err(EmError::Corrupt(format!(
                "page {block} failed its CRC32 checksum (stored {stored:08x}, computed {computed:08x})"
            )));
        }
        self.verified.set(block);
        Ok(())
    }

    /// Eagerly re-hashes **every** page against the checksum table —
    /// unconditionally, bitmap or not, because the scrub's job is to
    /// catch bit rot that happened *after* a page was first verified.
    /// The sweep always runs to the end, even past failures: pages that
    /// pass are marked in the shared bitmap (so subsequent query reads
    /// are free), and **every** page that fails has its bit cleared —
    /// later reads of any rotted page surface `Corrupt` instead of
    /// trusting its stale verification, not just reads of the first
    /// one. The typed error names the lowest-numbered bad page.
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let already = self.verified.verified_pages();
        let mut buf = vec![0u8; self.block_size];
        let mut scratch = Vec::new();
        let mut first_bad: Option<u64> = None;
        let mut bad: u64 = 0;
        for page in 0..self.num_pages {
            let bytes: &[u8] = match self.mapped_page(page) {
                Some(slice) => pr_em::fault::mapped_read(slice, &mut scratch)?,
                None => {
                    self.file.read_exact_or_zero_at(
                        &mut buf,
                        self.data_offset + page * self.block_size as u64,
                    )?;
                    &buf
                }
            };
            if crc32(bytes) != self.checksums[page as usize] {
                self.verified.clear(page);
                crate::obs::metrics().corrupt_pages.inc();
                pr_obs::events().emit("corruption", format!("page={page} (scrub)"));
                bad += 1;
                first_bad.get_or_insert(page);
            } else {
                self.verified.set(page);
            }
        }
        // The scrub's verdict drives the shared degraded flag: any rot
        // forces every handle into recheck-everything mode; a fully
        // clean sweep is the documented way back out.
        if bad > 0 {
            set_degraded(
                &self.degraded,
                true,
                &format!("scrub found {bad} corrupt pages"),
            );
        } else {
            set_degraded(&self.degraded, false, "scrub found every page intact");
        }
        if let Some(page) = first_bad {
            return Err(StoreError::ChecksumMismatch { page });
        }
        Ok(ScrubReport {
            pages: self.num_pages,
            already_verified: already,
        })
    }
}

impl BlockDevice for StoreDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_pages
    }

    fn allocate(&self, n: u64) -> BlockId {
        // Read-only device: allocation yields ids past the committed end.
        // Reading them fails with BlockOutOfRange and writing anything
        // fails with ReadOnly, so a dynamic update on an opened tree
        // surfaces as a typed error instead of corrupting the snapshot.
        self.num_pages + self.allocated_past_end.fetch_add(n, Ordering::AcqRel)
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<(), EmError> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        self.range_check(block)?;
        if let Some(slice) = self.mapped_page(block) {
            // Mapped reads have no syscall; the probe gives the fault
            // layer the same interception point `read_at` gets (it can
            // fail the read or serve a bit-flipped copy — which the CRC
            // verify below then catches).
            let mut scratch = Vec::new();
            let bytes = pr_em::fault::mapped_read(slice, &mut scratch).map_err(EmError::Io)?;
            self.verify(block, bytes)?;
            buf.copy_from_slice(bytes);
        } else {
            self.file
                .read_exact_or_zero_at(buf, self.data_offset + block * self.block_size as u64)?;
            self.verify(block, buf)?;
        }
        self.counters.add_reads(1);
        Ok(())
    }

    fn with_block(
        &self,
        block: BlockId,
        scratch: &mut Vec<u8>,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), EmError> {
        self.range_check(block)?;
        // Zero-copy: hand the caller the mapped snapshot bytes in place.
        // Verification (when still needed for this page) runs on the
        // same slice, so the page is hashed at most once ever and copied
        // never. Falls back to the buffered read where no mapping exists.
        // The fault probe sits in front (one relaxed load when disarmed)
        // so even syscall-free mapped visits are interceptable.
        if let Some(slice) = self.mapped_page(block) {
            let bytes = pr_em::fault::mapped_read(slice, scratch).map_err(EmError::Io)?;
            self.verify(block, bytes)?;
            f(bytes);
            self.counters.add_reads(1);
            return Ok(());
        }
        scratch.resize(self.block_size, 0);
        self.read_block(block, scratch)?;
        f(scratch);
        Ok(())
    }

    fn write_block(&self, _block: BlockId, buf: &[u8]) -> Result<(), EmError> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        Err(EmError::ReadOnly)
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }

    fn sync(&self) -> Result<(), EmError> {
        // Nothing buffered: the snapshot was fsynced when committed.
        Ok(())
    }
}
