//! The read-only block device an opened snapshot is served through.
//!
//! A [`StoreDevice`] maps block id `i` to file byte range
//! `data_offset + i·block_size ..`, so the reopened tree's page ids are
//! snapshot-relative and start at 0 (the root). Every read verifies the
//! page's CRC32 against the committed checksum table — a flipped bit
//! anywhere in the page region surfaces as [`EmError::Corrupt`] on the
//! read that touches it, never as a silently wrong query answer.
//!
//! The device is **read-only**: writes return [`EmError::ReadOnly`], and
//! `allocate` hands out ids past the committed end whose reads fail with
//! `BlockOutOfRange` (a committed snapshot never grows in place — new
//! data means a new snapshot appended by `Store::save`). Because each
//! device pins its own `(data_offset, checksums)`, trees opened before a
//! later `save` keep reading their original snapshot: commits never move
//! pages out from under a live reader.

use crate::crc::crc32;
use pr_em::{BlockDevice, BlockId, EmError, IoCounters, PositionedFile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Read-only, checksum-verifying view of one committed snapshot.
pub struct StoreDevice {
    file: Arc<PositionedFile>,
    block_size: usize,
    num_pages: u64,
    data_offset: u64,
    checksums: Arc<Vec<u32>>,
    /// Ids handed out by `allocate` (they are unusable, but the contract
    /// says ids are unique and monotone).
    allocated_past_end: AtomicU64,
    counters: Arc<IoCounters>,
}

impl StoreDevice {
    /// Wraps a committed snapshot region. `checksums[i]` must be the
    /// CRC32 of page `i`.
    pub(crate) fn new(
        file: Arc<PositionedFile>,
        block_size: usize,
        data_offset: u64,
        checksums: Arc<Vec<u32>>,
    ) -> Self {
        StoreDevice {
            file,
            block_size,
            num_pages: checksums.len() as u64,
            data_offset,
            checksums,
            allocated_past_end: AtomicU64::new(0),
            counters: IoCounters::new(),
        }
    }
}

impl BlockDevice for StoreDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_pages
    }

    fn allocate(&self, n: u64) -> BlockId {
        // Read-only device: allocation yields ids past the committed end.
        // Reading them fails with BlockOutOfRange and writing anything
        // fails with ReadOnly, so a dynamic update on an opened tree
        // surfaces as a typed error instead of corrupting the snapshot.
        self.num_pages + self.allocated_past_end.fetch_add(n, Ordering::AcqRel)
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<(), EmError> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        if block >= self.num_pages {
            return Err(EmError::BlockOutOfRange {
                block,
                len: self.num_pages,
            });
        }
        self.file
            .read_exact_or_zero_at(buf, self.data_offset + block * self.block_size as u64)?;
        let computed = crc32(buf);
        let stored = self.checksums[block as usize];
        if computed != stored {
            return Err(EmError::Corrupt(format!(
                "page {block} failed its CRC32 checksum (stored {stored:08x}, computed {computed:08x})"
            )));
        }
        self.counters.add_reads(1);
        Ok(())
    }

    fn write_block(&self, _block: BlockId, buf: &[u8]) -> Result<(), EmError> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        Err(EmError::ReadOnly)
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }

    fn sync(&self) -> Result<(), EmError> {
        // Nothing buffered: the snapshot was fsynced when committed.
        Ok(())
    }
}
