//! Store lifecycle: create, save (commit), open, verify.

use crate::crc::crc32;
use crate::device::{ScrubReport, StoreDevice, VerifiedBitmap};
use crate::error::StoreError;
use crate::format::{Footer, ManifestRecord, Superblock};
use pr_em::{BlockDevice, BlockId, Mmap, PositionedFile};
use pr_tree::writer::page_ptr;
use pr_tree::{RTree, TreeMeta, TreeParams};
use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How a reopened tree's device reads the snapshot. See
/// [`crate::device`] for the full design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// mmap the snapshot region (positioned-read fallback where
    /// unavailable) and verify each page's CRC **once**, on first touch,
    /// through a bitmap shared by every handle of this snapshot. The
    /// default, and the fast path.
    #[default]
    ZeroCopy,
    /// Positioned `read_at` into a caller buffer with a full CRC32 check
    /// on **every** read — the pre-zero-copy behavior, retained as a
    /// paranoid mode and as the `cold_read` benchmark baseline.
    Recheck,
}

/// A durable index file. See the crate docs for the format and commit
/// protocol.
pub struct Store {
    file: Arc<PositionedFile>,
    path: PathBuf,
    /// Slot (0 or 1) holding the active superblock; `save` writes the
    /// other one.
    active_slot: usize,
    sb: Superblock,
    /// CRC32 per page of the active snapshot (empty when no snapshot).
    checksums: Arc<Vec<u32>>,
    /// Shared mapping of the active snapshot region (`None` off-unix,
    /// on mapping failure, or when there is no snapshot). Devices clone
    /// the `Arc`, so pinned readers outlive later commits and renames.
    map: Option<Arc<Mmap>>,
    /// Shared verify-once state of the active snapshot: every device of
    /// this snapshot marks/consults the same bitmap, so no page is ever
    /// CRC-checked twice across handles.
    verified: Arc<VerifiedBitmap>,
    /// Multi-component manifest of the active snapshot, when present.
    manifest: Option<ManifestRecord>,
    /// Shared degraded flag (see [`StoreDevice`]): set by any handle or
    /// scrub that catches corruption; while set, every read re-hashes.
    /// Lives for the whole `Store` (not per snapshot): once rot is seen,
    /// paranoia persists until a clean scrub clears it.
    degraded: Arc<std::sync::atomic::AtomicBool>,
    /// True when the backing file could only be opened for reading
    /// (read-only permissions or filesystem). Queries work; `save` is a
    /// typed error.
    read_only: bool,
}

impl Store {
    /// Creates (truncating) a new, empty store for `D`-dimensional trees
    /// with the given parameters. The store's block size is the params'
    /// page size; `save` insists every tree matches it.
    pub fn create<const D: usize>(path: &Path, params: TreeParams) -> Result<Store, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let file = Arc::new(PositionedFile::new(file));
        let sb = Superblock {
            block_size: params.page_size as u32,
            epoch: 0,
            dim: D as u32,
            meta: TreeMeta {
                params,
                root: 0,
                root_level: 0,
                len: 0,
            },
            num_pages: 0,
            data_offset: 0,
            table_offset: 0,
            footer_offset: 0,
            table_crc: 0,
            manifest_offset: 0,
            manifest_len: 0,
        };
        // Both slots start at epoch 0 so either survives losing the other.
        write_superblock(&file, 0, &sb)?;
        write_superblock(&file, 1, &sb)?;
        file.sync_data()?;
        Ok(Store {
            file,
            path: path.to_path_buf(),
            active_slot: 0,
            sb,
            checksums: Arc::new(Vec::new()),
            map: None,
            verified: Arc::new(VerifiedBitmap::new(0)),
            manifest: None,
            degraded: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            read_only: false,
        })
    }

    /// Opens an existing store, recovering the newest committed state.
    ///
    /// Both superblock slots are decoded; candidates are tried newest
    /// epoch first, and each must prove its snapshot intact (footer
    /// record present and self-consistent, checksum table matching its
    /// committed CRC) before it is accepted. A save torn anywhere before
    /// its superblock flip therefore falls back to the previous
    /// committed snapshot; a store with no intact state at all is a
    /// typed error, never a panic.
    ///
    /// A file that cannot be opened for writing (read-only permissions
    /// or media) opens read-only: queries and verification work,
    /// [`Store::save`] returns [`StoreError::ReadOnly`].
    pub fn open(path: &Path) -> Result<Store, StoreError> {
        // Reported into an enclosing trace (a live-dir open's WAL-replay
        // trace) when one is collecting on this thread.
        let mut open_span = pr_obs::ambient_span("store", "store_open");
        let (file, read_only) = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => (f, false),
            Err(rw_err) => match OpenOptions::new().read(true).open(path) {
                Ok(f) => (f, true),
                Err(_) => return Err(rw_err.into()),
            },
        };
        let file = Arc::new(PositionedFile::new(file));
        let mut slot_states: [Option<Superblock>; 2] = [None, None];
        let mut decode_errors: Vec<StoreError> = Vec::new();
        for (slot, state) in slot_states.iter_mut().enumerate() {
            let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
            file.read_exact_or_zero_at(&mut buf, Superblock::slot_offset(slot))?;
            match Superblock::decode(&buf) {
                Ok(sb) => *state = Some(sb),
                Err(e) => decode_errors.push(e),
            }
        }
        if slot_states.iter().all(|s| s.is_none()) {
            // Prefer the most specific story: a version error beats
            // "not a store", which beats generic corruption.
            let mut best = StoreError::NoValidSuperblock;
            for e in decode_errors {
                best = match (&e, &best) {
                    (StoreError::UnsupportedVersion(_), _) => e,
                    (StoreError::BadMagic, StoreError::NoValidSuperblock) => e,
                    _ => best,
                };
            }
            return Err(best);
        }
        // Candidate slots, newest epoch first. A committed candidate that
        // fails validation falls back only to an *older committed*
        // snapshot: recovering to the epoch-0 empty state would silently
        // erase data a superblock proves was once committed, so in that
        // case the torn state is surfaced as an error instead. (A crash
        // before the very first commit flip leaves both slots at epoch 0
        // and correctly reopens as an empty store.)
        let mut order: Vec<usize> = (0..2).filter(|&s| slot_states[s].is_some()).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(slot_states[s].as_ref().unwrap().epoch));
        let mut torn: Option<(u64, String)> = None;
        for &slot in &order {
            let sb = slot_states[slot].expect("filtered to Some");
            if !sb.has_snapshot() && torn.is_some() {
                continue;
            }
            match validate_snapshot(&file, &sb) {
                Ok((checksums, manifest)) => {
                    let map = map_snapshot(&file, &sb);
                    let verified = Arc::new(VerifiedBitmap::new(checksums.len() as u64));
                    open_span.detail(format!("epoch={} pages={}", sb.epoch, sb.num_pages));
                    return Ok(Store {
                        file,
                        path: path.to_path_buf(),
                        active_slot: slot,
                        sb,
                        checksums: Arc::new(checksums),
                        map,
                        verified,
                        manifest,
                        degraded: Arc::new(std::sync::atomic::AtomicBool::new(false)),
                        read_only,
                    });
                }
                Err(reason) => {
                    if torn.is_none() {
                        torn = Some((sb.epoch, reason));
                    }
                }
            }
        }
        let (epoch, reason) = torn.expect("at least one candidate failed");
        Err(StoreError::TornSnapshot { epoch, reason })
    }

    /// Convenience: [`Store::open`] followed by [`Store::tree`].
    pub fn open_tree<const D: usize>(path: &Path) -> Result<RTree<D>, StoreError> {
        Store::open(path)?.tree::<D>()
    }

    /// Commits `tree` as the store's new current snapshot.
    ///
    /// Pages reachable from the root are copied in breadth-first order
    /// (root first, each level contiguous, leaves last) with child
    /// pointers rewritten to the new, dense page ids — a save is also a
    /// compaction, so discarded build-time scratch blocks never reach
    /// the file. The snapshot body (pages, checksum table, footer) is
    /// appended and fsynced *before* the inactive superblock slot is
    /// rewritten and fsynced; the flip is the commit point. A crash
    /// anywhere earlier leaves the previous superblock pointing at its
    /// intact snapshot.
    pub fn save<const D: usize>(&mut self, tree: &RTree<D>) -> Result<(), StoreError> {
        self.commit(&[tree], None)
    }

    /// Commits a **multi-component** snapshot: every tree in
    /// `components` is BFS-copied into one shared page region (each
    /// component a contiguous run, its rewritten root id recorded in the
    /// manifest), followed by the checksum table, a [`ManifestRecord`]
    /// carrying the component list plus the opaque `app` blob, and the
    /// footer — all fsynced before the superblock flip, exactly like
    /// [`Store::save`]. `pr-live` commits its component set and
    /// WAL-position checkpoint through this in one atomic step.
    ///
    /// An empty component list is a valid commit (all data lives in the
    /// app blob). Reopen with [`Store::components`] / [`Store::app`].
    pub fn save_components<const D: usize>(
        &mut self,
        components: &[&RTree<D>],
        app: &[u8],
    ) -> Result<(), StoreError> {
        self.commit(components, Some(app))
    }

    /// The shared commit path. `app == None` writes the legacy
    /// single-tree snapshot (no manifest record); `Some` always writes a
    /// manifest, even for zero or one component.
    fn commit<const D: usize>(
        &mut self,
        trees: &[&RTree<D>],
        app: Option<&[u8]>,
    ) -> Result<(), StoreError> {
        let commit_start = std::time::Instant::now();
        // Reported into an enclosing trace (a merge/compaction) when one
        // is collecting on this thread; free otherwise.
        let mut commit_span = pr_obs::ambient_span("store", "commit");
        if self.read_only {
            return Err(StoreError::ReadOnly);
        }
        if D as u32 != self.sb.dim {
            return Err(StoreError::DimensionMismatch {
                file: self.sb.dim,
                requested: D as u32,
            });
        }
        assert!(
            app.is_some() || trees.len() == 1,
            "legacy save commits exactly one tree"
        );
        let bs = self.block_size();
        for tree in trees {
            if tree.params().page_size != bs {
                return Err(StoreError::BlockSizeMismatch {
                    store: bs,
                    tree: tree.params().page_size,
                });
            }
        }
        let bs64 = bs as u64;
        let data_offset = self
            .file
            .len()?
            .max(Superblock::data_region_start())
            .div_ceil(bs64)
            * bs64;

        // Breadth-first copy with pointer rewriting, one component after
        // another in a single dense id space. Ids are assigned in
        // enqueue order, so each component's root is its first page and
        // every level occupies a contiguous run — warm_cache on reopen
        // reads a sequential prefix of the component's region.
        let mut next_id: u64 = 0;
        let mut written: u64 = 0;
        let mut checksums: Vec<u32> = Vec::new();
        let mut metas: Vec<pr_tree::TreeMeta> = Vec::with_capacity(trees.len());
        let mut buf = vec![0u8; bs];
        for tree in trees {
            let mut meta = tree.meta();
            meta.root = next_id;
            metas.push(meta);
            next_id += 1;
            let mut queue: VecDeque<BlockId> = VecDeque::new();
            queue.push_back(tree.root());
            while let Some(old_page) = queue.pop_front() {
                let (node, _) = tree.read_node(old_page)?;
                if node.is_leaf() {
                    // Leaves (the vast majority of pages) need no pointer
                    // rewrite: encode straight from the shared handle.
                    node.encode(&mut buf);
                } else {
                    let mut node = (*node).clone();
                    for e in &mut node.entries {
                        queue.push_back(e.ptr as BlockId);
                        e.ptr = page_ptr(next_id).map_err(StoreError::Em)?;
                        next_id += 1;
                    }
                    node.encode(&mut buf);
                }
                let crc = crc32(&buf);
                self.file.write_all_at(&buf, data_offset + written * bs64)?;
                checksums.push(crc);
                written += 1;
            }
        }
        debug_assert_eq!(written, next_id);

        // Checksum table, manifest (if any), footer — one fsync for the
        // whole body.
        let table_offset = data_offset + written * bs64;
        let mut table = Vec::with_capacity(checksums.len() * 4);
        for crc in &checksums {
            table.extend_from_slice(&crc.to_le_bytes());
        }
        let table_crc = crc32(&table);
        self.file.write_all_at(&table, table_offset)?;
        let mut tail_offset = table_offset + table.len() as u64;

        let epoch = self.sb.epoch + 1;
        let manifest = app.map(|app| ManifestRecord {
            epoch,
            metas: metas.clone(),
            app: app.to_vec(),
        });
        let (manifest_offset, manifest_len) = match &manifest {
            Some(m) => {
                let bytes = m.encode();
                let off = tail_offset;
                self.file.write_all_at(&bytes, off)?;
                tail_offset += bytes.len() as u64;
                (off, bytes.len() as u32)
            }
            None => (0, 0),
        };

        let footer_offset = tail_offset;
        let footer = Footer {
            epoch,
            num_pages: written,
            table_crc,
        };
        let mut fbuf = vec![0u8; Footer::ENCODED_SIZE];
        footer.encode(&mut fbuf);
        self.file.write_all_at(&fbuf, footer_offset)?;
        {
            let _s = pr_obs::ambient_span("store", "fsync_body");
            self.file.sync_data()?;
        }

        // The commit point: flip the inactive superblock slot. The
        // superblock's embedded meta is the first component (or an empty
        // synthetic one), kept for the single-tree open path and stats.
        let meta = metas.first().copied().unwrap_or(pr_tree::TreeMeta {
            params: self.sb.meta.params,
            root: 0,
            root_level: 0,
            len: 0,
        });
        let new_sb = Superblock {
            block_size: bs as u32,
            epoch,
            dim: self.sb.dim,
            meta,
            num_pages: written,
            data_offset,
            table_offset,
            footer_offset,
            table_crc,
            manifest_offset,
            manifest_len,
        };
        let stale_slot = 1 - self.active_slot;
        write_superblock(&self.file, stale_slot, &new_sb)?;
        {
            let _s = pr_obs::ambient_span("store", "fsync_flip");
            self.file.sync_data()?;
        }

        self.active_slot = stale_slot;
        self.sb = new_sb;
        self.checksums = Arc::new(checksums);
        // Fresh per-snapshot read-path state: the new region gets its own
        // mapping and an all-unverified bitmap (the bytes were just
        // written by us, but verify-once semantics are per *committed
        // snapshot* — the first reader proves the disk kept them).
        self.map = map_snapshot(&self.file, &self.sb);
        self.verified = Arc::new(VerifiedBitmap::new(self.sb.num_pages));
        self.manifest = manifest;
        commit_span.detail(format!("epoch={} pages={written}", self.sb.epoch));
        let m = crate::obs::metrics();
        m.commits.inc();
        m.commit_pages.add(written);
        m.commit_us.record_duration_us(commit_start.elapsed());
        pr_obs::events().emit_timed(
            "store_commit",
            format!(
                "epoch={} components={} pages={}",
                self.sb.epoch,
                trees.len(),
                written
            ),
            commit_start.elapsed(),
        );
        Ok(())
    }

    /// Reopens the committed tree. The returned handle reads through a
    /// fresh [`StoreDevice`] (checksum-verified, read-only) and feeds the
    /// normal sharded node cache — `warm_cache`, window and k-NN queries
    /// behave exactly as on the never-persisted tree. Reads take the
    /// default zero-copy path ([`ReadPath::ZeroCopy`]).
    pub fn tree<const D: usize>(&self) -> Result<RTree<D>, StoreError> {
        self.tree_with(ReadPath::ZeroCopy)
    }

    /// [`Store::tree`] with an explicit [`ReadPath`].
    pub fn tree_with<const D: usize>(&self, path: ReadPath) -> Result<RTree<D>, StoreError> {
        if let Some(m) = &self.manifest {
            if m.metas.len() != 1 {
                return Err(StoreError::NotSingleComponent(m.metas.len()));
            }
        }
        if D as u32 != self.sb.dim {
            return Err(StoreError::DimensionMismatch {
                file: self.sb.dim,
                requested: D as u32,
            });
        }
        if !self.sb.has_snapshot() {
            return Err(StoreError::NoCommittedSnapshot);
        }
        let dev: Arc<dyn BlockDevice> = self.snapshot_device(path);
        RTree::from_parts(dev, self.sb.meta).map_err(StoreError::from)
    }

    /// Reopens **all** committed components. A manifest-bearing snapshot
    /// yields one tree per manifest entry (in manifest order); a legacy
    /// single-tree snapshot yields that one tree; an empty store yields
    /// no trees. All trees read through one shared checksum-verifying
    /// [`StoreDevice`] pinned to this snapshot — later saves never move
    /// pages out from under them.
    pub fn components<const D: usize>(&self) -> Result<Vec<RTree<D>>, StoreError> {
        self.components_with(ReadPath::ZeroCopy)
    }

    /// [`Store::components`] with an explicit [`ReadPath`].
    pub fn components_with<const D: usize>(
        &self,
        path: ReadPath,
    ) -> Result<Vec<RTree<D>>, StoreError> {
        if D as u32 != self.sb.dim {
            return Err(StoreError::DimensionMismatch {
                file: self.sb.dim,
                requested: D as u32,
            });
        }
        if !self.sb.has_snapshot() {
            return Ok(Vec::new());
        }
        let metas: &[pr_tree::TreeMeta] = match &self.manifest {
            Some(m) => &m.metas,
            None => std::slice::from_ref(&self.sb.meta),
        };
        let dev: Arc<dyn BlockDevice> = self.snapshot_device(path);
        metas
            .iter()
            .map(|meta| RTree::from_parts(Arc::clone(&dev), *meta).map_err(StoreError::from))
            .collect()
    }

    /// The application blob committed alongside the components (empty
    /// slice for legacy single-tree snapshots and fresh stores).
    pub fn app(&self) -> &[u8] {
        self.manifest.as_ref().map_or(&[], |m| m.app.as_slice())
    }

    /// The active snapshot's manifest record, when one was committed.
    pub fn manifest(&self) -> Option<&ManifestRecord> {
        self.manifest.as_ref()
    }

    /// Number of trees in the active snapshot (0 for an empty store).
    pub fn num_components(&self) -> usize {
        match &self.manifest {
            Some(m) => m.metas.len(),
            None => usize::from(self.sb.has_snapshot()),
        }
    }

    /// A fresh device pinned to the active snapshot. Counters are
    /// per-device (each handle's I/O accounting starts at zero), but the
    /// mapping and verify-once bitmap are the shared per-snapshot state.
    pub(crate) fn snapshot_device(&self, path: ReadPath) -> Arc<StoreDevice> {
        let recheck = matches!(path, ReadPath::Recheck);
        Arc::new(StoreDevice::new(
            Arc::clone(&self.file),
            if recheck { None } else { self.map.clone() },
            self.block_size(),
            self.sb.data_offset,
            Arc::clone(&self.checksums),
            Arc::clone(&self.verified),
            recheck,
            Arc::clone(&self.degraded),
        ))
    }

    /// Eagerly re-hashes every page of the committed snapshot against
    /// the checksum table — the scrub sweep behind `prtree stats`.
    /// Unlike lazy query-path verification this **always** recomputes
    /// (its job is catching bit rot that happened after a page's first
    /// verification), but it routes through the shared verify-once
    /// bitmap: pages that pass are marked so every later read of this
    /// snapshot skips its CRC, and the report says how many pages the
    /// bitmap had already covered. A failing page has its bit cleared
    /// before the typed error returns, so it cannot be served from its
    /// stale verification afterwards.
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let start = std::time::Instant::now();
        let report = self.snapshot_device(ReadPath::ZeroCopy).scrub()?;
        let m = crate::obs::metrics();
        m.scrubs.inc();
        m.scrub_pages.add(report.pages);
        m.scrub_us.record_duration_us(start.elapsed());
        pr_obs::events().emit_timed(
            "scrub",
            format!(
                "epoch={} pages={} already_verified={}",
                self.sb.epoch, report.pages, report.already_verified
            ),
            start.elapsed(),
        );
        Ok(report)
    }

    /// [`Store::scrub`] without the report (compatibility wrapper).
    pub fn verify(&self) -> Result<(), StoreError> {
        self.scrub().map(|_| ())
    }

    /// `(verified, total)` pages of the active snapshot per the shared
    /// verify-once bitmap.
    pub fn verified_pages(&self) -> (u64, u64) {
        (self.verified.verified_pages(), self.sb.num_pages)
    }

    /// True while detected corruption forces every read of this store
    /// through a full CRC re-hash (degraded mode). A clean [`Store::scrub`]
    /// clears it.
    pub fn degraded(&self) -> bool {
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// True when the active snapshot is served through a memory mapping
    /// (false: no snapshot, non-unix, mapping failed, or denied).
    pub fn is_mmapped(&self) -> bool {
        self.map.is_some()
    }

    /// The active superblock (what `prtree stats` dumps).
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Which slot (0 or 1) holds the active superblock.
    pub fn active_slot(&self) -> usize {
        self.active_slot
    }

    /// The store's block size in bytes.
    pub fn block_size(&self) -> usize {
        self.sb.block_size as usize
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current length of the backing file in bytes.
    pub fn file_len(&self) -> Result<u64, StoreError> {
        Ok(self.file.len()?)
    }
}

/// Best-effort shared mapping of the file prefix covering `sb`'s
/// snapshot region. `None` (no snapshot, non-unix, or mmap failure)
/// means devices fall back to positioned reads — never an error: the
/// mapping is an optimization, `read_at` is the ground truth.
fn map_snapshot(file: &PositionedFile, sb: &Superblock) -> Option<Arc<Mmap>> {
    if !sb.has_snapshot() || sb.num_pages == 0 {
        return None;
    }
    let end = sb.data_offset + sb.num_pages * sb.block_size as u64;
    match file.map_readonly(end) {
        // A mapping shorter than the snapshot (file truncated under us)
        // must not be indexed past its end: fall back to reads.
        Ok(Some(map)) if map.len() as u64 >= end => Some(Arc::new(map)),
        _ => None,
    }
}

/// Writes one superblock slot (header + zero padding to the slot size).
fn write_superblock(file: &PositionedFile, slot: usize, sb: &Superblock) -> Result<(), StoreError> {
    let mut buf = vec![0u8; Superblock::SLOT_SIZE as usize];
    sb.encode(&mut buf[..Superblock::ENCODED_SIZE]);
    file.write_all_at(&buf, Superblock::slot_offset(slot))?;
    Ok(())
}

/// Proves a superblock's snapshot is intact; returns the page checksum
/// table and decoded manifest (if any) on success, a human-readable
/// reason on failure.
fn validate_snapshot(
    file: &PositionedFile,
    sb: &Superblock,
) -> Result<(Vec<u32>, Option<ManifestRecord>), String> {
    if !sb.has_snapshot() {
        return Ok((Vec::new(), None));
    }
    // The footer must exist inside the file...
    let file_len = file.len().map_err(|e| e.to_string())?;
    if sb.footer_offset + Footer::ENCODED_SIZE as u64 > file_len {
        return Err(format!(
            "footer at {} extends past end of file ({file_len} bytes)",
            sb.footer_offset
        ));
    }
    let mut fbuf = vec![0u8; Footer::ENCODED_SIZE];
    file.read_exact_or_zero_at(&mut fbuf, sb.footer_offset)
        .map_err(|e| e.to_string())?;
    // ...decode, and agree with the superblock on what was committed.
    let footer = Footer::decode(&fbuf).map_err(|e| e.to_string())?;
    if footer.epoch != sb.epoch {
        return Err(format!(
            "footer epoch {} does not match superblock epoch {}",
            footer.epoch, sb.epoch
        ));
    }
    if footer.num_pages != sb.num_pages {
        return Err(format!(
            "footer page count {} does not match superblock {}",
            footer.num_pages, sb.num_pages
        ));
    }
    if footer.table_crc != sb.table_crc {
        return Err("footer and superblock disagree on the checksum table CRC".into());
    }
    // The checksum table itself must hash to the committed value.
    let table_len = (sb.num_pages * 4) as usize;
    let mut table = vec![0u8; table_len];
    file.read_exact_or_zero_at(&mut table, sb.table_offset)
        .map_err(|e| e.to_string())?;
    let computed = crc32(&table);
    if computed != sb.table_crc {
        return Err(format!(
            "checksum table CRC mismatch (committed {:08x}, computed {computed:08x})",
            sb.table_crc
        ));
    }
    // A manifest, when present, must decode (its CRC covers the
    // component list and the app blob) and belong to this epoch.
    let manifest = if sb.has_manifest() {
        if sb.manifest_offset + sb.manifest_len as u64 > file_len {
            return Err(format!(
                "manifest at {} (+{}) extends past end of file ({file_len} bytes)",
                sb.manifest_offset, sb.manifest_len
            ));
        }
        let mut mbuf = vec![0u8; sb.manifest_len as usize];
        file.read_exact_or_zero_at(&mut mbuf, sb.manifest_offset)
            .map_err(|e| e.to_string())?;
        let m = ManifestRecord::decode(&mbuf).map_err(|e| e.to_string())?;
        if m.epoch != sb.epoch {
            return Err(format!(
                "manifest epoch {} does not match superblock epoch {}",
                m.epoch, sb.epoch
            ));
        }
        Some(m)
    } else {
        None
    };
    Ok((
        table
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect(),
        manifest,
    ))
}
