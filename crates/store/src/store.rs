//! Store lifecycle: create, save (commit), open, verify.
//!
//! # Incremental commits
//!
//! Since format v2 a snapshot is a set of **component page runs**
//! ([`ComponentRun`]): each component's pages live in their own
//! contiguous region with run-relative page ids (root = page 0) and
//! their own CRC table. A commit ([`Store::commit_components`]) takes a
//! mix of [`CommitComponent::New`] trees — BFS-copied into freshly
//! appended pages — and [`CommitComponent::Reuse`] references to
//! components of the *current* snapshot, whose pages stay exactly where
//! they are. Only new pages, their tables, the manifest, and the footer
//! are written, so a merge that replaces the small levels of an index
//! costs O(pages of merged components), not O(index).
//!
//! Because a reused run's bytes, offsets, and page ids are identical
//! across epochs, everything pinned to it survives the commit: the
//! shared mmap (the new mapping covers a superset of the old), the
//! verify-once bitmap (carried forward, so pages proven once stay
//! proven), and any `RTree` handle opened on it. Space freed by
//! dropped components is reclaimed only by an explicit full rewrite
//! (`pr-live`'s `compact()`), which the [`Store::garbage_bytes`]
//! accounting makes an informed decision about.
//!
//! The legacy single-tree [`Store::save`] path remains a full rewrite
//! (one `New` component, no manifest record).

use crate::crc::crc32;
use crate::device::{ScrubReport, StoreDevice, VerifiedBitmap};
use crate::error::StoreError;
use crate::format::{ComponentRun, Footer, ManifestRecord, Superblock};
use pr_em::{BlockDevice, BlockId, Mmap, PositionedFile};
use pr_tree::writer::page_ptr;
use pr_tree::{RTree, TreeMeta, TreeParams};
use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How a reopened tree's device reads the snapshot. See
/// [`crate::device`] for the full design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// mmap the snapshot region (positioned-read fallback where
    /// unavailable) and verify each page's CRC **once**, on first touch,
    /// through a bitmap shared by every handle of this snapshot. The
    /// default, and the fast path.
    #[default]
    ZeroCopy,
    /// Positioned `read_at` into a caller buffer with a full CRC32 check
    /// on **every** read — the pre-zero-copy behavior, retained as a
    /// paranoid mode and as the `cold_read` benchmark baseline.
    Recheck,
}

/// One component a commit is made of: either a tree whose pages are
/// appended by this commit, or the id of a current-snapshot component
/// whose existing page run is referenced in place.
pub enum CommitComponent<'a, const D: usize> {
    /// BFS-copy this tree into freshly appended pages.
    New(&'a RTree<D>),
    /// Keep the identified current component's pages where they are.
    /// The id must name a component of the active snapshot.
    Reuse(u64),
}

/// What a commit did, for write-amplification accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Pages appended by this commit (new components only).
    pub pages_written: u64,
    /// Pages referenced in place (reused components).
    pub pages_reused: u64,
    /// Component id of every committed component, in commit order.
    /// Reused components keep their id; new ones get a fresh one.
    pub component_ids: Vec<u64>,
}

/// Per-component read-path state: the run's location plus the shared
/// checksum table and verify-once bitmap every device of this run uses.
/// Reused runs carry these `Arc`s across commits, so pages proven once
/// stay proven for the component's whole lifetime.
#[derive(Clone)]
struct RunState {
    run: ComponentRun,
    checksums: Arc<Vec<u32>>,
    verified: Arc<VerifiedBitmap>,
}

/// A durable index file. See the crate docs for the format and commit
/// protocol.
pub struct Store {
    file: Arc<PositionedFile>,
    path: PathBuf,
    /// Slot (0 or 1) holding the active superblock; `save` writes the
    /// other one.
    active_slot: usize,
    sb: Superblock,
    /// Per-component state of the active snapshot, in manifest order
    /// (one synthetic entry for a legacy single-tree snapshot; empty
    /// when no snapshot).
    runs: Vec<RunState>,
    /// Shared mapping of the file prefix covering every run (`None`
    /// off-unix, on mapping failure, or when there is no snapshot).
    /// Devices clone the `Arc`, so pinned readers outlive later commits
    /// and renames.
    map: Option<Arc<Mmap>>,
    /// Multi-component manifest of the active snapshot, when present.
    manifest: Option<ManifestRecord>,
    /// Next component id to assign (monotone within this handle; seeded
    /// past the largest committed id at open).
    next_component_id: u64,
    /// Shared degraded flag (see [`StoreDevice`]): set by any handle or
    /// scrub that catches corruption; while set, every read re-hashes.
    /// Lives for the whole `Store` (not per snapshot): once rot is seen,
    /// paranoia persists until a clean scrub clears it.
    degraded: Arc<std::sync::atomic::AtomicBool>,
    /// True when the backing file could only be opened for reading
    /// (read-only permissions or filesystem). Queries work; `save` is a
    /// typed error.
    read_only: bool,
}

impl Store {
    /// Creates (truncating) a new, empty store for `D`-dimensional trees
    /// with the given parameters. The store's block size is the params'
    /// page size; `save` insists every tree matches it.
    pub fn create<const D: usize>(path: &Path, params: TreeParams) -> Result<Store, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let file = Arc::new(PositionedFile::new(file));
        let sb = Superblock {
            block_size: params.page_size as u32,
            epoch: 0,
            dim: D as u32,
            meta: TreeMeta {
                params,
                root: 0,
                root_level: 0,
                len: 0,
            },
            num_pages: 0,
            data_offset: 0,
            table_offset: 0,
            footer_offset: 0,
            table_crc: 0,
            manifest_offset: 0,
            manifest_len: 0,
        };
        // Both slots start at epoch 0 so either survives losing the other.
        write_superblock(&file, 0, &sb)?;
        write_superblock(&file, 1, &sb)?;
        file.sync_data()?;
        Ok(Store {
            file,
            path: path.to_path_buf(),
            active_slot: 0,
            sb,
            runs: Vec::new(),
            map: None,
            manifest: None,
            next_component_id: 1,
            degraded: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            read_only: false,
        })
    }

    /// Opens an existing store, recovering the newest committed state.
    ///
    /// Both superblock slots are decoded; candidates are tried newest
    /// epoch first, and each must prove its snapshot intact (footer
    /// record present and self-consistent, the commit's newly written
    /// checksum table matching its committed CRC, and **every**
    /// component run — reused ones included — matching its per-run
    /// table CRC) before it is accepted. A save torn anywhere before
    /// its superblock flip therefore falls back to the previous
    /// committed snapshot; a store with no intact state at all is a
    /// typed error, never a panic.
    ///
    /// A file that cannot be opened for writing (read-only permissions
    /// or media) opens read-only: queries and verification work,
    /// [`Store::save`] returns [`StoreError::ReadOnly`].
    pub fn open(path: &Path) -> Result<Store, StoreError> {
        // Reported into an enclosing trace (a live-dir open's WAL-replay
        // trace) when one is collecting on this thread.
        let mut open_span = pr_obs::ambient_span("store", "store_open");
        let (file, read_only) = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => (f, false),
            Err(rw_err) => match OpenOptions::new().read(true).open(path) {
                Ok(f) => (f, true),
                Err(_) => return Err(rw_err.into()),
            },
        };
        let file = Arc::new(PositionedFile::new(file));
        let mut slot_states: [Option<Superblock>; 2] = [None, None];
        let mut decode_errors: Vec<StoreError> = Vec::new();
        for (slot, state) in slot_states.iter_mut().enumerate() {
            let mut buf = vec![0u8; Superblock::ENCODED_SIZE];
            file.read_exact_or_zero_at(&mut buf, Superblock::slot_offset(slot))?;
            match Superblock::decode(&buf) {
                Ok(sb) => *state = Some(sb),
                Err(e) => decode_errors.push(e),
            }
        }
        if slot_states.iter().all(|s| s.is_none()) {
            // Prefer the most specific story: a version error beats
            // "not a store", which beats generic corruption.
            let mut best = StoreError::NoValidSuperblock;
            for e in decode_errors {
                best = match (&e, &best) {
                    (StoreError::UnsupportedVersion(_), _) => e,
                    (StoreError::BadMagic, StoreError::NoValidSuperblock) => e,
                    _ => best,
                };
            }
            return Err(best);
        }
        // Candidate slots, newest epoch first. A committed candidate that
        // fails validation falls back only to an *older committed*
        // snapshot: recovering to the epoch-0 empty state would silently
        // erase data a superblock proves was once committed, so in that
        // case the torn state is surfaced as an error instead. (A crash
        // before the very first commit flip leaves both slots at epoch 0
        // and correctly reopens as an empty store.)
        let mut order: Vec<usize> = (0..2).filter(|&s| slot_states[s].is_some()).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(slot_states[s].as_ref().unwrap().epoch));
        let mut torn: Option<(u64, String)> = None;
        for &slot in &order {
            let sb = slot_states[slot].expect("filtered to Some");
            if !sb.has_snapshot() && torn.is_some() {
                continue;
            }
            match validate_snapshot(&file, &sb) {
                Ok((run_tables, manifest)) => {
                    let runs: Vec<RunState> = run_tables
                        .into_iter()
                        .map(|(run, checksums)| {
                            let verified = Arc::new(VerifiedBitmap::new(checksums.len() as u64));
                            RunState {
                                run,
                                checksums: Arc::new(checksums),
                                verified,
                            }
                        })
                        .collect();
                    let map = map_runs(&file, &runs, sb.block_size as u64);
                    let next_component_id = runs.iter().map(|r| r.run.id).max().unwrap_or(0) + 1;
                    let total: u64 = runs.iter().map(|r| r.run.num_pages).sum();
                    open_span.detail(format!(
                        "epoch={} components={} pages={total}",
                        sb.epoch,
                        runs.len()
                    ));
                    return Ok(Store {
                        file,
                        path: path.to_path_buf(),
                        active_slot: slot,
                        sb,
                        runs,
                        map,
                        manifest,
                        next_component_id,
                        degraded: Arc::new(std::sync::atomic::AtomicBool::new(false)),
                        read_only,
                    });
                }
                Err(reason) => {
                    if torn.is_none() {
                        torn = Some((sb.epoch, reason));
                    }
                }
            }
        }
        let (epoch, reason) = torn.expect("at least one candidate failed");
        Err(StoreError::TornSnapshot { epoch, reason })
    }

    /// Convenience: [`Store::open`] followed by [`Store::tree`].
    pub fn open_tree<const D: usize>(path: &Path) -> Result<RTree<D>, StoreError> {
        Store::open(path)?.tree::<D>()
    }

    /// Commits `tree` as the store's new current snapshot.
    ///
    /// Pages reachable from the root are copied in breadth-first order
    /// (root first, each level contiguous, leaves last) with child
    /// pointers rewritten to the new, dense page ids — a save is also a
    /// compaction, so discarded build-time scratch blocks never reach
    /// the file. The snapshot body (pages, checksum table, footer) is
    /// appended and fsynced *before* the inactive superblock slot is
    /// rewritten and fsynced; the flip is the commit point. A crash
    /// anywhere earlier leaves the previous superblock pointing at its
    /// intact snapshot.
    pub fn save<const D: usize>(&mut self, tree: &RTree<D>) -> Result<(), StoreError> {
        self.commit(&[CommitComponent::New(tree)], None).map(|_| ())
    }

    /// Commits a **multi-component** snapshot where every component is
    /// freshly written: each tree is BFS-copied into its own appended
    /// page run, followed by the checksum tables, a [`ManifestRecord`]
    /// carrying the run list plus the opaque `app` blob, and the footer
    /// — all fsynced before the superblock flip, exactly like
    /// [`Store::save`]. This is the full-rewrite commit `pr-live`'s
    /// `compact()` uses; steady-state merges go through
    /// [`Store::commit_components`] to reuse unchanged runs.
    ///
    /// An empty component list is a valid commit (all data lives in the
    /// app blob). Reopen with [`Store::components`] / [`Store::app`].
    pub fn save_components<const D: usize>(
        &mut self,
        components: &[&RTree<D>],
        app: &[u8],
    ) -> Result<(), StoreError> {
        let comps: Vec<CommitComponent<'_, D>> =
            components.iter().map(|t| CommitComponent::New(t)).collect();
        self.commit(&comps, Some(app)).map(|_| ())
    }

    /// Commits an **incremental** multi-component snapshot: `New`
    /// components are appended, `Reuse` components' existing page runs
    /// are referenced in place (see the module docs). Returns what was
    /// written vs reused for write-amplification accounting.
    pub fn commit_components<const D: usize>(
        &mut self,
        comps: &[CommitComponent<'_, D>],
        app: &[u8],
    ) -> Result<CommitOutcome, StoreError> {
        self.commit(comps, Some(app))
    }

    /// The shared commit path. `app == None` writes the legacy
    /// single-tree snapshot (no manifest record); `Some` always writes a
    /// manifest, even for zero or one component.
    fn commit<const D: usize>(
        &mut self,
        comps: &[CommitComponent<'_, D>],
        app: Option<&[u8]>,
    ) -> Result<CommitOutcome, StoreError> {
        let commit_start = std::time::Instant::now();
        // Reported into an enclosing trace (a merge/compaction) when one
        // is collecting on this thread; free otherwise.
        let mut commit_span = pr_obs::ambient_span("store", "commit");
        if self.read_only {
            return Err(StoreError::ReadOnly);
        }
        if D as u32 != self.sb.dim {
            return Err(StoreError::DimensionMismatch {
                file: self.sb.dim,
                requested: D as u32,
            });
        }
        assert!(
            app.is_some() || (comps.len() == 1 && matches!(comps[0], CommitComponent::New(_))),
            "legacy save commits exactly one new tree"
        );
        let bs = self.block_size();
        // Resolve every component up front: block-size check for new
        // trees, current-snapshot lookup for reuses — so nothing has
        // been written when a bad reuse id errors out.
        for comp in comps {
            match comp {
                CommitComponent::New(tree) => {
                    if tree.params().page_size != bs {
                        return Err(StoreError::BlockSizeMismatch {
                            store: bs,
                            tree: tree.params().page_size,
                        });
                    }
                }
                CommitComponent::Reuse(id) => {
                    if !self.runs.iter().any(|r| r.run.id == *id) {
                        return Err(StoreError::UnknownComponent(*id));
                    }
                }
            }
        }
        let bs64 = bs as u64;
        let data_offset = self
            .file
            .len()?
            .max(Superblock::data_region_start())
            .div_ceil(bs64)
            * bs64;

        // Breadth-first copy of each new component into its own run
        // with run-relative page ids (root = 0). Ids are assigned in
        // enqueue order, so every level occupies a contiguous range —
        // warm_cache on reopen reads a sequential prefix of the run.
        // Reused components are resolved to their existing state; their
        // pages are not touched.
        enum Pending {
            New {
                run: ComponentRun,
                checksums: Vec<u32>,
            },
            Reused(RunState),
        }
        let mut pending: Vec<Pending> = Vec::with_capacity(comps.len());
        let mut written: u64 = 0;
        let mut reused: u64 = 0;
        let mut buf = vec![0u8; bs];
        let mut next_component_id = self.next_component_id;
        for comp in comps {
            match comp {
                CommitComponent::New(tree) => {
                    let run_offset = data_offset + written * bs64;
                    let mut meta = tree.meta();
                    meta.root = 0;
                    let mut next_id: u64 = 0;
                    let mut checksums: Vec<u32> = Vec::new();
                    let mut queue: VecDeque<BlockId> = VecDeque::new();
                    queue.push_back(tree.root());
                    next_id += 1;
                    while let Some(old_page) = queue.pop_front() {
                        let (node, _) = tree.read_node(old_page)?;
                        if node.is_leaf() {
                            // Leaves (the vast majority of pages) need no
                            // pointer rewrite: encode straight from the
                            // shared handle.
                            node.encode(&mut buf);
                        } else {
                            let mut node = (*node).clone();
                            for e in &mut node.entries {
                                queue.push_back(e.ptr as BlockId);
                                e.ptr = page_ptr(next_id).map_err(StoreError::Em)?;
                                next_id += 1;
                            }
                            node.encode(&mut buf);
                        }
                        let crc = crc32(&buf);
                        self.file.write_all_at(&buf, data_offset + written * bs64)?;
                        checksums.push(crc);
                        written += 1;
                    }
                    debug_assert_eq!(checksums.len() as u64, next_id);
                    let run = ComponentRun {
                        id: next_component_id,
                        meta,
                        data_offset: run_offset,
                        num_pages: checksums.len() as u64,
                        table_offset: 0, // patched once the table lands
                        table_crc: 0,
                    };
                    next_component_id += 1;
                    pending.push(Pending::New { run, checksums });
                }
                CommitComponent::Reuse(id) => {
                    let state = self
                        .runs
                        .iter()
                        .find(|r| r.run.id == *id)
                        .expect("checked above")
                        .clone();
                    reused += state.run.num_pages;
                    pending.push(Pending::Reused(state));
                }
            }
        }

        // New runs' checksum tables, concatenated — the superblock /
        // footer commit exactly this newly written region; each run also
        // records its own slice's offset and CRC so it can be
        // re-validated independently for as long as it is reused.
        let table_offset = data_offset + written * bs64;
        let mut table: Vec<u8> = Vec::new();
        for p in &mut pending {
            if let Pending::New { run, checksums } = p {
                run.table_offset = table_offset + table.len() as u64;
                let start = table.len();
                for crc in checksums.iter() {
                    table.extend_from_slice(&crc.to_le_bytes());
                }
                run.table_crc = crc32(&table[start..]);
            }
        }
        let table_crc = crc32(&table);
        self.file.write_all_at(&table, table_offset)?;
        let mut tail_offset = table_offset + table.len() as u64;

        let epoch = self.sb.epoch + 1;
        let all_runs: Vec<ComponentRun> = pending
            .iter()
            .map(|p| match p {
                Pending::New { run, .. } => *run,
                Pending::Reused(state) => state.run,
            })
            .collect();
        let manifest = app.map(|app| ManifestRecord {
            epoch,
            runs: all_runs.clone(),
            app: app.to_vec(),
        });
        let (manifest_offset, manifest_len) = match &manifest {
            Some(m) => {
                let bytes = m.encode();
                let off = tail_offset;
                self.file.write_all_at(&bytes, off)?;
                tail_offset += bytes.len() as u64;
                (off, bytes.len() as u32)
            }
            None => (0, 0),
        };

        let footer_offset = tail_offset;
        let footer = Footer {
            epoch,
            num_pages: written,
            table_crc,
        };
        let mut fbuf = vec![0u8; Footer::ENCODED_SIZE];
        footer.encode(&mut fbuf);
        self.file.write_all_at(&fbuf, footer_offset)?;
        {
            let _s = pr_obs::ambient_span("store", "fsync_body");
            self.file.sync_data()?;
        }

        // The commit point: flip the inactive superblock slot. The
        // superblock's embedded meta is the first component (or an empty
        // synthetic one), kept for the single-tree open path and stats;
        // its data/table fields describe only this commit's new region.
        let meta = all_runs.first().map(|r| r.meta).unwrap_or(TreeMeta {
            params: self.sb.meta.params,
            root: 0,
            root_level: 0,
            len: 0,
        });
        let new_sb = Superblock {
            block_size: bs as u32,
            epoch,
            dim: self.sb.dim,
            meta,
            num_pages: written,
            data_offset,
            table_offset,
            footer_offset,
            table_crc,
            manifest_offset,
            manifest_len,
        };
        let stale_slot = 1 - self.active_slot;
        write_superblock(&self.file, stale_slot, &new_sb)?;
        {
            let _s = pr_obs::ambient_span("store", "fsync_flip");
            self.file.sync_data()?;
        }

        self.active_slot = stale_slot;
        self.sb = new_sb;
        // Per-run read-path state: new runs get a fresh all-unverified
        // bitmap (the bytes were just written by us, but verify-once
        // semantics are per *committed run* — the first reader proves
        // the disk kept them); reused runs carry their bitmap and table
        // forward, so pages proven under an earlier epoch stay proven.
        self.runs = pending
            .into_iter()
            .map(|p| match p {
                Pending::New { run, checksums } => {
                    let verified = Arc::new(VerifiedBitmap::new(run.num_pages));
                    RunState {
                        run,
                        checksums: Arc::new(checksums),
                        verified,
                    }
                }
                Pending::Reused(state) => state,
            })
            .collect();
        self.map = map_runs(&self.file, &self.runs, bs64);
        self.manifest = manifest;
        self.next_component_id = next_component_id;
        commit_span.detail(format!(
            "epoch={} written={written} reused={reused}",
            self.sb.epoch
        ));
        let m = crate::obs::metrics();
        m.commits.inc();
        m.commit_pages.add(written);
        m.pages_written.add(written);
        m.pages_reused.add(reused);
        m.commit_us.record_duration_us(commit_start.elapsed());
        pr_obs::events().emit_timed(
            "store_commit",
            format!(
                "epoch={} components={} written={} reused={}",
                self.sb.epoch,
                comps.len(),
                written,
                reused
            ),
            commit_start.elapsed(),
        );
        Ok(CommitOutcome {
            pages_written: written,
            pages_reused: reused,
            component_ids: self.runs.iter().map(|r| r.run.id).collect(),
        })
    }

    /// Reopens the committed tree. The returned handle reads through a
    /// fresh [`StoreDevice`] (checksum-verified, read-only) and feeds the
    /// normal sharded node cache — `warm_cache`, window and k-NN queries
    /// behave exactly as on the never-persisted tree. Reads take the
    /// default zero-copy path ([`ReadPath::ZeroCopy`]).
    pub fn tree<const D: usize>(&self) -> Result<RTree<D>, StoreError> {
        self.tree_with(ReadPath::ZeroCopy)
    }

    /// [`Store::tree`] with an explicit [`ReadPath`].
    pub fn tree_with<const D: usize>(&self, path: ReadPath) -> Result<RTree<D>, StoreError> {
        if let Some(m) = &self.manifest {
            if m.runs.len() != 1 {
                return Err(StoreError::NotSingleComponent(m.runs.len()));
            }
        }
        if D as u32 != self.sb.dim {
            return Err(StoreError::DimensionMismatch {
                file: self.sb.dim,
                requested: D as u32,
            });
        }
        if !self.sb.has_snapshot() {
            return Err(StoreError::NoCommittedSnapshot);
        }
        self.component_with(0, path)
    }

    /// Reopens **all** committed components. A manifest-bearing snapshot
    /// yields one tree per manifest entry (in manifest order); a legacy
    /// single-tree snapshot yields that one tree; an empty store yields
    /// no trees. Each tree reads through its own run-scoped
    /// checksum-verifying [`StoreDevice`] pinned to this snapshot —
    /// later saves never move pages out from under them.
    pub fn components<const D: usize>(&self) -> Result<Vec<RTree<D>>, StoreError> {
        self.components_with(ReadPath::ZeroCopy)
    }

    /// [`Store::components`] with an explicit [`ReadPath`].
    pub fn components_with<const D: usize>(
        &self,
        path: ReadPath,
    ) -> Result<Vec<RTree<D>>, StoreError> {
        if D as u32 != self.sb.dim {
            return Err(StoreError::DimensionMismatch {
                file: self.sb.dim,
                requested: D as u32,
            });
        }
        (0..self.runs.len())
            .map(|i| self.component_with(i, path))
            .collect()
    }

    /// Reopens the component at `index` (manifest order). `pr-live`'s
    /// incremental merge uses this to open **only** the freshly written
    /// component while keeping its existing handles for reused ones.
    pub fn component_with<const D: usize>(
        &self,
        index: usize,
        path: ReadPath,
    ) -> Result<RTree<D>, StoreError> {
        if D as u32 != self.sb.dim {
            return Err(StoreError::DimensionMismatch {
                file: self.sb.dim,
                requested: D as u32,
            });
        }
        let state = self
            .runs
            .get(index)
            .ok_or(StoreError::NotSingleComponent(self.runs.len()))?;
        let dev: Arc<dyn BlockDevice> = self.run_device(state, path);
        RTree::from_parts(dev, state.run.meta).map_err(StoreError::from)
    }

    /// The application blob committed alongside the components (empty
    /// slice for legacy single-tree snapshots and fresh stores).
    pub fn app(&self) -> &[u8] {
        self.manifest.as_ref().map_or(&[], |m| m.app.as_slice())
    }

    /// The active snapshot's manifest record, when one was committed.
    pub fn manifest(&self) -> Option<&ManifestRecord> {
        self.manifest.as_ref()
    }

    /// The active snapshot's component runs (ids, offsets, page
    /// counts), in manifest order. A legacy single-tree snapshot shows
    /// its one synthetic run; an empty store none.
    pub fn component_runs(&self) -> Vec<ComponentRun> {
        self.runs.iter().map(|r| r.run).collect()
    }

    /// Number of trees in the active snapshot (0 for an empty store).
    pub fn num_components(&self) -> usize {
        self.runs.len()
    }

    /// A fresh device pinned to one component run. Counters are
    /// per-device (each handle's I/O accounting starts at zero), but the
    /// mapping and verify-once bitmap are the shared per-run state.
    fn run_device(&self, state: &RunState, path: ReadPath) -> Arc<StoreDevice> {
        let recheck = matches!(path, ReadPath::Recheck);
        let map = if recheck { None } else { self.map.clone() };
        // The shared mapping must cover this run; a shorter mapping
        // (mmap raced a concurrent truncation) falls back to reads.
        let run_end = state.run.data_offset + state.run.num_pages * self.sb.block_size as u64;
        let map = map.filter(|m| m.len() as u64 >= run_end);
        Arc::new(StoreDevice::new(
            Arc::clone(&self.file),
            map,
            self.block_size(),
            state.run.data_offset,
            Arc::clone(&state.checksums),
            Arc::clone(&state.verified),
            recheck,
            Arc::clone(&self.degraded),
        ))
    }

    /// Eagerly re-hashes every page of every committed run against its
    /// checksum table — the scrub sweep behind `prtree stats`. Unlike
    /// lazy query-path verification this **always** recomputes (its job
    /// is catching bit rot that happened after a page's first
    /// verification), but it routes through the shared verify-once
    /// bitmaps: pages that pass are marked so every later read of this
    /// snapshot skips its CRC, and the report says how many pages the
    /// bitmaps had already covered. A failing page has its bit cleared
    /// before the typed error returns, so it cannot be served from its
    /// stale verification afterwards. All runs are swept even when an
    /// early one fails; the error names the first bad page found.
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let start = std::time::Instant::now();
        let mut total = ScrubReport {
            pages: 0,
            already_verified: 0,
        };
        let mut first_err: Option<StoreError> = None;
        for state in &self.runs {
            match self.run_device(state, ReadPath::ZeroCopy).scrub() {
                Ok(report) => {
                    total.pages += report.pages;
                    total.already_verified += report.already_verified;
                }
                Err(e) => {
                    total.pages += state.run.num_pages;
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let m = crate::obs::metrics();
        m.scrubs.inc();
        m.scrub_pages.add(total.pages);
        m.scrub_us.record_duration_us(start.elapsed());
        pr_obs::events().emit_timed(
            "scrub",
            format!(
                "epoch={} pages={} already_verified={}",
                self.sb.epoch, total.pages, total.already_verified
            ),
            start.elapsed(),
        );
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// [`Store::scrub`] without the report (compatibility wrapper).
    pub fn verify(&self) -> Result<(), StoreError> {
        self.scrub().map(|_| ())
    }

    /// `(verified, total)` pages of the active snapshot per the shared
    /// verify-once bitmaps, summed over all component runs.
    pub fn verified_pages(&self) -> (u64, u64) {
        let verified = self.runs.iter().map(|r| r.verified.verified_pages()).sum();
        let total = self.runs.iter().map(|r| r.run.num_pages).sum();
        (verified, total)
    }

    /// Total pages across all committed component runs.
    pub fn total_pages(&self) -> u64 {
        self.runs.iter().map(|r| r.run.num_pages).sum()
    }

    /// Bytes of the file still referenced by the active snapshot:
    /// superblock slots, every live run's pages and table, the
    /// manifest, and the footer. Everything else — page runs of
    /// replaced components, old tables/manifests/footers, alignment
    /// padding — is garbage awaiting an explicit compaction rewrite.
    pub fn live_bytes(&self) -> u64 {
        let bs = self.sb.block_size as u64;
        let mut live = Superblock::data_region_start();
        for r in &self.runs {
            live += r.run.num_pages * bs + r.run.num_pages * 4;
        }
        if self.sb.has_snapshot() {
            live += self.sb.manifest_len as u64 + Footer::ENCODED_SIZE as u64;
        }
        live
    }

    /// Bytes of the file *not* referenced by the active snapshot (see
    /// [`Store::live_bytes`]). Incremental commits only append, so this
    /// grows with every replaced component until a compaction rewrite
    /// reclaims it.
    pub fn garbage_bytes(&self) -> Result<u64, StoreError> {
        Ok(self.file_len()?.saturating_sub(self.live_bytes()))
    }

    /// True while detected corruption forces every read of this store
    /// through a full CRC re-hash (degraded mode). A clean [`Store::scrub`]
    /// clears it.
    pub fn degraded(&self) -> bool {
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// True when the active snapshot is served through a memory mapping
    /// (false: no snapshot, non-unix, mapping failed, or denied).
    pub fn is_mmapped(&self) -> bool {
        self.map.is_some()
    }

    /// The active superblock (what `prtree stats` dumps).
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Which slot (0 or 1) holds the active superblock.
    pub fn active_slot(&self) -> usize {
        self.active_slot
    }

    /// The store's block size in bytes.
    pub fn block_size(&self) -> usize {
        self.sb.block_size as usize
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current length of the backing file in bytes.
    pub fn file_len(&self) -> Result<u64, StoreError> {
        Ok(self.file.len()?)
    }
}

/// Best-effort shared mapping of the file prefix covering every run's
/// pages. `None` (no runs, non-unix, or mmap failure) means devices
/// fall back to positioned reads — never an error: the mapping is an
/// optimization, `read_at` is the ground truth.
fn map_runs(file: &PositionedFile, runs: &[RunState], block_size: u64) -> Option<Arc<Mmap>> {
    let end = runs
        .iter()
        .map(|r| r.run.data_offset + r.run.num_pages * block_size)
        .max()
        .filter(|&end| end > 0)?;
    match file.map_readonly(end) {
        // A mapping shorter than the snapshot (file truncated under us)
        // must not be indexed past its end: fall back to reads.
        Ok(Some(map)) if map.len() as u64 >= end => Some(Arc::new(map)),
        _ => None,
    }
}

/// Writes one superblock slot (header + zero padding to the slot size).
fn write_superblock(file: &PositionedFile, slot: usize, sb: &Superblock) -> Result<(), StoreError> {
    let mut buf = vec![0u8; Superblock::SLOT_SIZE as usize];
    sb.encode(&mut buf[..Superblock::ENCODED_SIZE]);
    file.write_all_at(&buf, Superblock::slot_offset(slot))?;
    Ok(())
}

/// A run that passed validation, with its decoded page checksum table.
type ValidatedRun = (ComponentRun, Vec<u32>);

/// Proves a superblock's snapshot is intact; returns every component
/// run with its decoded page checksum table, plus the manifest (if
/// any), on success; a human-readable reason on failure. For a legacy
/// single-tree snapshot one synthetic run (id 0) is derived from the
/// superblock itself.
fn validate_snapshot(
    file: &PositionedFile,
    sb: &Superblock,
) -> Result<(Vec<ValidatedRun>, Option<ManifestRecord>), String> {
    if !sb.has_snapshot() {
        return Ok((Vec::new(), None));
    }
    // The footer must exist inside the file...
    let file_len = file.len().map_err(|e| e.to_string())?;
    if sb.footer_offset + Footer::ENCODED_SIZE as u64 > file_len {
        return Err(format!(
            "footer at {} extends past end of file ({file_len} bytes)",
            sb.footer_offset
        ));
    }
    let mut fbuf = vec![0u8; Footer::ENCODED_SIZE];
    file.read_exact_or_zero_at(&mut fbuf, sb.footer_offset)
        .map_err(|e| e.to_string())?;
    // ...decode, and agree with the superblock on what was committed.
    let footer = Footer::decode(&fbuf).map_err(|e| e.to_string())?;
    if footer.epoch != sb.epoch {
        return Err(format!(
            "footer epoch {} does not match superblock epoch {}",
            footer.epoch, sb.epoch
        ));
    }
    if footer.num_pages != sb.num_pages {
        return Err(format!(
            "footer page count {} does not match superblock {}",
            footer.num_pages, sb.num_pages
        ));
    }
    if footer.table_crc != sb.table_crc {
        return Err("footer and superblock disagree on the checksum table CRC".into());
    }
    // The newly written region's checksum table must hash to the
    // committed value (this is what the footer proves landed).
    let table_len = (sb.num_pages * 4) as usize;
    let mut table = vec![0u8; table_len];
    file.read_exact_or_zero_at(&mut table, sb.table_offset)
        .map_err(|e| e.to_string())?;
    let computed = crc32(&table);
    if computed != sb.table_crc {
        return Err(format!(
            "checksum table CRC mismatch (committed {:08x}, computed {computed:08x})",
            sb.table_crc
        ));
    }
    // A manifest, when present, must decode (its CRC covers the run
    // list and the app blob) and belong to this epoch; then every run —
    // including ones written by earlier epochs and reused — must fit
    // the file and re-hash to its recorded per-run table CRC.
    let bs = sb.block_size as u64;
    if sb.has_manifest() {
        if sb.manifest_offset + sb.manifest_len as u64 > file_len {
            return Err(format!(
                "manifest at {} (+{}) extends past end of file ({file_len} bytes)",
                sb.manifest_offset, sb.manifest_len
            ));
        }
        let mut mbuf = vec![0u8; sb.manifest_len as usize];
        file.read_exact_or_zero_at(&mut mbuf, sb.manifest_offset)
            .map_err(|e| e.to_string())?;
        let m = ManifestRecord::decode(&mbuf).map_err(|e| e.to_string())?;
        if m.epoch != sb.epoch {
            return Err(format!(
                "manifest epoch {} does not match superblock epoch {}",
                m.epoch, sb.epoch
            ));
        }
        let mut runs = Vec::with_capacity(m.runs.len());
        for run in &m.runs {
            if run.num_pages > 0 && run.data_offset < Superblock::data_region_start() {
                return Err(format!(
                    "component {} pages at {} overlap the superblocks",
                    run.id, run.data_offset
                ));
            }
            if run.data_offset + run.num_pages * bs > file_len {
                return Err(format!(
                    "component {} pages extend past end of file ({file_len} bytes)",
                    run.id
                ));
            }
            if run.table_offset + run.num_pages * 4 > file_len {
                return Err(format!(
                    "component {} table extends past end of file ({file_len} bytes)",
                    run.id
                ));
            }
            let mut rt = vec![0u8; (run.num_pages * 4) as usize];
            file.read_exact_or_zero_at(&mut rt, run.table_offset)
                .map_err(|e| e.to_string())?;
            let computed = crc32(&rt);
            if computed != run.table_crc {
                return Err(format!(
                    "component {} table CRC mismatch (committed {:08x}, computed {computed:08x})",
                    run.id, run.table_crc
                ));
            }
            runs.push((
                *run,
                rt.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            ));
        }
        Ok((runs, Some(m)))
    } else {
        // Legacy single-tree snapshot: the superblock itself describes
        // the one (always freshly written) run.
        let run = ComponentRun {
            id: 0,
            meta: sb.meta,
            data_offset: sb.data_offset,
            num_pages: sb.num_pages,
            table_offset: sb.table_offset,
            table_crc: sb.table_crc,
        };
        Ok((
            vec![(
                run,
                table
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            )],
            None,
        ))
    }
}
