//! Behavioral regression tests for the dynamized (LPR) tree, focused on
//! the tombstone-accounting corner cases the id-keyed implementation got
//! wrong: delete-then-reinsert of the same item id must not let a stale
//! tombstone shadow the new item, reject its deletion, or skew the
//! compaction trigger.

use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Point, Rect};
use pr_tree::dynamic::LprTree;
use pr_tree::query::brute_force_window;
use pr_tree::{QueryScratch, TreeParams};
use std::sync::Arc;

fn everything() -> Rect<2> {
    Rect::xyxy(-1000.0, -1000.0, 1000.0, 1000.0)
}

fn make(buffer_cap: usize) -> LprTree<2> {
    let params = TreeParams::with_cap::<2>(8);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    LprTree::new(dev, params, buffer_cap)
}

fn item(id: u32, x: f64) -> Item<2> {
    Item::new(Rect::xyxy(x, 0.0, x + 1.0, 1.0), id)
}

/// Pushes enough disposable items to force the buffer into components.
fn drain_buffer(t: &mut LprTree<2>, pad_base: u32) {
    let mut pad = pad_base;
    while {
        let (got, _) = t.window(&everything()).unwrap();
        got.len() as u64 != t.len() || t.num_components() == 0
    } {
        t.insert(item(pad, 500.0)).unwrap();
        pad += 1;
        if pad - pad_base > 64 {
            break;
        }
    }
}

/// The original bug: delete an item stored in a component, then reinsert
/// the same id with a *different* rectangle. The stale id-keyed
/// tombstone used to shadow the reinserted item once it was flushed into
/// a component.
#[test]
fn delete_then_reinsert_same_id_different_rect() {
    let mut t = make(4);
    for id in 0..8 {
        t.insert(item(id, id as f64 * 10.0)).unwrap();
    }
    // id 0 now lives in a component (cap 4 ⇒ at least one flush).
    assert!(t.num_components() >= 1);
    assert!(t.delete(&item(0, 0.0)).unwrap());
    // Reinsert id 0 elsewhere, then force it into a component too.
    let reborn = item(0, 77.0);
    t.insert(reborn).unwrap();
    for id in 100..108 {
        t.insert(item(id, id as f64)).unwrap();
    }
    let (got, _) = t.window(&Rect::xyxy(76.0, 0.0, 79.0, 1.0)).unwrap();
    assert_eq!(got, vec![reborn], "reinserted id 0 shadowed by tombstone");
    // The old rectangle really is gone.
    let (gone, _) = t.window(&Rect::xyxy(0.0, 0.0, 1.5, 1.0)).unwrap();
    assert!(gone.iter().all(|i| i.id != 0), "dead copy resurrected");
    // And the reborn item is deletable (the id-keyed set said "already
    // dead" here).
    assert!(t.delete(&reborn).unwrap(), "reinserted item not deletable");
    assert!(!t.delete(&reborn).unwrap());
}

/// The aliased case: delete and reinsert a bit-identical item. One dead
/// and one live copy of the same (id, rect) can coexist in different
/// components; queries must report exactly one.
#[test]
fn delete_then_reinsert_identical_item() {
    let mut t = make(4);
    let x = item(3, 30.0);
    for id in 0..8 {
        t.insert(item(id, id as f64 * 10.0)).unwrap();
    }
    assert!(t.delete(&x).unwrap());
    t.insert(x).unwrap();
    // Flush the reborn copy into a component; the dead copy may sit in a
    // different (larger) component.
    for id in 200..216 {
        t.insert(item(id, 300.0 + id as f64)).unwrap();
    }
    let (got, _) = t.window(&Rect::xyxy(29.0, 0.0, 32.0, 1.0)).unwrap();
    assert_eq!(got, vec![x], "want exactly one copy, got {got:?}");
    assert_eq!(t.len(), 8 + 16);
    // Deleting it again succeeds exactly once.
    assert!(t.delete(&x).unwrap());
    assert!(!t.delete(&x).unwrap());
    let (got, _) = t.window(&Rect::xyxy(29.0, 0.0, 32.0, 1.0)).unwrap();
    assert!(got.is_empty(), "both copies should now be dead: {got:?}");
}

/// Compaction accounting under delete/reinsert churn: `len()`, the
/// window results, and the brute-force oracle must agree at every step.
#[test]
fn churn_on_one_id_matches_oracle() {
    let mut t = make(4);
    let mut oracle: Vec<Item<2>> = Vec::new();
    for id in 0..12 {
        let it = item(id, id as f64 * 5.0);
        t.insert(it).unwrap();
        oracle.push(it);
    }
    // Hammer a single id through delete/reinsert cycles at shifting
    // positions while other ids pad the components.
    for round in 0..40u32 {
        let victim = oracle
            .iter()
            .position(|i| i.id == 5)
            .map(|p| oracle.swap_remove(p));
        if let Some(v) = victim {
            assert!(t.delete(&v).unwrap(), "round {round}: delete failed");
        }
        let reborn = item(5, (round % 7) as f64 * 11.0);
        t.insert(reborn).unwrap();
        oracle.push(reborn);
        let pad = item(1000 + round, 900.0);
        t.insert(pad).unwrap();
        oracle.push(pad);

        assert_eq!(t.len(), oracle.len() as u64, "round {round}: len drifted");
        let (mut got, _) = t.window(&everything()).unwrap();
        let mut want = brute_force_window(&oracle, &everything());
        got.sort_by(|a, b| {
            (a.id, a.rect.lo_at(0).to_bits()).cmp(&(b.id, b.rect.lo_at(0).to_bits()))
        });
        want.sort_by(|a, b| {
            (a.id, a.rect.lo_at(0).to_bits()).cmp(&(b.id, b.rect.lo_at(0).to_bits()))
        });
        assert_eq!(got, want, "round {round}");
    }
}

/// The decode-free fan-out path: a shared scratch threaded through every
/// component gives results identical to the allocating convenience
/// wrapper, and k-NN agrees with a brute-force oracle after deletes.
#[test]
fn scratch_reuse_and_knn_match_oracle() {
    let mut t = make(8);
    let mut oracle = Vec::new();
    for id in 0..120 {
        let it = item(id, (id as f64 * 7.3) % 100.0);
        t.insert(it).unwrap();
        oracle.push(it);
    }
    for it in oracle.clone().iter().step_by(3) {
        assert!(t.delete(it).unwrap());
    }
    oracle = oracle
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, it)| *it)
        .collect();

    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    for q in [
        Rect::xyxy(0.0, 0.0, 25.0, 1.0),
        Rect::xyxy(30.0, 0.0, 60.0, 1.0),
        everything(),
    ] {
        t.window_into(&q, &mut scratch, &mut out).unwrap();
        let mut got = out.clone();
        let (mut plain, _) = t.window(&q).unwrap();
        let mut want = brute_force_window(&oracle, &q);
        got.sort_by_key(|i| i.id);
        plain.sort_by_key(|i| i.id);
        want.sort_by_key(|i| i.id);
        assert_eq!(got, want);
        assert_eq!(plain, want);
    }

    // k-NN: distances must match a scan over the live oracle.
    let q = Point::new([50.0, 0.5]);
    let mut nn = Vec::new();
    t.nearest_neighbors_into(&q, 10, &mut scratch, &mut nn)
        .unwrap();
    assert_eq!(nn.len(), 10);
    let mut want: Vec<(u32, f64)> = oracle
        .iter()
        .map(|i| (i.id, i.rect.min_dist2(&q).sqrt()))
        .collect();
    want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let got: Vec<(u32, f64)> = nn.iter().map(|(i, d)| (i.id, *d)).collect();
    assert_eq!(got, want[..10].to_vec());
    // Distances are non-decreasing.
    assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
}

/// Tombstone-aware k-NN: with heavy tombstones the best-first loop
/// filters dead heads in place instead of over-fetching every component
/// by the outstanding tombstone count. Pins both the answer (oracle
/// over survivors) and the leaf-visit count — the over-fetch
/// implementation had to materialize `k + tombstones` items per
/// component, a hard lower bound on its leaf reads that the filtered
/// traversal must beat decisively.
#[test]
fn tombstone_aware_knn_visits_few_leaves() {
    let cap = 16;
    let mut t = make(cap);
    let mut all = Vec::new();
    // 512 items on a deterministic pseudo-grid; multiples of the buffer
    // cap, so every item ends up inside a component (empty buffer).
    for id in 0..512u32 {
        let it = item(id, (id as f64 * 13.37) % 400.0);
        t.insert(it).unwrap();
        all.push(it);
    }
    // Kill just under half — heavy, but below the 50% compaction
    // trigger, so the tombstones stay outstanding.
    let mut survivors = Vec::new();
    let mut dead = 0u64;
    for (i, it) in all.iter().enumerate() {
        if i % 2 == 0 && dead * 2 + 2 <= 512 - 32 {
            assert!(t.delete(it).unwrap(), "missing {it:?}");
            dead += 1;
        } else {
            survivors.push(*it);
        }
    }
    assert!(
        t.num_tombstones() >= 200,
        "setup: wanted heavy tombstones, got {}",
        t.num_tombstones()
    );

    let k = 10usize;
    let q = Point::new([200.0, 0.5]);
    let mut scratch = QueryScratch::new();
    let mut nn = Vec::new();
    let stats = t
        .nearest_neighbors_into(&q, k, &mut scratch, &mut nn)
        .unwrap();

    // Exact answer: distances and (dist, id) order match the oracle.
    let mut want: Vec<(u32, f64)> = survivors
        .iter()
        .map(|i| (i.id, i.rect.min_dist2(&q).sqrt()))
        .collect();
    want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let got: Vec<(u32, f64)> = nn.iter().map(|(i, d)| (i.id, *d)).collect();
    assert_eq!(got, want[..k].to_vec());

    // The pin: the old over-fetch had to pull k + tombstones items out
    // of every non-empty component, i.e. at least
    // ceil((k + tombstones) / leaf_cap) leaves per component (more in
    // practice). The filtered traversal must come in well under that
    // floor — and under a flat fraction of all leaves.
    let leaf_cap = 8u64; // `make` builds with TreeParams::with_cap::<2>(8)
    let overfetch_floor =
        (k as u64 + t.num_tombstones()).div_ceil(leaf_cap) * t.num_components() as u64;
    assert!(
        stats.leaves_visited * 2 < overfetch_floor,
        "visited {} leaves; over-fetch floor was {overfetch_floor}",
        stats.leaves_visited
    );
}

/// Ensures `drain_buffer` (and thus the other tests' setup) really does
/// place items into components rather than silently looping forever.
#[test]
fn drain_buffer_helper_flushes() {
    let mut t = make(4);
    for id in 0..4 {
        t.insert(item(id, id as f64)).unwrap();
    }
    drain_buffer(&mut t, 9000);
    assert!(t.num_components() >= 1);
}
