//! The SoA decode-free query engine must be observationally identical
//! to the retained scalar AoS engine ([`pr_tree::reference`]) — same
//! results in the same order, same `f64` bits, and the same
//! [`QueryStats`] (leaves visited, internal visits, device reads) — for
//! **every** bulk loader on uniform, varied-size, and worst-case data.
//!
//! Trees are warmed (`warm_cache`) before comparison: that is the
//! paper's steady state, where both engines see internal-hit/leaf-miss
//! accounting, so `device_reads` comparisons are exact.

use pr_data::{size_dataset, uniform_points, worst_case_grid};
use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Point, Rect};
use pr_tree::bulk::LoaderKind;
use pr_tree::reference::ReferenceEngine;
use pr_tree::{QueryScratch, RTree, TreeParams};
use proptest::prelude::*;
use std::sync::Arc;

const CAP: usize = 8; // small fanout → several levels at test sizes

fn build(kind: LoaderKind, items: &[Item<2>]) -> RTree<2> {
    let params = TreeParams::with_cap::<2>(CAP);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = kind
        .loader::<2>()
        .load(dev, params, items.to_vec())
        .expect("bulk load");
    tree.warm_cache().expect("warm");
    tree
}

fn datasets() -> Vec<(&'static str, Vec<Item<2>>)> {
    vec![
        ("uniform", uniform_points(1_500, 0xE0)),
        ("size", size_dataset(1_500, 0.08, 0xE1)),
        // Theorem-3 shifted grid: 2⁶ columns × 8 rows of points.
        ("worst-case", worst_case_grid(6, 8)),
    ]
}

/// Window queries spanning the dataset's domain at several sizes.
fn windows(domain: &Rect<2>, seeds: u64, count: usize) -> Vec<Rect<2>> {
    let mut state = 0x9E3779B97F4A7C15u64.wrapping_add(seeds);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let span = |d: usize| domain.hi_at(d) - domain.lo_at(d);
    (0..count)
        .map(|i| {
            let frac = [0.001, 0.01, 0.1, 0.5][i % 4];
            let w = span(0) * frac;
            let h = span(1) * frac;
            let x = domain.lo_at(0) + next() * (span(0) - w).max(0.0);
            let y = domain.lo_at(1) + next() * (span(1) - h).max(0.0);
            Rect::xyxy(x, y, x + w, y + h)
        })
        .collect()
}

#[test]
fn every_loader_and_dataset_matches_the_scalar_reference() {
    for (data_name, items) in datasets() {
        let domain = Rect::mbr_of(items.iter().map(|i| &i.rect));
        for (ki, kind) in LoaderKind::all().into_iter().enumerate() {
            let tree = build(kind, &items);
            let oracle = ReferenceEngine::new(&tree).expect("oracle");
            let mut scratch = QueryScratch::new();
            let mut out = Vec::new();
            let label = format!("{}/{data_name}", kind.name());

            for (qi, q) in windows(&domain, ki as u64, 24).iter().enumerate() {
                let (want, want_stats) = oracle.window_with_stats(q).expect("oracle window");
                // Fresh-scratch path.
                let (got, got_stats) = tree.window_with_stats(q).expect("window");
                assert_eq!(got, want, "{label} q{qi}: results (order included)");
                assert_eq!(got_stats, want_stats, "{label} q{qi}: QueryStats");
                // Reused-scratch path.
                let into_stats = tree.window_into(q, &mut scratch, &mut out).expect("into");
                assert_eq!(out, want, "{label} q{qi}: scratch results");
                assert_eq!(into_stats, want_stats, "{label} q{qi}: scratch stats");
                // Counting path.
                let (n, count_stats) = tree.window_count_into(q, &mut scratch).expect("count");
                assert_eq!(n, want.len() as u64, "{label} q{qi}: count");
                assert_eq!(count_stats, want_stats, "{label} q{qi}: count stats");
                // Existence never disagrees (its early exit reports no
                // stats, so only the boolean is comparable).
                let any = tree.intersects_any_into(q, &mut scratch).expect("exists");
                assert_eq!(any, !want.is_empty(), "{label} q{qi}: intersects_any");
            }

            // k-NN: identical items, identical distance bits, identical
            // traversal statistics.
            for (pi, p) in [
                Point::new([domain.lo_at(0), domain.lo_at(1)]),
                domain.center(),
                Point::new([domain.hi_at(0), domain.lo_at(1)]),
            ]
            .iter()
            .enumerate()
            {
                for k in [1usize, 7, 40] {
                    let (want, want_stats) =
                        oracle.nearest_neighbors_with_stats(p, k).expect("oracle");
                    let (got, got_stats) = tree.nearest_neighbors_with_stats(p, k).expect("knn");
                    assert_eq!(got.len(), want.len(), "{label} p{pi} k{k}");
                    for ((gi, gd), (wi, wd)) in got.iter().zip(&want) {
                        assert_eq!(gi, wi, "{label} p{pi} k{k}: item");
                        assert_eq!(gd.to_bits(), wd.to_bits(), "{label} p{pi} k{k}: dist bits");
                    }
                    assert_eq!(got_stats, want_stats, "{label} p{pi} k{k}: stats");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Random rectangles, random loader, random windows: the engines
    /// stay bit-identical on arbitrary inputs, not just the curated
    /// datasets above.
    #[test]
    fn engines_agree_on_arbitrary_inputs(
        raw in prop::collection::vec(
            (-50.0..50.0f64, -50.0..50.0f64, 0.0..10.0f64, 0.0..10.0f64),
            1..400,
        ),
        loader_idx in 0usize..5,
        qx in -60.0..60.0f64,
        qy in -60.0..60.0f64,
        qw in 0.0..40.0f64,
        qh in 0.0..40.0f64,
    ) {
        let items: Vec<Item<2>> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| Item::new(Rect::xyxy(x, y, x + w, y + h), i as u32))
            .collect();
        let kind = LoaderKind::all()[loader_idx];
        let tree = build(kind, &items);
        let oracle = ReferenceEngine::new(&tree).expect("oracle");
        let q = Rect::xyxy(qx, qy, qx + qw, qy + qh);
        let (want, want_stats) = oracle.window_with_stats(&q).expect("oracle");
        let (got, got_stats) = tree.window_with_stats(&q).expect("window");
        prop_assert_eq!(got, want);
        prop_assert_eq!(got_stats, want_stats);
        let p = Point::new([qx, qy]);
        let (want_nn, want_nn_stats) = oracle.nearest_neighbors_with_stats(&p, 9).expect("oracle");
        let (got_nn, got_nn_stats) = tree.nearest_neighbors_with_stats(&p, 9).expect("knn");
        prop_assert_eq!(got_nn, want_nn);
        prop_assert_eq!(got_nn_stats, want_nn_stats);
    }
}
