//! Pins the `--explain` contract: a traced query's per-level counters
//! sum **exactly** to the same query's `QueryStats`, and tracing
//! changes neither results nor statistics.

use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Point, Rect};
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::{LeafCache, QueryScratch, RTree, TreeParams};
use std::sync::Arc;

fn build(n: u32, leaf_cache: bool) -> RTree<2> {
    let params = TreeParams::with_cap::<2>(8);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let items: Vec<Item<2>> = (0..n)
        .map(|i| {
            let f = i as f64;
            let x = f % 64.0;
            let y = (f / 64.0).floor();
            Item::new(Rect::xyxy(x, y, x + 0.6, y + 0.6), i)
        })
        .collect();
    let mut tree = PrTreeLoader::default().load(dev, params, items).unwrap();
    if leaf_cache {
        let cache = Arc::new(LeafCache::new(4 << 20));
        let epoch = cache.register_epoch();
        tree.attach_leaf_cache(cache, epoch);
    }
    tree.warm_cache().unwrap();
    tree
}

fn level_sums(t: &pr_obs::Trace) -> (u64, u64, u64, u64, u64, u64) {
    t.levels.iter().fold((0, 0, 0, 0, 0, 0), |acc, l| {
        (
            acc.0 + l.nodes,
            acc.1 + l.leaves,
            acc.2 + l.internal,
            acc.3 + l.cache_hits,
            acc.4 + l.cache_misses,
            acc.5 + l.device_reads,
        )
    })
}

fn assert_trace_matches_stats(t: &pr_obs::Trace, stats: &pr_tree::QueryStats) {
    let (nodes, leaves, internal, hits, misses, reads) = level_sums(t);
    assert_eq!(nodes, stats.nodes_visited, "per-level nodes sum");
    assert_eq!(leaves, stats.leaves_visited, "per-level leaves sum");
    assert_eq!(internal, stats.internal_visited, "per-level internal sum");
    assert_eq!(hits, stats.leaf_cache_hits, "per-level cache hits sum");
    assert_eq!(
        misses, stats.leaf_cache_misses,
        "per-level cache misses sum"
    );
    assert_eq!(reads, stats.device_reads, "per-level device reads sum");
    // Every em `page_read` span is one device read.
    let io_spans = t
        .spans
        .iter()
        .filter(|s| s.layer == "em" && s.name == "page_read")
        .count() as u64;
    assert_eq!(io_spans, stats.device_reads, "one em span per device read");
}

/// One test (not several) because the collector and sampling switch are
/// process-global; sequential phases keep them race-free.
#[test]
fn explain_levels_sum_exactly_to_query_stats() {
    let tree = build(2_048, true);
    let q = Rect::xyxy(3.0, 3.0, 30.0, 20.0);
    let p = Point::new([17.0, 11.0]);

    // Baseline: untraced queries against a separately built identical
    // tree, so the traced tree's leaf cache stays cold for pass 0.
    let oracle = build(2_048, false);
    let mut plain = QueryScratch::new();
    let mut want = Vec::new();
    let want_stats = oracle.window_into(&q, &mut plain, &mut want).unwrap();
    let mut want_nn = Vec::new();
    let want_nn_stats = oracle
        .nearest_neighbors_into(&p, 12, &mut plain, &mut want_nn)
        .unwrap();

    // Forced trace on a fresh scratch: identical results and stats,
    // plus a published trace whose level sums match exactly. Run cold
    // passes (cache misses + device reads; leaf-cache admission is
    // second-touch, so it takes two) and a warm pass (leaf cache hits)
    // so every counter column is exercised.
    for pass in 0..3 {
        let mut scratch = QueryScratch::new();
        pr_obs::trace::install_collector(16);
        scratch.trace = pr_obs::SpanCtx::forced("window");
        let mut out = Vec::new();
        let stats = tree.window_into(&q, &mut scratch, &mut out).unwrap();
        assert_eq!(out, want, "tracing must not change results");
        assert_eq!(stats.results, want_stats.results);
        assert_eq!(stats.nodes_visited, want_stats.nodes_visited);
        assert_eq!(stats.leaves_visited, want_stats.leaves_visited);

        scratch.trace = pr_obs::SpanCtx::forced("knn");
        let mut nn = Vec::new();
        let nn_stats = tree
            .nearest_neighbors_into(&p, 12, &mut scratch, &mut nn)
            .unwrap();
        assert_eq!(nn, want_nn, "tracing must not change k-NN results");
        assert_eq!(nn_stats.results, want_nn_stats.results);
        assert_eq!(nn_stats.leaves_visited, want_nn_stats.leaves_visited);

        let traces = pr_obs::trace::drain_collector();
        assert_eq!(traces.len(), 2, "window + knn traces collected");
        let window = traces.iter().find(|t| t.kind == "window").unwrap();
        assert_trace_matches_stats(window, &stats);
        assert_eq!(window.detail, format!("results={}", stats.results));
        assert!(
            window.spans.iter().any(|s| s.name == "traverse"),
            "tree-layer traversal span present"
        );
        let knn = traces.iter().find(|t| t.kind == "knn").unwrap();
        assert_trace_matches_stats(knn, &nn_stats);
        if pass < 2 {
            assert!(stats.device_reads > 0, "cold passes must hit the device");
        } else {
            assert!(stats.leaf_cache_hits > 0, "warm pass must hit the cache");
            assert_eq!(stats.device_reads, 0, "warm pass is cache-only");
        }
    }

    // Sampled arming (1-in-1) through the engine's own arm_sampled: the
    // scratch ctx starts off, arms itself, and publishes to the flight
    // recorder.
    pr_obs::recorder().clear();
    pr_obs::trace::set_sampling(1);
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    let stats = tree.window_into(&q, &mut scratch, &mut out).unwrap();
    pr_obs::trace::set_sampling(0);
    let slow = pr_obs::recorder().snapshot();
    let window = &slow.iter().find(|(k, _)| *k == "window").unwrap().1;
    assert!(!window.is_empty(), "sampled trace reached the recorder");
    assert_trace_matches_stats(&window[0], &stats);
    pr_obs::recorder().clear();
}
