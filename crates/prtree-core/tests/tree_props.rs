//! Property-based tests for the tree crate: every loader must be a
//! *correct index* (complete and sound) on arbitrary inputs, and dynamic
//! updates must preserve that.

use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Rect};
use pr_tree::bulk::LoaderKind;
use pr_tree::dynamic::SplitPolicy;
use pr_tree::pseudo::PseudoPrTree;
use pr_tree::{RTree, TreeParams};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_items(max: usize) -> impl Strategy<Value = Vec<Item<2>>> {
    prop::collection::vec(
        (
            -100.0..100.0f64,
            -100.0..100.0f64,
            0.0..20.0f64,
            0.0..20.0f64,
        ),
        0..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| Item::new(Rect::xyxy(x, y, x + w, y + h), i as u32))
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Rect<2>> {
    (
        -120.0..120.0f64,
        -120.0..120.0f64,
        0.0..80.0f64,
        0.0..80.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::xyxy(x, y, x + w, y + h))
}

fn build(kind: LoaderKind, items: &[Item<2>], cap: usize) -> RTree<2> {
    let params = TreeParams::with_cap::<2>(cap);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    kind.loader::<2>()
        .load(dev, params, items.to_vec())
        .expect("bulk load")
}

fn brute(items: &[Item<2>], q: &Rect<2>) -> Vec<u32> {
    let mut ids: Vec<u32> = items
        .iter()
        .filter(|i| i.rect.intersects(q))
        .map(|i| i.id)
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness + completeness of every loader on arbitrary rectangles.
    #[test]
    fn all_loaders_are_correct_indexes(
        items in arb_items(300),
        q in arb_query(),
        cap in 2usize..12,
    ) {
        let want = brute(&items, &q);
        for kind in LoaderKind::all() {
            let tree = build(kind, &items, cap);
            let report = tree.validate().unwrap();
            prop_assert!(report.is_ok(), "{}: {:?}", kind.name(), report.errors);
            let mut got: Vec<u32> = tree.window(&q).unwrap().iter().map(|i| i.id).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "{} wrong on {:?}", kind.name(), q);
        }
    }

    /// The pseudo-PR-tree is also a correct index.
    #[test]
    fn pseudo_pr_tree_is_correct(
        items in arb_items(300),
        q in arb_query(),
        cap in 1usize..12,
    ) {
        let pseudo = PseudoPrTree::build(items.clone(), cap);
        prop_assert!(pseudo.max_leaf_len() <= cap.max(1));
        let mut got: Vec<u32> = pseudo.window(&q).iter().map(|i| i.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&items, &q));
    }

    /// Insert-then-delete round-trips to an equivalent index.
    #[test]
    fn insert_delete_roundtrip(
        items in arb_items(120),
        q in arb_query(),
        policy_idx in 0usize..3,
    ) {
        let policy = SplitPolicy::all()[policy_idx];
        let params = TreeParams::with_cap::<2>(4);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let mut tree = RTree::<2>::new_empty(dev, params).unwrap();
        for &it in &items {
            tree.insert(it, policy).unwrap();
        }
        prop_assert_eq!(tree.len(), items.len() as u64);
        let mut got: Vec<u32> = tree.window(&q).unwrap().iter().map(|i| i.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&items, &q));
        // Delete the first half; the rest must remain queryable.
        let half = items.len() / 2;
        for it in &items[..half] {
            prop_assert!(tree.delete(it, policy).unwrap());
        }
        let report = tree.validate().unwrap();
        prop_assert!(report.is_ok(), "{:?}", report.errors);
        let mut got: Vec<u32> = tree.window(&q).unwrap().iter().map(|i| i.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&items[half..], &q));
    }

    /// Bulk-loaded trees preserve the exact item multiset.
    #[test]
    fn loaders_preserve_items(items in arb_items(250), cap in 2usize..10) {
        let mut want: Vec<u32> = items.iter().map(|i| i.id).collect();
        want.sort_unstable();
        for kind in LoaderKind::all() {
            let tree = build(kind, &items, cap);
            let mut got: Vec<u32> =
                tree.items().unwrap().iter().map(|i| i.id).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "{}", kind.name());
        }
    }
}
