//! Edge cases every loader and the query engine must survive.

use pr_em::{BlockDevice, EmError, MemDevice};
use pr_geom::{Item, Point, Rect};
use pr_tree::bulk::LoaderKind;
use pr_tree::page::NodePage;
use pr_tree::{RTree, TreeParams};
use std::sync::Arc;

fn build(kind: LoaderKind, items: Vec<Item<2>>, cap: usize) -> RTree<2> {
    let params = TreeParams::with_cap::<2>(cap);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    kind.loader::<2>().load(dev, params, items).unwrap()
}

#[test]
fn single_item_trees() {
    let item = Item::new(Rect::xyxy(1.0, 2.0, 3.0, 4.0), 42);
    for kind in LoaderKind::all() {
        let t = build(kind, vec![item], 4);
        assert_eq!(t.height(), 1);
        assert_eq!(
            t.window(&Rect::xyxy(0.0, 0.0, 5.0, 5.0)).unwrap(),
            vec![item]
        );
        assert!(t
            .window(&Rect::xyxy(10.0, 10.0, 11.0, 11.0))
            .unwrap()
            .is_empty());
        t.validate().unwrap().assert_ok();
    }
}

#[test]
fn all_points_on_one_spot() {
    // Every coordinate identical: only id tie-breaks order anything.
    let items: Vec<Item<2>> = (0..300)
        .map(|i| Item::new(Rect::from_point(Point::new([7.0, 7.0])), i))
        .collect();
    for kind in LoaderKind::all() {
        let t = build(kind, items.clone(), 8);
        t.validate().unwrap().assert_ok();
        assert_eq!(
            t.window(&Rect::xyxy(7.0, 7.0, 7.0, 7.0)).unwrap().len(),
            300,
            "{}",
            kind.name()
        );
        // High utilization even in the fully degenerate case.
        assert!(t.stats().unwrap().leaf_utilization() > 0.9);
    }
}

#[test]
fn collinear_points() {
    // All on a horizontal line: one spatial dimension is degenerate.
    let items: Vec<Item<2>> = (0..500)
        .map(|i| Item::new(Rect::from_point(Point::new([i as f64, 5.0])), i))
        .collect();
    for kind in LoaderKind::all() {
        let t = build(kind, items.clone(), 8);
        t.validate().unwrap().assert_ok();
        let hits = t.window(&Rect::xyxy(100.0, 0.0, 200.0, 10.0)).unwrap();
        assert_eq!(hits.len(), 101, "{}", kind.name());
    }
}

#[test]
fn huge_coordinate_magnitudes() {
    let items: Vec<Item<2>> = (0..200)
        .map(|i| {
            let x = 1e15 + i as f64 * 1e9;
            Item::new(Rect::xyxy(x, -1e15, x + 1e8, -1e15 + 1e8), i)
        })
        .collect();
    for kind in LoaderKind::all() {
        let t = build(kind, items.clone(), 8);
        t.validate().unwrap().assert_ok();
        let q = Rect::xyxy(1e15, -2e15, 1e15 + 50.5e9, 0.0);
        let want = items.iter().filter(|i| i.rect.intersects(&q)).count();
        assert_eq!(t.window(&q).unwrap().len(), want, "{}", kind.name());
    }
}

#[test]
fn query_window_is_a_point_or_line() {
    let items: Vec<Item<2>> = (0..400)
        .map(|i| {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
        })
        .collect();
    let t = build(LoaderKind::Pr, items.clone(), 8);
    // Point query in the interior: overlapping unit squares.
    let p = Rect::from_point(Point::new([5.5, 5.5]));
    let want = items.iter().filter(|i| i.rect.intersects(&p)).count();
    assert_eq!(t.window(&p).unwrap().len(), want);
    // Degenerate vertical line.
    let l = Rect::xyxy(5.0, 0.0, 5.0, 100.0);
    let want = items.iter().filter(|i| i.rect.intersects(&l)).count();
    assert_eq!(t.window(&l).unwrap().len(), want);
}

#[test]
fn tree_shared_across_threads_for_queries() {
    // RTree queries take &self; concurrent readers must be safe.
    let items: Vec<Item<2>> = (0..5_000)
        .map(|i| {
            let x = (i % 100) as f64;
            let y = (i / 100) as f64;
            Item::new(Rect::xyxy(x, y, x + 0.5, y + 0.5), i)
        })
        .collect();
    let t = Arc::new(build(LoaderKind::Pr, items, 16));
    t.warm_cache().unwrap();
    std::thread::scope(|s| {
        for tid in 0..4 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for k in 0..50 {
                    let x = ((tid * 50 + k) % 90) as f64;
                    let hits = t.window(&Rect::xyxy(x, 0.0, x + 5.0, 50.0)).unwrap();
                    assert!(!hits.is_empty());
                }
            });
        }
    });
}

#[test]
fn corrupt_page_surfaces_as_error_through_queries() {
    let items: Vec<Item<2>> = (0..100)
        .map(|i| Item::new(Rect::from_point(Point::new([i as f64, 0.0])), i))
        .collect();
    let params = TreeParams::with_cap::<2>(8);
    let dev = Arc::new(MemDevice::new(params.page_size));
    let t = LoaderKind::Pr
        .loader::<2>()
        .load(Arc::clone(&dev) as Arc<dyn BlockDevice>, params, items)
        .unwrap();
    // Smash the root page on the device.
    let garbage = vec![0xFFu8; params.page_size];
    dev.write_block(t.root(), &garbage).unwrap();
    t.set_cache_policy(pr_tree::CachePolicy::None);
    let err = t.window(&Rect::xyxy(0.0, 0.0, 10.0, 10.0)).unwrap_err();
    assert!(matches!(err, EmError::Corrupt(_)), "got {err:?}");
}

#[test]
fn max_fanout_pages_encode_at_paper_size() {
    // A full 113-entry node round-trips through a real 4KB page.
    let params = TreeParams::paper_2d();
    let entries: Vec<pr_tree::Entry<2>> = (0..params.leaf_cap as u32)
        .map(|i| pr_tree::Entry::new(Rect::xyxy(i as f64, 0.0, i as f64 + 1.0, 1.0), i))
        .collect();
    let dev = MemDevice::new(params.page_size);
    let page = NodePage::new(0, entries.clone()).append(&dev).unwrap();
    let back = NodePage::<2>::read(&dev, page).unwrap();
    assert_eq!(back.entries, entries);
}
