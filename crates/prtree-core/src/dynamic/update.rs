//! Guttman-style dynamic updates on the page-level R-tree.
//!
//! §4 of the paper: "The PR-tree can be updated using any known update
//! heuristic for R-trees, but then its performance cannot be guaranteed
//! theoretically anymore and its practical performance might suffer as
//! well." These are exactly those heuristics — Guttman's ChooseLeaf
//! insertion with a pluggable [`SplitPolicy`], and deletion with
//! CondenseTree reinsertion — so the degradation experiment (`dyn`) can
//! measure what happens to a bulk-loaded tree under updates.

use crate::dynamic::split::SplitPolicy;
use crate::entry::Entry;
use crate::page::NodePage;
use crate::tree::RTree;
use crate::writer::page_ptr;
use pr_em::{BlockId, EmError};
use pr_geom::{Item, Rect};

/// Result of a recursive insertion into one subtree.
enum InsertOutcome<const D: usize> {
    /// Subtree absorbed the entry; its MBR is now this.
    Fit(Rect<D>),
    /// Subtree split; its MBR is the first field, the new sibling (MBR +
    /// page) the second.
    Split(Rect<D>, Entry<D>),
}

impl<const D: usize> RTree<D> {
    /// Inserts one item (Guttman ChooseLeaf + the given split policy) in
    /// `O(log_B N)` I/Os.
    pub fn insert(&mut self, item: Item<D>, policy: SplitPolicy) -> Result<(), EmError> {
        self.insert_entry_at(Entry::from_item(item), 0, policy)?;
        self.bump_len(1);
        Ok(())
    }

    /// Inserts `entry` into some node at `target_level` (0 = leaf). Used
    /// for both item insertion and orphan reinsertion during deletion.
    fn insert_entry_at(
        &mut self,
        entry: Entry<D>,
        target_level: u8,
        policy: SplitPolicy,
    ) -> Result<(), EmError> {
        debug_assert!(target_level <= self.root_level());
        let root = self.root();
        let root_level = self.root_level();
        match self.insert_rec(root, root_level, entry, target_level, policy)? {
            InsertOutcome::Fit(_) => Ok(()),
            InsertOutcome::Split(root_mbr, sibling) => {
                // Grow the tree: a new root over the old root + sibling.
                let new_root = NodePage::new(
                    root_level + 1,
                    vec![Entry::new(root_mbr, page_ptr(root)?), sibling],
                );
                let page = self.append_node(&new_root)?;
                self.set_root(page, root_level + 1);
                Ok(())
            }
        }
    }

    fn insert_rec(
        &mut self,
        page: BlockId,
        level: u8,
        entry: Entry<D>,
        target_level: u8,
        policy: SplitPolicy,
    ) -> Result<InsertOutcome<D>, EmError> {
        let (node_arc, _) = self.read_node(page)?;
        let mut node = (*node_arc).clone();
        if level == target_level {
            node.entries.push(entry);
        } else {
            let idx = choose_subtree(&node.entries, &entry.rect);
            let child = node.entries[idx].ptr as BlockId;
            match self.insert_rec(child, level - 1, entry, target_level, policy)? {
                InsertOutcome::Fit(mbr) => {
                    node.entries[idx].rect = mbr;
                }
                InsertOutcome::Split(mbr, sibling) => {
                    node.entries[idx].rect = mbr;
                    node.entries.push(sibling);
                }
            }
        }

        let cap = self.params().cap_at_level(level);
        if node.len() <= cap {
            let mbr = node.mbr();
            self.write_node(page, &node)?;
            return Ok(InsertOutcome::Fit(mbr));
        }
        // Overflow: split this node.
        let min_fill = self.params().min_fill(level);
        let (a, b) = policy.split(node.entries, min_fill);
        let node_a = NodePage::new(level, a);
        let node_b = NodePage::new(level, b);
        let mbr_a = node_a.mbr();
        let mbr_b = node_b.mbr();
        self.write_node(page, &node_a)?;
        let new_page = self.append_node(&node_b)?;
        Ok(InsertOutcome::Split(
            mbr_a,
            Entry::new(mbr_b, page_ptr(new_page)?),
        ))
    }

    /// Deletes the item with matching rectangle *and* id. Returns `false`
    /// if it was not found. Underfull nodes are dissolved and their
    /// contents reinserted (Guttman's CondenseTree).
    pub fn delete(&mut self, item: &Item<D>, policy: SplitPolicy) -> Result<bool, EmError> {
        let mut orphans: Vec<(u8, Entry<D>)> = Vec::new();
        let root = self.root();
        let root_level = self.root_level();
        let outcome = self.delete_rec(root, root_level, item, &mut orphans)?;
        let found = !matches!(outcome, DeleteOutcome::NotFound);
        if !found {
            return Ok(false);
        }
        self.bump_len(-1);

        // Shrink the root while it is an internal node with one child.
        loop {
            let (root_node, _) = self.read_node(self.root())?;
            if root_node.is_leaf() || root_node.len() != 1 {
                break;
            }
            let child = root_node.entries[0].ptr as BlockId;
            let level = root_node.level - 1;
            self.set_root(child, level);
        }

        // Reinsert orphans (highest level first so targets still exist).
        orphans.sort_by_key(|(lvl, _)| std::cmp::Reverse(*lvl));
        for (lvl, e) in orphans {
            if lvl == 0 {
                self.insert_entry_at(e, 0, policy)?;
            } else if lvl <= self.root_level() {
                self.insert_entry_at(e, lvl, policy)?;
            } else {
                // The tree shrank below the orphan's level: dissolve the
                // orphan subtree into items and reinsert those.
                let items = self.subtree_items(e.ptr as BlockId)?;
                for it in items {
                    self.insert_entry_at(Entry::from_item(it), 0, policy)?;
                }
            }
        }
        Ok(true)
    }

    fn subtree_items(&self, page: BlockId) -> Result<Vec<Item<D>>, EmError> {
        let mut out = Vec::new();
        let mut stack = vec![page];
        while let Some(p) = stack.pop() {
            let (node, _) = self.read_node(p)?;
            if node.is_leaf() {
                out.extend(node.entries.iter().map(|e| e.to_item()));
            } else {
                stack.extend(node.entries.iter().map(|e| e.ptr as BlockId));
            }
        }
        Ok(out)
    }

    fn delete_rec(
        &mut self,
        page: BlockId,
        level: u8,
        item: &Item<D>,
        orphans: &mut Vec<(u8, Entry<D>)>,
    ) -> Result<DeleteOutcome<D>, EmError> {
        let (node_arc, _) = self.read_node(page)?;
        let mut node = (*node_arc).clone();
        let min_fill = self.params().min_fill(level);
        let is_root = page == self.root();

        if node.is_leaf() {
            let Some(pos) = node
                .entries
                .iter()
                .position(|e| e.ptr == item.id && e.rect == item.rect)
            else {
                return Ok(DeleteOutcome::NotFound);
            };
            node.entries.remove(pos);
            if !is_root && node.len() < min_fill {
                // Dissolve: survivors become orphans to reinsert.
                for e in &node.entries {
                    orphans.push((0, *e));
                }
                return Ok(DeleteOutcome::Dissolved);
            }
            let mbr = node.mbr();
            self.write_node(page, &node)?;
            return Ok(DeleteOutcome::Done(mbr));
        }

        let mut found_at: Option<(usize, DeleteOutcome<D>)> = None;
        for idx in 0..node.entries.len() {
            if !node.entries[idx].rect.contains_rect(&item.rect) {
                continue;
            }
            let child = node.entries[idx].ptr as BlockId;
            match self.delete_rec(child, level - 1, item, orphans)? {
                DeleteOutcome::NotFound => continue,
                outcome => {
                    found_at = Some((idx, outcome));
                    break;
                }
            }
        }
        let Some((idx, outcome)) = found_at else {
            return Ok(DeleteOutcome::NotFound);
        };
        match outcome {
            DeleteOutcome::Done(child_mbr) => {
                node.entries[idx].rect = child_mbr;
            }
            DeleteOutcome::Dissolved => {
                node.entries.remove(idx);
            }
            DeleteOutcome::NotFound => unreachable!(),
        }
        if !is_root && node.len() < min_fill {
            for e in &node.entries {
                orphans.push((level, *e));
            }
            return Ok(DeleteOutcome::Dissolved);
        }
        let mbr = node.mbr();
        self.write_node(page, &node)?;
        Ok(DeleteOutcome::Done(mbr))
    }
}

enum DeleteOutcome<const D: usize> {
    NotFound,
    /// Item removed; the subtree's new MBR.
    Done(Rect<D>),
    /// The child node fell below minimum fill and was dissolved; its
    /// surviving entries are now orphans.
    Dissolved,
}

/// Guttman's ChooseSubtree: least enlargement, ties by least area, then
/// by position (determinism).
fn choose_subtree<const D: usize>(entries: &[Entry<D>], rect: &Rect<D>) -> usize {
    let mut best = 0usize;
    let mut best_enlarge = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let enlarge = e.rect.enlargement(rect);
        let area = e.rect.area();
        if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
            best = i;
            best_enlarge = enlarge;
            best_area = area;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::pr::PrTreeLoader;
    use crate::bulk::BulkLoader;
    use crate::params::TreeParams;
    use crate::query::brute_force_window;
    use crate::validate::ValidateOptions;
    use pr_em::{BlockDevice, MemDevice};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
            })
            .collect()
    }

    fn empty_tree(cap: usize) -> RTree<2> {
        let params = TreeParams::with_cap::<2>(cap);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        RTree::new_empty(dev, params).unwrap()
    }

    #[test]
    fn repeated_insertion_builds_valid_tree() {
        for policy in SplitPolicy::all() {
            let mut t = empty_tree(4);
            let items = random_items(300, 1);
            for &it in &items {
                t.insert(it, policy).unwrap();
            }
            assert_eq!(t.len(), 300);
            let report = t
                .validate_with(ValidateOptions {
                    check_min_fill: true,
                })
                .unwrap();
            report.assert_ok();
            // Queries agree with brute force.
            let q = Rect::xyxy(20.0, 20.0, 40.0, 40.0);
            let mut got = t.window(&q).unwrap();
            let mut want = brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want, "{policy:?}");
        }
    }

    #[test]
    fn insert_into_bulk_loaded_tree() {
        let items = random_items(500, 2);
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let mut t = PrTreeLoader::default()
            .load(dev, params, items.clone())
            .unwrap();
        let extra = random_items(200, 3)
            .into_iter()
            .map(|mut i| {
                i.id += 10_000;
                i
            })
            .collect::<Vec<_>>();
        for &it in &extra {
            t.insert(it, SplitPolicy::Quadratic).unwrap();
        }
        assert_eq!(t.len(), 700);
        t.validate().unwrap().assert_ok();
        let all: Vec<Item<2>> = items.iter().chain(&extra).copied().collect();
        let q = Rect::xyxy(0.0, 0.0, 50.0, 50.0);
        let mut got = t.window(&q).unwrap();
        let mut want = brute_force_window(&all, &q);
        got.sort_by_key(|i| i.id);
        want.sort_by_key(|i| i.id);
        assert_eq!(got, want);
    }

    #[test]
    fn delete_every_item() {
        let items = random_items(250, 5);
        let mut t = empty_tree(4);
        for &it in &items {
            t.insert(it, SplitPolicy::Quadratic).unwrap();
        }
        for (k, it) in items.iter().enumerate() {
            assert!(t.delete(it, SplitPolicy::Quadratic).unwrap(), "item {k}");
            t.validate().unwrap().assert_ok();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "tree shrinks back to a single leaf");
    }

    #[test]
    fn delete_missing_item_returns_false() {
        let mut t = empty_tree(4);
        for &it in &random_items(50, 7) {
            t.insert(it, SplitPolicy::Linear).unwrap();
        }
        let ghost = Item::new(Rect::xyxy(1.0, 1.0, 2.0, 2.0), 9999);
        assert!(!t.delete(&ghost, SplitPolicy::Linear).unwrap());
        assert_eq!(t.len(), 50);
        // Same id as an existing item but different rect: also not found.
        let items = random_items(50, 7);
        let wrong_rect = Item::new(Rect::xyxy(-1.0, -1.0, 0.0, 0.0), items[0].id);
        assert!(!t.delete(&wrong_rect, SplitPolicy::Linear).unwrap());
    }

    #[test]
    fn interleaved_inserts_and_deletes_match_reference() {
        let mut t = empty_tree(6);
        let mut reference: Vec<Item<2>> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut next_id = 0u32;
        for step in 0..800 {
            if reference.is_empty() || rng.gen_bool(0.6) {
                let x: f64 = rng.gen_range(0.0..50.0);
                let y: f64 = rng.gen_range(0.0..50.0);
                let it = Item::new(Rect::xyxy(x, y, x + 0.5, y + 0.5), next_id);
                next_id += 1;
                t.insert(it, SplitPolicy::Quadratic).unwrap();
                reference.push(it);
            } else {
                let pos = rng.gen_range(0..reference.len());
                let victim = reference.swap_remove(pos);
                assert!(t.delete(&victim, SplitPolicy::Quadratic).unwrap());
            }
            if step % 100 == 99 {
                t.validate().unwrap().assert_ok();
                let q = Rect::xyxy(10.0, 10.0, 30.0, 30.0);
                let mut got = t.window(&q).unwrap();
                let mut want = brute_force_window(&reference, &q);
                got.sort_by_key(|i| i.id);
                want.sort_by_key(|i| i.id);
                assert_eq!(got, want, "step {step}");
            }
        }
        assert_eq!(t.len(), reference.len() as u64);
    }

    #[test]
    fn duplicate_rectangles_delete_by_id() {
        let mut t = empty_tree(4);
        let rect = Rect::xyxy(5.0, 5.0, 6.0, 6.0);
        for id in 0..20 {
            t.insert(Item::new(rect, id), SplitPolicy::Quadratic)
                .unwrap();
        }
        assert!(t
            .delete(&Item::new(rect, 13), SplitPolicy::Quadratic)
            .unwrap());
        assert_eq!(t.len(), 19);
        let hits = t.window(&rect).unwrap();
        assert!(hits.iter().all(|i| i.id != 13));
        assert_eq!(hits.len(), 19);
    }

    #[test]
    fn choose_subtree_prefers_containing_box() {
        let entries = vec![
            Entry::new(Rect::xyxy(0.0, 0.0, 10.0, 10.0), 0),
            Entry::new(Rect::xyxy(20.0, 20.0, 30.0, 30.0), 1),
        ];
        let r = Rect::xyxy(2.0, 2.0, 3.0, 3.0);
        assert_eq!(choose_subtree(&entries, &r), 0);
        let r2 = Rect::xyxy(21.0, 21.0, 22.0, 22.0);
        assert_eq!(choose_subtree(&entries, &r2), 1);
    }
}
