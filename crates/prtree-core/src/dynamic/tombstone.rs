//! Multiset tombstones for logically-deleted items in bulk-loaded
//! components.
//!
//! The logarithmic method cannot erase an item from an immutable,
//! bulk-loaded component; a delete instead records a *tombstone* and the
//! dead record is physically dropped the next time its component is
//! merged. The original implementation keyed tombstones by item id
//! alone, which breaks delete-then-reinsert: after `delete(X)` and a
//! fresh `insert` of a new item with the same id, the stale tombstone
//! shadowed the *new* item once it reached a component. Tombstones here
//! are keyed by the full `(id, rect)` identity and carry a **count**,
//! because even the full identity can alias: delete `X`, reinsert an
//! identical `X'`, and a component merge can leave one dead and one live
//! copy of the same `(id, rect)` in different components. Queries
//! therefore filter with *multiset subtraction* ([`TombstoneFilter`]):
//! for a key with `c` tombstones and `m` stored copies, exactly
//! `m - c` copies are reported — and since aliased copies are
//! bit-identical items, it does not matter *which* copies survive.
//!
//! Shared by [`crate::dynamic::logarithmic::LprTree`] and the `pr-live`
//! crate's durable `LiveIndex`, whose manifest persists the map across
//! restarts.

use pr_geom::{Item, Rect};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Hashable identity of a stored item: id plus the exact coordinate bit
/// patterns of its rectangle (f64 has no `Eq`/`Hash`; its bits do, and
/// stored items round-trip bit-exactly).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TombstoneKey<const D: usize> {
    id: u32,
    lo: [u64; D],
    hi: [u64; D],
}

impl<const D: usize> TombstoneKey<D> {
    /// The key of an item.
    pub fn of(item: &Item<D>) -> Self {
        let mut lo = [0u64; D];
        let mut hi = [0u64; D];
        for i in 0..D {
            lo[i] = item.rect.lo_at(i).to_bits();
            hi[i] = item.rect.hi_at(i).to_bits();
        }
        TombstoneKey {
            id: item.id,
            lo,
            hi,
        }
    }

    /// Reconstructs the item this key identifies.
    pub fn to_item(self) -> Item<D> {
        let mut lo = [0f64; D];
        let mut hi = [0f64; D];
        for i in 0..D {
            lo[i] = f64::from_bits(self.lo[i]);
            hi[i] = f64::from_bits(self.hi[i]);
        }
        Item::new(Rect::new(lo, hi), self.id)
    }
}

/// Bit-exact identity equality: the predicate every delete/tombstone
/// decision must use. `Rect`'s `PartialEq` follows f64 semantics
/// (`0.0 == -0.0`), but tombstones are *keyed* by coordinate bits — a
/// delete matched via `PartialEq` against a signed-zero twin would
/// record a tombstone under a key no stored item has, leaving an
/// orphan tombstone and an undeletable item. Routing every liveness
/// check through this function keeps the decision and the key
/// structurally consistent.
pub fn same_identity<const D: usize>(a: &Item<D>, b: &Item<D>) -> bool {
    TombstoneKey::of(a) == TombstoneKey::of(b)
}

/// A counted set of dead `(id, rect)` identities. See the module docs.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Tombstones<const D: usize> {
    map: HashMap<TombstoneKey<D>, u32>,
    total: u64,
}

impl<const D: usize> Tombstones<D> {
    /// An empty set.
    pub fn new() -> Self {
        Tombstones {
            map: HashMap::new(),
            total: 0,
        }
    }

    /// Total number of tombstones, counting multiplicity (the
    /// compaction-trigger metric).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when no tombstones exist.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records one more dead copy of `item`.
    pub fn add(&mut self, item: &Item<D>) {
        self.add_count(TombstoneKey::of(item), 1);
    }

    /// Records `count` dead copies under `key` (manifest decode path).
    pub fn add_count(&mut self, key: TombstoneKey<D>, count: u32) {
        if count == 0 {
            return;
        }
        *self.map.entry(key).or_insert(0) += count;
        self.total += count as u64;
    }

    /// How many dead copies of `item` are recorded.
    pub fn count(&self, item: &Item<D>) -> u32 {
        self.map.get(&TombstoneKey::of(item)).copied().unwrap_or(0)
    }

    /// Removes one dead copy of `item` (a merge physically dropped it).
    /// Returns `true` if a tombstone was present and consumed.
    pub fn consume(&mut self, item: &Item<D>) -> bool {
        match self.map.entry(TombstoneKey::of(item)) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
                self.total -= 1;
                true
            }
            Entry::Vacant(_) => false,
        }
    }

    /// Subtracts another (consumed) multiset from this one. Used by a
    /// merge swap: the merge consumed tombstones against its *input
    /// snapshot*; deletes recorded since then stay in the map.
    pub fn subtract(&mut self, consumed: &Tombstones<D>) {
        for (key, &n) in &consumed.map {
            if let Entry::Occupied(mut e) = self.map.entry(*key) {
                let take = n.min(*e.get());
                *e.get_mut() -= take;
                if *e.get() == 0 {
                    e.remove();
                }
                self.total -= take as u64;
            }
        }
    }

    /// Drops every tombstone (global rebuild absorbed them all).
    pub fn clear(&mut self) {
        self.map.clear();
        self.total = 0;
    }

    /// Iterates `(key, count)` entries (manifest encode path). Order is
    /// unspecified.
    pub fn entries(&self) -> impl Iterator<Item = (TombstoneKey<D>, u32)> + '_ {
        self.map.iter().map(|(k, &c)| (*k, c))
    }

    /// A per-query consuming view for multiset filtering.
    pub fn filter(&self) -> TombstoneFilter<'_, D> {
        TombstoneFilter {
            tombstones: self,
            used: HashMap::new(),
        }
    }
}

/// Per-query filtering state: the first `count` stored copies of each
/// tombstoned key are suppressed, later copies pass. One filter must be
/// shared across *all* storage a query fans out over (every component
/// plus any frozen batch), so aliased copies are suppressed exactly
/// `count` times in total.
pub struct TombstoneFilter<'a, const D: usize> {
    tombstones: &'a Tombstones<D>,
    used: HashMap<TombstoneKey<D>, u32>,
}

impl<'a, const D: usize> TombstoneFilter<'a, D> {
    /// In-place multiset filtering of a query's appended result run:
    /// compacts `out[start..]` down to the admitted items. This is the
    /// shared per-component step of every multi-component window query
    /// (LPR-tree and pr-live snapshots).
    pub fn retain_admitted(&mut self, out: &mut Vec<Item<D>>, start: usize) {
        if self.tombstones.is_empty() {
            return;
        }
        let mut keep = start;
        for i in start..out.len() {
            let item = out[i];
            if self.admit(&item) {
                out.swap(keep, i);
                keep += 1;
            }
        }
        out.truncate(keep);
    }

    /// Returns `true` if this stored copy of `item` is live (should be
    /// reported), consuming one tombstone otherwise.
    pub fn admit(&mut self, item: &Item<D>) -> bool {
        if self.tombstones.is_empty() {
            return true;
        }
        let key = TombstoneKey::of(item);
        let Some(&count) = self.tombstones.map.get(&key) else {
            return true;
        };
        let used = self.used.entry(key).or_insert(0);
        if *used < count {
            *used += 1;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_geom::Rect;

    fn item(id: u32, x: f64) -> Item<2> {
        Item::new(Rect::xyxy(x, 0.0, x + 1.0, 1.0), id)
    }

    #[test]
    fn add_count_consume_roundtrip() {
        let mut t = Tombstones::<2>::new();
        assert!(t.is_empty());
        t.add(&item(1, 0.0));
        t.add(&item(1, 0.0));
        t.add(&item(2, 5.0));
        assert_eq!(t.total(), 3);
        assert_eq!(t.count(&item(1, 0.0)), 2);
        // Same id, different rect: distinct key.
        assert_eq!(t.count(&item(1, 9.0)), 0);
        assert!(t.consume(&item(1, 0.0)));
        assert_eq!(t.count(&item(1, 0.0)), 1);
        assert!(t.consume(&item(1, 0.0)));
        assert!(!t.consume(&item(1, 0.0)));
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn filter_is_multiset_subtraction() {
        let mut t = Tombstones::<2>::new();
        t.add(&item(7, 1.0));
        let mut f = t.filter();
        // Two stored copies, one tombstone: exactly one admitted.
        assert!(!f.admit(&item(7, 1.0)));
        assert!(f.admit(&item(7, 1.0)));
        assert!(f.admit(&item(8, 1.0)));
    }

    #[test]
    fn subtract_removes_only_consumed() {
        let mut t = Tombstones::<2>::new();
        t.add(&item(1, 0.0));
        t.add(&item(2, 0.0));
        let mut consumed = Tombstones::<2>::new();
        consumed.add(&item(1, 0.0));
        consumed.add(&item(3, 0.0)); // not present: ignored
        t.subtract(&consumed);
        assert_eq!(t.total(), 1);
        assert_eq!(t.count(&item(2, 0.0)), 1);
    }

    #[test]
    fn key_roundtrips_to_item() {
        let it = item(42, -3.25);
        assert_eq!(TombstoneKey::of(&it).to_item(), it);
    }

    #[test]
    fn identity_is_bitwise_not_numeric() {
        let pos = Item::new(Rect::xyxy(0.0, 0.0, 1.0, 1.0), 7);
        let neg = Item::new(Rect::xyxy(-0.0, 0.0, 1.0, 1.0), 7);
        // f64 PartialEq says the rects are equal; the identity does not.
        assert_eq!(pos.rect, neg.rect);
        assert!(same_identity(&pos, &pos));
        assert!(!same_identity(&pos, &neg));
    }
}
