//! The LPR-tree: a dynamized PR-tree via the external logarithmic method.
//!
//! §1.2 of the paper: "the external logarithmic method [4, 20] can be
//! used to develop a structure that supports insertions and deletions in
//! `O(log_B N/M + (1/B)(log_{M/B} N/B)(log₂ N/M))` and `O(log_B N/M)`
//! I/Os amortized, respectively, while maintaining the optimal query
//! performance"; §4 lists experimenting with it as future work — done
//! here.
//!
//! Structure: an in-memory buffer of up to `buffer_cap` items plus
//! components `T_0, T_1, …` where `T_i` is a bulk-loaded PR-tree of at
//! most `buffer_cap · 2^i` items. A buffer overflow rebuilds into the
//! first empty slot `j`, merging the buffer with all of `T_0..T_{j-1}`
//! (whose combined size always fits, since capacities are geometric).
//! All slotting/merge/compaction decisions live in the reusable
//! [`GeometricPolicy`], which the durable `pr-live` index shares.
//! Deletions are [`Tombstones`] — counted `(id, rect)` identities, so
//! delete-then-reinsert of the same id is handled correctly — compacted
//! by a global rebuild once half the stored items are dead. A window
//! query fans out over the buffer and every component through the
//! decode-free engine (one shared [`QueryScratch`], zero allocations in
//! steady state) and filters tombstones — each component is a PR-tree,
//! so the per-component cost keeps the `O(√(N/B) + T/B)` guarantee, at
//! the price of an `O(log N)` multiplicative fan-out.

use crate::bulk::pr::PrTreeLoader;
use crate::bulk::BulkLoader;
use crate::dynamic::policy::GeometricPolicy;
use crate::dynamic::tombstone::{same_identity, Tombstones};
use crate::params::TreeParams;
use crate::query::QueryStats;
use crate::scratch::QueryScratch;
use crate::tree::RTree;
use pr_em::{BlockDevice, BlockId, EmError};
use pr_geom::{Item, Point, Rect};
use std::sync::Arc;

/// A dynamized PR-tree (logarithmic method).
pub struct LprTree<const D: usize> {
    dev: Arc<dyn BlockDevice>,
    params: TreeParams,
    loader: PrTreeLoader,
    policy: GeometricPolicy,
    buffer: Vec<Item<D>>,
    components: Vec<Option<RTree<D>>>,
    tombstones: Tombstones<D>,
    live: u64,
    rebuilds: u64,
}

impl<const D: usize> LprTree<D> {
    /// Creates an empty LPR-tree. `buffer_cap` is the in-memory buffer
    /// size (the method's `M`-analogue); a multiple of the leaf capacity
    /// keeps component 0 at least one full leaf.
    pub fn new(dev: Arc<dyn BlockDevice>, params: TreeParams, buffer_cap: usize) -> Self {
        LprTree {
            dev,
            params,
            loader: PrTreeLoader::default(),
            policy: GeometricPolicy::new(buffer_cap),
            buffer: Vec::new(),
            components: Vec::new(),
            tombstones: Tombstones::new(),
            live: 0,
            rebuilds: 0,
        }
    }

    /// Live item count (inserted − deleted).
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when no live items remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of non-empty components (the query fan-out).
    pub fn num_components(&self) -> usize {
        self.components.iter().flatten().count()
    }

    /// How many component rebuilds have happened (amortization metric).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The backing device (for I/O accounting).
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }

    /// The component-management policy in force.
    pub fn policy(&self) -> &GeometricPolicy {
        &self.policy
    }

    /// Total tombstones currently recorded (dead items awaiting merge).
    pub fn num_tombstones(&self) -> u64 {
        self.tombstones.total()
    }

    /// Inserts an item (ids must be unique among live items).
    pub fn insert(&mut self, item: Item<D>) -> Result<(), EmError> {
        self.buffer.push(item);
        self.live += 1;
        if self.buffer.len() >= self.policy.buffer_cap() {
            self.flush()?;
        }
        Ok(())
    }

    /// Deletes by id + rectangle (checked against live items). Returns
    /// `false` if no live item matches.
    pub fn delete(&mut self, item: &Item<D>) -> Result<bool, EmError> {
        if let Some(pos) = self.buffer.iter().position(|b| same_identity(b, item)) {
            self.buffer.swap_remove(pos);
            self.live -= 1;
            return Ok(true);
        }
        // Count stored copies of this exact (id, rect) identity; the
        // item is live iff more copies are stored than tombstoned. (An
        // id-only check would wrongly reject deleting a *reinserted*
        // item whose earlier incarnation was tombstoned.)
        let mut scratch = QueryScratch::new();
        let mut hits = Vec::new();
        let mut copies = 0u64;
        for c in self.components.iter().flatten() {
            c.window_into(&item.rect, &mut scratch, &mut hits)?;
            copies += hits.iter().filter(|h| same_identity(h, item)).count() as u64;
        }
        if copies <= self.tombstones.count(item) as u64 {
            return Ok(false);
        }
        self.tombstones.add(item);
        self.live -= 1;
        // Compact once half the stored items are dead.
        let stored: u64 = self
            .components
            .iter()
            .flatten()
            .map(|c| c.len())
            .sum::<u64>();
        if self
            .policy
            .needs_compaction(self.tombstones.total(), stored)
        {
            self.rebuild_all()?;
        }
        Ok(true)
    }

    /// Window query over buffer + all components, filtering tombstones.
    /// The buffer is main-memory resident and costs no I/O.
    pub fn window(&self, query: &Rect<D>) -> Result<(Vec<Item<D>>, QueryStats), EmError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = self.window_into(query, &mut scratch, &mut out)?;
        Ok((out, stats))
    }

    /// [`LprTree::window`] with caller-owned buffers: one reused
    /// [`QueryScratch`] is threaded through **every** component's
    /// decode-free traversal ([`RTree::window_append_into`]), so a hot
    /// loop over an LPR-tree allocates nothing in steady state despite
    /// the logarithmic fan-out.
    pub fn window_into(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<Item<D>>,
    ) -> Result<QueryStats, EmError> {
        out.clear();
        out.extend(self.buffer.iter().filter(|i| i.rect.intersects(query)));
        let mut stats = QueryStats::default();
        let mut filter = self.tombstones.filter();
        for c in self.components.iter().flatten() {
            let start = out.len();
            let s = c.window_append_into(query, scratch, out)?;
            stats.absorb_traversal(&s);
            filter.retain_admitted(out, start);
        }
        stats.results = out.len() as u64;
        Ok(stats)
    }

    /// The `k` live items nearest to `query` (closest first), with
    /// aggregate traversal statistics.
    pub fn nearest_neighbors(
        &self,
        query: &Point<D>,
        k: usize,
    ) -> Result<(Vec<(Item<D>, f64)>, QueryStats), EmError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = self.nearest_neighbors_into(query, k, &mut scratch, &mut out)?;
        Ok((out, stats))
    }

    /// [`LprTree::nearest_neighbors`] with caller-owned buffers. Each
    /// component answers through the decode-free best-first engine with
    /// the shared scratch and — the tombstone-aware part — the query's
    /// multiset [`crate::dynamic::tombstone::TombstoneFilter`] applied
    /// **inside** the best-first loop
    /// ([`RTree::nearest_neighbors_filtered_into`]): a dead head popped
    /// off a component's heap is skipped in place, so each component
    /// returns exactly its `k` nearest *live* items. The per-component
    /// lists are then merged and the global top `k` kept. The previous
    /// implementation over-fetched every component by the outstanding
    /// tombstone count, degenerating toward a full component scan as
    /// tombstones approached the 50% compaction trigger.
    ///
    /// Sharing one filter across components is exact for the same
    /// reason window queries share one: for a key with `m` stored
    /// copies and `c` tombstones, exactly `m − c` copies are admitted
    /// in total, and aliased copies are bit-identical so *which* ones
    /// survive is unobservable. Per-component `k` suffices: if a
    /// component already admitted `k` items nearer than some live item
    /// `x`, then `k` live items nearer than `x` exist globally and `x`
    /// cannot be in the global top `k`.
    pub fn nearest_neighbors_into(
        &self,
        query: &Point<D>,
        k: usize,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<(Item<D>, f64)>,
    ) -> Result<QueryStats, EmError> {
        out.clear();
        let mut stats = QueryStats::default();
        if k == 0 {
            return Ok(stats);
        }
        let mut merged: Vec<(Item<D>, f64)> = self
            .buffer
            .iter()
            .map(|i| (*i, i.rect.min_dist2(query).sqrt()))
            .collect();
        let mut filter = self.tombstones.filter();
        let mut tmp = Vec::new();
        for c in self.components.iter().flatten() {
            let s = c.nearest_neighbors_filtered_into(query, k, scratch, &mut tmp, |it| {
                filter.admit(it)
            })?;
            stats.absorb_traversal(&s);
            merged.append(&mut tmp);
        }
        // Total order: distance, then id (distances are finite).
        merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        merged.truncate(k);
        out.extend(merged);
        stats.results = out.len() as u64;
        Ok(stats)
    }

    /// All live items (test helper; costs a full scan).
    pub fn items(&self) -> Result<Vec<Item<D>>, EmError> {
        let mut out = self.buffer.clone();
        let mut filter = self.tombstones.filter();
        for c in self.components.iter().flatten() {
            for it in c.items()? {
                if filter.admit(&it) {
                    out.push(it);
                }
            }
        }
        Ok(out)
    }

    /// Buffer overflow: merge buffer + components `0..j` into slot `j`,
    /// where `j` is the first empty slot (geometric capacities guarantee
    /// the fit).
    fn flush(&mut self) -> Result<(), EmError> {
        let occupied: Vec<bool> = self.components.iter().map(|c| c.is_some()).collect();
        let j = self.policy.flush_slot(&occupied);
        let mut items: Vec<Item<D>> = std::mem::take(&mut self.buffer);
        let mut freed_pages: Vec<BlockId> = Vec::new();
        for i in 0..j.min(self.components.len()) {
            if let Some(c) = self.components[i].take() {
                collect_pages(&c, &mut freed_pages)?;
                for it in c.items()? {
                    if self.tombstones.consume(&it) {
                        continue; // drop dead items during the merge
                    }
                    items.push(it);
                }
            }
        }
        debug_assert!(items.len() as u64 <= self.policy.slot_cap(j));
        if self.components.len() <= j {
            self.components.resize_with(j + 1, || None);
        }
        if !items.is_empty() {
            let tree = self
                .loader
                .load(Arc::clone(&self.dev), self.params, items)?;
            self.components[j] = Some(tree);
        }
        self.dev.discard(&freed_pages);
        self.rebuilds += 1;
        Ok(())
    }

    /// Global compaction: everything into one fresh PR-tree.
    fn rebuild_all(&mut self) -> Result<(), EmError> {
        let mut items: Vec<Item<D>> = std::mem::take(&mut self.buffer);
        let mut freed_pages: Vec<BlockId> = Vec::new();
        for slot in &mut self.components {
            if let Some(c) = slot.take() {
                collect_pages(&c, &mut freed_pages)?;
                for it in c.items()? {
                    if !self.tombstones.consume(&it) {
                        items.push(it);
                    }
                }
            }
        }
        // Every tombstone pointed at a component item, and every
        // component was just drained.
        debug_assert!(self.tombstones.is_empty(), "tombstone left after rebuild");
        self.tombstones.clear();
        self.components.clear();
        if !items.is_empty() {
            let j = self.policy.placement_slot(items.len() as u64);
            self.components.resize_with(j + 1, || None);
            let tree = self
                .loader
                .load(Arc::clone(&self.dev), self.params, items)?;
            self.components[j] = Some(tree);
        }
        self.dev.discard(&freed_pages);
        self.rebuilds += 1;
        Ok(())
    }
}

fn collect_pages<const D: usize>(tree: &RTree<D>, out: &mut Vec<BlockId>) -> Result<(), EmError> {
    let mut stack = vec![tree.root()];
    while let Some(p) = stack.pop() {
        out.push(p);
        let (node, _) = tree.read_node(p)?;
        if !node.is_leaf() {
            stack.extend(node.entries.iter().map(|e| e.ptr as BlockId));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::brute_force_window;
    use pr_em::MemDevice;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn make(buffer_cap: usize) -> LprTree<2> {
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        LprTree::new(dev, params, buffer_cap)
    }

    fn item(id: u32, rng: &mut SmallRng) -> Item<2> {
        let x: f64 = rng.gen_range(0.0..100.0);
        let y: f64 = rng.gen_range(0.0..100.0);
        Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), id)
    }

    #[test]
    fn inserts_queryable_across_flushes() {
        let mut t = make(16);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut all = Vec::new();
        for id in 0..500 {
            let it = item(id, &mut rng);
            t.insert(it).unwrap();
            all.push(it);
        }
        assert_eq!(t.len(), 500);
        assert!(t.num_components() >= 1);
        for _ in 0..20 {
            let x: f64 = rng.gen_range(0.0..90.0);
            let y: f64 = rng.gen_range(0.0..90.0);
            let q = Rect::xyxy(x, y, x + 10.0, y + 10.0);
            let (mut got, _) = t.window(&q).unwrap();
            let mut want = brute_force_window(&all, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn component_sizes_respect_geometric_caps() {
        let mut t = make(8);
        let mut rng = SmallRng::seed_from_u64(2);
        for id in 0..300 {
            t.insert(item(id, &mut rng)).unwrap();
        }
        for (i, slot) in t.components.iter().enumerate() {
            if let Some(c) = slot {
                assert!(
                    c.len() <= t.policy.slot_cap(i),
                    "component {i} holds {} > cap {}",
                    c.len(),
                    t.policy.slot_cap(i)
                );
                c.validate().unwrap().assert_ok();
            }
        }
    }

    #[test]
    fn delete_from_buffer_and_components() {
        let mut t = make(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut all = Vec::new();
        for id in 0..100 {
            let it = item(id, &mut rng);
            t.insert(it).unwrap();
            all.push(it);
        }
        // Delete half (some live in components, some in the buffer).
        for it in all.iter().take(50) {
            assert!(t.delete(it).unwrap(), "missing {it:?}");
        }
        assert_eq!(t.len(), 50);
        let survivors: Vec<Item<2>> = all[50..].to_vec();
        let q = Rect::xyxy(0.0, 0.0, 100.0, 100.0);
        let (mut got, _) = t.window(&q).unwrap();
        got.sort_by_key(|i| i.id);
        let mut want = survivors.clone();
        want.sort_by_key(|i| i.id);
        assert_eq!(got, want);
        // Double delete fails.
        assert!(!t.delete(&all[0]).unwrap());
    }

    #[test]
    fn tombstone_compaction_triggers() {
        let mut t = make(8);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut all = Vec::new();
        for id in 0..128 {
            let it = item(id, &mut rng);
            t.insert(it).unwrap();
            all.push(it);
        }
        // Flush the buffer fully into components, then kill 80%.
        while !t.buffer.is_empty() {
            let pad = item(10_000 + t.live as u32, &mut rng);
            t.insert(pad).unwrap();
            all.push(pad);
        }
        let victims: Vec<Item<2>> = all.iter().take(all.len() * 4 / 5).copied().collect();
        let rebuilds_before = t.rebuilds();
        for v in &victims {
            t.delete(v).unwrap();
        }
        // The invariant: at most half the stored items are dead, enforced
        // by at least one compaction during this delete storm.
        let stored: u64 = t.components.iter().flatten().map(|c| c.len()).sum();
        assert!(
            t.tombstones.total() * 2 <= stored.max(1),
            "{} tombstones vs {stored} stored",
            t.tombstones.total()
        );
        assert!(t.rebuilds() > rebuilds_before, "no compaction happened");
        let (got, _) = t.window(&Rect::xyxy(0.0, 0.0, 100.0, 100.0)).unwrap();
        assert_eq!(got.len() as u64, t.len());
    }

    #[test]
    fn interleaved_ops_match_reference() {
        let mut t = make(12);
        let mut reference: Vec<Item<2>> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut next = 0u32;
        for step in 0..1500 {
            if reference.is_empty() || rng.gen_bool(0.65) {
                let it = item(next, &mut rng);
                next += 1;
                t.insert(it).unwrap();
                reference.push(it);
            } else {
                let pos = rng.gen_range(0..reference.len());
                let victim = reference.swap_remove(pos);
                assert!(t.delete(&victim).unwrap());
            }
            if step % 250 == 249 {
                let q = Rect::xyxy(20.0, 20.0, 60.0, 60.0);
                let (mut got, _) = t.window(&q).unwrap();
                let mut want = brute_force_window(&reference, &q);
                got.sort_by_key(|i| i.id);
                want.sort_by_key(|i| i.id);
                assert_eq!(got, want, "step {step}");
            }
        }
        assert_eq!(t.len(), reference.len() as u64);
    }

    #[test]
    fn memory_is_reclaimed_on_rebuild() {
        let params = TreeParams::with_cap::<2>(8);
        let dev = Arc::new(MemDevice::new(params.page_size));
        let mut t = LprTree::<2>::new(Arc::clone(&dev) as Arc<dyn BlockDevice>, params, 8);
        let mut rng = SmallRng::seed_from_u64(6);
        for id in 0..2000 {
            t.insert(item(id, &mut rng)).unwrap();
        }
        // Stored pages should be near the live tree sizes, not the sum of
        // every tree ever built.
        let live_pages: u64 = t
            .components
            .iter()
            .flatten()
            .map(|c| c.stats().unwrap().num_nodes())
            .sum();
        let resident = dev.resident_bytes() as u64 / params.page_size as u64;
        assert!(
            resident < live_pages * 3,
            "resident {resident} blocks vs live {live_pages}: rebuilds leak pages"
        );
    }
}
