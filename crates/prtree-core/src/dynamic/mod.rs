//! Dynamic maintenance of R-trees.
//!
//! Two roads to a dynamic PR-tree, both discussed in the paper:
//!
//! * [`update`] — classic Guttman heuristics (insert via ChooseLeaf with
//!   [`split::SplitPolicy`], delete via CondenseTree). Work on any tree
//!   produced by any loader, but void the PR-tree's worst-case query
//!   guarantee (§4).
//! * [`logarithmic`] — the **LPR-tree**: the external logarithmic method
//!   over bulk-loaded PR-tree components, which keeps the query bound at
//!   the price of a logarithmic component fan-out (§1.2).

pub mod logarithmic;
pub mod policy;
pub mod split;
pub mod tombstone;
pub mod update;

pub use logarithmic::LprTree;
pub use policy::GeometricPolicy;
pub use split::SplitPolicy;
pub use tombstone::{same_identity, TombstoneFilter, TombstoneKey, Tombstones};
