//! The logarithmic method's component-management policy, factored out of
//! [`crate::dynamic::logarithmic::LprTree`] so any owner of a component
//! list — the in-memory LPR-tree or the durable `pr-live` index — makes
//! the same slotting, merging, and compaction decisions.
//!
//! Components live in geometric *slots*: slot `i` holds a bulk-loaded
//! tree of at most `buffer_cap · 2^i` items. A buffer overflow merges the
//! buffer with every component below the first empty slot `j` and
//! bulk-loads the union into `j` (the sum of a full buffer and full
//! slots `0..j` is exactly slot `j`'s capacity). Deletions tombstone;
//! once the dead outnumber half the stored items a global rebuild
//! reclaims them — so queries never scan more than 2× the live set and
//! the amortized analysis of §1.2 is preserved.

/// Slot arithmetic and merge/compaction decisions of the external
/// logarithmic method. Pure: holds no component state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometricPolicy {
    buffer_cap: usize,
}

impl GeometricPolicy {
    /// A policy for an in-memory buffer of `buffer_cap` items (the
    /// method's `M`-analogue; clamped to at least 1).
    pub fn new(buffer_cap: usize) -> Self {
        GeometricPolicy {
            buffer_cap: buffer_cap.max(1),
        }
    }

    /// The buffer capacity this policy was built for.
    pub fn buffer_cap(&self) -> usize {
        self.buffer_cap
    }

    /// Capacity of component slot `i` (`buffer_cap · 2^i`, saturating).
    pub fn slot_cap(&self, i: usize) -> u64 {
        if i >= 64 {
            return u64::MAX;
        }
        (self.buffer_cap as u64).saturating_shl(i as u32)
    }

    /// The slot a buffer overflow rebuilds into: the first empty one.
    /// Slots `0..j` are the merge inputs; geometric capacities guarantee
    /// buffer + inputs fit in `j`.
    pub fn flush_slot(&self, occupied: &[bool]) -> usize {
        occupied.iter().position(|&o| !o).unwrap_or(occupied.len())
    }

    /// Merge-target selection for an incoming batch of arbitrary size
    /// (`sizes[i]` = items in slot `i`, 0 = empty): the smallest slot
    /// `t` such that the batch plus **every occupied slot `0..=t`**
    /// (they all become merge inputs) fits `t`'s capacity. For a batch
    /// of exactly `buffer_cap` this reduces to [`Self::flush_slot`];
    /// larger batches (a late-sealed memtable under write bursts)
    /// escalate as many extra levels as the geometry requires.
    pub fn merge_target(&self, sizes: &[u64], incoming: u64) -> usize {
        let mut t = 0;
        let mut total = incoming;
        loop {
            if t < sizes.len() {
                total += sizes[t];
            }
            // Once t passes the occupied slots, total is fixed while the
            // capacity keeps doubling — the loop always terminates.
            if self.slot_cap(t) >= total {
                return t;
            }
            t += 1;
        }
    }

    /// The smallest slot that can hold `n` items (placement after a
    /// global rebuild).
    pub fn placement_slot(&self, n: u64) -> usize {
        let mut j = 0;
        while self.slot_cap(j) < n {
            j += 1;
        }
        j
    }

    /// True when enough items are dead that a global rebuild is owed:
    /// tombstones outnumber half of everything stored in components.
    pub fn needs_compaction(&self, dead: u64, stored: u64) -> bool {
        stored > 0 && dead * 2 > stored
    }
}

/// `u64::saturating_shl` is unstable; the policy needs exactly this.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_caps_are_geometric() {
        let p = GeometricPolicy::new(8);
        assert_eq!(p.slot_cap(0), 8);
        assert_eq!(p.slot_cap(1), 16);
        assert_eq!(p.slot_cap(5), 256);
        assert_eq!(p.slot_cap(70), u64::MAX);
        // Large shifts saturate instead of overflowing.
        assert_eq!(p.slot_cap(63), u64::MAX);
    }

    #[test]
    fn flush_slot_is_first_empty() {
        let p = GeometricPolicy::new(8);
        assert_eq!(p.flush_slot(&[]), 0);
        assert_eq!(p.flush_slot(&[true, true, false, true]), 2);
        assert_eq!(p.flush_slot(&[true, true]), 2);
        assert_eq!(p.flush_slot(&[false]), 0);
    }

    #[test]
    fn merge_target_matches_flush_slot_for_small_batches() {
        let p = GeometricPolicy::new(8);
        // 8 incoming into [8, 16, 0]: first empty slot is 2, 8+8+16=32 ≤ 32.
        assert_eq!(p.merge_target(&[8, 16, 0], 8), 2);
        assert_eq!(p.flush_slot(&[true, true, false]), 2);
        // Empty structure: slot 0 unless the batch is oversized.
        assert_eq!(p.merge_target(&[], 8), 0);
        assert_eq!(p.merge_target(&[], 0), 0);
    }

    #[test]
    fn merge_target_escalates_for_oversized_batches() {
        let p = GeometricPolicy::new(8);
        // 100 incoming into an empty structure: needs slot 4 (cap 128).
        assert_eq!(p.merge_target(&[], 100), 4);
        // 20 incoming into [8, 0, 32]: first empty is 1 (cap 16), union
        // 8+20=28 > 16 → escalate to 2, absorbing the 32 there: 60 > 32
        // → escalate to 3 (cap 64): fits.
        assert_eq!(p.merge_target(&[8, 0, 32], 20), 3);
    }

    #[test]
    fn placement_is_smallest_fitting_slot() {
        let p = GeometricPolicy::new(8);
        assert_eq!(p.placement_slot(0), 0);
        assert_eq!(p.placement_slot(8), 0);
        assert_eq!(p.placement_slot(9), 1);
        assert_eq!(p.placement_slot(100), 4); // 8·2^4 = 128
    }

    #[test]
    fn compaction_triggers_past_half_dead() {
        let p = GeometricPolicy::new(8);
        assert!(!p.needs_compaction(0, 0));
        assert!(!p.needs_compaction(5, 10));
        assert!(p.needs_compaction(6, 10));
        // An empty component set never triggers (nothing to rebuild).
        assert!(!p.needs_compaction(1, 0));
    }

    #[test]
    fn cap_is_clamped_to_one() {
        assert_eq!(GeometricPolicy::new(0).buffer_cap(), 1);
    }
}
