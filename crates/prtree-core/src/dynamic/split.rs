//! Node split policies for dynamic insertion.
//!
//! When an insert overflows a node of capacity `B`, the `B + 1` entries
//! must be divided over two nodes. The paper (§4) notes a PR-tree "can be
//! updated using any known update heuristic"; three classics are provided:
//!
//! * [`SplitPolicy::Linear`] — Guttman's O(B) split: seed with the pair
//!   most separated (normalized) along some dimension, then assign the
//!   rest in input order to the needier side.
//! * [`SplitPolicy::Quadratic`] — Guttman's O(B²) split: seed with the
//!   pair wasting the most area together, then repeatedly assign the
//!   entry with the strongest preference.
//! * [`SplitPolicy::RStar`] — the R*-tree split: choose the split axis by
//!   minimum total margin, then the distribution with minimum overlap
//!   (ties: minimum area).

use crate::entry::Entry;
use pr_geom::Rect;

/// Which algorithm divides an overflowing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Guttman's linear-cost split.
    Linear,
    /// Guttman's quadratic-cost split (his recommended default).
    #[default]
    Quadratic,
    /// The R*-tree margin/overlap-driven split.
    RStar,
}

impl SplitPolicy {
    /// Splits `entries` (an overflowed node's contents) into two groups,
    /// each with at least `min_fill` entries.
    pub fn split<const D: usize>(
        &self,
        entries: Vec<Entry<D>>,
        min_fill: usize,
    ) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
        debug_assert!(entries.len() >= 2);
        let min_fill = min_fill.max(1).min(entries.len() / 2);
        match self {
            SplitPolicy::Linear => linear_split(entries, min_fill),
            SplitPolicy::Quadratic => quadratic_split(entries, min_fill),
            SplitPolicy::RStar => rstar_split(entries, min_fill),
        }
    }

    /// All policies (for ablation benches).
    pub fn all() -> [SplitPolicy; 3] {
        [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStar,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SplitPolicy::Linear => "linear",
            SplitPolicy::Quadratic => "quadratic",
            SplitPolicy::RStar => "r*",
        }
    }
}

/// Guttman's LinearPickSeeds + distribute-in-order.
fn linear_split<const D: usize>(
    entries: Vec<Entry<D>>,
    min_fill: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    // Pick seeds: per dimension, find the entry with the highest lo and
    // the one with the lowest hi; normalize their separation by the total
    // extent; take the dimension with the greatest normalized separation.
    let mut best: Option<(f64, usize, usize)> = None;
    for d in 0..D {
        let mut lowest_hi = 0usize;
        let mut highest_lo = 0usize;
        let mut min_lo = f64::INFINITY;
        let mut max_hi = f64::NEG_INFINITY;
        for (i, e) in entries.iter().enumerate() {
            if e.rect.hi_at(d) < entries[lowest_hi].rect.hi_at(d) {
                lowest_hi = i;
            }
            if e.rect.lo_at(d) > entries[highest_lo].rect.lo_at(d) {
                highest_lo = i;
            }
            min_lo = min_lo.min(e.rect.lo_at(d));
            max_hi = max_hi.max(e.rect.hi_at(d));
        }
        let width = (max_hi - min_lo).max(f64::MIN_POSITIVE);
        let sep = (entries[highest_lo].rect.lo_at(d) - entries[lowest_hi].rect.hi_at(d)) / width;
        if highest_lo != lowest_hi && best.as_ref().is_none_or(|b| sep > b.0) {
            best = Some((sep, lowest_hi, highest_lo));
        }
    }
    let (_, seed_a, seed_b) = best.unwrap_or((0.0, 0, 1));
    distribute_remaining(entries, seed_a, seed_b, min_fill, false)
}

/// Guttman's QuadraticPickSeeds + PickNext.
fn quadratic_split<const D: usize>(
    entries: Vec<Entry<D>>,
    min_fill: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let mut seed_a = 0;
    let mut seed_b = 1;
    let mut worst = f64::NEG_INFINITY;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].rect.mbr_with(&entries[j].rect).area()
                - entries[i].rect.area()
                - entries[j].rect.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    distribute_remaining(entries, seed_a, seed_b, min_fill, true)
}

/// Assigns non-seed entries to the two groups. With `pick_next` (the
/// quadratic variant) the entry with the largest preference difference
/// goes first; otherwise input order (the linear variant).
fn distribute_remaining<const D: usize>(
    entries: Vec<Entry<D>>,
    seed_a: usize,
    seed_b: usize,
    min_fill: usize,
    pick_next: bool,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let total = entries.len();
    let mut rest: Vec<Entry<D>> = Vec::with_capacity(total - 2);
    let mut group_a = Vec::with_capacity(total);
    let mut group_b = Vec::with_capacity(total);
    let mut mbr_a = Rect::EMPTY;
    let mut mbr_b = Rect::EMPTY;
    for (i, e) in entries.into_iter().enumerate() {
        if i == seed_a {
            mbr_a = e.rect;
            group_a.push(e);
        } else if i == seed_b {
            mbr_b = e.rect;
            group_b.push(e);
        } else {
            rest.push(e);
        }
    }

    while !rest.is_empty() {
        // Force-assign when one group must absorb everything left to
        // reach minimum fill.
        let left = rest.len();
        if group_a.len() + left <= min_fill {
            for e in rest.drain(..) {
                mbr_a = mbr_a.mbr_with(&e.rect);
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + left <= min_fill {
            for e in rest.drain(..) {
                mbr_b = mbr_b.mbr_with(&e.rect);
                group_b.push(e);
            }
            break;
        }

        let idx = if pick_next {
            // PickNext: maximal |d_a − d_b|.
            let mut best_idx = 0;
            let mut best_diff = f64::NEG_INFINITY;
            for (i, e) in rest.iter().enumerate() {
                let da = mbr_a.enlargement(&e.rect);
                let db = mbr_b.enlargement(&e.rect);
                let diff = (da - db).abs();
                if diff > best_diff {
                    best_diff = diff;
                    best_idx = i;
                }
            }
            best_idx
        } else {
            0
        };
        let e = rest.swap_remove(idx);
        let da = mbr_a.enlargement(&e.rect);
        let db = mbr_b.enlargement(&e.rect);
        // Prefer smaller enlargement; ties: smaller area, then fewer
        // entries (Guttman's tie-breaking).
        let to_a = match da.partial_cmp(&db).expect("finite enlargements") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match mbr_a.area().partial_cmp(&mbr_b.area()).unwrap() {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => group_a.len() <= group_b.len(),
            },
        };
        if to_a {
            mbr_a = mbr_a.mbr_with(&e.rect);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.mbr_with(&e.rect);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// R*-tree split: axis by minimum margin sum, distribution by minimum
/// overlap (ties: minimum area sum).
fn rstar_split<const D: usize>(
    entries: Vec<Entry<D>>,
    min_fill: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let n = entries.len();
    let k_max = n - min_fill;

    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_axis_order: Vec<Entry<D>> = Vec::new();

    for d in 0..D {
        // R* considers sorts by lo and by hi; evaluate both, keep the
        // better margin sum for this axis.
        for by_hi in [false, true] {
            let mut sorted = entries.clone();
            sorted.sort_unstable_by(|a, b| {
                let (ka, kb) = if by_hi {
                    (a.rect.hi_at(d), b.rect.hi_at(d))
                } else {
                    (a.rect.lo_at(d), b.rect.lo_at(d))
                };
                ka.total_cmp(&kb).then_with(|| a.ptr.cmp(&b.ptr))
            });
            let (prefix, suffix) = prefix_suffix_mbrs(&sorted);
            let mut margin_sum = 0.0;
            for k in min_fill..=k_max {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
            if margin_sum < best_axis_margin {
                best_axis_margin = margin_sum;
                best_axis = d;
                best_axis_order = sorted;
            }
        }
    }
    let _ = best_axis;

    // Choose the distribution on the winning ordering.
    let sorted = best_axis_order;
    let (prefix, suffix) = prefix_suffix_mbrs(&sorted);
    let mut best_k = min_fill;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in min_fill..=k_max {
        let overlap = prefix[k - 1].overlap_area(&suffix[k]);
        let area = prefix[k - 1].area() + suffix[k].area();
        if (overlap, area) < best_key {
            best_key = (overlap, area);
            best_k = k;
        }
    }
    let mut left = sorted;
    let right = left.split_off(best_k);
    (left, right)
}

fn prefix_suffix_mbrs<const D: usize>(sorted: &[Entry<D>]) -> (Vec<Rect<D>>, Vec<Rect<D>>) {
    let n = sorted.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Rect::EMPTY;
    for e in sorted {
        acc = acc.mbr_with(&e.rect);
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::EMPTY; n];
    let mut acc = Rect::EMPTY;
    for (i, e) in sorted.iter().enumerate().rev() {
        acc = acc.mbr_with(&e.rect);
        suffix[i] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(x: f64, y: f64, id: u32) -> Entry<2> {
        Entry::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), id)
    }

    fn check_split(policy: SplitPolicy, entries: Vec<Entry<2>>, min_fill: usize) {
        let n = entries.len();
        let mut ids: Vec<u32> = entries.iter().map(|e| e.ptr).collect();
        ids.sort_unstable();
        let (a, b) = policy.split(entries, min_fill);
        assert!(a.len() >= min_fill.min(n / 2), "{policy:?}: left too small");
        assert!(
            b.len() >= min_fill.min(n / 2),
            "{policy:?}: right too small"
        );
        assert_eq!(a.len() + b.len(), n);
        let mut got: Vec<u32> = a.iter().chain(&b).map(|e| e.ptr).collect();
        got.sort_unstable();
        assert_eq!(got, ids, "{policy:?}: entries lost or duplicated");
    }

    #[test]
    fn all_policies_preserve_entries_and_min_fill() {
        for policy in SplitPolicy::all() {
            // Two obvious clusters.
            let mut entries = Vec::new();
            for i in 0..5 {
                entries.push(entry(i as f64 * 0.1, 0.0, i));
            }
            for i in 5..11 {
                entries.push(entry(100.0 + i as f64 * 0.1, 50.0, i));
            }
            check_split(policy, entries, 4);
        }
    }

    #[test]
    fn clusters_are_separated() {
        for policy in SplitPolicy::all() {
            let mut entries = Vec::new();
            for i in 0..6 {
                entries.push(entry(i as f64 * 0.01, 0.0, i));
            }
            for i in 6..12 {
                entries.push(entry(1000.0, i as f64 * 0.01, i));
            }
            let (a, b) = policy.split(entries, 3);
            let cluster_of = |e: &Entry<2>| u32::from(e.rect.lo_at(0) > 500.0);
            let ca: Vec<u32> = a.iter().map(cluster_of).collect();
            let cb: Vec<u32> = b.iter().map(cluster_of).collect();
            assert!(
                ca.iter().all(|&c| c == ca[0]) && cb.iter().all(|&c| c == cb[0]),
                "{policy:?} mixed two well-separated clusters: {ca:?} | {cb:?}"
            );
            assert_ne!(ca[0], cb[0]);
        }
    }

    #[test]
    fn degenerate_identical_rectangles() {
        for policy in SplitPolicy::all() {
            let entries: Vec<Entry<2>> = (0..8).map(|i| entry(5.0, 5.0, i)).collect();
            check_split(policy, entries, 3);
        }
    }

    #[test]
    fn minimal_input_two_entries() {
        for policy in SplitPolicy::all() {
            let entries = vec![entry(0.0, 0.0, 0), entry(10.0, 10.0, 1)];
            let (a, b) = policy.split(entries, 1);
            assert_eq!(a.len(), 1);
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn rstar_minimizes_overlap_on_grid() {
        // 4×4 grid of unit squares: the R* split along a grid line has
        // zero overlap.
        let mut entries = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                entries.push(Entry::new(
                    Rect::xyxy(
                        i as f64 * 2.0,
                        j as f64 * 2.0,
                        i as f64 * 2.0 + 1.0,
                        j as f64 * 2.0 + 1.0,
                    ),
                    (i * 4 + j) as u32,
                ));
            }
        }
        let (a, b) = SplitPolicy::RStar.split(entries, 4);
        let mbr_a = Entry::mbr(&a);
        let mbr_b = Entry::mbr(&b);
        assert_eq!(mbr_a.overlap_area(&mbr_b), 0.0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(SplitPolicy::Linear.name(), "linear");
        assert_eq!(SplitPolicy::Quadratic.name(), "quadratic");
        assert_eq!(SplitPolicy::RStar.name(), "r*");
        assert_eq!(SplitPolicy::default(), SplitPolicy::Quadratic);
    }
}
