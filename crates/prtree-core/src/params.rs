//! Tree parameters: page size, fanout, fill factors.

use crate::entry::Entry;
use crate::page::PAGE_HEADER_SIZE;
use pr_em::Record;

/// Static configuration of an R-tree.
///
/// `leaf_cap` is the paper's `B` (rectangles per leaf); `node_cap` is the
/// internal fanout. With the paper's 4KB pages and 36-byte entries both
/// are 113 (§3.1). Tests use tiny capacities to force deep trees on small
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Page (disk block) size in bytes.
    pub page_size: usize,
    /// Maximum entries in a leaf (`B`).
    pub leaf_cap: usize,
    /// Maximum children of an internal node.
    pub node_cap: usize,
    /// Minimum fill for dynamically maintained nodes, as a percentage of
    /// capacity (Guttman's `m`; 40% is the classic choice). Bulk loaders
    /// ignore it.
    pub min_fill_percent: u32,
}

impl TreeParams {
    /// Parameters derived from a page size: capacity is however many
    /// entries fit after the header.
    ///
    /// # Panics
    /// Panics if fewer than 2 entries fit in a page.
    pub fn for_page_size<const D: usize>(page_size: usize) -> Self {
        let cap = (page_size - PAGE_HEADER_SIZE) / Entry::<D>::SIZE;
        assert!(cap >= 2, "page size {page_size} too small for D={D}");
        TreeParams {
            page_size,
            leaf_cap: cap,
            node_cap: cap,
            min_fill_percent: 40,
        }
    }

    /// The paper's exact experimental setup for 2-D data: 4KB pages,
    /// 36-byte entries, fanout 113.
    pub fn paper_2d() -> Self {
        let p = Self::for_page_size::<2>(4096);
        debug_assert_eq!(p.leaf_cap, 113, "paper reports fanout 113");
        p
    }

    /// Small explicit capacities for tests; computes the page size needed
    /// to hold `cap` entries.
    pub fn with_cap<const D: usize>(cap: usize) -> Self {
        assert!(cap >= 2, "capacity must be at least 2");
        TreeParams {
            page_size: PAGE_HEADER_SIZE + cap * Entry::<D>::SIZE,
            leaf_cap: cap,
            node_cap: cap,
            min_fill_percent: 40,
        }
    }

    /// Largest capacity of any node type.
    pub fn max_cap(&self) -> usize {
        self.leaf_cap.max(self.node_cap)
    }

    /// Capacity at a given level (level 0 = leaves).
    pub fn cap_at_level(&self, level: u8) -> usize {
        if level == 0 {
            self.leaf_cap
        } else {
            self.node_cap
        }
    }

    /// Guttman's minimum entries for a non-root node at `level`.
    pub fn min_fill(&self, level: u8) -> usize {
        (self.cap_at_level(level) * self.min_fill_percent as usize / 100).max(1)
    }
}

impl Default for TreeParams {
    /// Defaults to the paper's 2-D setup.
    fn default() -> Self {
        TreeParams::paper_2d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let p = TreeParams::paper_2d();
        assert_eq!(p.page_size, 4096);
        // §3.1: "The disk block size was chosen to be 4KB, resulting in a
        // maximum fanout of 113."
        assert_eq!(p.leaf_cap, 113);
        assert_eq!(p.node_cap, 113);
    }

    #[test]
    fn with_cap_roundtrips_through_page_size() {
        let p = TreeParams::with_cap::<2>(8);
        assert_eq!(p.leaf_cap, 8);
        let q = TreeParams::for_page_size::<2>(p.page_size);
        assert_eq!(q.leaf_cap, 8);
    }

    #[test]
    fn min_fill_is_40_percent() {
        let p = TreeParams::with_cap::<2>(10);
        assert_eq!(p.min_fill(0), 4);
        assert_eq!(p.min_fill(1), 4);
        // Never zero, even for tiny capacities.
        let tiny = TreeParams::with_cap::<2>(2);
        assert_eq!(tiny.min_fill(0), 1);
    }

    #[test]
    fn three_d_fanout() {
        let p = TreeParams::for_page_size::<3>(4096);
        // 52-byte entries -> (4096-16)/52 = 78.
        assert_eq!(p.leaf_cap, 78);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn absurdly_small_page_panics() {
        TreeParams::for_page_size::<2>(64);
    }
}
