//! The retained scalar AoS engine — correctness oracle and baseline.
//!
//! This module preserves, verbatim, the query engine this crate shipped
//! before the decode-free SoA read path: decoded [`NodePage`]s with a
//! branchy per-entry `Rect::intersects`/`min_dist2`, fresh `Vec`
//! allocations per query, and an `Arc` clone per cached-node visit. It
//! exists for two reasons:
//!
//! 1. **Oracle.** The engine-equivalence property tests
//!    (`tests/engine_equivalence.rs`) run every loader × dataset through
//!    both engines and assert *identical* results (same items, same
//!    order, same `f64` bits) and *identical* [`QueryStats`] — leaves,
//!    internal nodes, device reads. That is the proof that the SoA
//!    engine changed cost, not answers.
//! 2. **Baseline.** The `hot_query` benchmark measures the new engine
//!    against this one on the same tree, so speedups are attributable to
//!    the read-path representation rather than tree shape or dataset.
//!
//! A [`ReferenceEngine`] models the paper's steady state the old engine
//! ran in: every internal node decoded and pinned in its own AoS map
//! (what `warm_cache` + the frozen snapshot used to hold), leaves read
//! and decoded from the device on every visit. Construct it *after*
//! `warm_cache` when comparing statistics, so both engines see
//! internal-hit/leaf-miss accounting.

use crate::page::NodePage;
use crate::query::QueryStats;
use crate::tree::RTree;
use pr_em::{BlockId, EmError};
use pr_geom::{Item, Point, Rect};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Scalar AoS query engine over a borrowed tree (see module docs).
pub struct ReferenceEngine<'t, const D: usize> {
    tree: &'t RTree<D>,
    /// Every internal node, decoded once — the old engine's post-warm
    /// frozen map.
    pinned: HashMap<BlockId, Arc<NodePage<D>>>,
}

impl<'t, const D: usize> ReferenceEngine<'t, D> {
    /// Decodes and pins all internal nodes of `tree` (bypassing its
    /// cache, so building or querying the reference engine never
    /// perturbs the real engine's hit/miss counters).
    pub fn new(tree: &'t RTree<D>) -> Result<Self, EmError> {
        let mut pinned = HashMap::new();
        if tree.root_level() > 0 {
            let mut stack = vec![(tree.root(), tree.root_level())];
            while let Some((page, level)) = stack.pop() {
                let node = Arc::new(NodePage::<D>::read(tree.device().as_ref(), page)?);
                if level > 1 {
                    for e in &node.entries {
                        stack.push((e.ptr as BlockId, level - 1));
                    }
                }
                pinned.insert(page, node);
            }
        }
        Ok(ReferenceEngine { tree, pinned })
    }

    /// Old-engine node access: pinned internal nodes are cloned out of
    /// the map (an `Arc` clone, as the frozen snapshot did); everything
    /// else is one device read plus a full AoS decode.
    fn read_node(&self, page: BlockId) -> Result<(Arc<NodePage<D>>, bool), EmError> {
        if let Some(n) = self.pinned.get(&page) {
            return Ok((Arc::clone(n), false));
        }
        let node = NodePage::read(self.tree.device().as_ref(), page)?;
        Ok((Arc::new(node), true))
    }

    /// Scalar window query; the loop body is the pre-SoA `traverse`.
    pub fn window_with_stats(
        &self,
        query: &Rect<D>,
    ) -> Result<(Vec<Item<D>>, QueryStats), EmError> {
        let mut out = Vec::new();
        let stats = self.traverse(query, |item| out.push(item))?;
        Ok((out, stats))
    }

    /// Scalar counting window query.
    pub fn window_count(&self, query: &Rect<D>) -> Result<(u64, QueryStats), EmError> {
        let mut n = 0u64;
        let stats = self.traverse(query, |_| n += 1)?;
        Ok((n, stats))
    }

    fn traverse(
        &self,
        query: &Rect<D>,
        mut emit: impl FnMut(Item<D>),
    ) -> Result<QueryStats, EmError> {
        let mut stats = QueryStats::default();
        if self.tree.is_empty() {
            return Ok(stats);
        }
        let mut stack: Vec<BlockId> = vec![self.tree.root()];
        while let Some(page) = stack.pop() {
            let (node, did_io) = self.read_node(page)?;
            stats.nodes_visited += 1;
            stats.device_reads += did_io as u64;
            if node.is_leaf() {
                stats.leaves_visited += 1;
                for e in &node.entries {
                    if e.rect.intersects(query) {
                        stats.results += 1;
                        emit(e.to_item());
                    }
                }
            } else {
                stats.internal_visited += 1;
                for e in &node.entries {
                    if e.rect.intersects(query) {
                        stack.push(e.ptr as BlockId);
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Scalar best-first k-NN; the loop body is the pre-SoA
    /// `nearest_neighbors_with_stats`, sharing the same heap element
    /// type so tie-breaking is identical.
    pub fn nearest_neighbors_with_stats(
        &self,
        query: &Point<D>,
        k: usize,
    ) -> Result<(Vec<(Item<D>, f64)>, QueryStats), EmError> {
        use crate::knn::{Candidate, Prioritized};
        let mut stats = QueryStats::default();
        let mut out = Vec::with_capacity(k.min(self.tree.len() as usize));
        if k == 0 || self.tree.is_empty() {
            return Ok((out, stats));
        }
        let mut heap: BinaryHeap<Prioritized<D>> = BinaryHeap::new();
        heap.push(Prioritized {
            dist2: 0.0,
            candidate: Candidate::Node(self.tree.root()),
        });
        while let Some(Prioritized { dist2, candidate }) = heap.pop() {
            match candidate {
                Candidate::Item(item) => {
                    out.push((item, dist2.sqrt()));
                    stats.results += 1;
                    if out.len() == k {
                        break;
                    }
                }
                Candidate::Node(page) => {
                    let (node, did_io) = self.read_node(page)?;
                    stats.nodes_visited += 1;
                    stats.device_reads += did_io as u64;
                    if node.is_leaf() {
                        stats.leaves_visited += 1;
                        for e in &node.entries {
                            heap.push(Prioritized {
                                dist2: e.rect.min_dist2(query),
                                candidate: Candidate::Item(e.to_item()),
                            });
                        }
                    } else {
                        stats.internal_visited += 1;
                        for e in &node.entries {
                            heap.push(Prioritized {
                                dist2: e.rect.min_dist2(query),
                                candidate: Candidate::Node(e.ptr as BlockId),
                            });
                        }
                    }
                }
            }
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::pr::PrTreeLoader;
    use crate::bulk::BulkLoader;
    use crate::params::TreeParams;
    use pr_em::{BlockDevice, MemDevice};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                let w: f64 = rng.gen_range(0.0..3.0);
                Item::new(Rect::xyxy(x, y, x + w, y + w), i)
            })
            .collect()
    }

    #[test]
    fn reference_engine_matches_soa_engine() {
        let items = random_items(3_000, 21);
        let params = TreeParams::with_cap::<2>(16);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = PrTreeLoader::default().load(dev, params, items).unwrap();
        tree.warm_cache().unwrap();
        let engine = ReferenceEngine::new(&tree).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..30 {
            let x: f64 = rng.gen_range(0.0..90.0);
            let y: f64 = rng.gen_range(0.0..90.0);
            let s: f64 = rng.gen_range(0.0..20.0);
            let q = Rect::xyxy(x, y, x + s, y + s);
            let (fast, fast_stats) = tree.window_with_stats(&q).unwrap();
            let (slow, slow_stats) = engine.window_with_stats(&q).unwrap();
            assert_eq!(fast, slow, "results must be identical, in order");
            assert_eq!(fast_stats, slow_stats, "QueryStats must be identical");

            let p = Point::new([x, y]);
            let (fast_nn, fast_nn_stats) = tree.nearest_neighbors_with_stats(&p, 10).unwrap();
            let (slow_nn, slow_nn_stats) = engine.nearest_neighbors_with_stats(&p, 10).unwrap();
            assert_eq!(fast_nn, slow_nn);
            assert_eq!(fast_nn_stats, slow_nn_stats);
        }
    }

    #[test]
    fn reference_engine_on_single_leaf_tree() {
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = PrTreeLoader::default()
            .load(dev, params, random_items(5, 3))
            .unwrap();
        assert_eq!(tree.height(), 1);
        tree.warm_cache().unwrap();
        let engine = ReferenceEngine::new(&tree).unwrap();
        let q = Rect::xyxy(0.0, 0.0, 100.0, 100.0);
        let (fast, fs) = tree.window_with_stats(&q).unwrap();
        let (slow, ss) = engine.window_with_stats(&q).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fs, ss);
        assert_eq!(ss.device_reads, 1, "single-leaf root is never cached");
    }
}
