//! Structure-of-arrays node views — the decode-free read path.
//!
//! # Why a second node representation
//!
//! [`crate::page::NodePage`] decodes a 4KB page into a `Vec<Entry>`:
//! perfect for the *write* path (loaders, dynamic updates, encoding),
//! but expensive to scan — every query visit walks 113 heap-allocated
//! 36-byte AoS records with a branchy scalar `Rect::intersects` per
//! entry. A [`SoaNode`] transcodes the same page **once** into
//! per-dimension coordinate columns (`lo[d][..]`, `hi[d][..]`) plus a
//! `ptrs` column, so the per-visit scan becomes the branch-free,
//! auto-vectorized kernels of [`pr_geom::batch`] over contiguous `f64`
//! slices.
//!
//! Division of labor after this module:
//!
//! * **Read path (hot):** [`crate::cache::ShardedNodeCache`], its frozen
//!   post-warm snapshot, and the pinned shard maps all store
//!   `Arc<SoaNode>`; traversal ([`crate::query`], [`crate::knn`]) only
//!   ever touches columns. Cache misses transcode straight from the raw
//!   page bytes into a reusable [`crate::scratch::QueryScratch`] buffer —
//!   no `Vec<Entry>`, no per-visit allocation.
//! * **Write path:** loaders and dynamic updates keep producing
//!   [`NodePage`]s; [`SoaNode::from_page`]/[`SoaNode::to_page`] convert
//!   at the boundary (`tree.rs` admit/readback).
//!
//! Columns are plain `Vec<f64>` (8-byte aligned, each dimension
//! contiguous); the kernels rely on contiguity, not on wider alignment —
//! unaligned SIMD loads are free on every target this runs on.

use crate::entry::Entry;
use crate::page::{NodePage, MAGIC, PAGE_HEADER_SIZE};
use pr_em::{EmError, Record};
use pr_geom::{batch, Item, Point, Rect};

/// A node transcoded into structure-of-arrays columns.
///
/// Layout: `lo` and `hi` hold `D · len` coordinates each, dimension-major
/// (`lo[d·len .. (d+1)·len]` is the lower-corner column of dimension
/// `d`); `ptrs[i]` is the data id (leaves) or child page id (internal
/// nodes) of entry `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaNode<const D: usize> {
    level: u8,
    len: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
    ptrs: Vec<u32>,
}

impl<const D: usize> Default for SoaNode<D> {
    fn default() -> Self {
        SoaNode {
            level: 0,
            len: 0,
            lo: Vec::new(),
            hi: Vec::new(),
            ptrs: Vec::new(),
        }
    }
}

impl<const D: usize> SoaNode<D> {
    /// An empty leaf; the reusable transcode target starts here.
    pub fn new_empty() -> Self {
        Self::default()
    }

    /// Transcodes a raw on-device page buffer (validates the header the
    /// same way [`NodePage::decode`] does).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, EmError> {
        let mut node = Self::new_empty();
        node.refill_from_bytes(buf)?;
        Ok(node)
    }

    /// Re-transcodes `buf` into this node in place, reusing the column
    /// allocations — the zero-allocation leaf-miss path of the query
    /// engine.
    pub fn refill_from_bytes(&mut self, buf: &[u8]) -> Result<(), EmError> {
        if buf.len() < PAGE_HEADER_SIZE || buf[..4] != MAGIC {
            return Err(EmError::Corrupt("bad node page magic".into()));
        }
        let level = buf[4];
        let count = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes")) as usize;
        let cap = (buf.len() - PAGE_HEADER_SIZE) / Entry::<D>::SIZE;
        if count > cap {
            return Err(EmError::Corrupt(format!(
                "node count {count} exceeds page capacity {cap}"
            )));
        }
        self.level = level;
        self.len = count;
        self.lo.resize(D * count, 0.0);
        self.hi.resize(D * count, 0.0);
        self.ptrs.resize(count, 0);
        // Column-at-a-time transcode over `chunks_exact` records: the
        // zip bounds the iteration and the in-record offsets are
        // compile-time constants (the `0..D` loop unrolls), so the body
        // is bounds-check-free — this runs on every uncached leaf visit.
        let stride = Entry::<D>::SIZE;
        let records = buf[PAGE_HEADER_SIZE..].chunks_exact(stride);
        for d in 0..D {
            let lo_col = &mut self.lo[d * count..(d + 1) * count];
            for (v, rec) in lo_col.iter_mut().zip(records.clone()) {
                *v = f64::from_le_bytes(rec[d * 8..d * 8 + 8].try_into().expect("8 bytes"));
            }
            let hi_col = &mut self.hi[d * count..(d + 1) * count];
            for (v, rec) in hi_col.iter_mut().zip(records.clone()) {
                *v = f64::from_le_bytes(
                    rec[(D + d) * 8..(D + d) * 8 + 8]
                        .try_into()
                        .expect("8 bytes"),
                );
            }
        }
        for (v, rec) in self.ptrs.iter_mut().zip(records) {
            *v = u32::from_le_bytes(rec[2 * D * 8..2 * D * 8 + 4].try_into().expect("4 bytes"));
        }
        Ok(())
    }

    /// Converts a decoded AoS node (write-path boundary).
    pub fn from_page(page: &NodePage<D>) -> Self {
        let count = page.entries.len();
        let mut node = SoaNode {
            level: page.level,
            len: count,
            lo: vec![0.0; D * count],
            hi: vec![0.0; D * count],
            ptrs: Vec::with_capacity(count),
        };
        for (i, e) in page.entries.iter().enumerate() {
            for d in 0..D {
                node.lo[d * count + i] = e.rect.lo_at(d);
                node.hi[d * count + i] = e.rect.hi_at(d);
            }
            node.ptrs.push(e.ptr);
        }
        node
    }

    /// Converts back to the AoS form (maintenance/update boundary).
    pub fn to_page(&self) -> NodePage<D> {
        NodePage::new(self.level, (0..self.len).map(|i| self.entry(i)).collect())
    }

    /// Level in the tree: 0 for leaves.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// True for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the node has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lower-corner coordinate column of dimension `d`.
    #[inline]
    pub fn lo_dim(&self, d: usize) -> &[f64] {
        &self.lo[d * self.len..(d + 1) * self.len]
    }

    /// Upper-corner coordinate column of dimension `d`.
    #[inline]
    pub fn hi_dim(&self, d: usize) -> &[f64] {
        &self.hi[d * self.len..(d + 1) * self.len]
    }

    /// All lower-corner columns, ready for the batch kernels.
    #[inline]
    pub fn lo_dims(&self) -> [&[f64]; D] {
        std::array::from_fn(|d| self.lo_dim(d))
    }

    /// All upper-corner columns.
    #[inline]
    pub fn hi_dims(&self) -> [&[f64]; D] {
        std::array::from_fn(|d| self.hi_dim(d))
    }

    /// Pointer column (data ids in leaves, child pages in internal nodes).
    #[inline]
    pub fn ptrs(&self) -> &[u32] {
        &self.ptrs
    }

    /// Pointer of entry `i`.
    #[inline]
    pub fn ptr(&self, i: usize) -> u32 {
        self.ptrs[i]
    }

    /// Rectangle of entry `i`, gathered from the columns.
    #[inline]
    pub fn rect(&self, i: usize) -> Rect<D> {
        batch::gather_rect(&self.lo_dims(), &self.hi_dims(), i)
    }

    /// Entry `i` in AoS form.
    #[inline]
    pub fn entry(&self, i: usize) -> Entry<D> {
        Entry::new(self.rect(i), self.ptrs[i])
    }

    /// Leaf entry `i` as an input item.
    #[inline]
    pub fn item(&self, i: usize) -> Item<D> {
        Item::new(self.rect(i), self.ptrs[i])
    }

    /// Approximate resident heap+struct size in bytes — the accounting
    /// unit of the byte-bounded [`crate::cache::LeafCache`]. Uses the
    /// columns' *capacities* (what the allocator actually holds), so a
    /// cache budget translates honestly to memory.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.lo.capacity() * std::mem::size_of::<f64>()
            + self.hi.capacity() * std::mem::size_of::<f64>()
            + self.ptrs.capacity() * std::mem::size_of::<u32>()
    }

    /// Minimal bounding rectangle of all entries.
    pub fn mbr(&self) -> Rect<D> {
        (0..self.len).fold(Rect::EMPTY, |acc, i| acc.mbr_with(&self.rect(i)))
    }

    /// Runs the vectorized intersection kernel against `query` and calls
    /// `f(i)` for every matching entry index, in ascending order (the
    /// same order the AoS scan visited entries, so traversal output and
    /// stack order are unchanged). `mask` is caller-provided scratch.
    #[inline]
    pub fn for_each_intersecting(
        &self,
        query: &Rect<D>,
        mask: &mut Vec<u8>,
        mut f: impl FnMut(usize),
    ) {
        mask.resize(self.len, 0);
        batch::intersects_mask(&self.lo_dims(), &self.hi_dims(), query, mask);
        for (i, &m) in mask.iter().enumerate() {
            if m != 0 {
                f(i);
            }
        }
    }

    /// Counts entries intersecting `query` — the leaf kernel of
    /// counting window queries: no mask, no pointer reads, one fused
    /// branch-free pass.
    #[inline]
    pub fn count_intersecting(&self, query: &Rect<D>) -> u64 {
        batch::intersects_count(&self.lo_dims(), &self.hi_dims(), self.len, query)
    }

    /// Appends every entry intersecting `query` to `out` as an
    /// [`Item`], in ascending index order, returning how many matched —
    /// the leaf kernel of materializing window queries. The columns are
    /// hoisted once, so each match is a handful of in-cache loads and
    /// one 40-byte push rather than a fresh gather through the
    /// accessors.
    pub fn collect_intersecting(&self, query: &Rect<D>, out: &mut Vec<Item<D>>) -> u64 {
        let lo = self.lo_dims();
        let hi = self.hi_dims();
        let mut count = 0u64;
        for i in 0..self.len {
            let mut keep = true;
            for d in 0..D {
                keep &= (lo[d][i] <= query.hi_at(d)) & (query.lo_at(d) <= hi[d][i]);
            }
            if keep {
                out.push(Item::new(
                    Rect::new(
                        std::array::from_fn(|d| lo[d][i]),
                        std::array::from_fn(|d| hi[d][i]),
                    ),
                    self.ptrs[i],
                ));
                count += 1;
            }
        }
        count
    }

    /// True if any entry intersects `query` (kernel pass over the node;
    /// the `intersects_any` early-exit path uses this per leaf).
    #[inline]
    pub fn any_intersecting(&self, query: &Rect<D>, mask: &mut Vec<u8>) -> bool {
        mask.resize(self.len, 0);
        batch::intersects_mask(&self.lo_dims(), &self.hi_dims(), query, mask);
        mask.iter().any(|&m| m != 0)
    }

    /// Batched `min_dist2` from `p` to every entry into `out`
    /// (bit-identical to the scalar [`Rect::min_dist2`]).
    #[inline]
    pub fn min_dist2_into(&self, p: &Point<D>, out: &mut Vec<f64>) {
        out.resize(self.len, 0.0);
        batch::min_dist2_batch(&self.lo_dims(), &self.hi_dims(), p, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_geom::Rect;

    fn entries(n: usize) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Entry::new(Rect::xyxy(f, -f, f + 1.0, f + 2.0), i as u32)
            })
            .collect()
    }

    #[test]
    fn page_roundtrips_through_soa() {
        let page = NodePage::new(3, entries(7));
        let soa = SoaNode::from_page(&page);
        assert_eq!(soa.level(), 3);
        assert!(!soa.is_leaf());
        assert_eq!(soa.len(), 7);
        assert_eq!(soa.to_page(), page);
        assert_eq!(soa.mbr(), page.mbr());
        for (i, e) in page.entries.iter().enumerate() {
            assert_eq!(soa.entry(i), *e);
            assert_eq!(soa.rect(i), e.rect);
            assert_eq!(soa.ptr(i), e.ptr);
        }
    }

    #[test]
    fn bytes_transcode_matches_page_decode() {
        let page = NodePage::new(0, entries(113));
        let mut buf = vec![0u8; 4096];
        page.encode(&mut buf);
        let soa = SoaNode::<2>::from_bytes(&buf).unwrap();
        assert_eq!(soa.to_page(), NodePage::decode(&buf).unwrap());
        assert_eq!(soa.lo_dim(0).len(), 113);
        assert_eq!(soa.ptrs().len(), 113);
    }

    #[test]
    fn refill_reuses_and_resizes() {
        let mut buf = vec![0u8; 4096];
        NodePage::new(0, entries(50)).encode(&mut buf);
        let mut soa = SoaNode::<2>::from_bytes(&buf).unwrap();
        assert_eq!(soa.len(), 50);
        NodePage::new(2, entries(3)).encode(&mut buf);
        soa.refill_from_bytes(&buf).unwrap();
        assert_eq!(soa.len(), 3);
        assert_eq!(soa.level(), 2);
        assert_eq!(soa.to_page(), NodePage::decode(&buf).unwrap());
        NodePage::new(1, entries(100)).encode(&mut buf);
        soa.refill_from_bytes(&buf).unwrap();
        assert_eq!(soa.len(), 100);
        assert_eq!(soa.to_page(), NodePage::decode(&buf).unwrap());
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        assert!(SoaNode::<2>::from_bytes(&[0u8; 4096]).is_err());
        let mut buf = vec![0u8; 4096];
        NodePage::new(0, entries(3)).encode(&mut buf);
        buf[6..8].copy_from_slice(&500u16.to_le_bytes());
        assert!(SoaNode::<2>::from_bytes(&buf).is_err());
        assert!(SoaNode::<2>::from_bytes(&buf[..8]).is_err());
    }

    #[test]
    fn intersection_and_distance_helpers() {
        let soa = SoaNode::from_page(&NodePage::new(0, entries(8)));
        let q = Rect::xyxy(2.0, 0.0, 4.0, 1.0);
        let mut mask = Vec::new();
        let mut hits = Vec::new();
        soa.for_each_intersecting(&q, &mut mask, |i| hits.push(i));
        let want: Vec<usize> = (0..8).filter(|&i| soa.rect(i).intersects(&q)).collect();
        assert_eq!(hits, want);
        assert_eq!(soa.count_intersecting(&q), want.len() as u64);
        assert_eq!(
            soa.count_intersecting(&Rect::xyxy(50.0, 50.0, 51.0, 51.0)),
            0
        );
        assert!(soa.any_intersecting(&q, &mut mask));
        assert!(!soa.any_intersecting(&Rect::xyxy(50.0, 50.0, 51.0, 51.0), &mut mask));
        let p = pr_geom::Point::new([3.0, -2.0]);
        let mut d2 = Vec::new();
        soa.min_dist2_into(&p, &mut d2);
        for (i, v) in d2.iter().enumerate() {
            assert_eq!(v.to_bits(), soa.rect(i).min_dist2(&p).to_bits());
        }
    }

    #[test]
    fn empty_node() {
        let soa = SoaNode::<2>::new_empty();
        assert!(soa.is_empty());
        assert!(soa.is_leaf());
        assert!(soa.mbr().is_empty());
        let mut mask = Vec::new();
        assert!(!soa.any_intersecting(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), &mut mask));
    }
}
