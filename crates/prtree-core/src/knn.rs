//! k-nearest-neighbor queries.
//!
//! Not part of the paper's evaluation (which is window queries only),
//! but §1.1 notes that "many types of queries can be answered
//! efficiently using an R-tree" — and any production spatial index needs
//! k-NN. This is the classic best-first branch-and-bound search
//! (Hjaltason–Samet): a priority queue over nodes and items keyed by
//! minimum distance to the query point; items popped in distance order
//! are exact nearest neighbors. It runs on *any* tree the bulk loaders
//! produce, so PR-tree robustness extends to k-NN workloads for free.

use crate::cache::CacheTally;
use crate::query::QueryStats;
use crate::scratch::QueryScratch;
use crate::tree::RTree;
use pr_em::{BlockId, EmError};
use pr_geom::{Item, Point};
use std::cmp::Ordering;

/// Priority-queue element: a node or an item at its min distance.
pub(crate) enum Candidate<const D: usize> {
    Node(BlockId),
    Item(Item<D>),
}

/// Heap entry of the best-first search; lives in
/// [`QueryScratch`] so the candidate heap is reusable. Distances are
/// squared (the batched kernel's output); the square root is taken only
/// when an item is reported.
pub(crate) struct Prioritized<const D: usize> {
    pub(crate) dist2: f64,
    pub(crate) candidate: Candidate<D>,
}

impl<const D: usize> PartialEq for Prioritized<D> {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl<const D: usize> Eq for Prioritized<D> {}
impl<const D: usize> PartialOrd for Prioritized<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for Prioritized<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the closest first.
        other.dist2.total_cmp(&self.dist2)
    }
}

impl<const D: usize> RTree<D> {
    /// The `k` items nearest to `query` (Euclidean distance to their
    /// rectangles, 0 when the point is inside), closest first. Ties are
    /// broken arbitrarily but deterministically. Returns fewer than `k`
    /// items only when the tree holds fewer.
    pub fn nearest_neighbors(
        &self,
        query: &Point<D>,
        k: usize,
    ) -> Result<Vec<(Item<D>, f64)>, EmError> {
        Ok(self.nearest_neighbors_with_stats(query, k)?.0)
    }

    /// k-NN with traversal statistics (leaves read, device I/Os).
    pub fn nearest_neighbors_with_stats(
        &self,
        query: &Point<D>,
        k: usize,
    ) -> Result<(Vec<(Item<D>, f64)>, QueryStats), EmError> {
        let mut out = Vec::with_capacity(k.min(self.len() as usize));
        let stats = self.nearest_neighbors_into(query, k, &mut QueryScratch::new(), &mut out)?;
        Ok((out, stats))
    }

    /// [`RTree::nearest_neighbors_with_stats`] with caller-owned
    /// buffers: neighbors go into `out` (cleared first), the candidate
    /// heap and batched-distance buffer live in `scratch`. Per-node
    /// distances come from the vectorized
    /// [`pr_geom::batch::min_dist2_batch`] kernel, which is bit-identical
    /// to the scalar `Rect::min_dist2` — so heap order, tie-breaks, and
    /// reported distances match the scalar engine exactly.
    pub fn nearest_neighbors_into(
        &self,
        query: &Point<D>,
        k: usize,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<(Item<D>, f64)>,
    ) -> Result<QueryStats, EmError> {
        self.nearest_neighbors_filtered_into(query, k, scratch, out, |_| true)
    }

    /// [`RTree::nearest_neighbors_into`] with an admission predicate
    /// applied **inside the best-first loop**: an item popped from the
    /// candidate heap that `admit` rejects is skipped — it consumes
    /// neither a result slot nor any extra leaf visits beyond the one
    /// that surfaced it. This is the tombstone-aware k-NN primitive of
    /// the multi-component structures (LPR-tree, pr-live snapshots):
    /// they pass their shared multiset [`TombstoneFilter`] as `admit`,
    /// so each component yields its `k` nearest *live* items directly
    /// instead of over-fetching `k + total_tombstones` and filtering
    /// afterwards — with heavy tombstones, the difference between
    /// reading a handful of leaves and scanning most of the component.
    ///
    /// Items are popped in exact min-distance order, so rejecting a dead
    /// head admits the next-nearest live item with no extra traversal;
    /// results and distances equal the over-fetch-then-filter answer.
    ///
    /// [`TombstoneFilter`]: crate::dynamic::tombstone::TombstoneFilter
    pub fn nearest_neighbors_filtered_into(
        &self,
        query: &Point<D>,
        k: usize,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<(Item<D>, f64)>,
        mut admit: impl FnMut(&Item<D>) -> bool,
    ) -> Result<QueryStats, EmError> {
        out.clear();
        let mut stats = QueryStats::default();
        if k == 0 || self.is_empty() {
            return Ok(stats);
        }
        let QueryScratch {
            page_buf,
            soa,
            dist,
            heap,
            trace,
            ..
        } = scratch;
        // Same tracing contract as `window_traverse`: one relaxed load
        // when disabled, per-level tallies + per-I/O spans when sampled.
        trace.arm_sampled("knn");
        let tracing = trace.is_active();
        let traverse = trace.begin("tree", "best_first");
        heap.clear();
        heap.push(Prioritized {
            dist2: 0.0,
            candidate: Candidate::Node(self.root()),
        });
        // Per-query local cache accounting + one-time frozen snapshot,
        // flushed/dropped once (see query.rs).
        let mut tally = CacheTally::default();
        let frozen = self.frozen_snapshot();
        let walk = (|| {
            while let Some(Prioritized { dist2, candidate }) = heap.pop() {
                match candidate {
                    Candidate::Item(item) => {
                        if !admit(&item) {
                            continue; // tombstoned copy: skip in place
                        }
                        out.push((item, dist2.sqrt()));
                        stats.results += 1;
                        if out.len() == k {
                            break;
                        }
                    }
                    Candidate::Node(page) => {
                        let (hits0, misses0) = (tally.leaf_hits, tally.leaf_misses);
                        let t_node = tracing.then(std::time::Instant::now);
                        let mut level = 0u8;
                        let ((), did_io) = self.with_soa_node(
                            page,
                            frozen.as_ref(),
                            &mut tally,
                            page_buf,
                            soa,
                            |n| {
                                if tracing {
                                    level = n.level();
                                }
                                stats.nodes_visited += 1;
                                n.min_dist2_into(query, dist);
                                if n.is_leaf() {
                                    stats.leaves_visited += 1;
                                    // Defer the items through the heap so
                                    // they are emitted in global distance
                                    // order.
                                    for (i, &d2) in dist.iter().enumerate() {
                                        heap.push(Prioritized {
                                            dist2: d2,
                                            candidate: Candidate::Item(n.item(i)),
                                        });
                                    }
                                } else {
                                    stats.internal_visited += 1;
                                    for (&d2, &ptr) in dist.iter().zip(n.ptrs()) {
                                        heap.push(Prioritized {
                                            dist2: d2,
                                            candidate: Candidate::Node(ptr as BlockId),
                                        });
                                    }
                                }
                            },
                        )?;
                        stats.device_reads += did_io as u64;
                        if tracing {
                            if did_io {
                                let t0 = t_node.expect("set while tracing");
                                trace.span_since("em", "page_read", t0, &format!("page={page}"));
                            }
                            let is_leaf = level == 0;
                            trace.tally_level(
                                level as usize,
                                is_leaf as u64,
                                !is_leaf as u64,
                                tally.leaf_hits - hits0,
                                tally.leaf_misses - misses0,
                                did_io as u64,
                            );
                        }
                    }
                }
            }
            Ok(())
        })();
        stats.leaf_cache_hits = tally.leaf_hits;
        stats.leaf_cache_misses = tally.leaf_misses;
        self.record_cache_tally(tally);
        crate::obs::record_query(crate::obs::QueryKind::Knn, &stats);
        if tracing {
            trace.end_detail(traverse, &format!("nodes={}", stats.nodes_visited));
            trace.set_detail(&format!("results={}", stats.results));
            trace.finish_publish();
        }
        walk.map(|()| stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::pr::PrTreeLoader;
    use crate::bulk::{BulkLoader, LoaderKind};
    use crate::params::TreeParams;
    use pr_em::{BlockDevice, MemDevice};
    use pr_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                let w: f64 = rng.gen_range(0.0..2.0);
                Item::new(Rect::xyxy(x, y, x + w, y + w), i)
            })
            .collect()
    }

    fn brute_knn(items: &[Item<2>], q: &Point<2>, k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = items.iter().map(|i| (i.id, i.rect.min_dist(q))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    fn build(items: &[Item<2>]) -> RTree<2> {
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        PrTreeLoader::default()
            .load(dev, params, items.to_vec())
            .unwrap()
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let items = random_items(2_000, 5);
        let tree = build(&items);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..25 {
            let q = Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            for k in [1usize, 5, 20] {
                let got = tree.nearest_neighbors(&q, k).unwrap();
                let want = brute_knn(&items, &q, k);
                assert_eq!(got.len(), k);
                // Distances must match exactly (ties may swap ids).
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.1 - w.1).abs() < 1e-9,
                        "k={k} q={q:?}: got {} want {}",
                        g.1,
                        w.1
                    );
                }
                // Results are sorted by distance.
                for pair in got.windows(2) {
                    assert!(pair[0].1 <= pair[1].1);
                }
            }
        }
    }

    #[test]
    fn knn_inside_rectangles_has_distance_zero() {
        let items = vec![
            Item::new(Rect::xyxy(0.0, 0.0, 10.0, 10.0), 0),
            Item::new(Rect::xyxy(50.0, 50.0, 60.0, 60.0), 1),
        ];
        let tree = build(&items);
        let got = tree.nearest_neighbors(&Point::new([5.0, 5.0]), 2).unwrap();
        assert_eq!(got[0].0.id, 0);
        assert_eq!(got[0].1, 0.0);
        assert!(got[1].1 > 0.0);
    }

    #[test]
    fn knn_edge_cases() {
        let items = random_items(50, 2);
        let tree = build(&items);
        let q = Point::new([50.0, 50.0]);
        assert!(tree.nearest_neighbors(&q, 0).unwrap().is_empty());
        // k larger than the tree: everything, in order.
        let got = tree.nearest_neighbors(&q, 1000).unwrap();
        assert_eq!(got.len(), 50);
        // Empty tree.
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let empty = RTree::<2>::new_empty(dev, params).unwrap();
        assert!(empty.nearest_neighbors(&q, 3).unwrap().is_empty());
    }

    #[test]
    fn knn_prunes_most_of_the_tree() {
        // Best-first search on a good tree should read only a few leaves.
        let items = random_items(5_000, 7);
        let tree = build(&items);
        let (_, stats) = tree
            .nearest_neighbors_with_stats(&Point::new([42.0, 42.0]), 10)
            .unwrap();
        let total_leaves = tree.stats().unwrap().num_leaves();
        assert!(
            stats.leaves_visited * 10 < total_leaves,
            "visited {} of {total_leaves} leaves",
            stats.leaves_visited
        );
    }

    #[test]
    fn knn_works_on_every_loader() {
        let items = random_items(800, 11);
        let q = Point::new([33.0, 66.0]);
        let want = brute_knn(&items, &q, 7);
        for kind in LoaderKind::all() {
            let params = TreeParams::with_cap::<2>(8);
            let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
            let tree = kind.loader::<2>().load(dev, params, items.clone()).unwrap();
            let got = tree.nearest_neighbors(&q, 7).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-9, "{}", kind.name());
            }
        }
    }

    #[test]
    fn knn_in_three_dimensions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let items: Vec<Item<3>> = (0..600)
            .map(|i| {
                let p = [
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                ];
                Item::new(Rect::new(p, p), i)
            })
            .collect();
        let params = TreeParams::with_cap::<3>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = PrTreeLoader::default()
            .load(dev, params, items.clone())
            .unwrap();
        let q = Point::new([5.0, 5.0, 5.0]);
        let got = tree.nearest_neighbors(&q, 5).unwrap();
        let mut want: Vec<f64> = items.iter().map(|i| i.rect.min_dist(&q)).collect();
        want.sort_by(f64::total_cmp);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w).abs() < 1e-9);
        }
    }
}
