//! Window queries.
//!
//! The query procedure is the same for every R-tree variant (§1.1): start
//! at the root, recursively visit children whose bounding boxes intersect
//! the query window, and report intersecting data rectangles at the
//! leaves. The *cost* differs only through tree shape.
//!
//! [`QueryStats`] separates leaf visits from internal visits because the
//! paper's headline metric is leaf I/Os with all internal nodes cached.
//!
//! # The decode-free engine
//!
//! Traversal never touches a decoded [`crate::page::NodePage`]: cached
//! nodes are SoA [`crate::soa::SoaNode`] views and uncached (leaf)
//! visits transcode the raw page into a reusable
//! [`QueryScratch`] buffer, so the per-node scan is the vectorized
//! [`pr_geom::batch`] kernel and the steady-state query allocates
//! nothing. The `_into` variants expose the scratch for reuse across
//! queries; the plain variants wrap them with a throwaway scratch.
//! Results, emit order, [`QueryStats`], and leaf-I/O counts are
//! identical to the scalar AoS engine — the retained
//! [`crate::reference`] implementation plus the property tests in
//! `tests/engine_equivalence.rs` pin that equivalence.

use crate::cache::CacheTally;
use crate::scratch::QueryScratch;
use crate::tree::RTree;
use pr_em::{BlockId, EmError};
use pr_geom::{Item, Rect};

/// Cost breakdown of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nodes of any kind visited (bounding box intersected the query).
    pub nodes_visited: u64,
    /// Leaf nodes visited — the paper's query cost metric.
    pub leaves_visited: u64,
    /// Internal nodes visited.
    pub internal_visited: u64,
    /// Actual device reads (cache misses) incurred.
    pub device_reads: u64,
    /// Leaf visits served by the shared [`crate::cache::LeafCache`]
    /// (counted in `leaves_visited` but **not** in `device_reads`).
    /// Zero when no leaf cache is attached.
    pub leaf_cache_hits: u64,
    /// Leaf visits that missed the attached leaf cache (read from the
    /// device, then admitted). Zero when no leaf cache is attached.
    pub leaf_cache_misses: u64,
    /// Number of reported items (`T`).
    pub results: u64,
}

impl QueryStats {
    /// Folds another traversal's cost counters (nodes, leaves, internal,
    /// device reads — **not** `results`) into this one. Multi-component
    /// structures (the LPR-tree, pr-live snapshots) use this to
    /// aggregate their per-component fan-out; `results` is set once from
    /// the filtered output they assemble.
    pub fn absorb_traversal(&mut self, other: &QueryStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.internal_visited += other.internal_visited;
        self.device_reads += other.device_reads;
        self.leaf_cache_hits += other.leaf_cache_hits;
        self.leaf_cache_misses += other.leaf_cache_misses;
    }

    /// Lower bound `⌈T/B⌉` on blocks needed just to report the output.
    pub fn output_blocks(&self, leaf_cap: usize) -> u64 {
        self.results.div_ceil(leaf_cap as u64)
    }

    /// The paper's figure-of-merit: leaf blocks read divided by `⌈T/B⌉`
    /// (expressed as a percentage in Figures 12–15). Returns `None` when
    /// the query reports nothing.
    pub fn relative_cost(&self, leaf_cap: usize) -> Option<f64> {
        let lb = self.output_blocks(leaf_cap);
        (lb > 0).then(|| self.leaves_visited as f64 / lb as f64)
    }
}

impl<const D: usize> RTree<D> {
    /// Reports all items whose rectangles intersect `query`.
    pub fn window(&self, query: &Rect<D>) -> Result<Vec<Item<D>>, EmError> {
        Ok(self.window_with_stats(query)?.0)
    }

    /// Window query returning both results and cost statistics.
    pub fn window_with_stats(
        &self,
        query: &Rect<D>,
    ) -> Result<(Vec<Item<D>>, QueryStats), EmError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = self.window_into(query, &mut scratch, &mut out)?;
        Ok((out, stats))
    }

    /// [`RTree::window_with_stats`] with caller-owned buffers: results go
    /// into `out` (cleared first) and all traversal state lives in
    /// `scratch`, so a reused scratch makes repeated queries
    /// allocation-free. Results and statistics are identical to the
    /// plain variant.
    pub fn window_into(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<Item<D>>,
    ) -> Result<QueryStats, EmError> {
        out.clear();
        self.window_append_into(query, scratch, out)
    }

    /// [`RTree::window_into`] that **appends** to `out` instead of
    /// clearing it. This is the fan-out primitive of multi-component
    /// structures ([`crate::dynamic::LprTree`], pr-live): one reused
    /// scratch and one result vector serve a query over any number of
    /// trees. The returned statistics cover only this traversal
    /// (`results` counts this tree's matches, not `out.len()`).
    pub fn window_append_into(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
        out: &mut Vec<Item<D>>,
    ) -> Result<QueryStats, EmError> {
        self.window_traverse(query, scratch, |n| n.collect_intersecting(query, out))
    }

    /// Counts intersecting items without materializing them.
    pub fn window_count(&self, query: &Rect<D>) -> Result<(u64, QueryStats), EmError> {
        self.window_count_into(query, &mut QueryScratch::new())
    }

    /// [`RTree::window_count`] with a reusable scratch (the
    /// allocation-free hot path for counting workloads). Leaves are
    /// tallied by the fused counting kernel
    /// ([`crate::soa::SoaNode::count_intersecting`]) — no mask, no
    /// per-match emit — with statistics identical to
    /// [`RTree::window_with_stats`].
    pub fn window_count_into(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
    ) -> Result<(u64, QueryStats), EmError> {
        let stats = self.window_traverse(query, scratch, |n| n.count_intersecting(query))?;
        Ok((stats.results, stats))
    }

    /// The shared window-traversal skeleton: DFS over nodes whose boxes
    /// intersect `query`; `leaf` inspects a leaf's SoA view and returns
    /// how many entries matched (folded into `stats.results`). Cache
    /// hits/misses accumulate locally and flush once at the end
    /// (including the error path), so concurrent queries never touch
    /// the shared counters mid-traversal yet totals stay exact; the
    /// frozen snapshot is cloned once, making per-node lookups
    /// lock-free after `warm_cache`.
    fn window_traverse(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
        mut leaf: impl FnMut(&crate::soa::SoaNode<D>) -> u64,
    ) -> Result<QueryStats, EmError> {
        let mut stats = QueryStats::default();
        if self.is_empty() {
            return Ok(stats);
        }
        let mut tally = CacheTally::default();
        let frozen = self.frozen_snapshot();
        let QueryScratch {
            stack,
            page_buf,
            mask,
            soa,
            trace,
            ..
        } = scratch;
        // One relaxed atomic load when tracing is disabled; a sampled
        // (or `--explain`-forced) query records per-node levels and
        // per-I/O spans below.
        trace.arm_sampled("window");
        let tracing = trace.is_active();
        let traverse = trace.begin("tree", "traverse");
        stack.clear();
        stack.push(self.root());
        let walk = (|| {
            while let Some(page) = stack.pop() {
                let (hits0, misses0) = (tally.leaf_hits, tally.leaf_misses);
                let t_node = tracing.then(std::time::Instant::now);
                let mut level = 0u8;
                let ((), did_io) =
                    self.with_soa_node(page, frozen.as_ref(), &mut tally, page_buf, soa, |n| {
                        if tracing {
                            level = n.level();
                        }
                        stats.nodes_visited += 1;
                        if n.is_leaf() {
                            stats.leaves_visited += 1;
                            stats.results += leaf(n);
                        } else {
                            stats.internal_visited += 1;
                            n.for_each_intersecting(query, mask, |i| {
                                stack.push(n.ptr(i) as BlockId)
                            });
                        }
                    })?;
                stats.device_reads += did_io as u64;
                if tracing {
                    if did_io {
                        let t0 = t_node.expect("set while tracing");
                        trace.span_since("em", "page_read", t0, &format!("page={page}"));
                    }
                    let is_leaf = level == 0;
                    trace.tally_level(
                        level as usize,
                        is_leaf as u64,
                        !is_leaf as u64,
                        tally.leaf_hits - hits0,
                        tally.leaf_misses - misses0,
                        did_io as u64,
                    );
                }
            }
            Ok(())
        })();
        stats.leaf_cache_hits = tally.leaf_hits;
        stats.leaf_cache_misses = tally.leaf_misses;
        self.record_cache_tally(tally);
        crate::obs::record_query(crate::obs::QueryKind::Window, &stats);
        if tracing {
            trace.end_detail(traverse, &format!("nodes={}", stats.nodes_visited));
            trace.set_detail(&format!("results={}", stats.results));
            trace.finish_publish();
        }
        walk.map(|()| stats)
    }

    /// True if any item intersects `query`. Stops at the first
    /// intersecting leaf entry, so it typically visits far fewer nodes
    /// than [`RTree::window`]; it reports no [`QueryStats`] for exactly
    /// that reason (its traversal is not the paper's full-window cost).
    /// The `window`-path accounting is untouched by the early exit —
    /// pinned by `existence_early_exit_leaves_window_stats_alone` below.
    pub fn intersects_any(&self, query: &Rect<D>) -> Result<bool, EmError> {
        self.intersects_any_into(query, &mut QueryScratch::new())
    }

    /// [`RTree::intersects_any`] with a reusable scratch.
    pub fn intersects_any_into(
        &self,
        query: &Rect<D>,
        scratch: &mut QueryScratch<D>,
    ) -> Result<bool, EmError> {
        if self.is_empty() {
            return Ok(false);
        }
        let mut tally = CacheTally::default();
        let frozen = self.frozen_snapshot();
        let QueryScratch {
            stack,
            page_buf,
            mask,
            soa,
            ..
        } = scratch;
        stack.clear();
        stack.push(self.root());
        let mut found = false;
        let walk = (|| {
            while let Some(page) = stack.pop() {
                let (hit, _) =
                    self.with_soa_node(page, frozen.as_ref(), &mut tally, page_buf, soa, |n| {
                        if n.is_leaf() {
                            n.any_intersecting(query, mask)
                        } else {
                            n.for_each_intersecting(query, mask, |i| {
                                stack.push(n.ptr(i) as BlockId)
                            });
                            false
                        }
                    })?;
                if hit {
                    found = true;
                    break;
                }
            }
            Ok(())
        })();
        self.record_cache_tally(tally);
        walk.map(|()| found)
    }

    /// Answers a batch of window queries across `threads` worker threads
    /// (`0` = one per available core), returning per-query results and
    /// statistics in input order.
    ///
    /// Results, leaf visits, and device-read counts are identical to
    /// running [`RTree::window_with_stats`] serially over the slice: the
    /// traversal is deterministic per query and the sharded cache
    /// ([`crate::cache`]) is read-only during queries, so concurrency
    /// changes only wall-clock time. Cache hit/miss totals are likewise
    /// exact — each query accumulates locally and flushes atomically.
    pub fn par_windows(
        &self,
        queries: &[Rect<D>],
        threads: usize,
    ) -> Result<Vec<(Vec<Item<D>>, QueryStats)>, EmError> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(queries.len().max(1));
        if threads <= 1 {
            let mut scratch = QueryScratch::new();
            return queries
                .iter()
                .map(|q| {
                    let mut out = Vec::new();
                    let stats = self.window_into(q, &mut scratch, &mut out)?;
                    Ok((out, stats))
                })
                .collect();
        }
        // Contiguous chunks keep output order trivially reconstructible;
        // `RTree: Sync` lets every worker borrow `self` directly. Each
        // worker owns one QueryScratch for its whole chunk, so the only
        // per-query allocation is the result vector it returns.
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|qs| {
                    scope.spawn(move || {
                        let mut scratch = QueryScratch::new();
                        qs.iter()
                            .map(|q| {
                                let mut out = Vec::new();
                                let stats = self.window_into(q, &mut scratch, &mut out)?;
                                Ok((out, stats))
                            })
                            .collect::<Result<Vec<_>, EmError>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(queries.len());
            for h in handles {
                // A worker panic (poisoned query, corrupt page assertion,
                // OOM-adjacent unwind…) must not abort the whole process
                // hosting the tree: re-raise it on the calling thread so
                // an embedding server's catch_unwind boundary can contain
                // it. Remaining workers are joined by the scope on unwind.
                match h.join() {
                    Ok(chunk_results) => out.extend(chunk_results?),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            Ok(out)
        })
    }
}

/// Brute-force reference: scan `items` and report intersections. Tests
/// compare every tree variant against this.
pub fn brute_force_window<const D: usize>(items: &[Item<D>], query: &Rect<D>) -> Vec<Item<D>> {
    items
        .iter()
        .filter(|i| i.rect.intersects(query))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use crate::page::NodePage;
    use crate::params::TreeParams;
    use pr_em::{BlockDevice, MemDevice};
    use std::sync::Arc;

    /// Hand-built 2-level tree: items i = 0..8 at x in [i, i+0.5].
    fn grid_tree() -> (RTree<2>, Vec<Item<2>>) {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let items: Vec<Item<2>> = (0..8u32)
            .map(|i| {
                let f = i as f64;
                Item::new(Rect::xyxy(f, 0.0, f + 0.5, 1.0), i)
            })
            .collect();
        let mut parents = Vec::new();
        for chunk in items.chunks(2) {
            let entries: Vec<Entry<2>> = chunk.iter().map(|&i| Entry::from_item(i)).collect();
            let mbr = Entry::mbr(&entries);
            let page = NodePage::new(0, entries).append(dev.as_ref()).unwrap();
            parents.push(Entry::new(mbr, page as u32));
        }
        let root = NodePage::new(1, parents).append(dev.as_ref()).unwrap();
        (
            RTree::attach(dev, TreeParams::with_cap::<2>(4), root, 1, 8),
            items,
        )
    }

    #[test]
    fn window_matches_brute_force() {
        let (t, items) = grid_tree();
        for (xmin, xmax) in [(0.0, 8.0), (1.2, 3.4), (0.75, 0.8), (-5.0, -1.0)] {
            let q = Rect::xyxy(xmin, 0.2, xmax, 0.8);
            let mut got = t.window(&q).unwrap();
            let mut want = brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn stats_count_leaves_and_results() {
        let (t, _) = grid_tree();
        // Query covering items 2..=5 → leaves 1 and 2 (+ leaf 3? item 6 at
        // x=6; no). Items 2,3 in leaf 1; 4,5 in leaf 2.
        let q = Rect::xyxy(2.0, 0.0, 5.6, 1.0);
        let (hits, stats) = t.window_with_stats(&q).unwrap();
        assert_eq!(hits.len(), 4);
        assert_eq!(stats.results, 4);
        assert_eq!(stats.leaves_visited, 2);
        assert_eq!(stats.internal_visited, 1);
        assert_eq!(stats.nodes_visited, 3);
    }

    #[test]
    fn empty_query_visits_root_only() {
        let (t, _) = grid_tree();
        let q = Rect::xyxy(100.0, 100.0, 101.0, 101.0);
        let (hits, stats) = t.window_with_stats(&q).unwrap();
        assert!(hits.is_empty());
        assert_eq!(stats.nodes_visited, 1);
        assert_eq!(stats.leaves_visited, 0);
    }

    #[test]
    fn device_reads_depend_on_cache_state() {
        let (t, _) = grid_tree();
        t.warm_cache().unwrap();
        let q = Rect::xyxy(0.0, 0.0, 8.0, 1.0);
        let (_, stats) = t.window_with_stats(&q).unwrap();
        // All 4 leaves read from device; root from cache.
        assert_eq!(stats.device_reads, 4);
        assert_eq!(stats.leaves_visited, 4);

        t.set_cache_policy(crate::cache::CachePolicy::None);
        let (_, stats) = t.window_with_stats(&q).unwrap();
        assert_eq!(stats.device_reads, 5, "uncached: every visit is an I/O");
    }

    #[test]
    fn count_and_exists() {
        let (t, _) = grid_tree();
        let q = Rect::xyxy(0.0, 0.0, 2.0, 1.0);
        let (n, _) = t.window_count(&q).unwrap();
        assert_eq!(n, 3); // items 0, 1, 2 (touching at x=2.0)
        assert!(t.intersects_any(&q).unwrap());
        assert!(!t
            .intersects_any(&Rect::xyxy(50.0, 50.0, 51.0, 51.0))
            .unwrap());
    }

    #[test]
    fn existence_early_exit_leaves_window_stats_alone() {
        let (t, _) = grid_tree();
        t.warm_cache().unwrap();
        let q = Rect::xyxy(0.0, 0.0, 8.0, 1.0); // hits every leaf
        let (_, before) = t.window_with_stats(&q).unwrap();
        assert_eq!(before.leaves_visited, 4);

        // The early exit really does stop at the first intersecting
        // leaf: with the cache disabled every node visit is one device
        // read, so the I/O delta counts visits.
        t.set_cache_policy(crate::cache::CachePolicy::None);
        let io0 = t.device().io_stats();
        assert!(t.intersects_any(&q).unwrap());
        let exist_reads = t.device().io_stats().since(io0).reads;
        assert_eq!(exist_reads, 2, "root + first intersecting leaf only");

        let io0 = t.device().io_stats();
        let (_, full) = t.window_with_stats(&q).unwrap();
        assert_eq!(t.device().io_stats().since(io0).reads, 5);

        // And the window path's accounting is untouched by the early
        // exit: same stats before and after, with either cache policy.
        assert_eq!(full.leaves_visited, before.leaves_visited);
        assert_eq!(full.results, before.results);
        t.set_cache_policy(crate::cache::CachePolicy::InternalNodes);
        t.warm_cache().unwrap();
        assert!(t.intersects_any(&q).unwrap());
        let (_, after) = t.window_with_stats(&q).unwrap();
        assert_eq!(after, before, "window stats unchanged by intersects_any");

        // Misses still answer false (and must scan everything).
        assert!(!t
            .intersects_any(&Rect::xyxy(50.0, 50.0, 51.0, 51.0))
            .unwrap());
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let (t, items) = grid_tree();
        t.warm_cache().unwrap();
        let mut scratch = crate::scratch::QueryScratch::new();
        let mut out = Vec::new();
        for (xmin, xmax) in [(0.0, 8.0), (1.2, 3.4), (-5.0, -1.0), (0.75, 0.8)] {
            let q = Rect::xyxy(xmin, 0.2, xmax, 0.8);
            let stats = t.window_into(&q, &mut scratch, &mut out).unwrap();
            let (want, want_stats) = t.window_with_stats(&q).unwrap();
            assert_eq!(out, want, "query {q:?}");
            assert_eq!(stats, want_stats);
            let (n, count_stats) = t.window_count_into(&q, &mut scratch).unwrap();
            assert_eq!(n, want.len() as u64);
            assert_eq!(count_stats, want_stats);
            let mut brute = brute_force_window(&items, &q);
            let mut got = out.clone();
            got.sort_by_key(|i| i.id);
            brute.sort_by_key(|i| i.id);
            assert_eq!(got, brute);
        }
    }

    /// A worker panic must propagate to the caller as an unwind (catchable
    /// by a server's `catch_unwind` boundary), not abort the process.
    #[test]
    fn par_windows_propagates_worker_panics() {
        use pr_em::IoCounters;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        /// Forwards to a MemDevice but panics on reads of one block.
        struct PanickyDevice {
            inner: MemDevice,
            poison: std::sync::atomic::AtomicU64,
        }
        impl BlockDevice for PanickyDevice {
            fn block_size(&self) -> usize {
                self.inner.block_size()
            }
            fn num_blocks(&self) -> u64 {
                self.inner.num_blocks()
            }
            fn allocate(&self, n: u64) -> BlockId {
                self.inner.allocate(n)
            }
            fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<(), EmError> {
                if block == self.poison.load(std::sync::atomic::Ordering::Relaxed) {
                    panic!("injected poison read of block {block}");
                }
                self.inner.read_block(block, buf)
            }
            fn write_block(&self, block: BlockId, buf: &[u8]) -> Result<(), EmError> {
                self.inner.write_block(block, buf)
            }
            fn counters(&self) -> &std::sync::Arc<IoCounters> {
                self.inner.counters()
            }
        }

        let dev = Arc::new(PanickyDevice {
            inner: MemDevice::new(4096),
            poison: std::sync::atomic::AtomicU64::new(u64::MAX),
        });
        let entries: Vec<Entry<2>> = (0..64u32)
            .map(|i| {
                let f = i as f64;
                Entry::new(Rect::xyxy(f, 0.0, f + 0.5, 1.0), i)
            })
            .collect();
        let tree = crate::writer::build_packed(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            TreeParams::with_cap::<2>(8),
            &entries,
        )
        .unwrap();
        // Leaves must be re-read per query for the poison to trigger.
        tree.set_cache_policy(crate::cache::CachePolicy::InternalNodes);
        tree.warm_cache().unwrap();
        let queries = vec![Rect::xyxy(0.0, 0.0, 64.0, 1.0); 8];
        // Sanity: healthy device answers across 2 workers.
        let ok = tree.par_windows(&queries, 2).unwrap();
        assert_eq!(ok.len(), 8);

        dev.poison.store(1, std::sync::atomic::Ordering::Relaxed); // first leaf page
        let caught = catch_unwind(AssertUnwindSafe(|| tree.par_windows(&queries, 2)));
        assert!(caught.is_err(), "worker panic must unwind, not abort");

        // The tree (and process) survive: heal the device and query again.
        dev.poison
            .store(u64::MAX, std::sync::atomic::Ordering::Relaxed);
        let healed = tree.par_windows(&queries, 2).unwrap();
        assert_eq!(healed.len(), 8);
        assert_eq!(healed[0].0.len(), 64);
    }

    /// The shared leaf cache: identical results and leaf-visit stats,
    /// with repeat queries served without any device read — and the
    /// hit/miss accounting surfaced through [`QueryStats`].
    #[test]
    fn leaf_cache_serves_repeats_without_device_reads() {
        use crate::cache::LeafCache;

        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let entries: Vec<Entry<2>> = (0..256u32)
            .map(|i| {
                let f = i as f64;
                Entry::new(Rect::xyxy(f, 0.0, f + 0.5, 1.0), i)
            })
            .collect();
        let plain = crate::writer::build_packed(Arc::clone(&dev), params, &entries).unwrap();
        plain.warm_cache().unwrap();

        let mut cached = crate::writer::build_packed(dev, params, &entries).unwrap();
        let cache = Arc::new(LeafCache::new(4 << 20));
        let epoch = cache.register_epoch();
        cached.attach_leaf_cache(Arc::clone(&cache), epoch);
        cached.warm_cache().unwrap();
        assert!(cached.leaf_cache().is_some());

        let q = Rect::xyxy(10.0, 0.0, 90.0, 1.0);
        let (want, want_stats) = plain.window_with_stats(&q).unwrap();

        // Cold pass: every leaf is a device read AND a leaf-cache miss.
        // Admission is second-touch, so this pass only ghosts the keys.
        let (got, cold) = cached.window_with_stats(&q).unwrap();
        assert_eq!(got, want);
        assert_eq!(cold.leaves_visited, want_stats.leaves_visited);
        assert_eq!(cold.device_reads, want_stats.device_reads);
        assert_eq!(cold.leaf_cache_misses, cold.leaves_visited);
        assert_eq!(cold.leaf_cache_hits, 0);
        assert!(cache.is_empty(), "one touch must not admit");
        assert_eq!(cache.ghost_hits(), 0);

        // Second pass: still misses (device reads), but every key is in
        // the ghost rings, so now the leaves are admitted for real.
        let (second, touch2) = cached.window_with_stats(&q).unwrap();
        assert_eq!(second, want);
        assert_eq!(touch2.leaf_cache_misses, touch2.leaves_visited);
        assert_eq!(cache.ghost_hits(), touch2.leaves_visited);

        // Warm pass: bit-identical results and traversal shape, zero
        // device reads — every leaf visit is a cache hit.
        let (again, warm) = cached.window_with_stats(&q).unwrap();
        assert_eq!(again, want);
        assert_eq!(warm.leaves_visited, want_stats.leaves_visited);
        assert_eq!(warm.results, want_stats.results);
        assert_eq!(warm.device_reads, 0);
        assert_eq!(warm.leaf_cache_hits, warm.leaves_visited);
        assert_eq!(warm.leaf_cache_misses, 0);

        // The per-query tallies flushed into the cache's counters.
        let (h, m) = cache.hit_stats();
        assert_eq!(
            (h, m),
            (
                warm.leaf_cache_hits,
                cold.leaf_cache_misses + touch2.leaf_cache_misses
            )
        );

        // k-NN takes the same path.
        let p = pr_geom::Point::new([42.0, 0.5]);
        let (nn_want, _) = plain.nearest_neighbors_with_stats(&p, 5).unwrap();
        let (nn_got, nn_stats) = cached.nearest_neighbors_with_stats(&p, 5).unwrap();
        assert_eq!(nn_got, nn_want);
        assert_eq!(nn_stats.device_reads, 0, "k-NN leaves already cached");
        assert_eq!(nn_stats.leaf_cache_hits, nn_stats.leaves_visited);
    }

    #[test]
    fn relative_cost_metric() {
        let s = QueryStats {
            leaves_visited: 6,
            results: 10,
            ..Default::default()
        };
        // B = 4: T/B = ceil(10/4) = 3; 6/3 = 2.0 (i.e. "200%").
        assert_eq!(s.output_blocks(4), 3);
        assert!((s.relative_cost(4).unwrap() - 2.0).abs() < 1e-12);
        let empty = QueryStats::default();
        assert_eq!(empty.relative_cost(4), None);
    }
}
