//! Window queries.
//!
//! The query procedure is the same for every R-tree variant (§1.1): start
//! at the root, recursively visit children whose bounding boxes intersect
//! the query window, and report intersecting data rectangles at the
//! leaves. The *cost* differs only through tree shape.
//!
//! [`QueryStats`] separates leaf visits from internal visits because the
//! paper's headline metric is leaf I/Os with all internal nodes cached.

use crate::cache::CacheTally;
use crate::tree::RTree;
use pr_em::{BlockId, EmError};
use pr_geom::{Item, Rect};

/// Cost breakdown of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nodes of any kind visited (bounding box intersected the query).
    pub nodes_visited: u64,
    /// Leaf nodes visited — the paper's query cost metric.
    pub leaves_visited: u64,
    /// Internal nodes visited.
    pub internal_visited: u64,
    /// Actual device reads (cache misses) incurred.
    pub device_reads: u64,
    /// Number of reported items (`T`).
    pub results: u64,
}

impl QueryStats {
    /// Lower bound `⌈T/B⌉` on blocks needed just to report the output.
    pub fn output_blocks(&self, leaf_cap: usize) -> u64 {
        self.results.div_ceil(leaf_cap as u64)
    }

    /// The paper's figure-of-merit: leaf blocks read divided by `⌈T/B⌉`
    /// (expressed as a percentage in Figures 12–15). Returns `None` when
    /// the query reports nothing.
    pub fn relative_cost(&self, leaf_cap: usize) -> Option<f64> {
        let lb = self.output_blocks(leaf_cap);
        (lb > 0).then(|| self.leaves_visited as f64 / lb as f64)
    }
}

impl<const D: usize> RTree<D> {
    /// Reports all items whose rectangles intersect `query`.
    pub fn window(&self, query: &Rect<D>) -> Result<Vec<Item<D>>, EmError> {
        Ok(self.window_with_stats(query)?.0)
    }

    /// Window query returning both results and cost statistics.
    pub fn window_with_stats(
        &self,
        query: &Rect<D>,
    ) -> Result<(Vec<Item<D>>, QueryStats), EmError> {
        let mut out = Vec::new();
        let stats = self.traverse(query, |item| out.push(item))?;
        Ok((out, stats))
    }

    /// Counts intersecting items without materializing them.
    pub fn window_count(&self, query: &Rect<D>) -> Result<(u64, QueryStats), EmError> {
        let mut n = 0u64;
        let stats = self.traverse(query, |_| n += 1)?;
        Ok((n, stats))
    }

    /// True if any item intersects `query` (early-exit not implemented:
    /// full traversal keeps cost accounting identical to `window`).
    pub fn intersects_any(&self, query: &Rect<D>) -> Result<bool, EmError> {
        Ok(self.window_count(query)?.0 > 0)
    }

    /// Answers a batch of window queries across `threads` worker threads
    /// (`0` = one per available core), returning per-query results and
    /// statistics in input order.
    ///
    /// Results, leaf visits, and device-read counts are identical to
    /// running [`RTree::window_with_stats`] serially over the slice: the
    /// traversal is deterministic per query and the sharded cache
    /// ([`crate::cache`]) is read-only during queries, so concurrency
    /// changes only wall-clock time. Cache hit/miss totals are likewise
    /// exact — each query accumulates locally and flushes atomically.
    pub fn par_windows(
        &self,
        queries: &[Rect<D>],
        threads: usize,
    ) -> Result<Vec<(Vec<Item<D>>, QueryStats)>, EmError> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(queries.len().max(1));
        if threads <= 1 {
            return queries.iter().map(|q| self.window_with_stats(q)).collect();
        }
        // Contiguous chunks keep output order trivially reconstructible;
        // `RTree: Sync` lets every worker borrow `self` directly.
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|qs| {
                    scope.spawn(move || {
                        qs.iter()
                            .map(|q| self.window_with_stats(q))
                            .collect::<Result<Vec<_>, EmError>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(queries.len());
            for h in handles {
                out.extend(h.join().expect("par_windows worker panicked")?);
            }
            Ok(out)
        })
    }

    fn traverse(
        &self,
        query: &Rect<D>,
        mut emit: impl FnMut(Item<D>),
    ) -> Result<QueryStats, EmError> {
        let mut stats = QueryStats::default();
        if self.is_empty() {
            return Ok(stats);
        }
        // Cache hits/misses accumulate locally and flush once at the end
        // (including the error path), so concurrent queries never touch
        // the shared counters mid-traversal yet totals stay exact. The
        // frozen snapshot is likewise cloned once, making the per-node
        // lookups lock-free after warm_cache.
        let mut tally = CacheTally::default();
        let frozen = self.frozen_snapshot();
        let mut stack: Vec<BlockId> = vec![self.root()];
        let walk = (|| {
            while let Some(page) = stack.pop() {
                let (node, did_io) = self.read_node_tallied(page, frozen.as_ref(), &mut tally)?;
                stats.nodes_visited += 1;
                stats.device_reads += did_io as u64;
                if node.is_leaf() {
                    stats.leaves_visited += 1;
                    for e in &node.entries {
                        if e.rect.intersects(query) {
                            stats.results += 1;
                            emit(e.to_item());
                        }
                    }
                } else {
                    stats.internal_visited += 1;
                    for e in &node.entries {
                        if e.rect.intersects(query) {
                            stack.push(e.ptr as BlockId);
                        }
                    }
                }
            }
            Ok(())
        })();
        self.record_cache_tally(tally);
        walk.map(|()| stats)
    }
}

/// Brute-force reference: scan `items` and report intersections. Tests
/// compare every tree variant against this.
pub fn brute_force_window<const D: usize>(items: &[Item<D>], query: &Rect<D>) -> Vec<Item<D>> {
    items
        .iter()
        .filter(|i| i.rect.intersects(query))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use crate::page::NodePage;
    use crate::params::TreeParams;
    use pr_em::{BlockDevice, MemDevice};
    use std::sync::Arc;

    /// Hand-built 2-level tree: items i = 0..8 at x in [i, i+0.5].
    fn grid_tree() -> (RTree<2>, Vec<Item<2>>) {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let items: Vec<Item<2>> = (0..8u32)
            .map(|i| {
                let f = i as f64;
                Item::new(Rect::xyxy(f, 0.0, f + 0.5, 1.0), i)
            })
            .collect();
        let mut parents = Vec::new();
        for chunk in items.chunks(2) {
            let entries: Vec<Entry<2>> = chunk.iter().map(|&i| Entry::from_item(i)).collect();
            let mbr = Entry::mbr(&entries);
            let page = NodePage::new(0, entries).append(dev.as_ref()).unwrap();
            parents.push(Entry::new(mbr, page as u32));
        }
        let root = NodePage::new(1, parents).append(dev.as_ref()).unwrap();
        (
            RTree::attach(dev, TreeParams::with_cap::<2>(4), root, 1, 8),
            items,
        )
    }

    #[test]
    fn window_matches_brute_force() {
        let (t, items) = grid_tree();
        for (xmin, xmax) in [(0.0, 8.0), (1.2, 3.4), (0.75, 0.8), (-5.0, -1.0)] {
            let q = Rect::xyxy(xmin, 0.2, xmax, 0.8);
            let mut got = t.window(&q).unwrap();
            let mut want = brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn stats_count_leaves_and_results() {
        let (t, _) = grid_tree();
        // Query covering items 2..=5 → leaves 1 and 2 (+ leaf 3? item 6 at
        // x=6; no). Items 2,3 in leaf 1; 4,5 in leaf 2.
        let q = Rect::xyxy(2.0, 0.0, 5.6, 1.0);
        let (hits, stats) = t.window_with_stats(&q).unwrap();
        assert_eq!(hits.len(), 4);
        assert_eq!(stats.results, 4);
        assert_eq!(stats.leaves_visited, 2);
        assert_eq!(stats.internal_visited, 1);
        assert_eq!(stats.nodes_visited, 3);
    }

    #[test]
    fn empty_query_visits_root_only() {
        let (t, _) = grid_tree();
        let q = Rect::xyxy(100.0, 100.0, 101.0, 101.0);
        let (hits, stats) = t.window_with_stats(&q).unwrap();
        assert!(hits.is_empty());
        assert_eq!(stats.nodes_visited, 1);
        assert_eq!(stats.leaves_visited, 0);
    }

    #[test]
    fn device_reads_depend_on_cache_state() {
        let (t, _) = grid_tree();
        t.warm_cache().unwrap();
        let q = Rect::xyxy(0.0, 0.0, 8.0, 1.0);
        let (_, stats) = t.window_with_stats(&q).unwrap();
        // All 4 leaves read from device; root from cache.
        assert_eq!(stats.device_reads, 4);
        assert_eq!(stats.leaves_visited, 4);

        t.set_cache_policy(crate::cache::CachePolicy::None);
        let (_, stats) = t.window_with_stats(&q).unwrap();
        assert_eq!(stats.device_reads, 5, "uncached: every visit is an I/O");
    }

    #[test]
    fn count_and_exists() {
        let (t, _) = grid_tree();
        let q = Rect::xyxy(0.0, 0.0, 2.0, 1.0);
        let (n, _) = t.window_count(&q).unwrap();
        assert_eq!(n, 3); // items 0, 1, 2 (touching at x=2.0)
        assert!(t.intersects_any(&q).unwrap());
        assert!(!t
            .intersects_any(&Rect::xyxy(50.0, 50.0, 51.0, 51.0))
            .unwrap());
    }

    #[test]
    fn relative_cost_metric() {
        let s = QueryStats {
            leaves_visited: 6,
            results: 10,
            ..Default::default()
        };
        // B = 4: T/B = ceil(10/4) = 3; 6/3 = 2.0 (i.e. "200%").
        assert_eq!(s.output_blocks(4), 3);
        assert!((s.relative_cost(4).unwrap() - 2.0).abs() < 1e-12);
        let empty = QueryStats::default();
        assert_eq!(empty.relative_cost(4), None);
    }
}
