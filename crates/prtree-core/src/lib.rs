//! # pr-tree — the Priority R-tree and its competitors
//!
//! This crate implements the primary contribution of *"The Priority
//! R-Tree: A Practically Efficient and Worst-Case Optimal R-Tree"* (Arge,
//! de Berg, Haverkort, Yi; SIGMOD 2004) together with every index it is
//! evaluated against, all sharing one page-level R-tree runtime:
//!
//! * [`tree::RTree`] — the common runtime: 4KB node pages, fanout 113 (in
//!   2-D), window queries with exact I/O accounting, pluggable node cache.
//! * [`soa`] / [`scratch`] / [`reference`] — the decode-free query
//!   engine: cached nodes are structure-of-arrays views scanned by
//!   vectorized kernels, traversal state lives in a reusable
//!   [`scratch::QueryScratch`], and the retained scalar AoS engine in
//!   [`reference`] pins result/stat equivalence.
//! * [`pseudo`] — the **pseudo-PR-tree** of §2.1: a `2D`-dimensional
//!   kd-tree over corner-mapped rectangles with *priority leaves*.
//! * [`bulk::pr`] — the **PR-tree** bulk loader of §2.2/§2.3 (worst-case
//!   optimal queries), with in-memory and external-memory variants.
//! * [`bulk::hilbert`] — packed Hilbert R-tree (H) and four-dimensional
//!   Hilbert R-tree (H4) baselines.
//! * [`bulk::tgs`] — Top-down Greedy Split baseline.
//! * [`bulk::str_`] — Sort-Tile-Recursive packing (extra baseline).
//! * [`dynamic`] — Guttman insert/delete with Linear/Quadratic/R* splits,
//!   and the logarithmic-method dynamization (LPR-tree) of §1.2/§4.
//!
//! ## Quick start
//!
//! ```
//! use pr_tree::bulk::pr::PrTreeLoader;
//! use pr_tree::bulk::BulkLoader;
//! use pr_tree::params::TreeParams;
//! use pr_em::MemDevice;
//! use pr_geom::{Item, Rect};
//! use std::sync::Arc;
//!
//! let items: Vec<Item<2>> = (0..1000)
//!     .map(|i| {
//!         let x = (i % 100) as f64;
//!         let y = (i / 100) as f64;
//!         Item::new(Rect::xyxy(x, y, x + 0.5, y + 0.5), i)
//!     })
//!     .collect();
//! let dev = Arc::new(MemDevice::default_size());
//! let tree = PrTreeLoader::default()
//!     .load(dev, TreeParams::paper_2d(), items.clone())
//!     .unwrap();
//! let hits = tree.window(&Rect::xyxy(10.0, 2.0, 20.0, 4.0)).unwrap();
//! assert!(!hits.is_empty());
//! ```

pub mod bulk;
pub mod cache;
pub mod dynamic;
pub mod entry;
pub mod knn;
pub mod meta;
pub mod obs;
pub mod page;
pub mod params;
pub mod pseudo;
pub mod query;
pub mod reference;
pub mod scratch;
pub mod soa;
pub mod tree;
pub mod validate;
pub mod writer;

pub use cache::{CachePolicy, LeafCache, DEFAULT_LEAF_CACHE_BYTES};
pub use entry::Entry;
pub use meta::TreeMeta;
pub use params::TreeParams;
pub use query::QueryStats;
pub use reference::ReferenceEngine;
pub use scratch::QueryScratch;
pub use soa::SoaNode;
pub use tree::RTree;
