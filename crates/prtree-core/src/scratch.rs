//! Reusable per-query scratch state — the allocation-free traversal.
//!
//! Every buffer a query needs lives here: the DFS stack, the raw-page
//! read buffer and the SoA transcode target for uncached (leaf) visits,
//! the match mask the batch kernels write, and the k-NN candidate heap
//! plus its batched-distance buffer. A [`QueryScratch`] is created once
//! and threaded through the `_into` variants
//! ([`crate::tree::RTree::window_into`],
//! [`crate::tree::RTree::window_count_into`],
//! [`crate::tree::RTree::nearest_neighbors_into`],
//! [`crate::tree::RTree::intersects_any_into`]); after the first few
//! queries sized the buffers, the steady-state hot path performs **zero
//! heap allocations per query**. `par_windows` gives each worker thread
//! one scratch for its whole chunk.
//!
//! The convenience wrappers (`window`, `window_count`, …) construct a
//! fresh scratch per call, so one-shot callers pay only what the old
//! engine already paid.

use crate::knn::Prioritized;
use crate::soa::SoaNode;
use pr_em::BlockId;
use std::collections::BinaryHeap;

/// Reusable buffers for window and k-NN queries (see module docs).
///
/// The contents are an implementation detail: a scratch carries no
/// query state between calls other than retained capacity, so one
/// scratch may serve any number of queries against any number of trees
/// of the same dimension `D`, one at a time.
pub struct QueryScratch<const D: usize> {
    /// DFS stack of pages still to visit.
    pub(crate) stack: Vec<BlockId>,
    /// Raw page buffer for device reads on cache misses.
    pub(crate) page_buf: Vec<u8>,
    /// Per-entry match mask written by the batch kernels.
    pub(crate) mask: Vec<u8>,
    /// SoA transcode target for uncached nodes (leaves, in the paper's
    /// cache-all-internal-nodes steady state).
    pub(crate) soa: SoaNode<D>,
    /// Batched `min_dist2` output (k-NN).
    pub(crate) dist: Vec<f64>,
    /// Best-first candidate heap (k-NN).
    pub(crate) heap: BinaryHeap<Prioritized<D>>,
    /// Span-trace context riding the query (see `pr_obs::trace`). The
    /// engine arms it via sampling at the top of each traversal and
    /// publishes the finished trace; callers wanting a guaranteed trace
    /// (`--explain`) set it to [`pr_obs::SpanCtx::forced`] beforehand.
    pub trace: pr_obs::SpanCtx,
}

impl<const D: usize> QueryScratch<D> {
    /// Creates an empty scratch; buffers grow to steady-state sizes on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        QueryScratch {
            stack: Vec::new(),
            page_buf: Vec::new(),
            mask: Vec::new(),
            soa: SoaNode::new_empty(),
            dist: Vec::new(),
            heap: BinaryHeap::new(),
            trace: pr_obs::SpanCtx::off(),
        }
    }
}

impl<const D: usize> Default for QueryScratch<D> {
    fn default() -> Self {
        Self::new()
    }
}
