//! On-disk node pages.
//!
//! Every node of every tree variant is one device block:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PRTN"
//! 4       1     level      (0 = leaf)
//! 5       1     flags      (reserved)
//! 6       2     count      (number of entries, little-endian u16)
//! 8       8     reserved
//! 16      36·k  entries    (see `Entry`)
//! ```
//!
//! The 16-byte header plus 36-byte entries on a 4KB page give the paper's
//! fanout of 113.

use crate::entry::Entry;
use pr_em::{BlockDevice, BlockId, EmError, Record};

/// Bytes of page header before the entry array.
pub const PAGE_HEADER_SIZE: usize = 16;

pub(crate) const MAGIC: [u8; 4] = *b"PRTN";

/// A decoded R-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePage<const D: usize> {
    /// Level in the tree: 0 for leaves, increasing toward the root.
    pub level: u8,
    /// Node entries (data rectangles or child bounding boxes).
    pub entries: Vec<Entry<D>>,
}

impl<const D: usize> NodePage<D> {
    /// Creates a node.
    pub fn new(level: u8, entries: Vec<Entry<D>>) -> Self {
        NodePage { level, entries }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the node has no entries (only legal transiently during
    /// dynamic deletion).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Minimal bounding rectangle of all entries.
    pub fn mbr(&self) -> pr_geom::Rect<D> {
        Entry::mbr(&self.entries)
    }

    /// Serializes into a page buffer of exactly `page_size` bytes.
    ///
    /// # Panics
    /// Panics if the entries do not fit in the page.
    pub fn encode(&self, buf: &mut [u8]) {
        let cap = (buf.len() - PAGE_HEADER_SIZE) / Entry::<D>::SIZE;
        assert!(
            self.entries.len() <= cap && self.entries.len() <= u16::MAX as usize,
            "node with {} entries exceeds page capacity {cap}",
            self.entries.len()
        );
        buf[..4].copy_from_slice(&MAGIC);
        buf[4] = self.level;
        buf[5] = 0;
        buf[6..8].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        buf[8..16].fill(0);
        let mut off = PAGE_HEADER_SIZE;
        for e in &self.entries {
            e.encode(&mut buf[off..off + Entry::<D>::SIZE]);
            off += Entry::<D>::SIZE;
        }
        buf[off..].fill(0);
    }

    /// Deserializes a page buffer.
    pub fn decode(buf: &[u8]) -> Result<Self, EmError> {
        if buf.len() < PAGE_HEADER_SIZE || buf[..4] != MAGIC {
            return Err(EmError::Corrupt("bad node page magic".into()));
        }
        let level = buf[4];
        let count = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes")) as usize;
        let cap = (buf.len() - PAGE_HEADER_SIZE) / Entry::<D>::SIZE;
        if count > cap {
            return Err(EmError::Corrupt(format!(
                "node count {count} exceeds page capacity {cap}"
            )));
        }
        let mut entries = Vec::with_capacity(count);
        let mut off = PAGE_HEADER_SIZE;
        for _ in 0..count {
            entries.push(Entry::decode(&buf[off..off + Entry::<D>::SIZE]));
            off += Entry::<D>::SIZE;
        }
        Ok(NodePage { level, entries })
    }

    /// Reads and decodes the node stored at `page` on `dev`.
    pub fn read(dev: &dyn BlockDevice, page: BlockId) -> Result<Self, EmError> {
        let mut buf = vec![0u8; dev.block_size()];
        dev.read_block(page, &mut buf)?;
        NodePage::decode(&buf)
    }

    /// Encodes and writes the node to `page` on `dev`.
    pub fn write(&self, dev: &dyn BlockDevice, page: BlockId) -> Result<(), EmError> {
        let mut buf = vec![0u8; dev.block_size()];
        self.encode(&mut buf);
        dev.write_block(page, &buf)
    }

    /// Allocates a fresh page and writes the node there, returning its id.
    pub fn append(&self, dev: &dyn BlockDevice) -> Result<BlockId, EmError> {
        let page = dev.allocate(1);
        self.write(dev, page)?;
        Ok(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_em::MemDevice;
    use pr_geom::Rect;

    fn entries(n: usize) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Entry::new(Rect::xyxy(f, f, f + 1.0, f + 2.0), i as u32)
            })
            .collect()
    }

    #[test]
    fn header_size_gives_paper_fanout() {
        assert_eq!((4096 - PAGE_HEADER_SIZE) / Entry::<2>::SIZE, 113);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let node = NodePage::new(3, entries(7));
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf);
        let back = NodePage::<2>::decode(&buf).unwrap();
        assert_eq!(back, node);
        assert!(!back.is_leaf());
        assert_eq!(back.len(), 7);
    }

    #[test]
    fn full_page_roundtrip() {
        let node = NodePage::new(0, entries(113));
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf);
        let back = NodePage::<2>::decode(&buf).unwrap();
        assert_eq!(back.entries.len(), 113);
        assert!(back.is_leaf());
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn overfull_page_panics() {
        let node = NodePage::new(0, entries(114));
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf);
    }

    #[test]
    fn corrupt_magic_is_error() {
        let buf = vec![0u8; 4096];
        assert!(NodePage::<2>::decode(&buf).is_err());
    }

    #[test]
    fn corrupt_count_is_error() {
        let node = NodePage::new(0, entries(3));
        let mut buf = vec![0u8; 4096];
        node.encode(&mut buf);
        buf[6..8].copy_from_slice(&500u16.to_le_bytes());
        assert!(NodePage::<2>::decode(&buf).is_err());
    }

    #[test]
    fn device_roundtrip() {
        let dev = MemDevice::new(4096);
        let node = NodePage::new(1, entries(5));
        let page = node.append(&dev).unwrap();
        let back = NodePage::<2>::read(&dev, page).unwrap();
        assert_eq!(back, node);
        assert_eq!(dev.io_stats().writes, 1);
        assert_eq!(dev.io_stats().reads, 1);
    }

    #[test]
    fn mbr_of_node() {
        let node = NodePage::new(0, entries(3));
        assert_eq!(node.mbr(), Rect::xyxy(0.0, 0.0, 3.0, 4.0));
    }
}
