//! Serializable tree metadata.
//!
//! An [`crate::tree::RTree`] is pages on a device *plus* a handful of
//! fields that live only in the handle: the tree parameters, the root
//! page id, the root's level, and the item count. Persisting a tree
//! means persisting the pages and this record; reopening means decoding
//! the record and calling [`crate::tree::RTree::from_parts`]. The
//! `pr-store` crate embeds the encoded form in its superblock.
//!
//! Encoded layout (40 bytes, little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     page_size        (u32)
//! 4       4     leaf_cap         (u32)
//! 8       4     node_cap         (u32)
//! 12      4     min_fill_percent (u32)
//! 16      8     root page id     (u64)
//! 24      8     item count       (u64)
//! 32      1     root_level       (u8)
//! 33      7     reserved (zero)
//! ```

use crate::params::TreeParams;
use pr_em::{BlockId, EmError};

/// Everything an R-tree is besides its pages. See the module docs for
/// the wire layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeMeta {
    /// Static tree configuration (page size, fanout, fill).
    pub params: TreeParams,
    /// Page id of the root node.
    pub root: BlockId,
    /// Level of the root (0 = single-leaf tree).
    pub root_level: u8,
    /// Number of indexed items.
    pub len: u64,
}

impl TreeMeta {
    /// Size of the encoded record in bytes.
    pub const ENCODED_SIZE: usize = 40;

    /// Serializes into `buf` (must be exactly [`TreeMeta::ENCODED_SIZE`]).
    pub fn encode(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        buf[0..4].copy_from_slice(&(self.params.page_size as u32).to_le_bytes());
        buf[4..8].copy_from_slice(&(self.params.leaf_cap as u32).to_le_bytes());
        buf[8..12].copy_from_slice(&(self.params.node_cap as u32).to_le_bytes());
        buf[12..16].copy_from_slice(&self.params.min_fill_percent.to_le_bytes());
        buf[16..24].copy_from_slice(&self.root.to_le_bytes());
        buf[24..32].copy_from_slice(&self.len.to_le_bytes());
        buf[32] = self.root_level;
        buf[33..40].fill(0);
    }

    /// Deserializes a record, rejecting layouts no tree could have
    /// produced (so a corrupted superblock surfaces as a typed error,
    /// never as an absurd handle).
    pub fn decode(buf: &[u8]) -> Result<Self, EmError> {
        if buf.len() != Self::ENCODED_SIZE {
            return Err(EmError::Corrupt(format!(
                "tree metadata record is {} bytes, want {}",
                buf.len(),
                Self::ENCODED_SIZE
            )));
        }
        let u32_at = |off: usize| {
            u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize
        };
        let u64_at =
            |off: usize| u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"));
        let params = TreeParams {
            page_size: u32_at(0),
            leaf_cap: u32_at(4),
            node_cap: u32_at(8),
            min_fill_percent: u32_at(12) as u32,
        };
        let meta = TreeMeta {
            params,
            root: u64_at(16),
            len: u64_at(24),
            root_level: buf[32],
        };
        if params.leaf_cap < 2 || params.node_cap < 2 {
            return Err(EmError::Corrupt(format!(
                "tree metadata has impossible capacities (leaf {}, node {})",
                params.leaf_cap, params.node_cap
            )));
        }
        if params.min_fill_percent > 100 {
            return Err(EmError::Corrupt(format!(
                "tree metadata has min fill {}% > 100%",
                params.min_fill_percent
            )));
        }
        if params.page_size == 0 {
            return Err(EmError::Corrupt("tree metadata has zero page size".into()));
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TreeMeta {
        TreeMeta {
            params: TreeParams::paper_2d(),
            root: 1234,
            root_level: 3,
            len: 5_000_000,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let meta = sample();
        let mut buf = [0u8; TreeMeta::ENCODED_SIZE];
        meta.encode(&mut buf);
        assert_eq!(TreeMeta::decode(&buf).unwrap(), meta);
    }

    #[test]
    fn wrong_length_is_an_error() {
        assert!(TreeMeta::decode(&[0u8; 16]).is_err());
    }

    #[test]
    fn impossible_fields_are_errors() {
        let meta = sample();
        let mut buf = [0u8; TreeMeta::ENCODED_SIZE];
        meta.encode(&mut buf);
        let mut bad = buf;
        bad[4..8].copy_from_slice(&1u32.to_le_bytes()); // leaf_cap = 1
        assert!(TreeMeta::decode(&bad).is_err());
        let mut bad = buf;
        bad[12..16].copy_from_slice(&250u32.to_le_bytes()); // fill > 100%
        assert!(TreeMeta::decode(&bad).is_err());
        let mut bad = buf;
        bad[0..4].copy_from_slice(&0u32.to_le_bytes()); // page_size = 0
        assert!(TreeMeta::decode(&bad).is_err());
    }
}
