//! Level-by-level tree writing utilities shared by all bulk loaders.
//!
//! Loaders differ in how they *group* rectangles into nodes; once groups
//! exist, writing pages and deriving parent entries is identical. The
//! sort-based loaders (Hilbert, 4-D Hilbert, STR) additionally share
//! "chunk a sorted sequence into full nodes and repeat upward", which is
//! the "packed" construction of Kamel–Faloutsos and Roussopoulos–Leifker.

use crate::entry::Entry;
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::tree::RTree;
use pr_em::{BlockDevice, BlockId, EmError};
use std::sync::Arc;

/// Converts a device page id into the 32-bit pointer an [`Entry`] can
/// hold. A device past 2^32 pages (16TB at 4KB blocks) surfaces as
/// [`EmError::PageIdOverflow`] instead of a truncated pointer or a
/// process abort; every loader and dynamic update funnels through this.
pub fn page_ptr(page: BlockId) -> Result<u32, EmError> {
    u32::try_from(page).map_err(|_| EmError::PageIdOverflow { page })
}

/// Writes one tree level: each group becomes a node page at `level`.
/// Returns the parent entries (group MBR + page id) in group order.
pub fn write_level<const D: usize>(
    dev: &dyn BlockDevice,
    level: u8,
    groups: impl IntoIterator<Item = Vec<Entry<D>>>,
) -> Result<Vec<Entry<D>>, EmError> {
    let mut parents = Vec::new();
    for group in groups {
        debug_assert!(!group.is_empty(), "empty node group");
        let mbr = Entry::mbr(&group);
        let page = NodePage::new(level, group).append(dev)?;
        parents.push(Entry::new(mbr, page_ptr(page)?));
    }
    Ok(parents)
}

/// Chunks `entries` (already in the desired order) into nodes of at most
/// `cap`, writing them at `level`; returns parent entries.
pub fn pack_level<const D: usize>(
    dev: &dyn BlockDevice,
    level: u8,
    entries: &[Entry<D>],
    cap: usize,
) -> Result<Vec<Entry<D>>, EmError> {
    write_level(dev, level, entries.chunks(cap).map(|c| c.to_vec()))
}

/// Builds all remaining levels above `child_level` by repeated sequential
/// chunking and returns the finished tree handle.
///
/// `parents` are the entries pointing at the already-written nodes of
/// `child_level`; `len` is the total number of items in the tree.
pub fn pack_upper_levels<const D: usize>(
    dev: Arc<dyn BlockDevice>,
    params: TreeParams,
    mut parents: Vec<Entry<D>>,
    child_level: u8,
    len: u64,
) -> Result<RTree<D>, EmError> {
    assert!(!parents.is_empty(), "cannot build a tree with no leaves");
    let mut level: u8 = child_level + 1;
    while parents.len() > params.node_cap {
        parents = pack_level(dev.as_ref(), level, &parents, params.node_cap)?;
        level = level
            .checked_add(1)
            .expect("tree height exceeds 255 levels");
    }
    if parents.len() == 1 {
        // A single child: it is the root itself; no extra node needed.
        let root = parents[0].ptr as u64;
        return Ok(RTree::attach(dev, params, root, level - 1, len));
    }
    let root = NodePage::new(level, parents).append(dev.as_ref())?;
    Ok(RTree::attach(dev, params, root, level, len))
}

/// Convenience used by every sort-based loader: write `entries` (leaf
/// entries in final on-curve order) as packed leaves, then pack upward.
pub fn build_packed<const D: usize>(
    dev: Arc<dyn BlockDevice>,
    params: TreeParams,
    leaf_entries: &[Entry<D>],
) -> Result<RTree<D>, EmError> {
    if leaf_entries.is_empty() {
        return RTree::new_empty(dev, params);
    }
    let len = leaf_entries.len() as u64;
    let parents = pack_level(dev.as_ref(), 0, leaf_entries, params.leaf_cap)?;
    pack_upper_levels(dev, params, parents, 0, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::brute_force_window;
    use pr_em::MemDevice;
    use pr_geom::{Item, Rect};

    fn items(n: u32) -> Vec<Item<2>> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Item::new(Rect::xyxy(f, 0.0, f + 0.5, 1.0), i)
            })
            .collect()
    }

    fn entries(n: u32) -> Vec<Entry<2>> {
        items(n).into_iter().map(Entry::from_item).collect()
    }

    #[test]
    fn single_leaf_tree_has_height_one() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let t = build_packed(dev, TreeParams::with_cap::<2>(8), &entries(5)).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 5);
        assert_eq!(t.items().unwrap().len(), 5);
    }

    #[test]
    fn empty_input_builds_empty_tree() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let t = build_packed::<2>(dev, TreeParams::with_cap::<2>(8), &[]).unwrap();
        assert!(t.is_empty());
        assert!(t
            .window(&Rect::xyxy(0.0, 0.0, 1.0, 1.0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn multi_level_packing() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let params = TreeParams::with_cap::<2>(4);
        // 100 items, cap 4: 25 leaves, 7 L1 nodes, 2 L2 nodes, root.
        let t = build_packed(dev, params, &entries(100)).unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.height(), 4);
        let s = t.stats().unwrap();
        assert_eq!(s.nodes_per_level, vec![25, 7, 2, 1]);
        assert_eq!(s.entries_per_level[0], 100);
    }

    #[test]
    fn exact_capacity_boundary() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let params = TreeParams::with_cap::<2>(4);
        // Exactly cap items: single leaf root.
        let t = build_packed(dev, params, &entries(4)).unwrap();
        assert_eq!(t.height(), 1);
        // cap + 1: two leaves + root.
        let dev2: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let t2 = build_packed(dev2, params, &entries(5)).unwrap();
        assert_eq!(t2.height(), 2);
        let s = t2.stats().unwrap();
        assert_eq!(s.nodes_per_level, vec![2, 1]);
    }

    #[test]
    fn packed_tree_answers_queries_correctly() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let all = items(100);
        let t = build_packed(
            dev,
            TreeParams::with_cap::<2>(4),
            &all.iter().map(|&i| Entry::from_item(i)).collect::<Vec<_>>(),
        )
        .unwrap();
        for q in [
            Rect::xyxy(10.0, 0.0, 20.0, 1.0),
            Rect::xyxy(-3.0, 0.0, 0.1, 0.5),
            Rect::xyxy(99.9, 0.9, 120.0, 2.0),
            Rect::xyxy(200.0, 0.0, 300.0, 1.0),
        ] {
            let mut got = t.window(&q).unwrap();
            let mut want = brute_force_window(&all, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn parent_mbrs_cover_children() {
        let dev = MemDevice::new(4096);
        let parents = pack_level(&dev, 0, &entries(10), 3).unwrap();
        assert_eq!(parents.len(), 4); // 3+3+3+1
        assert_eq!(parents[0].rect, Rect::xyxy(0.0, 0.0, 2.5, 1.0));
        assert_eq!(parents[3].rect, Rect::xyxy(9.0, 0.0, 9.5, 1.0));
    }
}
