//! Deep structural validation.
//!
//! Every loader and every dynamic operation is checked in tests against
//! the R-tree invariants (§1.1 of the paper, Guttman's original
//! definition):
//!
//! 1. all leaves are on the same level (the tree is height-balanced),
//! 2. each internal entry's rectangle is *exactly* the minimal bounding
//!    box of its child's contents,
//! 3. node sizes respect capacity (and, for dynamic trees, minimum fill),
//! 4. the indexed item multiset is preserved.

use crate::tree::{RTree, TreeStructure};
use pr_em::{BlockId, EmError};
use pr_geom::Rect;

/// Outcome of a validation pass.
#[derive(Debug)]
pub struct ValidationReport {
    /// Structural statistics gathered during the walk.
    pub structure: TreeStructure,
    /// Human-readable invariant violations (empty = valid).
    pub errors: Vec<String>,
}

impl ValidationReport {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Panics with all violations (test helper).
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "tree invariants violated:\n{}",
            self.errors.join("\n")
        );
    }
}

/// Options controlling which invariants are enforced.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOptions {
    /// Enforce Guttman's minimum fill on non-root nodes (only meaningful
    /// for dynamically maintained trees; bulk loaders may legitimately
    /// produce one underfull node per level).
    pub check_min_fill: bool,
}

impl<const D: usize> RTree<D> {
    /// Validates all invariants; see [`ValidationReport`].
    pub fn validate(&self) -> Result<ValidationReport, EmError> {
        self.validate_with(ValidateOptions::default())
    }

    /// Validates with explicit options.
    pub fn validate_with(&self, opts: ValidateOptions) -> Result<ValidationReport, EmError> {
        let mut errors = Vec::new();
        let levels = self.root_level() as usize + 1;
        let mut nodes = vec![0u64; levels];
        let mut entries = vec![0u64; levels];
        let mut item_count = 0u64;

        // (page, expected_level, expected_mbr (None for root), is_root)
        let mut stack: Vec<(BlockId, u8, Option<Rect<D>>)> =
            vec![(self.root(), self.root_level(), None)];
        while let Some((page, expect_level, expect_mbr)) = stack.pop() {
            let (node, _) = self.read_node(page)?;
            if node.level != expect_level {
                errors.push(format!(
                    "page {page}: level {} but expected {expect_level} (leaves not balanced)",
                    node.level
                ));
                continue;
            }
            let l = node.level as usize;
            nodes[l] += 1;
            entries[l] += node.len() as u64;

            let cap = self.params().cap_at_level(node.level);
            if node.len() > cap {
                errors.push(format!(
                    "page {page}: {} entries exceed capacity {cap}",
                    node.len()
                ));
            }
            let is_root = page == self.root();
            if node.is_empty() && !(is_root && self.is_empty()) {
                errors.push(format!("page {page}: empty node"));
            }
            if opts.check_min_fill && !is_root {
                let min = self.params().min_fill(node.level);
                if node.len() < min {
                    errors.push(format!(
                        "page {page}: {} entries below minimum fill {min}",
                        node.len()
                    ));
                }
            }
            if let Some(expect) = expect_mbr {
                let actual = node.mbr();
                if actual != expect {
                    errors.push(format!(
                        "page {page}: parent stores {expect:?} but child MBR is {actual:?}"
                    ));
                }
            }
            if node.is_leaf() {
                item_count += node.len() as u64;
                for e in &node.entries {
                    if !e.rect.is_valid() {
                        errors.push(format!("page {page}: invalid item rect {:?}", e.rect));
                    }
                }
            } else {
                for e in &node.entries {
                    stack.push((e.ptr as BlockId, node.level - 1, Some(e.rect)));
                }
            }
        }

        if item_count != self.len() {
            errors.push(format!(
                "tree says len = {} but leaves hold {item_count} items",
                self.len()
            ));
        }

        Ok(ValidationReport {
            structure: TreeStructure {
                nodes_per_level: nodes,
                entries_per_level: entries,
                leaf_cap: self.params().leaf_cap,
                node_cap: self.params().node_cap,
            },
            errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use crate::page::NodePage;
    use crate::params::TreeParams;
    use crate::writer::build_packed;
    use pr_em::{BlockDevice, MemDevice};
    use pr_geom::Item;
    use std::sync::Arc;

    fn entries(n: u32) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Entry::from_item(Item::new(Rect::xyxy(f, 0.0, f + 0.5, 1.0), i))
            })
            .collect()
    }

    #[test]
    fn packed_tree_is_valid() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let t = build_packed(dev, TreeParams::with_cap::<2>(4), &entries(50)).unwrap();
        let report = t.validate().unwrap();
        report.assert_ok();
        assert_eq!(report.structure.entries_per_level[0], 50);
    }

    #[test]
    fn detects_wrong_parent_mbr() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let leaf = NodePage::new(0, entries(2)).append(dev.as_ref()).unwrap();
        // Parent stores a deliberately wrong (too large) bounding box.
        let root = NodePage::new(
            1,
            vec![Entry::new(
                Rect::xyxy(-10.0, -10.0, 10.0, 10.0),
                leaf as u32,
            )],
        )
        .append(dev.as_ref())
        .unwrap();
        let t = RTree::<2>::attach(dev, TreeParams::with_cap::<2>(4), root, 1, 2);
        let report = t.validate().unwrap();
        assert!(!report.is_ok());
        assert!(report.errors[0].contains("MBR"));
    }

    #[test]
    fn detects_wrong_len() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let leaf = NodePage::new(0, entries(3)).append(dev.as_ref()).unwrap();
        let t = RTree::<2>::attach(dev, TreeParams::with_cap::<2>(4), leaf, 0, 99);
        let report = t.validate().unwrap();
        assert!(report.errors.iter().any(|e| e.contains("len")));
    }

    #[test]
    fn detects_unbalanced_leaves() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let deep_leaf = NodePage::new(0, entries(1)).append(dev.as_ref()).unwrap();
        let mid = NodePage::new(
            1,
            vec![Entry::new(Rect::xyxy(0.0, 0.0, 0.5, 1.0), deep_leaf as u32)],
        )
        .append(dev.as_ref())
        .unwrap();
        let shallow_leaf = NodePage::new(0, entries(1)).append(dev.as_ref()).unwrap();
        // Root at level 2 pointing at a level-1 node and (wrongly) a leaf.
        let root = NodePage::new(
            2,
            vec![
                Entry::new(Rect::xyxy(0.0, 0.0, 0.5, 1.0), mid as u32),
                Entry::new(Rect::xyxy(0.0, 0.0, 0.5, 1.0), shallow_leaf as u32),
            ],
        )
        .append(dev.as_ref())
        .unwrap();
        let t = RTree::<2>::attach(dev, TreeParams::with_cap::<2>(4), root, 2, 2);
        let report = t.validate().unwrap();
        assert!(report.errors.iter().any(|e| e.contains("balanced")));
    }

    #[test]
    fn min_fill_only_checked_when_asked() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let params = TreeParams::with_cap::<2>(10); // min fill 4
        let l0 = NodePage::new(0, entries(1)).append(dev.as_ref()).unwrap();
        let l1 = NodePage::new(0, entries(10)).append(dev.as_ref()).unwrap();
        let parents = vec![
            Entry::new(Rect::xyxy(0.0, 0.0, 0.5, 1.0), l0 as u32),
            Entry::new(Rect::xyxy(0.0, 0.0, 9.5, 1.0), l1 as u32),
        ];
        let root = NodePage::new(1, parents).append(dev.as_ref()).unwrap();
        let t = RTree::<2>::attach(dev, params, root, 1, 11);
        assert!(t.validate().unwrap().is_ok());
        let strict = t
            .validate_with(ValidateOptions {
                check_min_fill: true,
            })
            .unwrap();
        assert!(strict.errors.iter().any(|e| e.contains("minimum fill")));
    }

    #[test]
    fn empty_tree_is_valid() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let t = RTree::<2>::new_empty(dev, TreeParams::with_cap::<2>(4)).unwrap();
        t.validate().unwrap().assert_ok();
    }
}
