//! Tree entries: the 36-byte record everything is made of.

use pr_em::Record;
use pr_geom::{Item, Rect};

/// One slot of an R-tree node: a rectangle plus a 32-bit pointer.
///
/// * In a **leaf**, `ptr` is the data id of the input rectangle (the
///   paper's "pointer to the original object").
/// * In an **internal node**, `rect` is the minimal bounding box of a
///   child subtree and `ptr` is the page id of the child.
///
/// In 2-D this is exactly the paper's 36-byte layout (§3.1): 4 × 8-byte
/// coordinates + 4-byte pointer, for both input rectangles and bounding
/// boxes in internal nodes — which is what pins the fanout at 113 for 4KB
/// blocks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry<const D: usize> {
    /// Data rectangle or child bounding box.
    pub rect: Rect<D>,
    /// Data id (leaves) or child page id (internal nodes).
    pub ptr: u32,
}

impl<const D: usize> Entry<D> {
    /// Creates an entry.
    pub fn new(rect: Rect<D>, ptr: u32) -> Self {
        Entry { rect, ptr }
    }

    /// Views an input item as a leaf entry.
    pub fn from_item(item: Item<D>) -> Self {
        Entry {
            rect: item.rect,
            ptr: item.id,
        }
    }

    /// Views a leaf entry as an input item.
    pub fn to_item(self) -> Item<D> {
        Item {
            rect: self.rect,
            id: self.ptr,
        }
    }

    /// Minimal bounding rectangle of a slice of entries.
    pub fn mbr(entries: &[Entry<D>]) -> Rect<D> {
        entries
            .iter()
            .fold(Rect::EMPTY, |acc, e| acc.mbr_with(&e.rect))
    }
}

impl<const D: usize> Record for Entry<D> {
    const SIZE: usize = 2 * D * 8 + 4;

    // Encode/decode split the record into exact-size subslices up front
    // and walk them with `chunks_exact`, so the bounds checks of the old
    // per-field `buf[off..off + 8]` arithmetic hoist out of the loop —
    // this path runs once per entry for every page the bulk loaders
    // write and every AoS decode on the build/update path.

    fn encode(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), Self::SIZE);
        let (lo_bytes, rest) = buf.split_at_mut(D * 8);
        let (hi_bytes, ptr_bytes) = rest.split_at_mut(D * 8);
        for (chunk, v) in lo_bytes.chunks_exact_mut(8).zip(self.rect.lo()) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        for (chunk, v) in hi_bytes.chunks_exact_mut(8).zip(self.rect.hi()) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        ptr_bytes[..4].copy_from_slice(&self.ptr.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        debug_assert_eq!(buf.len(), Self::SIZE);
        let (lo_bytes, rest) = buf.split_at(D * 8);
        let (hi_bytes, ptr_bytes) = rest.split_at(D * 8);
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for (v, chunk) in lo.iter_mut().zip(lo_bytes.chunks_exact(8)) {
            *v = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        for (v, chunk) in hi.iter_mut().zip(hi_bytes.chunks_exact(8)) {
            *v = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let ptr = u32::from_le_bytes(ptr_bytes[..4].try_into().expect("4 bytes"));
        Entry {
            rect: Rect::new(lo, hi),
            ptr,
        }
    }
}

/// A keyed entry used by sort-based loaders (Hilbert value + entry).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KeyedEntry<const D: usize> {
    /// Sort key (Hilbert index).
    pub key: u128,
    /// The entry itself.
    pub entry: Entry<D>,
}

impl<const D: usize> Record for KeyedEntry<D> {
    const SIZE: usize = 16 + Entry::<D>::SIZE;

    fn encode(&self, buf: &mut [u8]) {
        buf[..16].copy_from_slice(&self.key.to_le_bytes());
        self.entry.encode(&mut buf[16..]);
    }

    fn decode(buf: &[u8]) -> Self {
        KeyedEntry {
            key: u128::from_le_bytes(buf[..16].try_into().expect("16 bytes")),
            entry: Entry::decode(&buf[16..]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_size_matches_paper() {
        assert_eq!(Entry::<2>::SIZE, 36);
        assert_eq!(Entry::<3>::SIZE, 52);
    }

    #[test]
    fn entry_roundtrip() {
        let e = Entry::new(Rect::xyxy(1.0, -2.0, 3.5, 4.25), 77);
        let mut buf = vec![0u8; Entry::<2>::SIZE];
        e.encode(&mut buf);
        assert_eq!(Entry::<2>::decode(&buf), e);
    }

    #[test]
    fn keyed_entry_roundtrip() {
        let k = KeyedEntry {
            key: u128::MAX - 5,
            entry: Entry::new(Rect::xyxy(0.0, 0.0, 1.0, 1.0), 9),
        };
        let mut buf = vec![0u8; KeyedEntry::<2>::SIZE];
        k.encode(&mut buf);
        assert_eq!(KeyedEntry::<2>::decode(&buf), k);
    }

    #[test]
    fn item_conversions() {
        let item = Item::new(Rect::xyxy(0.0, 1.0, 2.0, 3.0), 5);
        let e = Entry::from_item(item);
        assert_eq!(e.ptr, 5);
        assert_eq!(e.to_item(), item);
    }

    #[test]
    fn mbr_of_entries() {
        let es = [
            Entry::new(Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0),
            Entry::new(Rect::xyxy(2.0, -1.0, 3.0, 0.5), 1),
        ];
        assert_eq!(Entry::mbr(&es), Rect::xyxy(0.0, -1.0, 3.0, 1.0));
        assert!(Entry::<2>::mbr(&[]).is_empty());
    }
}
