//! pr-tree's catalog of process-wide metrics.
//!
//! Per-query numbers stay in [`crate::query::QueryStats`] (the exact
//! per-call view); these registry counters hold the process-wide
//! running totals, flushed once per traversal — the same batching the
//! caches use ([`crate::cache::CacheTally`]) so the hot loop never
//! touches a shared counter mid-traversal.

use std::sync::OnceLock;

use crate::cache::CacheTally;
use crate::query::QueryStats;

/// Which traversal a [`record_query`] flush describes.
#[derive(Clone, Copy)]
pub enum QueryKind {
    /// Window (range) query, including the counting variants.
    Window,
    /// k-nearest-neighbor query.
    Knn,
}

/// Handles to pr-tree's registry metrics.
pub struct Metrics {
    /// `tree_queries_total{kind="window"}`.
    pub window_queries: pr_obs::Counter,
    /// `tree_queries_total{kind="knn"}`.
    pub knn_queries: pr_obs::Counter,
    /// `tree_nodes_visited_total` — nodes touched by traversals.
    pub nodes_visited: pr_obs::Counter,
    /// `tree_leaves_visited_total` — leaves touched by traversals.
    pub leaves_visited: pr_obs::Counter,
    /// `tree_query_results_total` — items emitted/counted.
    pub query_results: pr_obs::Counter,
    /// `tree_node_cache_hits_total` / `_misses_total`.
    pub node_cache_hits: pr_obs::Counter,
    /// See [`Metrics::node_cache_hits`].
    pub node_cache_misses: pr_obs::Counter,
    /// `tree_leaf_cache_hits_total` / `_misses_total`.
    pub leaf_cache_hits: pr_obs::Counter,
    /// See [`Metrics::leaf_cache_hits`].
    pub leaf_cache_misses: pr_obs::Counter,
    /// `tree_leaf_cache_ghost_hits_total` — misses whose key was in a
    /// ghost ring (second touches admitted for real).
    pub leaf_cache_ghost_hits: pr_obs::Counter,
    /// `tree_leaf_cache_resident_bytes` — bytes resident across all
    /// leaf caches in the process.
    pub leaf_cache_resident_bytes: pr_obs::Gauge,
    /// `tree_cache_epochs_retired_total` — snapshot swaps that evicted
    /// dead-epoch leaves.
    pub cache_epochs_retired: pr_obs::Counter,
}

/// The lazily registered catalog.
pub fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pr_obs::global();
        Metrics {
            window_queries: r.counter_with(
                "tree_queries_total",
                &[("kind", "window")],
                "completed traversals by kind",
            ),
            knn_queries: r.counter_with(
                "tree_queries_total",
                &[("kind", "knn")],
                "completed traversals by kind",
            ),
            nodes_visited: r.counter(
                "tree_nodes_visited_total",
                "tree nodes visited by traversals",
            ),
            leaves_visited: r.counter(
                "tree_leaves_visited_total",
                "leaf nodes visited by traversals",
            ),
            query_results: r.counter(
                "tree_query_results_total",
                "items emitted or counted by traversals",
            ),
            node_cache_hits: r.counter(
                "tree_node_cache_hits_total",
                "node-cache lookups served from cache",
            ),
            node_cache_misses: r.counter(
                "tree_node_cache_misses_total",
                "node-cache lookups that fell through to the device",
            ),
            leaf_cache_hits: r.counter(
                "tree_leaf_cache_hits_total",
                "leaf-cache probes served from cache",
            ),
            leaf_cache_misses: r.counter(
                "tree_leaf_cache_misses_total",
                "leaf-cache probes that read the device",
            ),
            leaf_cache_ghost_hits: r.counter(
                "tree_leaf_cache_ghost_hits_total",
                "leaf-cache misses admitted on their second touch",
            ),
            leaf_cache_resident_bytes: r.gauge(
                "tree_leaf_cache_resident_bytes",
                "approximate bytes resident across all leaf caches",
            ),
            cache_epochs_retired: r.counter(
                "tree_cache_epochs_retired_total",
                "snapshot swaps that retired dead cache epochs",
            ),
        }
    })
}

/// Flushes one completed traversal's stats into the registry.
pub(crate) fn record_query(kind: QueryKind, stats: &QueryStats) {
    let m = metrics();
    match kind {
        QueryKind::Window => m.window_queries.inc(),
        QueryKind::Knn => m.knn_queries.inc(),
    }
    m.nodes_visited.add(stats.nodes_visited);
    m.leaves_visited.add(stats.leaves_visited);
    m.query_results.add(stats.results);
}

/// Flushes one query's cache tally into the registry (zero adds are
/// skipped, mirroring [`pr_em::HitCounters`]).
pub(crate) fn record_cache(tally: &CacheTally) {
    let m = metrics();
    if tally.hits > 0 {
        m.node_cache_hits.add(tally.hits);
    }
    if tally.misses > 0 {
        m.node_cache_misses.add(tally.misses);
    }
    if tally.leaf_hits > 0 {
        m.leaf_cache_hits.add(tally.leaf_hits);
    }
    if tally.leaf_misses > 0 {
        m.leaf_cache_misses.add(tally.leaf_misses);
    }
}

/// Counts one ghost-ring hit (a second touch turning into a real
/// admission). Per-event is fine: it sits on the device-read miss
/// path, where one atomic add is noise.
pub(crate) fn leaf_cache_ghost_hit() {
    metrics().leaf_cache_ghost_hits.inc();
}

/// Applies a resident-bytes change to the process-wide leaf-cache
/// gauge.
pub(crate) fn leaf_cache_bytes_delta(delta: i64) {
    let m = metrics();
    match delta.cmp(&0) {
        std::cmp::Ordering::Greater => m.leaf_cache_resident_bytes.add(delta as u64),
        std::cmp::Ordering::Less => m.leaf_cache_resident_bytes.sub(delta.unsigned_abs()),
        std::cmp::Ordering::Equal => {}
    }
}
