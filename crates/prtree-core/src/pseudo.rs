//! The standalone pseudo-PR-tree of §2.1.
//!
//! A pseudo-PR-tree on a set `S` of `D`-dimensional rectangles is a
//! `2D`-dimensional kd-tree over the corner-mapped points `S*`, where
//! every internal node additionally owns up to `2D` **priority leaves**:
//! the `B` rectangles remaining in its subtree that are most extreme in
//! each mapped direction. It answers window queries in
//! `O((N/B)^{1−1/d} + T/B)` I/Os (Lemma 2) but is *not* a real R-tree —
//! leaves live at many depths and internal fanout is `2D + 2`, not
//! `Θ(B)`.
//!
//! The PR-tree proper ([`crate::bulk::pr`]) uses this structure's leaf
//! sets stage by stage; this module keeps the whole structure around so
//! it can be queried and studied directly.

use crate::bulk::kd_split::{extract_all_priority_leaves, median_split};
use crate::entry::Entry;
use pr_geom::{Axis, Item, Rect};

/// One node of a pseudo-PR-tree.
#[derive(Debug, Clone)]
pub enum PseudoNode<const D: usize> {
    /// A block of at most `B` rectangles — either a priority leaf or a
    /// kd base-case leaf. One disk block in the paper's cost model.
    Leaf(Vec<Item<D>>),
    /// A kd node: up to `2D` priority leaves plus up to two subtrees,
    /// each tagged with the minimal bounding box of its contents.
    Internal(Vec<(Rect<D>, PseudoNode<D>)>),
}

/// Query cost counters for a pseudo-PR-tree traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PseudoQueryStats {
    /// Total nodes visited (each occupies `O(1)` blocks).
    pub nodes_visited: u64,
    /// Leaf blocks visited (priority or kd leaves).
    pub leaves_visited: u64,
    /// Reported rectangles.
    pub results: u64,
}

/// An in-memory pseudo-PR-tree.
#[derive(Debug, Clone)]
pub struct PseudoPrTree<const D: usize> {
    root: Option<PseudoNode<D>>,
    len: usize,
    block_cap: usize,
}

impl<const D: usize> PseudoPrTree<D> {
    /// Builds a pseudo-PR-tree with blocks of `block_cap` (= the paper's
    /// `B`) rectangles. Priority leaves have size `block_cap`.
    pub fn build(items: Vec<Item<D>>, block_cap: usize) -> Self {
        assert!(block_cap >= 1);
        let len = items.len();
        let entries: Vec<Entry<D>> = items.into_iter().map(Entry::from_item).collect();
        let root = if entries.is_empty() {
            None
        } else {
            Some(build_node(entries, Axis(0), block_cap))
        };
        PseudoPrTree {
            root,
            len,
            block_cap,
        }
    }

    /// Number of rectangles stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block capacity `B`.
    pub fn block_cap(&self) -> usize {
        self.block_cap
    }

    /// Window query: all stored rectangles intersecting `query`.
    pub fn window(&self, query: &Rect<D>) -> Vec<Item<D>> {
        self.window_with_stats(query).0
    }

    /// Window query with cost counters.
    pub fn window_with_stats(&self, query: &Rect<D>) -> (Vec<Item<D>>, PseudoQueryStats) {
        let mut out = Vec::new();
        let mut stats = PseudoQueryStats::default();
        if let Some(root) = &self.root {
            visit(root, query, &mut out, &mut stats);
        }
        stats.results = out.len() as u64;
        (out, stats)
    }

    /// Total number of leaf blocks (for the "fraction visited" metric).
    pub fn num_leaves(&self) -> u64 {
        fn count<const D: usize>(n: &PseudoNode<D>) -> u64 {
            match n {
                PseudoNode::Leaf(_) => 1,
                PseudoNode::Internal(ch) => ch.iter().map(|(_, c)| count(c)).sum(),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    /// Maximum leaf size observed (must be ≤ `block_cap`).
    pub fn max_leaf_len(&self) -> usize {
        fn walk<const D: usize>(n: &PseudoNode<D>) -> usize {
            match n {
                PseudoNode::Leaf(items) => items.len(),
                PseudoNode::Internal(ch) => ch.iter().map(|(_, c)| walk(c)).max().unwrap_or(0),
            }
        }
        self.root.as_ref().map_or(0, walk)
    }

    /// The root node (read-only), for structural tests.
    pub fn root(&self) -> Option<&PseudoNode<D>> {
        self.root.as_ref()
    }
}

fn build_node<const D: usize>(entries: Vec<Entry<D>>, axis: Axis, cap: usize) -> PseudoNode<D> {
    if entries.len() <= cap {
        return PseudoNode::Leaf(entries.into_iter().map(Entry::to_item).collect());
    }
    let mut set = entries;
    let prio_leaves = extract_all_priority_leaves(&mut set, cap);
    let mut children: Vec<(Rect<D>, PseudoNode<D>)> = prio_leaves
        .into_iter()
        .map(|leaf| {
            let mbr = Entry::mbr(&leaf);
            (
                mbr,
                PseudoNode::Leaf(leaf.into_iter().map(Entry::to_item).collect()),
            )
        })
        .collect();
    if !set.is_empty() {
        if set.len() <= cap {
            let mbr = Entry::mbr(&set);
            children.push((
                mbr,
                PseudoNode::Leaf(set.into_iter().map(Entry::to_item).collect()),
            ));
        } else {
            let (left, right) = median_split(set, axis, None);
            for part in [left, right] {
                let node = build_node(part, axis.next::<D>(), cap);
                let mbr = node_mbr(&node);
                children.push((mbr, node));
            }
        }
    }
    PseudoNode::Internal(children)
}

fn node_mbr<const D: usize>(node: &PseudoNode<D>) -> Rect<D> {
    match node {
        PseudoNode::Leaf(items) => items
            .iter()
            .fold(Rect::EMPTY, |acc, i| acc.mbr_with(&i.rect)),
        PseudoNode::Internal(ch) => ch.iter().fold(Rect::EMPTY, |acc, (r, _)| acc.mbr_with(r)),
    }
}

fn visit<const D: usize>(
    node: &PseudoNode<D>,
    query: &Rect<D>,
    out: &mut Vec<Item<D>>,
    stats: &mut PseudoQueryStats,
) {
    stats.nodes_visited += 1;
    match node {
        PseudoNode::Leaf(items) => {
            stats.leaves_visited += 1;
            for i in items {
                if i.rect.intersects(query) {
                    out.push(*i);
                }
            }
        }
        PseudoNode::Internal(children) => {
            for (mbr, child) in children {
                if mbr.intersects(query) {
                    visit(child, query, out, stats);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::brute_force_window;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..1.0);
                let y: f64 = rng.gen_range(0.0..1.0);
                Item::new(Rect::xyxy(x, y, x + 0.001, y + 0.001), i)
            })
            .collect()
    }

    #[test]
    fn empty_and_single_leaf() {
        let t = PseudoPrTree::<2>::build(vec![], 8);
        assert!(t.is_empty());
        assert!(t.window(&Rect::xyxy(0.0, 0.0, 1.0, 1.0)).is_empty());
        let t = PseudoPrTree::build(random_items(5, 1), 8);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn all_leaves_within_capacity() {
        for n in [10u32, 100, 1000, 5000] {
            let t = PseudoPrTree::build(random_items(n, n as u64), 16);
            assert!(t.max_leaf_len() <= 16);
            assert_eq!(t.len(), n as usize);
        }
    }

    #[test]
    fn internal_fanout_is_at_most_2d_plus_2() {
        let t = PseudoPrTree::build(random_items(5000, 3), 8);
        fn check<const D: usize>(n: &PseudoNode<D>) {
            if let PseudoNode::Internal(ch) = n {
                assert!(ch.len() <= 2 * D + 2, "fanout {} too large", ch.len());
                assert!(!ch.is_empty());
                for (_, c) in ch {
                    check(c);
                }
            }
        }
        check(t.root().unwrap());
    }

    #[test]
    fn bounding_boxes_cover_contents() {
        let t = PseudoPrTree::build(random_items(2000, 9), 8);
        fn check<const D: usize>(n: &PseudoNode<D>) -> Rect<D> {
            match n {
                PseudoNode::Leaf(items) => items
                    .iter()
                    .fold(Rect::EMPTY, |acc, i| acc.mbr_with(&i.rect)),
                PseudoNode::Internal(ch) => {
                    let mut acc = Rect::EMPTY;
                    for (stored, c) in ch {
                        let actual = check(c);
                        assert_eq!(&actual, stored, "stale bounding box");
                        acc = acc.mbr_with(stored);
                    }
                    acc
                }
            }
        }
        check(t.root().unwrap());
    }

    #[test]
    fn queries_match_brute_force() {
        let items = random_items(3000, 77);
        let t = PseudoPrTree::build(items.clone(), 16);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..60 {
            let x: f64 = rng.gen_range(0.0..0.9);
            let y: f64 = rng.gen_range(0.0..0.9);
            let q = Rect::xyxy(x, y, x + rng.gen_range(0.001..0.2), y + 0.05);
            let mut got = t.window(&q);
            let mut want = brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn query_cost_scales_like_sqrt() {
        // Lemma 2: an empty-output strip query touches O(√(N/B)) blocks.
        // Check the fraction of leaves visited falls as N grows.
        let mut fractions = Vec::new();
        for n in [1000u32, 4000, 16000] {
            let t = PseudoPrTree::build(random_items(n, 11), 16);
            // Thin vertical strip through the middle, almost no output.
            let q = Rect::xyxy(0.5, 0.0, 0.5000001, 1.0);
            let (_, stats) = t.window_with_stats(&q);
            fractions.push(stats.leaves_visited as f64 / t.num_leaves() as f64);
        }
        assert!(
            fractions[2] < fractions[0],
            "visited fraction should shrink with N: {fractions:?}"
        );
        // √(N/B) for N=16000,B=16 is ~32 of 1000 leaves; allow slack ×4.
        let t = PseudoPrTree::build(random_items(16000, 11), 16);
        let (_, stats) = t.window_with_stats(&Rect::xyxy(0.5, 0.0, 0.5000001, 1.0));
        let bound = 4.0 * ((16000.0f64 / 16.0).sqrt()) + stats.results as f64 / 16.0;
        assert!(
            (stats.leaves_visited as f64) < bound,
            "visited {} exceeds 4·√(N/B) = {bound}",
            stats.leaves_visited
        );
    }
}
