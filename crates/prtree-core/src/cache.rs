//! Node cache policies — sharded for concurrent readers.
//!
//! The paper's query experiments keep *all internal nodes* cached ("they
//! never occupied more than 6MB", §3.3), so reported query I/O equals the
//! number of leaves fetched. Footnote 5 also reports a run with the cache
//! disabled. Both policies, plus a bounded LRU for ablations, live here.
//!
//! # Sharded-cache design
//!
//! The original runtime wrapped one `NodeCache` in a global
//! `parking_lot::Mutex`, serializing every reader: with all internal
//! nodes cached, *each node visit of each query* took the same lock, so
//! multi-threaded query throughput plateaued at ~1× serial. This module
//! replaces that with a cache that is internally synchronized and safe to
//! share by reference:
//!
//! * **Sharding.** Pinned internal nodes are partitioned over
//!   [`SHARD_COUNT`] shards by the low bits of their [`BlockId`], each
//!   shard behind its own `parking_lot::RwLock`. Readers of different
//!   pages take different locks; readers of the same shard share a read
//!   lock. Only `admit`/`invalidate`/`clear` take a shard's write lock.
//! * **Frozen fast path.** After [`crate::tree::RTree::warm_cache`]
//!   pre-loads every internal node, [`ShardedNodeCache::freeze`] collects
//!   the pinned maps into one immutable [`FrozenMap`]. Each query grabs
//!   one snapshot `Arc` up front ([`ShardedNodeCache::frozen_snapshot`])
//!   and then indexes a plain `HashMap` per node visit — zero shared
//!   lock or refcount traffic in the hot loop, which is the paper's
//!   steady-state query configuration. Any invalidation or policy change
//!   thaws the frozen map; the sharded path (which retains the same
//!   entries) keeps lookups correct, so dynamic updates stay exact.
//! * **Exact statistics.** Hits/misses accumulate in the shared atomic
//!   [`pr_em::HitCounters`]; every lookup increments exactly one counter,
//!   so totals equal the serial run's regardless of thread interleaving.
//!   Query code batches its counts locally (one [`CacheTally`] per query)
//!   and flushes once via [`ShardedNodeCache::record`], keeping the hot
//!   loop free of shared-cacheline traffic.
//! * **LRU stays global.** [`CachePolicy::Lru`] is the ablation path: it
//!   needs recency updates on every lookup, so it lives behind a single
//!   lock with *exactly* the configured capacity — same semantics as the
//!   pre-sharding cache. It is not meant for the concurrent hot path.
//!
//! Policy is stored as atomics (`tag` + LRU capacity) so `get`/`admit`
//! can take their early-outs — `CachePolicy::None` lookups and leaf
//! admissions under `InternalNodes` — without touching any lock.

use crate::soa::SoaNode;
use parking_lot::RwLock;
use pr_em::lru::LruCache;
use pr_em::{BlockId, HitCounters};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independent cache shards (power of two; block ids are
/// allocated sequentially, so low bits spread adjacent pages evenly).
pub const SHARD_COUNT: usize = 16;

/// What a tree keeps in memory between queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No caching: every node visit is a device read.
    None,
    /// Cache every internal node forever; leaves are always read from the
    /// device. This is the paper's experimental setup.
    InternalNodes,
    /// Global LRU over all nodes (internal and leaves) with exactly the
    /// given capacity in pages. Single-lock; intended for cache-size
    /// ablations, not the concurrent hot path.
    Lru(usize),
}

const TAG_NONE: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const TAG_LRU: u8 = 2;

/// Per-query local hit/miss accumulator; flushed once per query through
/// [`ShardedNodeCache::record`] so global totals stay exact without
/// per-node atomic traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheTally {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the device.
    pub misses: u64,
}

/// Immutable post-warm snapshot of all pinned internal nodes. Queries
/// clone the `Arc` once and index it lock-free per node visit. Since the
/// decode-free engine the cached representation is the SoA
/// [`SoaNode`] — the query path never touches a decoded
/// [`crate::page::NodePage`].
pub type FrozenMap<const D: usize> = Arc<HashMap<BlockId, Arc<SoaNode<D>>>>;

type PinnedShard<const D: usize> = HashMap<BlockId, Arc<SoaNode<D>>>;

/// A concurrently readable node cache implementing one [`CachePolicy`].
///
/// All methods take `&self`; the cache synchronizes internally (see the
/// module docs for the sharding/freezing design). The former name
/// `NodeCache` remains as an alias.
pub struct ShardedNodeCache<const D: usize> {
    policy_tag: AtomicU8,
    lru_capacity: AtomicUsize,
    shards: Vec<RwLock<PinnedShard<D>>>,
    lru: RwLock<Option<LruCache<BlockId, Arc<SoaNode<D>>>>>,
    frozen: RwLock<Option<FrozenMap<D>>>,
    stats: HitCounters,
}

/// Backwards-compatible alias for the pre-sharding type name.
pub type NodeCache<const D: usize> = ShardedNodeCache<D>;

fn new_lru<const D: usize>(policy: CachePolicy) -> Option<LruCache<BlockId, Arc<SoaNode<D>>>> {
    match policy {
        CachePolicy::Lru(cap) => Some(LruCache::new(cap.max(1))),
        _ => None,
    }
}

impl<const D: usize> ShardedNodeCache<D> {
    /// Creates a cache with the given policy.
    pub fn new(policy: CachePolicy) -> Self {
        let cache = ShardedNodeCache {
            policy_tag: AtomicU8::new(TAG_NONE),
            lru_capacity: AtomicUsize::new(0),
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            lru: RwLock::new(new_lru::<D>(policy)),
            frozen: RwLock::new(None),
            stats: HitCounters::new(),
        };
        cache.store_policy(policy);
        cache
    }

    fn store_policy(&self, policy: CachePolicy) {
        let (tag, cap) = match policy {
            CachePolicy::None => (TAG_NONE, 0),
            CachePolicy::InternalNodes => (TAG_INTERNAL, 0),
            CachePolicy::Lru(cap) => (TAG_LRU, cap),
        };
        self.lru_capacity.store(cap, Ordering::Relaxed);
        self.policy_tag.store(tag, Ordering::Release);
    }

    /// The configured policy.
    pub fn policy(&self) -> CachePolicy {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => CachePolicy::None,
            TAG_INTERNAL => CachePolicy::InternalNodes,
            _ => CachePolicy::Lru(self.lru_capacity.load(Ordering::Relaxed)),
        }
    }

    /// Replaces the policy, dropping all cached nodes and resetting hit
    /// statistics (matches the old `*cache = NodeCache::new(policy)`).
    pub fn set_policy(&self, policy: CachePolicy) {
        *self.frozen.write() = None;
        self.store_policy(policy);
        for shard in &self.shards {
            shard.write().clear();
        }
        *self.lru.write() = new_lru::<D>(policy);
        self.stats.reset();
    }

    #[inline]
    fn shard(&self, page: BlockId) -> &RwLock<PinnedShard<D>> {
        &self.shards[(page as usize) & (SHARD_COUNT - 1)]
    }

    /// Looks up a node and records the hit/miss in the shared counters.
    pub fn get(&self, page: BlockId) -> Option<Arc<SoaNode<D>>> {
        let found = self.lookup(page, None);
        if found.is_some() {
            self.stats.add_hits(1);
        } else {
            self.stats.add_misses(1);
        }
        found
    }

    /// Folds a per-query tally into the shared counters. Query loops
    /// count each [`ShardedNodeCache::lookup_with`] outcome into their
    /// local [`CacheTally`] and flush it here exactly once.
    pub fn record(&self, tally: CacheTally) {
        self.stats.add_hits(tally.hits);
        self.stats.add_misses(tally.misses);
    }

    /// The current frozen snapshot, if [`ShardedNodeCache::freeze`] ran
    /// and nothing thawed it since. Queries grab this once up front; the
    /// snapshot is immutable, so a query keeps reading a consistent map
    /// even if the cache is thawed mid-traversal (the node `Arc`s it
    /// yields are the same ones the shards hold).
    pub fn frozen_snapshot(&self) -> Option<FrozenMap<D>> {
        self.frozen.read().clone()
    }

    fn lookup(&self, page: BlockId, frozen: Option<&FrozenMap<D>>) -> Option<Arc<SoaNode<D>>> {
        self.lookup_with(page, frozen, Arc::clone)
    }

    /// Closure-form lookup: runs `f` against the cached node *in place*
    /// and returns its result, or `None` on a miss. The hot query loop
    /// uses this so that a frozen-snapshot hit costs one `HashMap` probe
    /// and nothing else — no lock, no `Arc` refcount traffic, no clone.
    /// (Shard/LRU hits run `f` under the shard's read lock / the LRU's
    /// write lock; `f` must be short, which traversal scans are.)
    pub fn lookup_with<R>(
        &self,
        page: BlockId,
        frozen: Option<&FrozenMap<D>>,
        f: impl FnOnce(&Arc<SoaNode<D>>) -> R,
    ) -> Option<R> {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => None,
            TAG_INTERNAL => {
                // Fast path: the caller's immutable post-warm snapshot —
                // a plain HashMap probe, no locks, no refcount traffic.
                if let Some(map) = frozen {
                    // The snapshot is authoritative while it exists:
                    // `warm_cache` pins *every* internal node before
                    // `freeze`, and every later mutation (`write_node` →
                    // `invalidate`, `clear`, `set_policy`) thaws first —
                    // so a page absent here is simply not cached. Skip
                    // the shard probe; a leaf visit must not pay a
                    // RwLock + second HashMap miss.
                    return map.get(&page).map(f);
                } else {
                    let guard = self.frozen.read();
                    if let Some(n) = guard.as_ref().and_then(|map| map.get(&page)) {
                        return Some(f(n));
                    }
                }
                self.shard(page).read().get(&page).map(f)
            }
            _ => {
                // LRU updates recency on every lookup → global write lock
                // (ablation path; see module docs).
                let mut lru = self.lru.write();
                lru.as_mut().and_then(|l| l.get(&page)).map(f)
            }
        }
    }

    /// True when the policy would retain a freshly read node at `level`.
    /// The miss path checks this *before* materializing an owned
    /// [`SoaNode`], so leaf reads under [`CachePolicy::InternalNodes`] —
    /// the steady-state hot path — allocate nothing for the cache.
    #[inline]
    pub fn wants(&self, level: u8) -> bool {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => false,
            TAG_INTERNAL => level > 0,
            _ => true,
        }
    }

    /// Offers a freshly read node to the cache; the policy decides whether
    /// to keep it. Policy checks happen before any lock is taken, so leaf
    /// reads under [`CachePolicy::InternalNodes`] stay lock-free here.
    pub fn admit(&self, page: BlockId, node: &Arc<SoaNode<D>>) {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => {}
            TAG_INTERNAL => {
                if !node.is_leaf() {
                    self.shard(page).write().insert(page, Arc::clone(node));
                }
            }
            _ => {
                let mut lru = self.lru.write();
                if let Some(l) = lru.as_mut() {
                    l.insert(page, Arc::clone(node));
                }
            }
        }
    }

    /// Drops a page (after it is rewritten by a dynamic update). Thaws the
    /// frozen snapshot: the sharded path stays exact, and the next
    /// [`ShardedNodeCache::freeze`] rebuilds the fast path.
    pub fn invalidate(&self, page: BlockId) {
        *self.frozen.write() = None;
        self.shard(page).write().remove(&page);
        if let Some(l) = self.lru.write().as_mut() {
            l.remove(&page);
        }
    }

    /// Empties the cache (does not reset hit statistics).
    pub fn clear(&self) {
        *self.frozen.write() = None;
        for shard in &self.shards {
            shard.write().clear();
        }
        if let Some(l) = self.lru.write().as_mut() {
            l.drain();
        }
    }

    /// Snapshots all pinned internal nodes into an immutable map that
    /// queries read without locking (via
    /// [`ShardedNodeCache::frozen_snapshot`]). Called by `warm_cache`
    /// once every internal node is resident; a no-op under the other
    /// policies (nothing is pinned).
    pub fn freeze(&self) {
        if self.policy_tag.load(Ordering::Acquire) != TAG_INTERNAL {
            return;
        }
        let mut map = HashMap::new();
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                map.insert(*k, Arc::clone(v));
            }
        }
        *self.frozen.write() = Some(Arc::new(map));
    }

    /// True when the post-warm frozen snapshot is active.
    pub fn is_frozen(&self) -> bool {
        self.frozen.read().is_some()
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        let pinned: usize = self.shards.iter().map(|s| s.read().len()).sum();
        pinned + self.lru.read().as_ref().map_or(0, |l| l.len())
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction (or the last policy change).
    pub fn hit_stats(&self) -> (u64, u64) {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use crate::page::NodePage;
    use pr_geom::Rect;

    fn node(level: u8) -> Arc<SoaNode<2>> {
        Arc::new(SoaNode::from_page(&NodePage::new(
            level,
            vec![Entry::new(Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0)],
        )))
    }

    #[test]
    fn none_policy_never_caches() {
        let c = NodeCache::new(CachePolicy::None);
        c.admit(1, &node(2));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.hit_stats(), (0, 1));
    }

    #[test]
    fn internal_policy_skips_leaves() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(1, &node(0)); // leaf: not cached
        c.admit(2, &node(1)); // internal: cached
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert_eq!(c.len(), 1);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_policy_is_global_with_exact_capacity() {
        let c = NodeCache::new(CachePolicy::Lru(2));
        // Pages land in different shards, but the LRU is global: the
        // third admission evicts the least recently used page whatever
        // its shard, and total residency never exceeds the configured 2.
        c.admit(1, &node(0));
        c.admit(2, &node(1));
        c.admit(3, &node(0)); // evicts page 1
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_removes() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.invalidate(2);
        assert!(c.get(2).is_none());
        let c = NodeCache::new(CachePolicy::Lru(64));
        c.admit(2, &node(1));
        c.invalidate(2);
        assert!(c.get(2).is_none());
    }

    #[test]
    fn clear_empties() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.admit(3, &node(3));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn freeze_serves_pinned_nodes_and_thaws_on_invalidate() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.admit(19, &node(2));
        c.freeze();
        assert!(c.is_frozen());
        assert!(c.get(2).is_some());
        assert!(c.get(19).is_some());
        assert!(c.get(500).is_none(), "unknown page misses through frozen");
        // Admissions after freeze are still visible (sharded fallback).
        c.admit(33, &node(1));
        assert!(c.get(33).is_some());
        // Invalidation thaws and the page is really gone.
        c.invalidate(2);
        assert!(!c.is_frozen());
        assert!(c.get(2).is_none());
        assert!(c.get(19).is_some());
    }

    #[test]
    fn snapshot_lookups_bypass_shared_state_and_stay_consistent() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.freeze();
        let snap = c.frozen_snapshot().expect("frozen after freeze");
        assert!(c.lookup_with(2, Some(&snap), |_| ()).is_some());
        // Thaw mid-"query": the held snapshot still answers.
        c.invalidate(99);
        assert!(!c.is_frozen());
        assert!(c.frozen_snapshot().is_none());
        assert!(c.lookup_with(2, Some(&snap), |_| ()).is_some());
    }

    #[test]
    fn freeze_is_noop_for_other_policies() {
        let c = NodeCache::new(CachePolicy::Lru(8));
        c.admit(1, &node(0));
        c.freeze();
        assert!(!c.is_frozen());
        let c = NodeCache::<2>::new(CachePolicy::None);
        c.freeze();
        assert!(!c.is_frozen());
    }

    #[test]
    fn set_policy_resets_contents_and_stats() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.freeze();
        let _ = c.get(2);
        assert_eq!(c.hit_stats(), (1, 0));
        c.set_policy(CachePolicy::None);
        assert_eq!(c.policy(), CachePolicy::None);
        assert!(c.is_empty());
        assert!(!c.is_frozen());
        assert_eq!(c.hit_stats(), (0, 0));
    }

    #[test]
    fn tallied_lookups_flush_exactly() {
        // Query-style accounting: outcomes counted into a local tally
        // (as the traversal's node access does), flushed exactly once.
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        let mut tally = CacheTally::default();
        for page in [2u64, 7] {
            if c.lookup_with(page, None, |_| ()).is_some() {
                tally.hits += 1;
            } else {
                tally.misses += 1;
            }
        }
        assert_eq!((tally.hits, tally.misses), (1, 1));
        assert_eq!(c.hit_stats(), (0, 0), "nothing flushed yet");
        c.record(tally);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn wants_mirrors_admit_policy() {
        let c = NodeCache::<2>::new(CachePolicy::InternalNodes);
        assert!(!c.wants(0), "leaves are never pinned");
        assert!(c.wants(1));
        c.set_policy(CachePolicy::None);
        assert!(!c.wants(3));
        c.set_policy(CachePolicy::Lru(4));
        assert!(c.wants(0));
    }

    #[test]
    fn lookup_with_runs_in_place() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        assert_eq!(c.lookup_with(2, None, |n| n.level()), Some(1));
        assert_eq!(c.lookup_with(9, None, |n| n.level()), None);
        c.freeze();
        let snap = c.frozen_snapshot().unwrap();
        assert_eq!(c.lookup_with(2, Some(&snap), |n| n.len()), Some(1));
        // LRU arm too.
        let c = NodeCache::new(CachePolicy::Lru(4));
        c.admit(5, &node(0));
        assert_eq!(c.lookup_with(5, None, |n| n.level()), Some(0));
    }

    #[test]
    fn concurrent_readers_count_exactly() {
        let c = NodeCache::<2>::new(CachePolicy::InternalNodes);
        for p in 0..64u64 {
            c.admit(p, &node(1));
        }
        c.freeze();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        // Half the lookups hit, half miss.
                        let page = (i + t) % 64 + if i % 2 == 0 { 0 } else { 1000 };
                        let _ = c.get(page);
                    }
                });
            }
        });
        let (h, m) = c.hit_stats();
        assert_eq!(h + m, 8000, "every lookup counted exactly once");
        assert_eq!(h, 4000);
        assert_eq!(m, 4000);
    }
}
