//! Node cache policies.
//!
//! The paper's query experiments keep *all internal nodes* cached ("they
//! never occupied more than 6MB", §3.3), so reported query I/O equals the
//! number of leaves fetched. Footnote 5 also reports a run with the cache
//! disabled. Both policies, plus a bounded LRU for ablations, live here.

use crate::page::NodePage;
use pr_em::lru::LruCache;
use pr_em::BlockId;
use std::collections::HashMap;
use std::sync::Arc;

/// What a tree keeps in memory between queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No caching: every node visit is a device read.
    None,
    /// Cache every internal node forever; leaves are always read from the
    /// device. This is the paper's experimental setup.
    InternalNodes,
    /// LRU over all nodes (internal and leaves) with the given capacity in
    /// pages.
    Lru(usize),
}

/// A node cache implementing one [`CachePolicy`].
pub struct NodeCache<const D: usize> {
    policy: CachePolicy,
    pinned: HashMap<BlockId, Arc<NodePage<D>>>,
    lru: Option<LruCache<BlockId, Arc<NodePage<D>>>>,
    hits: u64,
    misses: u64,
}

impl<const D: usize> NodeCache<D> {
    /// Creates a cache with the given policy.
    pub fn new(policy: CachePolicy) -> Self {
        let lru = match policy {
            CachePolicy::Lru(cap) => Some(LruCache::new(cap.max(1))),
            _ => None,
        };
        NodeCache {
            policy,
            pinned: HashMap::new(),
            lru,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Looks up a node.
    pub fn get(&mut self, page: BlockId) -> Option<Arc<NodePage<D>>> {
        let found = match self.policy {
            CachePolicy::None => None,
            CachePolicy::InternalNodes => self.pinned.get(&page).cloned(),
            CachePolicy::Lru(_) => self
                .lru
                .as_mut()
                .and_then(|l| l.get(&page).cloned()),
        };
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Offers a freshly read node to the cache; the policy decides whether
    /// to keep it.
    pub fn admit(&mut self, page: BlockId, node: &Arc<NodePage<D>>) {
        match self.policy {
            CachePolicy::None => {}
            CachePolicy::InternalNodes => {
                if !node.is_leaf() {
                    self.pinned.insert(page, Arc::clone(node));
                }
            }
            CachePolicy::Lru(_) => {
                if let Some(l) = self.lru.as_mut() {
                    l.insert(page, Arc::clone(node));
                }
            }
        }
    }

    /// Drops a page (after it is rewritten by a dynamic update).
    pub fn invalidate(&mut self, page: BlockId) {
        self.pinned.remove(&page);
        if let Some(l) = self.lru.as_mut() {
            l.remove(&page);
        }
    }

    /// Empties the cache (does not reset hit statistics).
    pub fn clear(&mut self) {
        self.pinned.clear();
        if let Some(l) = self.lru.as_mut() {
            l.drain();
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pinned.len() + self.lru.as_ref().map_or(0, |l| l.len())
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use pr_geom::Rect;

    fn node(level: u8) -> Arc<NodePage<2>> {
        Arc::new(NodePage::new(
            level,
            vec![Entry::new(Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0)],
        ))
    }

    #[test]
    fn none_policy_never_caches() {
        let mut c = NodeCache::new(CachePolicy::None);
        c.admit(1, &node(2));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.hit_stats(), (0, 1));
    }

    #[test]
    fn internal_policy_skips_leaves() {
        let mut c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(1, &node(0)); // leaf: not cached
        c.admit(2, &node(1)); // internal: cached
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert_eq!(c.len(), 1);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_policy_caches_everything_with_bound() {
        let mut c = NodeCache::new(CachePolicy::Lru(2));
        c.admit(1, &node(0));
        c.admit(2, &node(1));
        c.admit(3, &node(0)); // evicts page 1
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.invalidate(2);
        assert!(c.get(2).is_none());
        let mut c = NodeCache::new(CachePolicy::Lru(4));
        c.admit(2, &node(1));
        c.invalidate(2);
        assert!(c.get(2).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.admit(3, &node(3));
        c.clear();
        assert!(c.is_empty());
    }
}
