//! Node cache policies — sharded for concurrent readers.
//!
//! The paper's query experiments keep *all internal nodes* cached ("they
//! never occupied more than 6MB", §3.3), so reported query I/O equals the
//! number of leaves fetched. Footnote 5 also reports a run with the cache
//! disabled. Both policies, plus a bounded LRU for ablations, live here.
//!
//! # Sharded-cache design
//!
//! The original runtime wrapped one `NodeCache` in a global
//! `parking_lot::Mutex`, serializing every reader: with all internal
//! nodes cached, *each node visit of each query* took the same lock, so
//! multi-threaded query throughput plateaued at ~1× serial. This module
//! replaces that with a cache that is internally synchronized and safe to
//! share by reference:
//!
//! * **Sharding.** Pinned internal nodes are partitioned over
//!   [`SHARD_COUNT`] shards by the low bits of their [`BlockId`], each
//!   shard behind its own `parking_lot::RwLock`. Readers of different
//!   pages take different locks; readers of the same shard share a read
//!   lock. Only `admit`/`invalidate`/`clear` take a shard's write lock.
//! * **Frozen fast path.** After [`crate::tree::RTree::warm_cache`]
//!   pre-loads every internal node, [`ShardedNodeCache::freeze`] collects
//!   the pinned maps into one immutable [`FrozenMap`]. Each query grabs
//!   one snapshot `Arc` up front ([`ShardedNodeCache::frozen_snapshot`])
//!   and then indexes a plain `HashMap` per node visit — zero shared
//!   lock or refcount traffic in the hot loop, which is the paper's
//!   steady-state query configuration. Any invalidation or policy change
//!   thaws the frozen map; the sharded path (which retains the same
//!   entries) keeps lookups correct, so dynamic updates stay exact.
//! * **Exact statistics.** Hits/misses accumulate in the shared atomic
//!   [`pr_em::HitCounters`]; every lookup increments exactly one counter,
//!   so totals equal the serial run's regardless of thread interleaving.
//!   Query code batches its counts locally (one [`CacheTally`] per query)
//!   and flushes once via [`ShardedNodeCache::record`], keeping the hot
//!   loop free of shared-cacheline traffic.
//! * **LRU stays global.** [`CachePolicy::Lru`] is the ablation path: it
//!   needs recency updates on every lookup, so it lives behind a single
//!   lock with *exactly* the configured capacity — same semantics as the
//!   pre-sharding cache. It is not meant for the concurrent hot path.
//!
//! Policy is stored as atomics (`tag` + LRU capacity) so `get`/`admit`
//! can take their early-outs — `CachePolicy::None` lookups and leaf
//! admissions under `InternalNodes` — without touching any lock.
//!
//! # The shared leaf cache
//!
//! The per-tree cache above answers the paper's setup (pin every
//! internal node); **leaves** of store-backed trees were still a device
//! read + transcode on every visit of every query. [`LeafCache`] is the
//! LSM-style cure: one bounded, sharded cache of transcoded leaf
//! [`SoaNode`]s **shared across trees** — all components of one pr-live
//! snapshot feed one cache — keyed by `(cache epoch, BlockId)` and
//! sized in **bytes**, not pages. It is an attachment
//! ([`crate::tree::RTree::attach_leaf_cache`]) rather than a
//! [`CachePolicy`] variant because its two defining properties — shared
//! across trees, keyed by an epoch the owner retires — do not fit a
//! per-tree policy enum: a `CachePolicy::LeafLru` would give every
//! component a private budget and no way to drop a replaced snapshot's
//! pages wholesale. Epochs come from [`LeafCache::register_epoch`]
//! (monotonic, never reused — store commit epochs restart after a
//! `compact()` rewrite, so they cannot key a shared cache), and
//! [`LeafCache::retain_epochs`] evicts every dead snapshot's entries
//! after a merge/compaction swap. The live set is exactly that — a
//! **set**, not a floor: incremental merges reuse components in place,
//! so a surviving component's old epoch stays live while *newer*
//! epochs (the merged-away inputs) die. Caching leaves is only sound
//! because committed snapshots are immutable — there is no
//! invalidation path, only whole-epoch retirement.
//!
//! Admission is **scan-resistant**: a leaf enters the LRU only on its
//! second touch. The first miss records the key in a small per-shard
//! ghost ring (keys only, no node bytes) and drops the node; a later
//! miss that finds its key in the ring ([`LeafCache::ghost_hits`])
//! admits for real. A one-pass cold scan over 100% of the index
//! touches every page once, so it fills only the ghost rings and
//! cannot evict the hot set that repeated queries have established.

use crate::soa::SoaNode;
use parking_lot::{Mutex, RwLock};
use pr_em::lru::LruCache;
use pr_em::{BlockId, HitCounters};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independent cache shards (power of two; block ids are
/// allocated sequentially, so low bits spread adjacent pages evenly).
pub const SHARD_COUNT: usize = 16;

/// What a tree keeps in memory between queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No caching: every node visit is a device read.
    None,
    /// Cache every internal node forever; leaves are always read from the
    /// device. This is the paper's experimental setup.
    InternalNodes,
    /// Global LRU over all nodes (internal and leaves) with exactly the
    /// given capacity in pages. Single-lock; intended for cache-size
    /// ablations, not the concurrent hot path.
    Lru(usize),
}

const TAG_NONE: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const TAG_LRU: u8 = 2;

/// Per-query local hit/miss accumulator; flushed once per query through
/// [`ShardedNodeCache::record`] so global totals stay exact without
/// per-node atomic traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheTally {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the device.
    pub misses: u64,
    /// Leaf pages served by the shared [`LeafCache`] (no device read).
    pub leaf_hits: u64,
    /// Leaf pages that missed the attached [`LeafCache`] and were read
    /// from the device (then admitted). Zero when no cache is attached.
    pub leaf_misses: u64,
}

/// Immutable post-warm snapshot of all pinned internal nodes. Queries
/// clone the `Arc` once and index it lock-free per node visit. Since the
/// decode-free engine the cached representation is the SoA
/// [`SoaNode`] — the query path never touches a decoded
/// [`crate::page::NodePage`].
pub type FrozenMap<const D: usize> = Arc<HashMap<BlockId, Arc<SoaNode<D>>>>;

type PinnedShard<const D: usize> = HashMap<BlockId, Arc<SoaNode<D>>>;

/// A concurrently readable node cache implementing one [`CachePolicy`].
///
/// All methods take `&self`; the cache synchronizes internally (see the
/// module docs for the sharding/freezing design). The former name
/// `NodeCache` remains as an alias.
pub struct ShardedNodeCache<const D: usize> {
    policy_tag: AtomicU8,
    lru_capacity: AtomicUsize,
    shards: Vec<RwLock<PinnedShard<D>>>,
    lru: RwLock<Option<LruCache<BlockId, Arc<SoaNode<D>>>>>,
    frozen: RwLock<Option<FrozenMap<D>>>,
    stats: HitCounters,
}

/// Backwards-compatible alias for the pre-sharding type name.
pub type NodeCache<const D: usize> = ShardedNodeCache<D>;

fn new_lru<const D: usize>(policy: CachePolicy) -> Option<LruCache<BlockId, Arc<SoaNode<D>>>> {
    match policy {
        CachePolicy::Lru(cap) => Some(LruCache::new(cap.max(1))),
        _ => None,
    }
}

impl<const D: usize> ShardedNodeCache<D> {
    /// Creates a cache with the given policy.
    pub fn new(policy: CachePolicy) -> Self {
        let cache = ShardedNodeCache {
            policy_tag: AtomicU8::new(TAG_NONE),
            lru_capacity: AtomicUsize::new(0),
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            lru: RwLock::new(new_lru::<D>(policy)),
            frozen: RwLock::new(None),
            stats: HitCounters::new(),
        };
        cache.store_policy(policy);
        cache
    }

    fn store_policy(&self, policy: CachePolicy) {
        let (tag, cap) = match policy {
            CachePolicy::None => (TAG_NONE, 0),
            CachePolicy::InternalNodes => (TAG_INTERNAL, 0),
            CachePolicy::Lru(cap) => (TAG_LRU, cap),
        };
        self.lru_capacity.store(cap, Ordering::Relaxed);
        self.policy_tag.store(tag, Ordering::Release);
    }

    /// The configured policy.
    pub fn policy(&self) -> CachePolicy {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => CachePolicy::None,
            TAG_INTERNAL => CachePolicy::InternalNodes,
            _ => CachePolicy::Lru(self.lru_capacity.load(Ordering::Relaxed)),
        }
    }

    /// Replaces the policy, dropping all cached nodes and resetting hit
    /// statistics (matches the old `*cache = NodeCache::new(policy)`).
    pub fn set_policy(&self, policy: CachePolicy) {
        *self.frozen.write() = None;
        self.store_policy(policy);
        for shard in &self.shards {
            shard.write().clear();
        }
        *self.lru.write() = new_lru::<D>(policy);
        self.stats.reset();
    }

    #[inline]
    fn shard(&self, page: BlockId) -> &RwLock<PinnedShard<D>> {
        &self.shards[(page as usize) & (SHARD_COUNT - 1)]
    }

    /// Looks up a node and records the hit/miss in the shared counters.
    pub fn get(&self, page: BlockId) -> Option<Arc<SoaNode<D>>> {
        let found = self.lookup(page, None);
        if found.is_some() {
            self.stats.add_hits(1);
        } else {
            self.stats.add_misses(1);
        }
        found
    }

    /// Folds a per-query tally into the shared counters. Query loops
    /// count each [`ShardedNodeCache::lookup_with`] outcome into their
    /// local [`CacheTally`] and flush it here exactly once.
    pub fn record(&self, tally: CacheTally) {
        self.stats.add_hits(tally.hits);
        self.stats.add_misses(tally.misses);
    }

    /// The current frozen snapshot, if [`ShardedNodeCache::freeze`] ran
    /// and nothing thawed it since. Queries grab this once up front; the
    /// snapshot is immutable, so a query keeps reading a consistent map
    /// even if the cache is thawed mid-traversal (the node `Arc`s it
    /// yields are the same ones the shards hold).
    pub fn frozen_snapshot(&self) -> Option<FrozenMap<D>> {
        self.frozen.read().clone()
    }

    fn lookup(&self, page: BlockId, frozen: Option<&FrozenMap<D>>) -> Option<Arc<SoaNode<D>>> {
        self.lookup_with(page, frozen, Arc::clone)
    }

    /// Closure-form lookup: runs `f` against the cached node *in place*
    /// and returns its result, or `None` on a miss. The hot query loop
    /// uses this so that a frozen-snapshot hit costs one `HashMap` probe
    /// and nothing else — no lock, no `Arc` refcount traffic, no clone.
    /// (Shard/LRU hits run `f` under the shard's read lock / the LRU's
    /// write lock; `f` must be short, which traversal scans are.)
    pub fn lookup_with<R>(
        &self,
        page: BlockId,
        frozen: Option<&FrozenMap<D>>,
        f: impl FnOnce(&Arc<SoaNode<D>>) -> R,
    ) -> Option<R> {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => None,
            TAG_INTERNAL => {
                // Fast path: the caller's immutable post-warm snapshot —
                // a plain HashMap probe, no locks, no refcount traffic.
                if let Some(map) = frozen {
                    // The snapshot is authoritative while it exists:
                    // `warm_cache` pins *every* internal node before
                    // `freeze`, and every later mutation (`write_node` →
                    // `invalidate`, `clear`, `set_policy`) thaws first —
                    // so a page absent here is simply not cached. Skip
                    // the shard probe; a leaf visit must not pay a
                    // RwLock + second HashMap miss.
                    return map.get(&page).map(f);
                } else {
                    let guard = self.frozen.read();
                    if let Some(n) = guard.as_ref().and_then(|map| map.get(&page)) {
                        return Some(f(n));
                    }
                }
                self.shard(page).read().get(&page).map(f)
            }
            _ => {
                // LRU updates recency on every lookup → global write lock
                // (ablation path; see module docs).
                let mut lru = self.lru.write();
                lru.as_mut().and_then(|l| l.get(&page)).map(f)
            }
        }
    }

    /// True when the policy would retain a freshly read node at `level`.
    /// The miss path checks this *before* materializing an owned
    /// [`SoaNode`], so leaf reads under [`CachePolicy::InternalNodes`] —
    /// the steady-state hot path — allocate nothing for the cache.
    #[inline]
    pub fn wants(&self, level: u8) -> bool {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => false,
            TAG_INTERNAL => level > 0,
            _ => true,
        }
    }

    /// Offers a freshly read node to the cache; the policy decides whether
    /// to keep it. Policy checks happen before any lock is taken, so leaf
    /// reads under [`CachePolicy::InternalNodes`] stay lock-free here.
    pub fn admit(&self, page: BlockId, node: &Arc<SoaNode<D>>) {
        match self.policy_tag.load(Ordering::Acquire) {
            TAG_NONE => {}
            TAG_INTERNAL => {
                if !node.is_leaf() {
                    self.shard(page).write().insert(page, Arc::clone(node));
                }
            }
            _ => {
                let mut lru = self.lru.write();
                if let Some(l) = lru.as_mut() {
                    l.insert(page, Arc::clone(node));
                }
            }
        }
    }

    /// Drops a page (after it is rewritten by a dynamic update). Thaws the
    /// frozen snapshot: the sharded path stays exact, and the next
    /// [`ShardedNodeCache::freeze`] rebuilds the fast path.
    pub fn invalidate(&self, page: BlockId) {
        *self.frozen.write() = None;
        self.shard(page).write().remove(&page);
        if let Some(l) = self.lru.write().as_mut() {
            l.remove(&page);
        }
    }

    /// Empties the cache (does not reset hit statistics).
    pub fn clear(&self) {
        *self.frozen.write() = None;
        for shard in &self.shards {
            shard.write().clear();
        }
        if let Some(l) = self.lru.write().as_mut() {
            l.drain();
        }
    }

    /// Snapshots all pinned internal nodes into an immutable map that
    /// queries read without locking (via
    /// [`ShardedNodeCache::frozen_snapshot`]). Called by `warm_cache`
    /// once every internal node is resident; a no-op under the other
    /// policies (nothing is pinned).
    pub fn freeze(&self) {
        if self.policy_tag.load(Ordering::Acquire) != TAG_INTERNAL {
            return;
        }
        let mut map = HashMap::new();
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                map.insert(*k, Arc::clone(v));
            }
        }
        *self.frozen.write() = Some(Arc::new(map));
    }

    /// True when the post-warm frozen snapshot is active.
    pub fn is_frozen(&self) -> bool {
        self.frozen.read().is_some()
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        let pinned: usize = self.shards.iter().map(|s| s.read().len()).sum();
        pinned + self.lru.read().as_ref().map_or(0, |l| l.len())
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction (or the last policy change).
    pub fn hit_stats(&self) -> (u64, u64) {
        self.stats.snapshot()
    }
}

/// One shard of the [`LeafCache`]: an LRU over `(epoch, page)` with
/// byte accounting, plus a fixed ring of **ghost keys** — pages seen
/// exactly once, holding no node bytes. The entry-count cap handed to
/// the inner [`LruCache`] is a generous upper bound (a leaf `SoaNode`
/// is never smaller than [`LEAF_ENTRY_FLOOR`] bytes); the **byte**
/// budget is what actually bounds residency.
struct LeafShard<const D: usize> {
    lru: LruCache<(u64, BlockId), Arc<SoaNode<D>>>,
    bytes: usize,
    /// Second-touch admission filter: keys recently missed (or evicted
    /// under byte pressure) that will be admitted if touched again
    /// while still in the ring. Overwritten FIFO at `ghost_cursor`.
    ghosts: Vec<Option<(u64, BlockId)>>,
    ghost_cursor: usize,
}

impl<const D: usize> LeafShard<D> {
    /// Records a key in the ghost ring, overwriting the oldest slot.
    fn note_ghost(&mut self, key: (u64, BlockId)) {
        let cur = self.ghost_cursor;
        self.ghosts[cur] = Some(key);
        self.ghost_cursor = (cur + 1) % self.ghosts.len();
    }

    /// Consumes a ghost entry for `key`, if present.
    fn take_ghost(&mut self, key: (u64, BlockId)) -> bool {
        match self.ghosts.iter().position(|g| *g == Some(key)) {
            Some(slot) => {
                self.ghosts[slot] = None;
                true
            }
            None => false,
        }
    }
}

/// Conservative lower bound on the resident size of one cached leaf,
/// used only to cap the per-shard entry count.
const LEAF_ENTRY_FLOOR: usize = 128;

/// Ghost-key slots per shard. Keys are 16 bytes, so the whole filter
/// costs ~2 KiB per shard — noise next to the byte budget — while
/// remembering the last ~2 k distinct misses across the cache, enough
/// for a hot set's second touches to land before its keys rotate out.
const GHOST_RING_CAPACITY: usize = 128;

/// A bounded, sharded cache of transcoded leaf nodes shared across the
/// trees of one snapshot lineage (see the module docs). All methods take
/// `&self`; shards are independent mutexes indexed by the low bits of
/// the page id, so concurrent queries of different pages rarely contend
/// and the critical sections are a probe or an insert — never a scan.
pub struct LeafCache<const D: usize> {
    shards: Vec<Mutex<LeafShard<D>>>,
    /// Byte budget per shard (total budget / [`SHARD_COUNT`]).
    shard_budget: usize,
    capacity_bytes: usize,
    next_epoch: AtomicU64,
    /// The set of epochs whose admissions are accepted. Registration
    /// inserts; [`LeafCache::retain_epochs`] replaces the set with the
    /// survivors, so pinned readers of replaced snapshots (which still
    /// hold the cache under their dead epoch) cannot re-admit dead
    /// leaves and evict the live snapshot's hot set — their admits
    /// become no-ops and their lookups miss. A set rather than a
    /// high-water mark because incremental merges keep *old* epochs
    /// live (reused components) while retiring newer ones (merged
    /// inputs).
    live: RwLock<HashSet<u64>>,
    ghost_hits: AtomicU64,
    stats: HitCounters,
}

/// Default byte budget for a shared leaf cache — one constant for the
/// CLI defaults and `pr-live`'s `LiveOptions::default`, so the two
/// front ends cannot drift apart.
pub const DEFAULT_LEAF_CACHE_BYTES: usize = 16 << 20;

impl<const D: usize> LeafCache<D> {
    /// A cache bounded to roughly `capacity_bytes` of resident
    /// transcoded leaves (accounted via [`SoaNode::approx_bytes`],
    /// spread evenly over [`SHARD_COUNT`] shards).
    pub fn new(capacity_bytes: usize) -> Self {
        let shard_budget = (capacity_bytes / SHARD_COUNT).max(LEAF_ENTRY_FLOOR);
        let max_entries = (shard_budget / LEAF_ENTRY_FLOOR).max(1);
        LeafCache {
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    Mutex::new(LeafShard {
                        lru: LruCache::new(max_entries),
                        bytes: 0,
                        ghosts: vec![None; GHOST_RING_CAPACITY],
                        ghost_cursor: 0,
                    })
                })
                .collect(),
            shard_budget,
            capacity_bytes,
            next_epoch: AtomicU64::new(1),
            live: RwLock::new(HashSet::new()),
            ghost_hits: AtomicU64::new(0),
            stats: HitCounters::new(),
        }
    }

    /// Hands out a fresh, never-reused epoch and marks it live. Every
    /// component attaches under its own epoch, so entries of a replaced
    /// component can never alias a new one's page ids — store commit
    /// epochs restart when `compact()` rewrites the file, which is
    /// exactly why the cache numbers its own.
    pub fn register_epoch(&self) -> u64 {
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        self.live.write().insert(epoch);
        epoch
    }

    #[inline]
    fn shard(&self, page: BlockId) -> &Mutex<LeafShard<D>> {
        &self.shards[(page as usize) & (SHARD_COUNT - 1)]
    }

    /// Looks up a cached leaf. Hit/miss accounting is the caller's job
    /// (queries batch into a [`CacheTally`] and flush once; see
    /// [`LeafCache::record`]) so the hot loop touches no shared counter.
    pub fn get(&self, epoch: u64, page: BlockId) -> Option<Arc<SoaNode<D>>> {
        self.shard(page).lock().lru.get(&(epoch, page)).cloned()
    }

    /// Offers a freshly transcoded leaf. Admission is second-touch: the
    /// first offer of a key only records it in the shard's ghost ring
    /// and drops the node; an offer whose key is still in the ring (or
    /// already resident — a replacement) inserts for real, evicting
    /// least-recently-used entries (of any epoch) until the shard is
    /// back under its byte budget. Evicted keys re-enter the ghost
    /// ring, so a hot page squeezed out by pressure returns after one
    /// touch. A node larger than the whole shard budget is admitted
    /// and immediately evicted — harmless, and it keeps the bound
    /// strict. Admissions under a retired epoch (a pinned reader of a
    /// replaced snapshot) are dropped entirely: dead leaves must not
    /// evict the live snapshot's hot set nor squat in its ghost ring.
    pub fn admit(&self, epoch: u64, page: BlockId, node: Arc<SoaNode<D>>) {
        self.admit_with(epoch, page, || node);
    }

    /// Closure form of [`LeafCache::admit`]: `make` materializes the
    /// owned node and runs only when the cache will actually insert, so
    /// the common first touch of a cold scan costs a 16-byte ghost-ring
    /// write and **zero** allocation. (`make` runs under the shard
    /// lock; it must be short — the tree's leaf clone is.)
    pub fn admit_with(&self, epoch: u64, page: BlockId, make: impl FnOnce() -> Arc<SoaNode<D>>) {
        let key = (epoch, page);
        let mut shard = self.shard(page).lock();
        // Checked *under the shard lock*: `retain_epochs` replaces the
        // live set before sweeping the shards, so either this admit
        // sees the shrunk set here and drops out, or it completes
        // before the sweep takes this shard's lock and the sweep
        // removes the entry. A check outside the lock would leave a
        // window where a dead-epoch admission lands just after the
        // sweep and squats in the budget until the next merge.
        if !self.live.read().contains(&epoch) {
            return;
        }
        if shard.lru.peek(&key).is_none() {
            if shard.take_ghost(key) {
                self.ghost_hits.fetch_add(1, Ordering::Relaxed);
                crate::obs::leaf_cache_ghost_hit();
            } else {
                // First touch: remember the key, keep no bytes.
                shard.note_ghost(key);
                return;
            }
        }
        let node = make();
        let add = node.approx_bytes();
        let mut delta = add as i64;
        if let Some((_, old)) = shard.lru.insert(key, node) {
            shard.bytes -= old.approx_bytes();
            delta -= old.approx_bytes() as i64;
        }
        shard.bytes += add;
        while shard.bytes > self.shard_budget {
            match shard.lru.pop_lru() {
                Some((evicted_key, evicted)) => {
                    shard.bytes -= evicted.approx_bytes();
                    delta -= evicted.approx_bytes() as i64;
                    shard.note_ghost(evicted_key);
                }
                None => break,
            }
        }
        crate::obs::leaf_cache_bytes_delta(delta);
    }

    /// Folds a per-query tally's leaf-cache counts into the shared
    /// counters (called once per query via the tree's tally flush).
    pub fn record(&self, tally: CacheTally) {
        self.stats.add_hits(tally.leaf_hits);
        self.stats.add_misses(tally.leaf_misses);
    }

    /// Drops one page (defensive hook for the write path; immutable
    /// store-backed trees never call it in practice).
    pub fn evict(&self, epoch: u64, page: BlockId) {
        let mut shard = self.shard(page).lock();
        if let Some(node) = shard.lru.remove(&(epoch, page)) {
            shard.bytes -= node.approx_bytes();
            crate::obs::leaf_cache_bytes_delta(-(node.approx_bytes() as i64));
        }
    }

    /// Single-survivor form of [`LeafCache::retain_epochs`] — the full
    /// rewrite (`compact()`, legacy merge) replaces every component, so
    /// exactly one epoch survives.
    pub fn retain_epoch(&self, epoch: u64) {
        self.retain_epochs(&[epoch]);
    }

    /// Evicts every entry whose epoch is not in `live` — the
    /// merge/compaction swap calls this with the epochs of the
    /// components that make up the snapshot that just became current
    /// (an incremental merge keeps reused components' *old* epochs
    /// alive alongside the new output's), dropping all dead snapshots'
    /// leaves at once. Every other epoch is retired permanently: pinned
    /// readers of replaced snapshots keep querying (and simply miss),
    /// but their admissions no longer land in the shared budget.
    pub fn retain_epochs(&self, live: &[u64]) {
        let keep: HashSet<u64> = live.iter().copied().collect();
        // Replace the live set *before* sweeping: see the ordering
        // comment in `admit_with`.
        *self.live.write() = keep.clone();
        let mut evicted = 0u64;
        let mut freed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dead: Vec<(u64, BlockId)> = shard
                .lru
                .iter()
                .filter(|((e, _), _)| !keep.contains(e))
                .map(|(k, _)| *k)
                .collect();
            for key in dead {
                if let Some(node) = shard.lru.remove(&key) {
                    shard.bytes -= node.approx_bytes();
                    evicted += 1;
                    freed += node.approx_bytes() as u64;
                }
            }
            // Dead ghost keys can never be admitted again; free their
            // slots for the live epochs' misses.
            for slot in shard.ghosts.iter_mut() {
                if matches!(slot, Some((e, _)) if !keep.contains(e)) {
                    *slot = None;
                }
            }
        }
        crate::obs::leaf_cache_bytes_delta(-(freed as i64));
        crate::obs::metrics().cache_epochs_retired.inc();
        let mut lives: Vec<u64> = keep.into_iter().collect();
        lives.sort_unstable();
        pr_obs::events().emit(
            "cache_epoch_retire",
            format!("live={lives:?} evicted={evicted} freed_bytes={freed}"),
        );
    }

    /// Drops everything, ghost keys included (keeps hit statistics).
    pub fn clear(&self) {
        let mut freed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.lru.drain();
            freed += shard.bytes as u64;
            shard.bytes = 0;
            shard.ghosts.fill(None);
            shard.ghost_cursor = 0;
        }
        crate::obs::leaf_cache_bytes_delta(-(freed as i64));
    }

    /// Cached leaves across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().lru.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// `(hits, misses)` since construction.
    pub fn hit_stats(&self) -> (u64, u64) {
        self.stats.snapshot()
    }

    /// Misses whose key was found in a ghost ring — i.e. second touches
    /// that turned into real admissions. High ghost hits relative to
    /// misses means the working set cycles faster than the rings
    /// remember; near zero under a pure scan means the filter is doing
    /// its job.
    pub fn ghost_hits(&self) -> u64 {
        self.ghost_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use crate::page::NodePage;
    use pr_geom::Rect;

    fn node(level: u8) -> Arc<SoaNode<2>> {
        Arc::new(SoaNode::from_page(&NodePage::new(
            level,
            vec![Entry::new(Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0)],
        )))
    }

    #[test]
    fn none_policy_never_caches() {
        let c = NodeCache::new(CachePolicy::None);
        c.admit(1, &node(2));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.hit_stats(), (0, 1));
    }

    #[test]
    fn internal_policy_skips_leaves() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(1, &node(0)); // leaf: not cached
        c.admit(2, &node(1)); // internal: cached
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert_eq!(c.len(), 1);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_policy_is_global_with_exact_capacity() {
        let c = NodeCache::new(CachePolicy::Lru(2));
        // Pages land in different shards, but the LRU is global: the
        // third admission evicts the least recently used page whatever
        // its shard, and total residency never exceeds the configured 2.
        c.admit(1, &node(0));
        c.admit(2, &node(1));
        c.admit(3, &node(0)); // evicts page 1
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_removes() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.invalidate(2);
        assert!(c.get(2).is_none());
        let c = NodeCache::new(CachePolicy::Lru(64));
        c.admit(2, &node(1));
        c.invalidate(2);
        assert!(c.get(2).is_none());
    }

    #[test]
    fn clear_empties() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.admit(3, &node(3));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn freeze_serves_pinned_nodes_and_thaws_on_invalidate() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.admit(19, &node(2));
        c.freeze();
        assert!(c.is_frozen());
        assert!(c.get(2).is_some());
        assert!(c.get(19).is_some());
        assert!(c.get(500).is_none(), "unknown page misses through frozen");
        // Admissions after freeze are still visible (sharded fallback).
        c.admit(33, &node(1));
        assert!(c.get(33).is_some());
        // Invalidation thaws and the page is really gone.
        c.invalidate(2);
        assert!(!c.is_frozen());
        assert!(c.get(2).is_none());
        assert!(c.get(19).is_some());
    }

    #[test]
    fn snapshot_lookups_bypass_shared_state_and_stay_consistent() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.freeze();
        let snap = c.frozen_snapshot().expect("frozen after freeze");
        assert!(c.lookup_with(2, Some(&snap), |_| ()).is_some());
        // Thaw mid-"query": the held snapshot still answers.
        c.invalidate(99);
        assert!(!c.is_frozen());
        assert!(c.frozen_snapshot().is_none());
        assert!(c.lookup_with(2, Some(&snap), |_| ()).is_some());
    }

    #[test]
    fn freeze_is_noop_for_other_policies() {
        let c = NodeCache::new(CachePolicy::Lru(8));
        c.admit(1, &node(0));
        c.freeze();
        assert!(!c.is_frozen());
        let c = NodeCache::<2>::new(CachePolicy::None);
        c.freeze();
        assert!(!c.is_frozen());
    }

    #[test]
    fn set_policy_resets_contents_and_stats() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        c.freeze();
        let _ = c.get(2);
        assert_eq!(c.hit_stats(), (1, 0));
        c.set_policy(CachePolicy::None);
        assert_eq!(c.policy(), CachePolicy::None);
        assert!(c.is_empty());
        assert!(!c.is_frozen());
        assert_eq!(c.hit_stats(), (0, 0));
    }

    #[test]
    fn tallied_lookups_flush_exactly() {
        // Query-style accounting: outcomes counted into a local tally
        // (as the traversal's node access does), flushed exactly once.
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        let mut tally = CacheTally::default();
        for page in [2u64, 7] {
            if c.lookup_with(page, None, |_| ()).is_some() {
                tally.hits += 1;
            } else {
                tally.misses += 1;
            }
        }
        assert_eq!((tally.hits, tally.misses), (1, 1));
        assert_eq!(c.hit_stats(), (0, 0), "nothing flushed yet");
        c.record(tally);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn wants_mirrors_admit_policy() {
        let c = NodeCache::<2>::new(CachePolicy::InternalNodes);
        assert!(!c.wants(0), "leaves are never pinned");
        assert!(c.wants(1));
        c.set_policy(CachePolicy::None);
        assert!(!c.wants(3));
        c.set_policy(CachePolicy::Lru(4));
        assert!(c.wants(0));
    }

    #[test]
    fn lookup_with_runs_in_place() {
        let c = NodeCache::new(CachePolicy::InternalNodes);
        c.admit(2, &node(1));
        assert_eq!(c.lookup_with(2, None, |n| n.level()), Some(1));
        assert_eq!(c.lookup_with(9, None, |n| n.level()), None);
        c.freeze();
        let snap = c.frozen_snapshot().unwrap();
        assert_eq!(c.lookup_with(2, Some(&snap), |n| n.len()), Some(1));
        // LRU arm too.
        let c = NodeCache::new(CachePolicy::Lru(4));
        c.admit(5, &node(0));
        assert_eq!(c.lookup_with(5, None, |n| n.level()), Some(0));
    }

    fn leaf(entries: usize) -> Arc<SoaNode<2>> {
        let ents: Vec<Entry<2>> = (0..entries)
            .map(|i| Entry::new(Rect::xyxy(i as f64, 0.0, i as f64 + 1.0, 1.0), i as u32))
            .collect();
        Arc::new(SoaNode::from_page(&NodePage::new(0, ents)))
    }

    /// Offers a leaf twice so it passes second-touch admission — the
    /// shorthand for tests that want a page *resident*.
    fn admit2(c: &LeafCache<2>, e: u64, page: BlockId, n: Arc<SoaNode<2>>) {
        c.admit(e, page, Arc::clone(&n));
        c.admit(e, page, n);
    }

    #[test]
    fn leaf_cache_roundtrip_and_epoch_isolation() {
        let c = LeafCache::<2>::new(1 << 20);
        let e1 = c.register_epoch();
        let e2 = c.register_epoch();
        assert_ne!(e1, e2);
        admit2(&c, e1, 7, leaf(5));
        assert!(c.get(e1, 7).is_some());
        // Same page id under another epoch is a distinct entry.
        assert!(c.get(e2, 7).is_none());
        admit2(&c, e2, 7, leaf(9));
        assert_eq!(c.get(e1, 7).unwrap().len(), 5);
        assert_eq!(c.get(e2, 7).unwrap().len(), 9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn leaf_cache_admits_on_second_touch_only() {
        let c = LeafCache::<2>::new(1 << 20);
        let e = c.register_epoch();
        c.admit(e, 7, leaf(5));
        assert!(c.get(e, 7).is_none(), "first touch only ghosts the key");
        assert_eq!(c.resident_bytes(), 0, "a ghost holds no node bytes");
        assert_eq!(c.ghost_hits(), 0);
        c.admit(e, 7, leaf(5));
        assert!(c.get(e, 7).is_some(), "second touch admits for real");
        assert_eq!(c.ghost_hits(), 1);
        // A resident page re-admitted (replacement) is not a ghost hit.
        c.admit(e, 7, leaf(6));
        assert_eq!(c.get(e, 7).unwrap().len(), 6);
        assert_eq!(c.ghost_hits(), 1);
    }

    #[test]
    fn leaf_cache_admit_with_skips_materialization_on_first_touch() {
        let c = LeafCache::<2>::new(1 << 20);
        let e = c.register_epoch();
        let mut made = 0u32;
        c.admit_with(e, 9, || {
            made += 1;
            leaf(4)
        });
        assert_eq!(made, 0, "first touch must not build the node");
        c.admit_with(e, 9, || {
            made += 1;
            leaf(4)
        });
        assert_eq!(made, 1);
        assert!(c.get(e, 9).is_some());
    }

    #[test]
    fn leaf_cache_scan_survives_one_pass_over_cold_pages() {
        let c = LeafCache::<2>::new(1 << 20);
        let e = c.register_epoch();
        // Establish a hot set with repeated touches.
        for p in 0..8u64 {
            admit2(&c, e, p, leaf(10));
        }
        assert_eq!(c.len(), 8);
        // A full cold scan: thousands of pages, each touched once.
        for p in 100..4100u64 {
            c.admit(e, p, leaf(10));
        }
        // Nothing was admitted, so nothing hot was evicted.
        assert_eq!(c.len(), 8, "one-pass scan must not displace the hot set");
        for p in 0..8u64 {
            assert!(c.get(e, p).is_some(), "hot page {p} was evicted by a scan");
        }
    }

    #[test]
    fn leaf_cache_is_byte_bounded() {
        // Budget of ~4 leaves per shard; hammer one shard (page ids that
        // collide mod SHARD_COUNT) and check residency stays bounded.
        let node = leaf(100);
        let budget = node.approx_bytes() * 4 * SHARD_COUNT;
        let c = LeafCache::<2>::new(budget);
        let e = c.register_epoch();
        for i in 0..64u64 {
            admit2(&c, e, i * SHARD_COUNT as u64, leaf(100));
        }
        assert!(c.len() <= 4, "shard holds {} > 4 leaves", c.len());
        assert!(c.resident_bytes() <= budget / SHARD_COUNT);
        // Eviction is LRU: the most recent page survives.
        assert!(c.get(e, 63 * SHARD_COUNT as u64).is_some());
        assert!(c.get(e, 0).is_none());
        // An evicted key went back into the ghost ring, so a hot page
        // squeezed out by pressure returns after a single re-touch.
        assert!(
            c.get(e, 59 * SHARD_COUNT as u64).is_none(),
            "59 was evicted"
        );
        c.admit(e, 59 * SHARD_COUNT as u64, leaf(100));
        assert!(
            c.get(e, 59 * SHARD_COUNT as u64).is_some(),
            "pressure-evicted page must re-enter on one touch"
        );
    }

    #[test]
    fn leaf_cache_retain_epoch_drops_dead_snapshots() {
        let c = LeafCache::<2>::new(1 << 20);
        let old = c.register_epoch();
        let new = c.register_epoch();
        for p in 0..20u64 {
            admit2(&c, old, p, leaf(3));
        }
        for p in 0..5u64 {
            admit2(&c, new, p, leaf(3));
        }
        c.retain_epoch(new);
        assert_eq!(c.len(), 5);
        assert!(c.get(old, 1).is_none());
        assert!(c.get(new, 1).is_some());
        let bytes = c.resident_bytes();
        assert_eq!(bytes, 5 * leaf(3).approx_bytes());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn leaf_cache_retain_epochs_keeps_a_noncontiguous_live_set() {
        // The incremental-merge shape: the *oldest* epoch (a reused
        // component) survives, a newer one (a merged input) dies, and
        // the newest (the merge output) joins — a floor cannot express
        // this; the live set must.
        let c = LeafCache::<2>::new(1 << 20);
        let reused = c.register_epoch();
        let merged_away = c.register_epoch();
        let output = c.register_epoch();
        admit2(&c, reused, 1, leaf(3));
        admit2(&c, merged_away, 2, leaf(3));
        admit2(&c, output, 3, leaf(3));
        c.retain_epochs(&[reused, output]);
        assert!(c.get(reused, 1).is_some(), "reused component's epoch lives");
        assert!(c.get(merged_away, 2).is_none());
        assert!(c.get(output, 3).is_some());
        assert_eq!(c.len(), 2);
        // The old-but-live epoch still accepts admissions; the newer
        // retired one does not.
        admit2(&c, reused, 10, leaf(3));
        assert!(c.get(reused, 10).is_some());
        admit2(&c, merged_away, 11, leaf(3));
        assert!(c.get(merged_away, 11).is_none());
    }

    #[test]
    fn leaf_cache_refuses_retired_epoch_admissions() {
        let c = LeafCache::<2>::new(1 << 20);
        let old = c.register_epoch();
        let new = c.register_epoch();
        admit2(&c, old, 1, leaf(3));
        c.retain_epoch(new);
        // A pinned reader of the replaced snapshot keeps querying: its
        // lookups miss and its admissions are dropped, so dead leaves
        // can never evict the live snapshot's hot set.
        assert!(c.get(old, 1).is_none());
        admit2(&c, old, 2, leaf(3));
        assert!(c.get(old, 2).is_none());
        assert_eq!(c.resident_bytes(), 0);
        // The live epoch is unaffected.
        admit2(&c, new, 2, leaf(3));
        assert!(c.get(new, 2).is_some());
    }

    #[test]
    fn leaf_cache_evict_and_reinsert_accounting() {
        let c = LeafCache::<2>::new(1 << 20);
        let e = c.register_epoch();
        admit2(&c, e, 3, leaf(10));
        let one = c.resident_bytes();
        // Re-admitting the same page replaces, not double-counts.
        c.admit(e, 3, leaf(10));
        assert_eq!(c.resident_bytes(), one);
        c.evict(e, 3);
        assert_eq!(c.resident_bytes(), 0);
        assert!(c.get(e, 3).is_none());
        // Tally flush: 2 hits + 1 miss recorded once.
        c.record(CacheTally {
            leaf_hits: 2,
            leaf_misses: 1,
            ..Default::default()
        });
        assert_eq!(c.hit_stats(), (2, 1));
    }

    #[test]
    fn leaf_cache_concurrent_mixed_ops_stay_consistent() {
        let c = LeafCache::<2>::new(1 << 18);
        let e = c.register_epoch();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let page = (t * 131 + i) % 97;
                        if i % 3 == 0 {
                            c.admit(e, page, leaf((page % 20) as usize + 1));
                        } else if let Some(n) = c.get(e, page) {
                            assert_eq!(n.len(), (page % 20) as usize + 1);
                        }
                    }
                });
            }
        });
        assert!(c.resident_bytes() <= c.capacity_bytes().max(1));
    }

    #[test]
    fn concurrent_readers_count_exactly() {
        let c = NodeCache::<2>::new(CachePolicy::InternalNodes);
        for p in 0..64u64 {
            c.admit(p, &node(1));
        }
        c.freeze();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        // Half the lookups hit, half miss.
                        let page = (i + t) % 64 + if i % 2 == 0 { 0 } else { 1000 };
                        let _ = c.get(page);
                    }
                });
            }
        });
        let (h, m) = c.hit_stats();
        assert_eq!(h + m, 8000, "every lookup counted exactly once");
        assert_eq!(h, 4000);
        assert_eq!(m, 4000);
    }
}
