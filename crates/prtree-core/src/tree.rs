//! The page-level R-tree runtime shared by all variants.
//!
//! An [`RTree`] is a handle: a device, a root page id, the root's level,
//! and a node cache. Every bulk loader in [`crate::bulk`] produces this
//! same representation, so query costs are directly comparable — only the
//! *shape* of the tree differs between variants, exactly as in the paper.

use crate::cache::{CachePolicy, CacheTally, FrozenMap, LeafCache, ShardedNodeCache};
use crate::meta::TreeMeta;
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::soa::SoaNode;
use pr_em::{BlockDevice, BlockId, EmError};
use pr_geom::Item;
use std::sync::Arc;

/// A height-balanced R-tree stored on a block device.
///
/// The handle is `Send + Sync` (statically asserted below): the node
/// cache is internally sharded ([`crate::cache`]) and the device is
/// `Send + Sync` by trait bound, so any number of threads may run
/// queries on one `&RTree` concurrently. Mutation (`&mut self` dynamic
/// updates) follows the usual exclusive-borrow rules.
pub struct RTree<const D: usize> {
    dev: Arc<dyn BlockDevice>,
    params: TreeParams,
    root: BlockId,
    root_level: u8,
    len: u64,
    cache: ShardedNodeCache<D>,
    /// Optional shared leaf cache + the epoch this tree's pages are
    /// keyed under (see [`crate::cache::LeafCache`]). Attached before
    /// the handle is shared, then read without any lock on the hot path.
    leaf_cache: Option<(Arc<LeafCache<D>>, u64)>,
}

// Compile-time proof that trees can be shared across threads; fails to
// compile if any field loses Send/Sync.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RTree<2>>();
    assert_send_sync::<RTree<3>>();
};

impl<const D: usize> RTree<D> {
    /// Wraps an existing tree: `root` is the page id of the root node at
    /// `root_level` (0 for a single-leaf tree), `len` the number of items.
    ///
    /// Bulk loaders call this; it is public so trees can be reattached
    /// after a device is persisted elsewhere.
    pub fn attach(
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        root: BlockId,
        root_level: u8,
        len: u64,
    ) -> Self {
        RTree {
            dev,
            params,
            root,
            root_level,
            len,
            cache: ShardedNodeCache::new(CachePolicy::InternalNodes),
            leaf_cache: None,
        }
    }

    /// Reopens a tree from persisted metadata — the open path used by
    /// `pr-store` after it has validated checksums and picked a committed
    /// snapshot. Produces the same handle as [`RTree::attach`] (fresh
    /// sharded cache; [`RTree::warm_cache`] works as usual) but validates
    /// the metadata against the device instead of trusting it: the root
    /// must be an allocated block and the device's block size must match
    /// the recorded page size.
    pub fn from_parts(dev: Arc<dyn BlockDevice>, meta: TreeMeta) -> Result<Self, EmError> {
        if dev.block_size() != meta.params.page_size {
            return Err(EmError::Corrupt(format!(
                "device block size {} does not match tree page size {}",
                dev.block_size(),
                meta.params.page_size
            )));
        }
        if meta.root >= dev.num_blocks() {
            return Err(EmError::BlockOutOfRange {
                block: meta.root,
                len: dev.num_blocks(),
            });
        }
        Ok(RTree::attach(
            dev,
            meta.params,
            meta.root,
            meta.root_level,
            meta.len,
        ))
    }

    /// The serializable metadata describing this tree (everything a
    /// persisted copy needs besides the pages themselves).
    pub fn meta(&self) -> TreeMeta {
        TreeMeta {
            params: self.params,
            root: self.root,
            root_level: self.root_level,
            len: self.len,
        }
    }

    /// Creates an empty tree (a zero-entry leaf root) — the starting point
    /// for dynamic insertion.
    pub fn new_empty(dev: Arc<dyn BlockDevice>, params: TreeParams) -> Result<Self, EmError> {
        let root = NodePage::<D>::new(0, Vec::new()).append(dev.as_ref())?;
        Ok(RTree::attach(dev, params, root, 0, 0))
    }

    /// Number of indexed items.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height in levels (1 for a single-leaf tree).
    pub fn height(&self) -> u32 {
        self.root_level as u32 + 1
    }

    /// Root page id.
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// Level of the root node (height − 1).
    pub fn root_level(&self) -> u8 {
        self.root_level
    }

    /// Tree parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// The backing device (shared).
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }

    /// Swaps the cache policy, dropping all cached nodes.
    pub fn set_cache_policy(&self, policy: CachePolicy) {
        self.cache.set_policy(policy);
    }

    /// `(hits, misses)` of the node cache. Totals are exact under
    /// concurrent queries (atomic counters; every lookup counts once).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.hit_stats()
    }

    /// The node cache itself (read-only view for tests/tools).
    pub fn cache(&self) -> &ShardedNodeCache<D> {
        &self.cache
    }

    /// Attaches a shared [`LeafCache`]: leaf pages of this tree are
    /// cached (and looked up) under `epoch`, which the caller obtained
    /// from [`LeafCache::register_epoch`] for this tree's snapshot.
    /// Takes `&mut self` — attach before the handle is shared, so the
    /// query hot path reads the field without synchronization. Intended
    /// for store-backed trees, whose committed pages are immutable;
    /// a tree mutated by dynamic updates must not keep a leaf cache
    /// attached (its leaves would go stale — nothing invalidates them).
    pub fn attach_leaf_cache(&mut self, cache: Arc<LeafCache<D>>, epoch: u64) {
        self.leaf_cache = Some((cache, epoch));
    }

    /// The attached shared leaf cache and this tree's epoch in it.
    pub fn leaf_cache(&self) -> Option<(&Arc<LeafCache<D>>, u64)> {
        self.leaf_cache.as_ref().map(|(c, e)| (c, *e))
    }

    /// Reads a node through the cache in decoded AoS form. Returns the
    /// node and whether the read hit the device (`true` = one real I/O).
    ///
    /// This is the **maintenance/write boundary**: the cache stores
    /// [`SoaNode`]s, so a cache hit converts back to a [`NodePage`]
    /// (one allocation). Dynamic updates, validation, and the bulk-load
    /// inspectors use this; the query hot path goes through
    /// [`RTree::with_soa_node`] instead and never materializes entries.
    pub fn read_node(&self, page: BlockId) -> Result<(Arc<NodePage<D>>, bool), EmError> {
        if let Some(n) = self.cache.get(page) {
            return Ok((Arc::new(n.to_page()), false));
        }
        let node = NodePage::read(self.dev.as_ref(), page)?;
        self.cache.admit(page, &Arc::new(SoaNode::from_page(&node)));
        Ok((Arc::new(node), true))
    }

    /// The decode-free node access of the query engine: resolves `page`
    /// and runs `f` against its SoA view *in place*, returning `f`'s
    /// result and whether the read hit the device.
    ///
    /// * Cache hit: `f` runs against the cached [`SoaNode`] — on the
    ///   post-warm frozen snapshot this is one `HashMap` probe with no
    ///   lock and no `Arc` clone.
    /// * Miss: the raw page is read into `page_buf` and transcoded into
    ///   `soa` (both caller-owned, reused across queries via
    ///   [`crate::scratch::QueryScratch`]), allocating nothing unless
    ///   the cache policy wants to retain the node.
    ///
    /// Hit/miss accounting goes into `tally`; flush it once per query
    /// with [`RTree::record_cache_tally`].
    pub(crate) fn with_soa_node<R>(
        &self,
        page: BlockId,
        frozen: Option<&FrozenMap<D>>,
        tally: &mut CacheTally,
        page_buf: &mut Vec<u8>,
        soa: &mut SoaNode<D>,
        f: impl FnOnce(&SoaNode<D>) -> R,
    ) -> Result<(R, bool), EmError> {
        let mut f = Some(f);
        if let Some(r) = self
            .cache
            .lookup_with(page, frozen, |n| (f.take().expect("first use"))(n))
        {
            tally.hits += 1;
            return Ok((r, false));
        }
        tally.misses += 1;
        // Second chance: the shared leaf cache (store-backed trees).
        // Under the paper's InternalNodes policy every miss here is a
        // leaf, so this probe is exactly the per-leaf device read it
        // replaces. A hit costs one shard lock + Arc clone and no I/O.
        if let Some((cache, epoch)) = &self.leaf_cache {
            if let Some(node) = cache.get(*epoch, page) {
                tally.leaf_hits += 1;
                let f = f.take().expect("leaf-cache hit runs f once");
                return Ok((f(&node), false));
            }
        }
        // Zero-copy read: the device exposes the raw page bytes and the
        // transcode is the only pass over them ([`BlockDevice::with_block`]
        // skips the page-sized memcpy for in-memory and mmap backends).
        let mut transcoded = Ok(());
        self.dev.with_block(page, page_buf, &mut |bytes| {
            transcoded = soa.refill_from_bytes(bytes);
        })?;
        transcoded?;
        if self.cache.wants(soa.level()) {
            self.cache.admit(page, &Arc::new(soa.clone()));
        } else if soa.is_leaf() {
            if let Some((cache, epoch)) = &self.leaf_cache {
                tally.leaf_misses += 1;
                // Second-touch admission: the closure (and its clone of
                // the leaf) runs only when the cache actually inserts,
                // so a cold scan's one-time touches allocate nothing.
                cache.admit_with(*epoch, page, || Arc::new(soa.clone()));
            }
        }
        let f = f.take().expect("miss path runs f once");
        Ok((f(soa), true))
    }

    /// The cache's post-warm snapshot, cloned once per query.
    pub(crate) fn frozen_snapshot(&self) -> Option<FrozenMap<D>> {
        self.cache.frozen_snapshot()
    }

    /// Flushes a per-query [`CacheTally`] into the shared counters (the
    /// node cache's and, when attached, the leaf cache's).
    pub(crate) fn record_cache_tally(&self, tally: CacheTally) {
        self.cache.record(tally);
        if let Some((cache, _)) = &self.leaf_cache {
            cache.record(tally);
        }
        crate::obs::record_cache(&tally);
    }

    /// Writes a node page and invalidates (then re-admits) its cache slot.
    /// Used by dynamic updates. The AoS page is transcoded to its SoA
    /// form at this boundary so queries keep reading columns.
    pub fn write_node(&self, page: BlockId, node: &NodePage<D>) -> Result<(), EmError> {
        node.write(self.dev.as_ref(), page)?;
        let arc = Arc::new(SoaNode::from_page(node));
        self.cache.invalidate(page);
        self.cache.admit(page, &arc);
        // Leaf caches are for immutable store-backed trees, but if one
        // is attached anyway, never leave a stale copy behind.
        if let Some((cache, epoch)) = &self.leaf_cache {
            cache.evict(*epoch, page);
        }
        Ok(())
    }

    /// Allocates a fresh page for a new node and writes it.
    pub fn append_node(&self, node: &NodePage<D>) -> Result<BlockId, EmError> {
        let page = self.dev.allocate(1);
        self.write_node(page, node)?;
        Ok(page)
    }

    /// Pre-loads every internal node into the cache (the paper's setup:
    /// "in all our experiments we cached all internal nodes"), then
    /// freezes the pinned map so concurrent queries read it without
    /// locking ([`crate::cache`] module docs). A no-op under
    /// [`CachePolicy::None`].
    pub fn warm_cache(&self) -> Result<(), EmError> {
        if self.root_level == 0 {
            // Single-leaf tree: nothing internal to cache.
            return Ok(());
        }
        let mut stack = vec![(self.root, self.root_level)];
        while let Some((page, level)) = stack.pop() {
            let (node, _) = self.read_node(page)?;
            if level > 1 {
                for e in &node.entries {
                    stack.push((e.ptr as BlockId, level - 1));
                }
            }
        }
        self.cache.freeze();
        Ok(())
    }

    /// Applies `f` to every item in the tree (DFS order).
    pub fn for_each_item(&self, mut f: impl FnMut(Item<D>)) -> Result<(), EmError> {
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let (node, _) = self.read_node(page)?;
            if node.is_leaf() {
                for e in &node.entries {
                    f(e.to_item());
                }
            } else {
                for e in &node.entries {
                    stack.push(e.ptr as BlockId);
                }
            }
        }
        Ok(())
    }

    /// All items in the tree (test/rebuild helper).
    pub fn items(&self) -> Result<Vec<Item<D>>, EmError> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.for_each_item(|i| out.push(i))?;
        Ok(out)
    }

    /// Structural statistics: node counts and fill per level.
    pub fn stats(&self) -> Result<TreeStructure, EmError> {
        let levels = self.root_level as usize + 1;
        let mut nodes = vec![0u64; levels];
        let mut entries = vec![0u64; levels];
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let (node, _) = self.read_node(page)?;
            let l = node.level as usize;
            nodes[l] += 1;
            entries[l] += node.len() as u64;
            if !node.is_leaf() {
                for e in &node.entries {
                    stack.push(e.ptr as BlockId);
                }
            }
        }
        Ok(TreeStructure {
            nodes_per_level: nodes,
            entries_per_level: entries,
            leaf_cap: self.params.leaf_cap,
            node_cap: self.params.node_cap,
        })
    }

    // Internal accessors for sibling modules (dynamic updates).
    pub(crate) fn set_root(&mut self, root: BlockId, root_level: u8) {
        self.root = root;
        self.root_level = root_level;
    }

    pub(crate) fn bump_len(&mut self, delta: i64) {
        self.len = (self.len as i64 + delta) as u64;
    }
}

/// Node counts and fill factors, per level and overall.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStructure {
    /// Number of nodes at each level (index 0 = leaves).
    pub nodes_per_level: Vec<u64>,
    /// Total entries at each level.
    pub entries_per_level: Vec<u64>,
    /// Leaf capacity (for utilization).
    pub leaf_cap: usize,
    /// Internal capacity.
    pub node_cap: usize,
}

impl TreeStructure {
    /// Number of leaf pages.
    pub fn num_leaves(&self) -> u64 {
        self.nodes_per_level[0]
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> u64 {
        self.nodes_per_level.iter().sum()
    }

    /// Space utilization over all nodes: entries stored divided by entry
    /// slots available. The paper reports >99% for all bulk loaders.
    pub fn utilization(&self) -> f64 {
        let mut used = 0.0;
        let mut avail = 0.0;
        for (level, (&n, &e)) in self
            .nodes_per_level
            .iter()
            .zip(&self.entries_per_level)
            .enumerate()
        {
            let cap = if level == 0 {
                self.leaf_cap
            } else {
                self.node_cap
            };
            used += e as f64;
            avail += (n as usize * cap) as f64;
        }
        if avail == 0.0 {
            0.0
        } else {
            used / avail
        }
    }

    /// Leaf-only utilization (what dominates space usage).
    pub fn leaf_utilization(&self) -> f64 {
        let avail = self.nodes_per_level[0] as f64 * self.leaf_cap as f64;
        if avail == 0.0 {
            0.0
        } else {
            self.entries_per_level[0] as f64 / avail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use pr_em::MemDevice;
    use pr_geom::Rect;

    fn leaf_entry(i: u32) -> Entry<2> {
        let f = i as f64;
        Entry::new(Rect::xyxy(f, 0.0, f + 0.5, 1.0), i)
    }

    /// Builds a tiny 2-level tree by hand: two leaves under one root.
    fn two_leaf_tree() -> RTree<2> {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let params = TreeParams::with_cap::<2>(4);
        let l0 = NodePage::new(0, vec![leaf_entry(0), leaf_entry(1)])
            .append(dev.as_ref())
            .unwrap();
        let l1 = NodePage::new(0, vec![leaf_entry(2), leaf_entry(3)])
            .append(dev.as_ref())
            .unwrap();
        let root = NodePage::new(
            1,
            vec![
                Entry::new(Rect::xyxy(0.0, 0.0, 1.5, 1.0), l0 as u32),
                Entry::new(Rect::xyxy(2.0, 0.0, 3.5, 1.0), l1 as u32),
            ],
        )
        .append(dev.as_ref())
        .unwrap();
        RTree::attach(dev, params, root, 1, 4)
    }

    #[test]
    fn attach_and_basic_accessors() {
        let t = two_leaf_tree();
        assert_eq!(t.len(), 4);
        assert_eq!(t.height(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn items_are_all_reachable() {
        let t = two_leaf_tree();
        let mut ids: Vec<u32> = t.items().unwrap().iter().map(|i| i.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, [0, 1, 2, 3]);
    }

    #[test]
    fn cache_policy_controls_device_reads() {
        let t = two_leaf_tree();
        t.warm_cache().unwrap();
        let before = t.device().io_stats();
        let (_, io1) = t.read_node(t.root()).unwrap();
        assert!(!io1, "root cached after warm_cache");
        assert_eq!(t.device().io_stats().since(before).reads, 0);

        t.set_cache_policy(CachePolicy::None);
        let before = t.device().io_stats();
        let (_, io2) = t.read_node(t.root()).unwrap();
        assert!(io2);
        assert_eq!(t.device().io_stats().since(before).reads, 1);
    }

    #[test]
    fn stats_and_utilization() {
        let t = two_leaf_tree();
        let s = t.stats().unwrap();
        assert_eq!(s.nodes_per_level, vec![2, 1]);
        assert_eq!(s.entries_per_level, vec![4, 2]);
        assert_eq!(s.num_leaves(), 2);
        assert_eq!(s.num_nodes(), 3);
        // leaves: 4/8; root: 2/4 → (4+2)/(8+4) = 0.5
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert!((s.leaf_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tree() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(4096));
        let t = RTree::<2>::new_empty(dev, TreeParams::with_cap::<2>(4)).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.items().unwrap().is_empty());
    }

    /// A packed tree on a device whose block size matches its params
    /// (what every loader produces; `from_parts` insists on it).
    fn packed_tree() -> RTree<2> {
        let params = TreeParams::with_cap::<2>(4);
        let dev: Arc<dyn BlockDevice> = Arc::new(pr_em::MemDevice::new(params.page_size));
        let entries: Vec<Entry<2>> = (0..6).map(leaf_entry).collect();
        crate::writer::build_packed(dev, params, &entries).unwrap()
    }

    #[test]
    fn from_parts_reopens_with_identical_queries() {
        let t = packed_tree();
        let meta = t.meta();
        let dev = Arc::clone(t.device());
        drop(t);
        let t2 = RTree::<2>::from_parts(dev, meta).unwrap();
        assert_eq!(t2.len(), 6);
        assert_eq!(t2.height(), 2);
        let hits = t2.window(&Rect::xyxy(0.0, 0.0, 10.0, 1.0)).unwrap();
        assert_eq!(hits.len(), 6);
    }

    #[test]
    fn from_parts_rejects_bad_metadata() {
        let t = packed_tree();
        let dev = Arc::clone(t.device());
        let mut meta = t.meta();
        meta.root = 999;
        assert!(matches!(
            RTree::<2>::from_parts(Arc::clone(&dev), meta),
            Err(EmError::BlockOutOfRange { block: 999, .. })
        ));
        let mut meta = t.meta();
        meta.params.page_size = 8192;
        assert!(matches!(
            RTree::<2>::from_parts(dev, meta),
            Err(EmError::Corrupt(_))
        ));
    }

    #[test]
    fn write_node_updates_cache() {
        let t = two_leaf_tree();
        t.warm_cache().unwrap();
        let (root_node, _) = t.read_node(t.root()).unwrap();
        let mut modified = (*root_node).clone();
        modified.entries.pop();
        t.write_node(t.root(), &modified).unwrap();
        let (back, io) = t.read_node(t.root()).unwrap();
        assert!(!io, "rewritten node re-admitted to cache");
        assert_eq!(back.len(), 1);
    }
}
