//! Multi-threaded PR-tree bulk loading.
//!
//! An extension beyond the paper (which predates multicore ubiquity):
//! the pseudo-PR-tree stage is a divide-and-conquer over disjoint entry
//! sets, so after the first few sequential kd splits the recursion
//! parallelizes embarrassingly. The grouping produced is *identical* to
//! the sequential loader's — both drive the same
//! `PrTreeLoader::node_step` — only the schedule differs; a test pins
//! that down.
//!
//! Page writing stays sequential: allocation on the shared device is a
//! synchronization point anyway, and writing is a small fraction of the
//! stage cost.

use crate::bulk::pr::PrTreeLoader;
use crate::bulk::BulkLoader;
use crate::entry::Entry;
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::write_level;
use pr_em::{BlockDevice, EmError};
use pr_geom::{Axis, Item};
use std::sync::Arc;

/// PR-tree loader that fans the kd recursion out over threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelPrLoader {
    /// Structural knobs, shared with [`PrTreeLoader`].
    pub inner: PrTreeLoader,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl ParallelPrLoader {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// One stage's grouping, computed in parallel.
    fn stage_groups_parallel<const D: usize>(
        &self,
        entries: Vec<Entry<D>>,
        cap: usize,
    ) -> Vec<Vec<Entry<D>>> {
        let threads = self.effective_threads();
        if threads <= 1 || entries.len() < 4 * cap * threads {
            return self.inner.stage_groups(entries, cap);
        }

        // Peel the top of the recursion sequentially until there are
        // enough independent sub-problems to saturate the workers.
        let mut out: Vec<Vec<Entry<D>>> = Vec::new();
        let mut tasks: Vec<(Vec<Entry<D>>, Axis)> = vec![(entries, Axis(0))];
        while tasks.len() < 2 * threads {
            // Expand the largest pending task.
            let Some(idx) = tasks
                .iter()
                .enumerate()
                .max_by_key(|(_, (set, _))| set.len())
                .map(|(i, _)| i)
            else {
                break;
            };
            if tasks[idx].0.len() <= 4 * cap {
                break; // everything left is small; no point splitting more
            }
            let (set, axis) = tasks.swap_remove(idx);
            if let Some(children) = self.inner.node_step(set, axis, cap, &mut out) {
                tasks.extend(children);
            }
            if tasks.is_empty() {
                break;
            }
        }

        // Fan the sub-problems out; each worker runs the sequential
        // grouping on its disjoint set.
        let inner = self.inner;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .into_iter()
                .map(|(set, axis)| scope.spawn(move || inner.stage_groups_from(set, cap, axis)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        for groups in results {
            out.extend(groups);
        }
        out
    }
}

impl<const D: usize> BulkLoader<D> for ParallelPrLoader {
    fn name(&self) -> &'static str {
        "PR(par)"
    }

    fn load(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        items: Vec<Item<D>>,
    ) -> Result<RTree<D>, EmError> {
        if items.is_empty() {
            return RTree::new_empty(dev, params);
        }
        let len = items.len() as u64;
        let mut entries: Vec<Entry<D>> = items.into_iter().map(Entry::from_item).collect();
        let mut level: u8 = 0;
        loop {
            let cap = params.cap_at_level(level);
            if entries.len() == 1 && level > 0 {
                let root = entries[0].ptr as u64;
                return Ok(RTree::attach(dev, params, root, level - 1, len));
            }
            if entries.len() <= cap {
                let root = NodePage::new(level, entries).append(dev.as_ref())?;
                return Ok(RTree::attach(dev, params, root, level, len));
            }
            let groups = self.stage_groups_parallel(entries, cap);
            entries = write_level(dev.as_ref(), level, groups)?;
            level = level.checked_add(1).expect("tree height exceeds 255");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_em::MemDevice;
    use pr_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                Item::new(Rect::xyxy(x, y, x + 0.5, y + 0.5), i)
            })
            .collect()
    }

    fn leaf_groups(t: &RTree<2>) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut stack = vec![t.root()];
        while let Some(p) = stack.pop() {
            let (node, _) = t.read_node(p).unwrap();
            if node.is_leaf() {
                let mut ids: Vec<u32> = node.entries.iter().map(|e| e.ptr).collect();
                ids.sort_unstable();
                out.push(ids);
            } else {
                for e in &node.entries {
                    stack.push(e.ptr as u64);
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn parallel_build_equals_sequential_build() {
        let items = random_items(20_000, 3);
        let params = TreeParams::with_cap::<2>(16);

        let dev_a: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let seq = PrTreeLoader::default()
            .load(Arc::clone(&dev_a), params, items.clone())
            .unwrap();

        for threads in [1usize, 2, 4, 8] {
            let dev_b: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
            let par = ParallelPrLoader {
                inner: PrTreeLoader::default(),
                threads,
            }
            .load(Arc::clone(&dev_b), params, items.clone())
            .unwrap();
            par.validate().unwrap().assert_ok();
            assert_eq!(seq.height(), par.height(), "threads={threads}");
            assert_eq!(
                leaf_groups(&seq),
                leaf_groups(&par),
                "threads={threads}: parallel grouping diverged"
            );
        }
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let items = random_items(100, 4);
        let params = TreeParams::with_cap::<2>(16);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let t = ParallelPrLoader::default()
            .load(dev, params, items)
            .unwrap();
        t.validate().unwrap().assert_ok();
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn queries_correct_after_parallel_build() {
        let items = random_items(8_000, 9);
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let t = ParallelPrLoader {
            inner: PrTreeLoader::default(),
            threads: 4,
        }
        .load(dev, params, items.clone())
        .unwrap();
        let q = Rect::xyxy(20.0, 20.0, 60.0, 40.0);
        let mut got: Vec<u32> = t.window(&q).unwrap().iter().map(|i| i.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = items
            .iter()
            .filter(|i| i.rect.intersects(&q))
            .map(|i| i.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
