//! The PR-tree bulk loader (§2.2, generalized to `D` dimensions in §2.3).
//!
//! A PR-tree is built bottom-up in stages. Stage `i` runs the
//! pseudo-PR-tree grouping over the set `S_i` (stage 0: the input
//! rectangles; stage `i > 0`: the bounding boxes of the level-`i−1` nodes)
//! and keeps only the *leaves* of that pseudo tree — priority leaves and
//! kd leaves alike — as the nodes of level `i`; the pseudo tree's internal
//! kd nodes are discarded. Stages repeat until one node holds everything:
//! that node is the root.
//!
//! The resulting tree is a perfectly ordinary R-tree (degree Θ(B), all
//! leaves on one level) that answers window queries in
//! `O((N/B)^{1−1/d} + T/B)` I/Os (Theorem 1/2).

use crate::bulk::kd_split::{extract_all_priority_leaves, median_split};
use crate::bulk::BulkLoader;
use crate::entry::Entry;
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::write_level;
use pr_em::{BlockDevice, EmError};
use pr_geom::{Axis, Item};
use std::sync::Arc;

/// Configuration of the PR-tree loader.
#[derive(Debug, Clone, Copy)]
pub struct PrTreeLoader {
    /// Size of each priority leaf. `None` means "node capacity" (the
    /// paper's choice: priority leaves hold the `B` most extreme
    /// rectangles). Smaller values are an ablation knob — `Some(1)`
    /// recovers the structure of Agarwal et al.'s earlier index.
    pub priority_size: Option<usize>,
    /// Snap kd splits to multiples of the node capacity so nearly every
    /// node comes out full (the paper's ~100% utilization trick). Disable
    /// to get the exact structural definition of §2.1.
    pub snap_splits: bool,
}

impl Default for PrTreeLoader {
    fn default() -> Self {
        PrTreeLoader {
            priority_size: None,
            snap_splits: true,
        }
    }
}

impl PrTreeLoader {
    /// Effective priority-leaf size for node capacity `cap`.
    pub(crate) fn prio_for(&self, cap: usize) -> usize {
        self.priority_size.unwrap_or(cap).min(cap).max(1)
    }

    /// Grouping for one stage: the multiset of pseudo-PR-tree leaf
    /// contents over `entries` with node capacity `cap`.
    pub(crate) fn stage_groups<const D: usize>(
        &self,
        entries: Vec<Entry<D>>,
        cap: usize,
    ) -> Vec<Vec<Entry<D>>> {
        self.stage_groups_from(entries, cap, Axis(0))
    }

    /// Like [`PrTreeLoader::stage_groups`] but starting the kd round-robin
    /// at `start_axis` — the external construction resumes in-memory at an
    /// arbitrary recursion depth and must keep the axis cycle aligned.
    pub(crate) fn stage_groups_from<const D: usize>(
        &self,
        entries: Vec<Entry<D>>,
        cap: usize,
        start_axis: Axis,
    ) -> Vec<Vec<Entry<D>>> {
        let mut out = Vec::with_capacity(entries.len() / cap.max(1) + 1);
        let mut stack: Vec<(Vec<Entry<D>>, Axis)> = vec![(entries, start_axis)];
        while let Some((set, axis)) = stack.pop() {
            if let Some(children) = self.node_step(set, axis, cap, &mut out) {
                stack.extend(children);
            }
        }
        out
    }

    /// One pseudo-PR-tree node's worth of work (§2.1): small sets become
    /// leaves (pushed to `out`); larger sets shed their `2D` priority
    /// leaves into `out` and return the two median-split halves with the
    /// advanced round-robin axis. Shared by the sequential and parallel
    /// drivers so they produce identical groupings.
    pub(crate) fn node_step<const D: usize>(
        &self,
        mut set: Vec<Entry<D>>,
        axis: Axis,
        cap: usize,
        out: &mut Vec<Vec<Entry<D>>>,
    ) -> Option<[(Vec<Entry<D>>, Axis); 2]> {
        let prio = self.prio_for(cap);
        let snap = self.snap_splits.then_some(cap);
        if set.len() <= cap {
            if !set.is_empty() {
                out.push(set);
            }
            return None;
        }
        // §2.1: extract the 2D priority leaves first…
        out.extend(extract_all_priority_leaves(&mut set, prio));
        // …then split the remainder at the median of the round-robin
        // axis and recurse on both halves.
        if set.is_empty() {
            return None;
        }
        if set.len() <= cap {
            out.push(set);
            return None;
        }
        let (left, right) = median_split(set, axis, snap);
        let next = axis.next::<D>();
        Some([(left, next), (right, next)])
    }

    /// Runs all stages over `entries`, returning the finished tree.
    pub(crate) fn build_stages<const D: usize>(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        mut entries: Vec<Entry<D>>,
        len: u64,
    ) -> Result<RTree<D>, EmError> {
        if entries.is_empty() {
            return RTree::new_empty(dev, params);
        }
        let mut level: u8 = 0;
        loop {
            let cap = params.cap_at_level(level);
            if entries.len() == 1 && level > 0 {
                // A single child: it is the root itself.
                let root = entries[0].ptr as u64;
                return Ok(RTree::attach(dev, params, root, level - 1, len));
            }
            if entries.len() <= cap {
                let root = NodePage::new(level, entries).append(dev.as_ref())?;
                return Ok(RTree::attach(dev, params, root, level, len));
            }
            let groups = self.stage_groups(entries, cap);
            entries = write_level(dev.as_ref(), level, groups)?;
            level = level.checked_add(1).expect("tree height exceeds 255");
        }
    }
}

impl<const D: usize> BulkLoader<D> for PrTreeLoader {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn load(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        items: Vec<Item<D>>,
    ) -> Result<RTree<D>, EmError> {
        let len = items.len() as u64;
        let entries: Vec<Entry<D>> = items.into_iter().map(Entry::from_item).collect();
        self.build_stages(dev, params, entries, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::brute_force_window;
    use pr_em::MemDevice;
    use pr_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                let w: f64 = rng.gen_range(0.0..2.0);
                let h: f64 = rng.gen_range(0.0..2.0);
                Item::new(Rect::xyxy(x, y, x + w, y + h), i)
            })
            .collect()
    }

    fn build(items: Vec<Item<2>>, cap: usize) -> RTree<2> {
        let dev: Arc<dyn BlockDevice> =
            Arc::new(MemDevice::new(TreeParams::with_cap::<2>(cap).page_size));
        PrTreeLoader::default()
            .load(dev, TreeParams::with_cap::<2>(cap), items)
            .unwrap()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let t = build(vec![], 8);
        assert!(t.is_empty());
        let t = build(random_items(5, 1), 8);
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 5);
        t.validate().unwrap().assert_ok();
    }

    #[test]
    fn structure_is_valid_across_sizes() {
        for n in [1u32, 7, 8, 9, 63, 64, 65, 500, 2000] {
            let t = build(random_items(n, n as u64), 8);
            let report = t.validate().unwrap();
            report.assert_ok();
            assert_eq!(t.len(), n as u64);
        }
    }

    #[test]
    fn queries_match_brute_force() {
        let items = random_items(3000, 42);
        let t = build(items.clone(), 16);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let x: f64 = rng.gen_range(0.0..90.0);
            let y: f64 = rng.gen_range(0.0..90.0);
            let q = Rect::xyxy(
                x,
                y,
                x + rng.gen_range(0.1..10.0),
                y + rng.gen_range(0.1..10.0),
            );
            let mut got = t.window(&q).unwrap();
            let mut want = brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn utilization_is_high_with_snapping() {
        let t = build(random_items(5000, 3), 10);
        let s = t.stats().unwrap();
        assert!(
            s.leaf_utilization() > 0.95,
            "leaf utilization {:.3} below the paper's ~100%",
            s.leaf_utilization()
        );
    }

    #[test]
    fn exact_definition_without_snapping_still_valid() {
        let loader = PrTreeLoader {
            priority_size: None,
            snap_splits: false,
        };
        let dev: Arc<dyn BlockDevice> =
            Arc::new(MemDevice::new(TreeParams::with_cap::<2>(8).page_size));
        let t = loader
            .load(dev, TreeParams::with_cap::<2>(8), random_items(1000, 9))
            .unwrap();
        t.validate().unwrap().assert_ok();
        // Exact halving fills leaves to ≥ 50% on average.
        let s = t.stats().unwrap();
        assert!(s.leaf_utilization() > 0.5);
    }

    #[test]
    fn priority_size_ablation_builds_valid_trees() {
        for prio in [1usize, 2, 4] {
            let loader = PrTreeLoader {
                priority_size: Some(prio),
                snap_splits: true,
            };
            let dev: Arc<dyn BlockDevice> =
                Arc::new(MemDevice::new(TreeParams::with_cap::<2>(8).page_size));
            let t = loader
                .load(dev, TreeParams::with_cap::<2>(8), random_items(500, 11))
                .unwrap();
            t.validate().unwrap().assert_ok();
            assert_eq!(t.len(), 500);
        }
    }

    #[test]
    fn three_dimensional_build() {
        let mut rng = SmallRng::seed_from_u64(5);
        let items: Vec<Item<3>> = (0..600)
            .map(|i| {
                let p = [
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                ];
                Item::new(
                    pr_geom::Rect::new(p, [p[0] + 0.1, p[1] + 0.2, p[2] + 0.3]),
                    i,
                )
            })
            .collect();
        let dev: Arc<dyn BlockDevice> =
            Arc::new(MemDevice::new(TreeParams::with_cap::<3>(8).page_size));
        let t = PrTreeLoader::default()
            .load(dev, TreeParams::with_cap::<3>(8), items.clone())
            .unwrap();
        t.validate().unwrap().assert_ok();
        let q = pr_geom::Rect::new([2.0, 2.0, 2.0], [5.0, 5.0, 5.0]);
        let mut got = t.window(&q).unwrap();
        let mut want = brute_force_window(&items, &q);
        got.sort_by_key(|i| i.id);
        want.sort_by_key(|i| i.id);
        assert_eq!(got, want);
    }
}
