//! Bulk-loading algorithms.
//!
//! Five ways to build the same page-level [`crate::tree::RTree`]:
//!
//! | module | paper name | strategy |
//! |--------|-----------|----------|
//! | [`pr`] | PR-tree (the contribution) | bottom-up stages of pseudo-PR-trees |
//! | [`hilbert`] (centers) | packed Hilbert R-tree, "H" | sort by D-dim Hilbert value of centers, pack |
//! | [`hilbert`] (corners) | 4-D Hilbert R-tree, "H4" | sort by 2D-dim Hilbert value of corner mapping, pack |
//! | [`tgs`] | Top-down Greedy Split, "TGS" | recursive greedy binary partitions |
//! | [`str_`] | STR (extra baseline, reference 18 in the paper) | sort-tile-recursive |
//!
//! Each loader has an **in-memory** form (this module's [`BulkLoader`]
//! trait, fast, used for query experiments) and an **external-memory**
//! form in [`external`] that runs against `pr-em` streams under a memory
//! budget and whose I/O counts reproduce the paper's construction-cost
//! figures.

pub mod external;
pub mod hilbert;
pub mod kd_split;
pub mod pr;
pub mod pr_external;
pub mod pr_parallel;
pub mod str_;
pub mod tgs;
pub mod tgs_external;

use crate::params::TreeParams;
use crate::tree::RTree;
use pr_em::{BlockDevice, EmError};
use pr_geom::Item;
use std::sync::Arc;

/// A bulk-loading strategy producing a page-level R-tree.
pub trait BulkLoader<const D: usize> {
    /// Short name used in experiment tables ("PR", "H", "H4", "TGS", "STR").
    fn name(&self) -> &'static str;

    /// Builds a tree over `items` on `dev`.
    fn load(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        items: Vec<Item<D>>,
    ) -> Result<RTree<D>, EmError>;
}

/// The four R-tree variants compared throughout the paper, plus STR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoaderKind {
    /// Priority R-tree (§2).
    Pr,
    /// Packed Hilbert R-tree on centers (Kamel–Faloutsos).
    Hilbert,
    /// Four-dimensional Hilbert R-tree on the corner mapping.
    Hilbert4,
    /// Top-down Greedy Split (García–López–Leutenegger).
    Tgs,
    /// Sort-Tile-Recursive (Leutenegger–López–Edgington).
    Str,
}

impl LoaderKind {
    /// All variants in the paper's presentation order (PR first, then the
    /// competitors, then the extra STR baseline).
    pub fn all() -> [LoaderKind; 5] {
        [
            LoaderKind::Pr,
            LoaderKind::Hilbert,
            LoaderKind::Hilbert4,
            LoaderKind::Tgs,
            LoaderKind::Str,
        ]
    }

    /// The four variants measured in the paper's figures.
    pub fn paper_four() -> [LoaderKind; 4] {
        [
            LoaderKind::Pr,
            LoaderKind::Hilbert,
            LoaderKind::Hilbert4,
            LoaderKind::Tgs,
        ]
    }

    /// Display name matching the paper's abbreviations.
    pub fn name(&self) -> &'static str {
        match self {
            LoaderKind::Pr => "PR",
            LoaderKind::Hilbert => "H",
            LoaderKind::Hilbert4 => "H4",
            LoaderKind::Tgs => "TGS",
            LoaderKind::Str => "STR",
        }
    }

    /// Instantiates the default in-memory loader for this kind.
    pub fn loader<const D: usize>(&self) -> Box<dyn BulkLoader<D>> {
        match self {
            LoaderKind::Pr => Box::new(pr::PrTreeLoader::default()),
            LoaderKind::Hilbert => Box::new(hilbert::HilbertLoader::centers()),
            LoaderKind::Hilbert4 => Box::new(hilbert::HilbertLoader::corners()),
            LoaderKind::Tgs => Box::new(tgs::TgsLoader),
            LoaderKind::Str => Box::new(str_::StrLoader),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_abbreviations() {
        let names: Vec<_> = LoaderKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, ["PR", "H", "H4", "TGS", "STR"]);
        assert_eq!(LoaderKind::paper_four().len(), 4);
    }
}
