//! External-memory bulk loading: shared plumbing + the Hilbert loaders.
//!
//! These are the algorithms whose I/O counts reproduce the paper's
//! construction-cost experiments (Figures 9–11). Input is a
//! [`Stream`] of [`Entry`] records on a shared device; every pass the
//! algorithms make — sorts, key-tagging scans, distribution passes,
//! page writes — goes through the `pr-em` substrate and is counted.
//!
//! The Hilbert loaders here are the cheap end of the spectrum: one
//! key-tagging scan, one external sort, then a single packing scan per
//! level (the paper: "H is simple to bulk-load").

use crate::bulk::hilbert::HilbertLoader;
use crate::entry::{Entry, KeyedEntry};
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::page_ptr;
use pr_em::{
    external_sort_by, BlockDevice, EmError, SortConfig, Stream, StreamReader, StreamWriter,
};
use pr_geom::Rect;
use std::sync::Arc;

/// Memory budget for external construction (the model's `M`).
#[derive(Debug, Clone, Copy)]
pub struct ExternalConfig {
    /// Main-memory budget in bytes.
    pub memory_bytes: usize,
}

impl ExternalConfig {
    /// Budget of `memory_bytes`.
    pub fn with_memory(memory_bytes: usize) -> Self {
        ExternalConfig { memory_bytes }
    }

    /// The paper's TPIE budget: 64MB.
    pub fn paper() -> Self {
        ExternalConfig {
            memory_bytes: 64 << 20,
        }
    }

    /// How many records of size `sz` fit in memory.
    pub fn records_fit(&self, sz: usize) -> usize {
        (self.memory_bytes / sz).max(1)
    }

    /// Sort configuration with this budget.
    pub fn sort(&self) -> SortConfig {
        SortConfig::with_memory(self.memory_bytes)
    }
}

/// One sequential pass: the bounding box of every rectangle in `input`.
pub fn scan_domain<const D: usize>(
    dev: &dyn BlockDevice,
    input: &Stream,
) -> Result<Rect<D>, EmError> {
    let mut reader = StreamReader::<Entry<D>>::new(dev, input);
    let mut domain = Rect::EMPTY;
    while let Some(e) = reader.next_record()? {
        domain = domain.mbr_with(&e.rect);
    }
    Ok(domain)
}

/// Chunks an entry stream into nodes of `cap` at `level`, writing pages
/// and returning the parent-entry stream (plus its length).
pub fn pack_level_stream<const D: usize>(
    dev: &dyn BlockDevice,
    level: u8,
    input: &Stream,
    cap: usize,
) -> Result<Stream, EmError> {
    let mut reader = StreamReader::<Entry<D>>::new(dev, input);
    let mut parents = StreamWriter::<Entry<D>>::new(dev);
    let mut group: Vec<Entry<D>> = Vec::with_capacity(cap);
    loop {
        let rec = reader.next_record()?;
        if let Some(e) = rec {
            group.push(e);
        }
        if group.len() == cap || (rec.is_none() && !group.is_empty()) {
            let mbr = Entry::mbr(&group);
            let page = NodePage::new(level, std::mem::take(&mut group)).append(dev)?;
            parents.push(&Entry::new(mbr, page_ptr(page)?))?;
        }
        if rec.is_none() {
            break;
        }
    }
    parents.finish()
}

/// Reads a small entry stream (≤ node capacity) and writes it as the root
/// node, finishing the tree.
pub fn finish_root<const D: usize>(
    dev: Arc<dyn BlockDevice>,
    params: TreeParams,
    entries_stream: &Stream,
    level: u8,
    len: u64,
) -> Result<RTree<D>, EmError> {
    let entries = entries_stream.read_all::<Entry<D>>(dev.as_ref())?;
    debug_assert!(entries.len() <= params.cap_at_level(level));
    if entries.len() == 1 && level > 0 {
        // A single child is itself the root.
        let root = entries[0].ptr as u64;
        return Ok(RTree::attach(dev, params, root, level - 1, len));
    }
    let root = NodePage::new(level, entries).append(dev.as_ref())?;
    Ok(RTree::attach(dev, params, root, level, len))
}

/// Builds upper levels by repeated external packing scans and finishes
/// the tree. `parents` point at already-written nodes of `child_level`.
pub fn pack_upper_levels_stream<const D: usize>(
    dev: Arc<dyn BlockDevice>,
    params: TreeParams,
    mut parents: Stream,
    child_level: u8,
    len: u64,
) -> Result<RTree<D>, EmError> {
    let mut level = child_level + 1;
    while parents.len() > params.node_cap as u64 {
        let next = pack_level_stream::<D>(dev.as_ref(), level, &parents, params.node_cap)?;
        parents.discard(dev.as_ref());
        parents = next;
        level += 1;
    }
    let tree = finish_root(Arc::clone(&dev), params, &parents, level, len)?;
    parents.discard(dev.as_ref());
    Ok(tree)
}

/// External packed Hilbert bulk loading ("H" with `corners = false`,
/// "H4" with `corners = true`).
///
/// Passes: domain scan → key-tagging scan → external sort of keyed
/// records → leaf packing scan → one packing scan per upper level.
pub fn load_hilbert_external<const D: usize>(
    dev: Arc<dyn BlockDevice>,
    params: TreeParams,
    input: &Stream,
    config: ExternalConfig,
    corners: bool,
) -> Result<RTree<D>, EmError> {
    if input.is_empty() {
        return RTree::new_empty(dev, params);
    }
    let len = input.len();
    let loader = if corners {
        HilbertLoader::corners()
    } else {
        HilbertLoader::centers()
    };
    let domain = scan_domain::<D>(dev.as_ref(), input)?;
    let mapper = loader.mapper::<D>(&domain);

    // Tag every entry with its Hilbert key (1 read + 1 write pass).
    let keyed = {
        let mut reader = StreamReader::<Entry<D>>::new(dev.as_ref(), input);
        let mut writer = StreamWriter::<KeyedEntry<D>>::new(dev.as_ref());
        while let Some(e) = reader.next_record()? {
            writer.push(&KeyedEntry {
                key: loader.key_of::<D>(&mapper, &e.rect),
                entry: e,
            })?;
        }
        writer.finish()?
    };

    // Sort by (key, id) — the I/O-dominant step.
    let sorted =
        external_sort_by::<KeyedEntry<D>, _>(dev.as_ref(), &keyed, config.sort(), |a, b| {
            a.key
                .cmp(&b.key)
                .then_with(|| a.entry.ptr.cmp(&b.entry.ptr))
        })?;
    keyed.discard(dev.as_ref());

    // Strip keys while packing leaves.
    let parents = {
        let mut reader = StreamReader::<KeyedEntry<D>>::new(dev.as_ref(), &sorted);
        let mut parent_writer = StreamWriter::<Entry<D>>::new(dev.as_ref());
        let mut group: Vec<Entry<D>> = Vec::with_capacity(params.leaf_cap);
        loop {
            let rec = reader.next_record()?;
            if let Some(k) = rec {
                group.push(k.entry);
            }
            if group.len() == params.leaf_cap || (rec.is_none() && !group.is_empty()) {
                let mbr = Entry::mbr(&group);
                let page = NodePage::new(0, std::mem::take(&mut group)).append(dev.as_ref())?;
                parent_writer.push(&Entry::new(mbr, page_ptr(page)?))?;
            }
            if rec.is_none() {
                break;
            }
        }
        parent_writer.finish()?
    };
    sorted.discard(dev.as_ref());

    pack_upper_levels_stream(dev, params, parents, 0, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkLoader;
    use pr_em::MemDevice;
    use pr_geom::Item;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
            })
            .collect()
    }

    fn item_stream(dev: &dyn BlockDevice, items: &[Item<2>]) -> Stream {
        Stream::from_iter(dev, items.iter().map(|&i| Entry::from_item(i))).unwrap()
    }

    #[test]
    fn domain_scan_matches_in_memory_mbr() {
        let items = random_items(500, 1);
        let dev = MemDevice::new(512);
        let s = item_stream(&dev, &items);
        let domain = scan_domain::<2>(&dev, &s).unwrap();
        let want = Rect::mbr_of(items.iter().map(|i| &i.rect));
        assert_eq!(domain, want);
    }

    #[test]
    fn external_hilbert_equals_in_memory_hilbert() {
        // Same items, same parameters: the external path must produce a
        // tree with identical leaf contents (same order, same packing).
        let items = random_items(2000, 7);
        let params = TreeParams::with_cap::<2>(16);

        let dev_mem: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let t_mem = HilbertLoader::centers()
            .load(Arc::clone(&dev_mem), params, items.clone())
            .unwrap();

        let dev_ext: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = item_stream(dev_ext.as_ref(), &items);
        let t_ext = load_hilbert_external::<2>(
            Arc::clone(&dev_ext),
            params,
            &input,
            ExternalConfig::with_memory(8 * params.page_size),
            false,
        )
        .unwrap();

        t_ext.validate().unwrap().assert_ok();
        assert_eq!(t_mem.height(), t_ext.height());
        // Leaf sequences must match exactly.
        let leaves = |t: &RTree<2>| -> Vec<Vec<u32>> {
            let mut out = Vec::new();
            let mut stack = vec![(t.root(), t.root_level())];
            while let Some((p, l)) = stack.pop() {
                let (node, _) = t.read_node(p).unwrap();
                if node.is_leaf() {
                    out.push(node.entries.iter().map(|e| e.ptr).collect());
                } else {
                    for e in &node.entries {
                        stack.push((e.ptr as u64, l - 1));
                    }
                }
            }
            out.sort();
            out
        };
        assert_eq!(leaves(&t_mem), leaves(&t_ext));
    }

    #[test]
    fn external_h4_builds_valid_tree() {
        let items = random_items(1500, 3);
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = item_stream(dev.as_ref(), &items);
        let t = load_hilbert_external::<2>(
            Arc::clone(&dev),
            params,
            &input,
            ExternalConfig::with_memory(8 * params.page_size),
            true,
        )
        .unwrap();
        t.validate().unwrap().assert_ok();
        assert_eq!(t.len(), 1500);
    }

    #[test]
    fn empty_input() {
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = Stream::from_iter::<Entry<2>>(dev.as_ref(), []).unwrap();
        let t = load_hilbert_external::<2>(
            Arc::clone(&dev),
            params,
            &input,
            ExternalConfig::with_memory(8 * params.page_size),
            false,
        )
        .unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn io_cost_is_linear_in_passes() {
        // The whole build should cost a small constant number of passes
        // over the data — not O(N) random I/Os.
        let items = random_items(4000, 9);
        let params = TreeParams::with_cap::<2>(16);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = item_stream(dev.as_ref(), &items);
        let input_blocks = input.num_blocks() as u64;
        let before = dev.io_stats();
        let _t = load_hilbert_external::<2>(
            Arc::clone(&dev),
            params,
            &input,
            ExternalConfig::with_memory(64 * params.page_size),
            false,
        )
        .unwrap();
        let cost = dev.io_stats().since(before);
        // Generous bound: ≤ 16 passes (domain, tag, sort ≤ 3 passes of a
        // ~1.5× larger keyed file, pack, upper levels).
        assert!(
            cost.total() < 16 * input_blocks + 50,
            "build cost {} I/Os for {input_blocks}-block input",
            cost.total()
        );
    }
}
