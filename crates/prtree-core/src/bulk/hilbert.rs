//! Packed Hilbert R-tree (H) and four-dimensional Hilbert R-tree (H4).
//!
//! Both loaders are one-dimensional sorts followed by bottom-up packing
//! (Kamel–Faloutsos, reference 15 in the paper):
//!
//! * **H** sorts by the Hilbert value of rectangle *centers* — a
//!   `D`-dimensional curve. Simple and fast, but blind to rectangle
//!   extent, which is exactly what the paper's SIZE/ASPECT experiments
//!   punish.
//! * **H4** maps each rectangle to the `2D`-dimensional point
//!   `(lo₁,…,lo_D,hi₁,…,hi_D)` and sorts on a `2D`-dimensional curve, so
//!   extent participates in clustering. The paper finds it slightly worse
//!   than H on nice data but far more robust on extreme data.

use crate::bulk::BulkLoader;
use crate::entry::Entry;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::build_packed;
use pr_em::{BlockDevice, EmError};
use pr_geom::{Item, Rect};
use pr_hilbert::HilbertMapper;
use std::sync::Arc;

/// Sort-by-Hilbert-value bulk loader.
#[derive(Debug, Clone, Copy)]
pub struct HilbertLoader {
    /// `false`: H (curve over centers). `true`: H4 (curve over the corner
    /// mapping).
    pub use_corners: bool,
}

impl HilbertLoader {
    /// The packed Hilbert R-tree ("H").
    pub fn centers() -> Self {
        HilbertLoader { use_corners: false }
    }

    /// The four-dimensional Hilbert R-tree ("H4").
    pub fn corners() -> Self {
        HilbertLoader { use_corners: true }
    }

    /// Curve dimensionality for data dimension `D`.
    pub fn curve_dims<const D: usize>(&self) -> usize {
        if self.use_corners {
            2 * D
        } else {
            D
        }
    }

    /// Bits per curve dimension: as fine as fits in the 128-bit index.
    pub fn curve_order<const D: usize>(&self) -> u32 {
        (128 / self.curve_dims::<D>() as u32).min(32)
    }

    /// Builds the quantizer for a dataset bounding box. Uses one uniform
    /// scale across dimensions (the classic Kamel–Faloutsos quantization:
    /// the grid is a square over the data, not a per-dimension stretch) —
    /// geometry must not be distorted or the curve's locality is lost on
    /// anisotropic domains, and the paper's Theorem-3 behaviour of H/H4
    /// depends on it.
    pub(crate) fn mapper<const D: usize>(&self, domain: &Rect<D>) -> HilbertMapper {
        let dims = self.curve_dims::<D>();
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for k in 0..dims {
            let d = k % D;
            lo.push(domain.lo_at(d));
            hi.push(domain.hi_at(d));
        }
        HilbertMapper::new_uniform(&lo, &hi, self.curve_order::<D>())
    }

    /// The sort key of one rectangle.
    pub(crate) fn key_of<const D: usize>(&self, mapper: &HilbertMapper, rect: &Rect<D>) -> u128 {
        let mut coords = Vec::with_capacity(self.curve_dims::<D>());
        if self.use_corners {
            for d in 0..D {
                coords.push(rect.lo_at(d));
            }
            for d in 0..D {
                coords.push(rect.hi_at(d));
            }
        } else {
            let c = rect.center();
            coords.extend_from_slice(c.coords());
        }
        mapper.index_of(&coords)
    }
}

impl<const D: usize> BulkLoader<D> for HilbertLoader {
    fn name(&self) -> &'static str {
        if self.use_corners {
            "H4"
        } else {
            "H"
        }
    }

    fn load(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        items: Vec<Item<D>>,
    ) -> Result<RTree<D>, EmError> {
        if items.is_empty() {
            return RTree::new_empty(dev, params);
        }
        let domain = Rect::mbr_of(items.iter().map(|i| &i.rect));
        let mapper = self.mapper(&domain);
        let mut keyed: Vec<(u128, Entry<D>)> = items
            .into_iter()
            .map(|i| (self.key_of(&mapper, &i.rect), Entry::from_item(i)))
            .collect();
        // Ties (identical curve cells) break by id for determinism.
        keyed.sort_unstable_by_key(|(k, e)| (*k, e.ptr));
        let leaf_entries: Vec<Entry<D>> = keyed.into_iter().map(|(_, e)| e).collect();
        build_packed(dev, params, &leaf_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::brute_force_window;
    use pr_em::MemDevice;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
            })
            .collect()
    }

    fn build(loader: HilbertLoader, items: Vec<Item<2>>, cap: usize) -> RTree<2> {
        let params = TreeParams::with_cap::<2>(cap);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        loader.load(dev, params, items).unwrap()
    }

    #[test]
    fn curve_configuration() {
        let h = HilbertLoader::centers();
        let h4 = HilbertLoader::corners();
        assert_eq!(h.curve_dims::<2>(), 2);
        assert_eq!(h4.curve_dims::<2>(), 4);
        assert_eq!(h.curve_order::<2>(), 32);
        assert_eq!(h4.curve_order::<2>(), 32);
        assert_eq!(h4.curve_dims::<3>(), 6);
        assert_eq!(h4.curve_order::<3>(), 21);
        assert_eq!(<HilbertLoader as BulkLoader<2>>::name(&h), "H");
        assert_eq!(<HilbertLoader as BulkLoader<2>>::name(&h4), "H4");
    }

    #[test]
    fn both_variants_build_valid_trees() {
        for loader in [HilbertLoader::centers(), HilbertLoader::corners()] {
            for n in [1u32, 9, 100, 1234] {
                let t = build(loader, random_items(n, n as u64), 8);
                t.validate().unwrap().assert_ok();
                assert_eq!(t.len(), n as u64);
            }
        }
    }

    #[test]
    fn packing_is_nearly_full() {
        for loader in [HilbertLoader::centers(), HilbertLoader::corners()] {
            let t = build(loader, random_items(4000, 2), 10);
            let s = t.stats().unwrap();
            assert!(s.leaf_utilization() > 0.99, "packed leaves are full");
        }
    }

    #[test]
    fn queries_match_brute_force() {
        let items = random_items(2500, 77);
        for loader in [HilbertLoader::centers(), HilbertLoader::corners()] {
            let t = build(loader, items.clone(), 16);
            let mut rng = SmallRng::seed_from_u64(8);
            for _ in 0..40 {
                let x: f64 = rng.gen_range(0.0..95.0);
                let y: f64 = rng.gen_range(0.0..95.0);
                let q = Rect::xyxy(x, y, x + 5.0, y + 5.0);
                let mut got = t.window(&q).unwrap();
                let mut want = brute_force_window(&items, &q);
                got.sort_by_key(|i| i.id);
                want.sort_by_key(|i| i.id);
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn hilbert_clusters_neighbors() {
        // Items on a line, shuffled: after a Hilbert build, each leaf's
        // items should be spatially close (x-extent of a leaf's MBR far
        // below the full span).
        let mut items = random_items(1000, 5);
        use rand::seq::SliceRandom;
        items.shuffle(&mut SmallRng::seed_from_u64(1));
        let t = build(HilbertLoader::centers(), items, 10);
        let s = t.stats().unwrap();
        assert_eq!(s.nodes_per_level[0], 100);
        // Average leaf MBR area must be tiny compared to the 100×100 domain.
        let mut total_area = 0.0;
        let mut leaves = 0.0;
        let mut stack = vec![t.root()];
        while let Some(p) = stack.pop() {
            let (node, _) = t.read_node(p).unwrap();
            if node.is_leaf() {
                total_area += node.mbr().area();
                leaves += 1.0;
            } else {
                for e in &node.entries {
                    stack.push(e.ptr as u64);
                }
            }
        }
        assert!(total_area / leaves < 0.05 * 100.0 * 100.0);
    }
}
