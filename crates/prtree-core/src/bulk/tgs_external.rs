//! External-memory Top-down Greedy Split.
//!
//! Follows the implementation the paper measured (TPIE, reference 12): the input
//! is sorted once into `2D` coordinate-ordered lists, and every greedy
//! binary partition then costs a scan of the current subset — one pass
//! per ordering to sweep candidate cuts, plus one distribution pass. The
//! number of binary-partition levels is `log₂(N/B)`, which is why the
//! paper observes `O(N/B · log₂ N)` behaviour and why TGS is by far the
//! most expensive loader in Figure 9 (≈4.5× the PR-tree's I/O).
//!
//! `memory_cutoff` (off by default, matching the measured implementation)
//! switches a subset to the in-memory algorithm once it fits in `M`; it
//! exists as an ablation to show how much of TGS's cost is recoverable.

use crate::bulk::external::ExternalConfig;
use crate::bulk::tgs;
use crate::entry::Entry;
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::page_ptr;
use pr_em::{external_sort_by, BlockDevice, EmError, Record, Stream, StreamReader, StreamWriter};
use pr_geom::mapped::cmp_items_on_axis;
use pr_geom::{Axis, Item, Rect};
use std::sync::Arc;

/// A subset mid-partition: its `2D` sorted lists and its size.
type Side = (Vec<Stream>, u64);

/// External TGS loader.
#[derive(Debug, Clone, Copy)]
pub struct TgsExternalLoader {
    /// Memory budget (`M`) — used by the initial sorts, and by the
    /// in-memory cutoff when enabled.
    pub config: ExternalConfig,
    /// Switch to the in-memory algorithm for subsets that fit in `M`.
    /// Disabled by default: the paper's measured implementation scans at
    /// every binary level.
    pub memory_cutoff: bool,
}

impl TgsExternalLoader {
    /// Loader with the given budget and the paper's scan-everything
    /// behaviour.
    pub fn new(config: ExternalConfig) -> Self {
        TgsExternalLoader {
            config,
            memory_cutoff: false,
        }
    }

    /// Bulk-loads a TGS R-tree from an entry stream.
    pub fn load<const D: usize>(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        input: &Stream,
    ) -> Result<RTree<D>, EmError> {
        if input.is_empty() {
            return RTree::new_empty(dev, params);
        }
        let len = input.len();

        // Height such that leaf_cap · node_cap^(root_level−…) covers n.
        let mut root_level: u8 = 0;
        while subtree_capacity(&params, root_level) < len as usize {
            root_level += 1;
        }

        // One sorted list per ordering, ascending by (coordinate, id).
        let mut lists = Vec::with_capacity(2 * D);
        for axis in Axis::all::<D>() {
            lists.push(external_sort_by::<Entry<D>, _>(
                dev.as_ref(),
                input,
                self.config.sort(),
                move |a, b| cmp_items_on_axis(axis, &as_item(a), &as_item(b)),
            )?);
        }

        let root_entry = self.build::<D>(dev.as_ref(), &params, lists, len, root_level)?;
        Ok(RTree::attach(
            dev,
            params,
            root_entry.ptr as u64,
            root_level,
            len,
        ))
    }

    /// Builds the subtree rooted at `level` over the sorted lists.
    fn build<const D: usize>(
        &self,
        dev: &dyn BlockDevice,
        params: &TreeParams,
        lists: Vec<Stream>,
        count: u64,
        level: u8,
    ) -> Result<Entry<D>, EmError> {
        if self.memory_cutoff && count <= self.config.records_fit(Entry::<D>::SIZE) as u64 {
            let entries = lists[0].read_all::<Entry<D>>(dev)?;
            discard_all(dev, lists);
            return tgs::build_node(dev, params, entries, level);
        }
        if level == 0 {
            debug_assert!(count <= params.leaf_cap as u64);
            let entries = lists[0].read_all::<Entry<D>>(dev)?;
            discard_all(dev, lists);
            let mbr = Entry::mbr(&entries);
            let page = NodePage::new(0, entries).append(dev)?;
            return Ok(Entry::new(mbr, page_ptr(page)?));
        }

        let unit = subtree_capacity(params, level - 1) as u64;
        // Greedy binary partition until every group fits one child slot.
        let mut groups: Vec<(Vec<Stream>, u64)> = Vec::new();
        let mut queue: Vec<(Vec<Stream>, u64)> = vec![(lists, count)];
        while let Some((lists, n)) = queue.pop() {
            if n <= unit {
                groups.push((lists, n));
                continue;
            }
            let (left, right) = self.binary_split::<D>(dev, lists, n, unit)?;
            queue.push(right);
            queue.push(left);
        }
        debug_assert!(groups.len() <= params.node_cap);

        let mut children = Vec::with_capacity(groups.len());
        for (glists, gn) in groups {
            children.push(self.build::<D>(dev, params, glists, gn, level - 1)?);
        }
        let mbr = Entry::mbr(&children);
        let page = NodePage::new(level, children).append(dev)?;
        Ok(Entry::new(mbr, page_ptr(page)?))
    }

    /// One greedy binary partition: sweeps all orderings for the cheapest
    /// unit-aligned cut (sum of the two bounding-box areas), then
    /// distributes every list.
    fn binary_split<const D: usize>(
        &self,
        dev: &dyn BlockDevice,
        lists: Vec<Stream>,
        n: u64,
        unit: u64,
    ) -> Result<(Side, Side), EmError> {
        let m = n.div_ceil(unit);
        debug_assert!(m >= 2);

        // Scan each ordering once: segment MBRs + the boundary entries
        // that would become split thresholds.
        let mut best: Option<(usize, u64, f64, Entry<D>)> = None; // (axis, left_len, cost, threshold)
        for (axis_idx, list) in lists.iter().enumerate() {
            let mut seg_mbrs: Vec<Rect<D>> = Vec::with_capacity(m as usize);
            let mut boundaries: Vec<Entry<D>> = Vec::with_capacity(m as usize - 1);
            let mut reader = StreamReader::<Entry<D>>::new(dev, list);
            let mut acc = Rect::EMPTY;
            let mut idx = 0u64;
            while let Some(e) = reader.next_record()? {
                acc = acc.mbr_with(&e.rect);
                idx += 1;
                if idx.is_multiple_of(unit) || idx == n {
                    seg_mbrs.push(acc);
                    acc = Rect::EMPTY;
                    if idx < n {
                        boundaries.push(e);
                    }
                }
            }
            debug_assert_eq!(seg_mbrs.len(), m as usize);
            // Prefix/suffix folds over the segments.
            let mut prefix = Vec::with_capacity(m as usize);
            let mut fold = Rect::EMPTY;
            for s in &seg_mbrs {
                fold = fold.mbr_with(s);
                prefix.push(fold);
            }
            let mut suffix = vec![Rect::EMPTY; m as usize];
            let mut fold = Rect::EMPTY;
            for (i, s) in seg_mbrs.iter().enumerate().rev() {
                fold = fold.mbr_with(s);
                suffix[i] = fold;
            }
            for k in 1..m {
                let cost = prefix[k as usize - 1].area() + suffix[k as usize].area();
                if best.as_ref().is_none_or(|b| cost < b.2) {
                    best = Some((
                        axis_idx,
                        (k * unit).min(n),
                        cost,
                        boundaries[k as usize - 1],
                    ));
                }
            }
        }
        let (axis_idx, left_len, _, threshold) = best.expect("m >= 2 yields a cut");
        let axis = Axis(axis_idx);

        // Distribution pass: ≤ threshold goes left (the threshold is the
        // last entry of the left side in the chosen ordering).
        let mut left_lists = Vec::with_capacity(lists.len());
        let mut right_lists = Vec::with_capacity(lists.len());
        for list in &lists {
            let mut reader = StreamReader::<Entry<D>>::new(dev, list);
            let mut lw = StreamWriter::<Entry<D>>::new(dev);
            let mut rw = StreamWriter::<Entry<D>>::new(dev);
            while let Some(e) = reader.next_record()? {
                if cmp_items_on_axis(axis, &as_item(&e), &as_item(&threshold))
                    != std::cmp::Ordering::Greater
                {
                    lw.push(&e)?;
                } else {
                    rw.push(&e)?;
                }
            }
            left_lists.push(lw.finish()?);
            right_lists.push(rw.finish()?);
        }
        discard_all(dev, lists);
        Ok(((left_lists, left_len), (right_lists, n - left_len)))
    }
}

fn subtree_capacity(params: &TreeParams, level: u8) -> usize {
    let mut cap = params.leaf_cap;
    for _ in 0..level {
        cap = cap.saturating_mul(params.node_cap);
    }
    cap
}

fn as_item<const D: usize>(e: &Entry<D>) -> Item<D> {
    Item {
        rect: e.rect,
        id: e.ptr,
    }
}

fn discard_all(dev: &dyn BlockDevice, lists: Vec<Stream>) {
    for l in lists {
        l.discard(dev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::tgs::TgsLoader;
    use crate::bulk::BulkLoader;
    use pr_em::MemDevice;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                Item::new(Rect::xyxy(x, y, x + 1.0, y + 0.5), i)
            })
            .collect()
    }

    fn leaf_groups(t: &RTree<2>) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut stack = vec![t.root()];
        while let Some(p) = stack.pop() {
            let (node, _) = t.read_node(p).unwrap();
            if node.is_leaf() {
                let mut ids: Vec<u32> = node.entries.iter().map(|e| e.ptr).collect();
                ids.sort_unstable();
                out.push(ids);
            } else {
                for e in &node.entries {
                    stack.push(e.ptr as u64);
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn external_matches_in_memory_tgs() {
        let items = random_items(1200, 17);
        let params = TreeParams::with_cap::<2>(8);

        let dev_mem: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let t_mem = TgsLoader
            .load(Arc::clone(&dev_mem), params, items.clone())
            .unwrap();

        let dev_ext: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = Stream::from_iter(dev_ext.as_ref(), items.iter().map(|&i| Entry::from_item(i)))
            .unwrap();
        let t_ext = TgsExternalLoader::new(ExternalConfig::with_memory(20 * params.page_size))
            .load::<2>(Arc::clone(&dev_ext), params, &input)
            .unwrap();

        t_ext.validate().unwrap().assert_ok();
        assert_eq!(t_mem.height(), t_ext.height());
        assert_eq!(leaf_groups(&t_mem), leaf_groups(&t_ext));
    }

    #[test]
    fn memory_cutoff_produces_identical_tree() {
        let items = random_items(900, 23);
        let params = TreeParams::with_cap::<2>(8);
        let build = |cutoff: bool| {
            let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
            let input = Stream::from_iter(dev.as_ref(), items.iter().map(|&i| Entry::from_item(i)))
                .unwrap();
            let mut loader =
                TgsExternalLoader::new(ExternalConfig::with_memory(30 * params.page_size));
            loader.memory_cutoff = cutoff;
            let before = dev.io_stats();
            let t = loader.load::<2>(Arc::clone(&dev), params, &input).unwrap();
            let cost = dev.io_stats().since(before).total();
            (leaf_groups(&t), cost)
        };
        let (full, cost_full) = build(false);
        let (cut, cost_cut) = build(true);
        assert_eq!(full, cut, "cutoff must not change the tree");
        assert!(
            cost_cut < cost_full,
            "cutoff should save I/O: {cost_cut} vs {cost_full}"
        );
    }

    #[test]
    fn queries_match_brute_force() {
        let items = random_items(1000, 31);
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input =
            Stream::from_iter(dev.as_ref(), items.iter().map(|&i| Entry::from_item(i))).unwrap();
        let t = TgsExternalLoader::new(ExternalConfig::with_memory(16 * params.page_size))
            .load::<2>(Arc::clone(&dev), params, &input)
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..25 {
            let x: f64 = rng.gen_range(0.0..90.0);
            let y: f64 = rng.gen_range(0.0..90.0);
            let q = Rect::xyxy(x, y, x + 8.0, y + 3.0);
            let mut got = t.window(&q).unwrap();
            let mut want = crate::query::brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_input() {
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = Stream::from_iter::<Entry<2>>(dev.as_ref(), []).unwrap();
        let t = TgsExternalLoader::new(ExternalConfig::with_memory(1 << 20))
            .load::<2>(Arc::clone(&dev), params, &input)
            .unwrap();
        assert!(t.is_empty());
    }
}
