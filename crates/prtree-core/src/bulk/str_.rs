//! Sort-Tile-Recursive (STR) packing — Leutenegger, López & Edgington,
//! reference 18 of the paper.
//!
//! Not part of the paper's measured quartet, but it is *the* bulk loader
//! shipped by mainstream spatial libraries, which makes it a valuable
//! extra baseline: the experiments show where the PR-tree beats what
//! practitioners actually deploy.
//!
//! STR sorts by the center of the first dimension, cuts the data into
//! `⌈P^(1/D)⌉` vertical slabs (`P` = number of leaves), recursively tiles
//! each slab on the remaining dimensions, then packs leaves in the
//! resulting order and repeats for upper levels.

use crate::bulk::BulkLoader;
use crate::entry::Entry;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::{pack_level, pack_upper_levels};
use pr_em::{BlockDevice, EmError};
use pr_geom::Item;
use std::sync::Arc;

/// The STR bulk loader.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrLoader;

/// Orders `entries` into STR tile order for node capacity `cap`,
/// recursing over dimensions starting at `dim`.
fn tile<const D: usize>(entries: &mut [Entry<D>], dim: usize, cap: usize) {
    entries.sort_unstable_by(|a, b| {
        let ca = (a.rect.lo_at(dim) + a.rect.hi_at(dim)) / 2.0;
        let cb = (b.rect.lo_at(dim) + b.rect.hi_at(dim)) / 2.0;
        ca.total_cmp(&cb).then_with(|| a.ptr.cmp(&b.ptr))
    });
    if dim + 1 == D || entries.len() <= cap {
        return;
    }
    let leaves = entries.len().div_ceil(cap);
    let remaining_dims = (D - dim) as f64;
    let slabs = (leaves as f64).powf(1.0 / remaining_dims).ceil() as usize;
    // Slab sizes are multiples of the node capacity so that the final
    // chunking never produces a node straddling two slabs (in the original
    // STR formulation each vertical slice holds S·B rectangles).
    let slab_size = entries.len().div_ceil(slabs.max(1)).div_ceil(cap).max(1) * cap;
    for chunk in entries.chunks_mut(slab_size) {
        tile(chunk, dim + 1, cap);
    }
}

impl<const D: usize> BulkLoader<D> for StrLoader {
    fn name(&self) -> &'static str {
        "STR"
    }

    fn load(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        items: Vec<Item<D>>,
    ) -> Result<RTree<D>, EmError> {
        if items.is_empty() {
            return RTree::new_empty(dev, params);
        }
        let len = items.len() as u64;
        let mut entries: Vec<Entry<D>> = items.into_iter().map(Entry::from_item).collect();

        // Leaf level: STR order, packed chunks.
        tile(&mut entries, 0, params.leaf_cap);
        let mut parents = pack_level(dev.as_ref(), 0, &entries, params.leaf_cap)?;

        // Upper levels re-tile the parent rectangles — the "recursive"
        // in Sort-Tile-Recursive.
        let mut level: u8 = 1;
        while parents.len() > params.node_cap {
            tile(&mut parents, 0, params.node_cap);
            parents = pack_level(dev.as_ref(), level, &parents, params.node_cap)?;
            level += 1;
        }
        pack_upper_levels(dev, params, parents, level - 1, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::brute_force_window;
    use pr_em::MemDevice;
    use pr_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                Item::new(Rect::xyxy(x, y, x + 0.5, y + 0.5), i)
            })
            .collect()
    }

    fn build(items: Vec<Item<2>>, cap: usize) -> RTree<2> {
        let params = TreeParams::with_cap::<2>(cap);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        StrLoader.load(dev, params, items).unwrap()
    }

    #[test]
    fn builds_valid_trees() {
        for n in [1u32, 10, 64, 65, 777, 3000] {
            let t = build(random_items(n, n as u64), 8);
            t.validate().unwrap().assert_ok();
            assert_eq!(t.len(), n as u64);
        }
    }

    #[test]
    fn leaves_are_packed_full() {
        let t = build(random_items(4000, 4), 10);
        assert!(t.stats().unwrap().leaf_utilization() > 0.99);
    }

    #[test]
    fn queries_match_brute_force() {
        let items = random_items(2000, 21);
        let t = build(items.clone(), 16);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..40 {
            let x: f64 = rng.gen_range(0.0..95.0);
            let y: f64 = rng.gen_range(0.0..95.0);
            let q = Rect::xyxy(x, y, x + 4.0, y + 4.0);
            let mut got = t.window(&q).unwrap();
            let mut want = brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn tiling_groups_are_spatially_coherent() {
        // Uniform points: each leaf MBR should cover a small fraction of
        // the domain (tiles, not stripes).
        let t = build(random_items(4000, 8), 16);
        let mut max_area: f64 = 0.0;
        let mut stack = vec![t.root()];
        while let Some(p) = stack.pop() {
            let (node, _) = t.read_node(p).unwrap();
            if node.is_leaf() {
                max_area = max_area.max(node.mbr().area());
            } else {
                for e in &node.entries {
                    stack.push(e.ptr as u64);
                }
            }
        }
        assert!(
            max_area < 0.05 * 100.0 * 100.0,
            "leaf MBR too large: {max_area}"
        );
    }
}
